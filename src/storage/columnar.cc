#include "storage/columnar.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/serialize.h"

namespace raven::storage {
namespace {

constexpr char kMagic[4] = {'R', 'V', 'C', '1'};
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8;

/// FNV-1a over 8-byte words (tail bytes one at a time) — same checksum the
/// NNRT artifact cache pins; it detects corruption, it is not a MAC.
std::uint64_t Fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, data + i, 8);
    h ^= word;
    h *= 1099511628211ull;
  }
  for (; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Bit-pattern equality: lets NaN extend an RLE run (NaN != NaN under
/// operator==) and keeps -0.0 vs +0.0 distinct, so decode is bit-exact.
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void WriteStats(const relational::ColumnStats& s, BinaryWriter* w) {
  w->WriteF64(s.min);
  w->WriteF64(s.max);
  w->WriteI64(s.num_rows);
  w->WriteI64(s.nan_count);
  w->WriteI64(s.non_finite_count);
  w->WriteBool(s.has_non_finite);
  w->WriteI64(s.distinct);
  w->WriteBool(s.distinct_exact);
  w->WriteBool(s.constant.has_value());
  w->WriteF64(s.constant.value_or(0.0));
}

Result<relational::ColumnStats> ReadStats(BinaryReader* r) {
  relational::ColumnStats s;
  RAVEN_ASSIGN_OR_RETURN(s.min, r->ReadF64());
  RAVEN_ASSIGN_OR_RETURN(s.max, r->ReadF64());
  RAVEN_ASSIGN_OR_RETURN(s.num_rows, r->ReadI64());
  RAVEN_ASSIGN_OR_RETURN(s.nan_count, r->ReadI64());
  RAVEN_ASSIGN_OR_RETURN(s.non_finite_count, r->ReadI64());
  RAVEN_ASSIGN_OR_RETURN(s.has_non_finite, r->ReadBool());
  RAVEN_ASSIGN_OR_RETURN(s.distinct, r->ReadI64());
  RAVEN_ASSIGN_OR_RETURN(s.distinct_exact, r->ReadBool());
  bool has_constant = false;
  RAVEN_ASSIGN_OR_RETURN(has_constant, r->ReadBool());
  RAVEN_ASSIGN_OR_RETURN(const double constant, r->ReadF64());
  if (has_constant) s.constant = constant;
  return s;
}

/// Encodes one block of one column, choosing RLE when it is strictly
/// smaller than plain storage. Returns the encoding used.
std::uint8_t EncodePayload(const double* values, std::int64_t n,
                           bool enable_rle, BinaryWriter* out) {
  if (enable_rle && n > 0) {
    std::vector<std::pair<double, std::uint64_t>> runs;
    runs.emplace_back(values[0], 1);
    for (std::int64_t i = 1; i < n; ++i) {
      if (SameBits(values[i], runs.back().first)) {
        ++runs.back().second;
      } else {
        runs.emplace_back(values[i], 1);
      }
    }
    const std::size_t rle_size = 8 + runs.size() * 16;
    const std::size_t plain_size = static_cast<std::size_t>(n) * 8;
    if (rle_size < plain_size) {
      out->WriteU64(runs.size());
      for (const auto& [value, count] : runs) {
        out->WriteF64(value);
        out->WriteU64(count);
      }
      return 1;
    }
  }
  for (std::int64_t i = 0; i < n; ++i) out->WriteF64(values[i]);
  return 0;
}

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::InvalidArgument("rvc file '" + path + "': " + why);
}

}  // namespace

Status WriteRvc(const relational::Table& table, const std::string& path,
                const RvcWriteOptions& options) {
  if (options.block_rows < 1) {
    return Status::InvalidArgument("rvc block_rows must be >= 1");
  }
  if (table.num_columns() == 0) {
    return Status::InvalidArgument("cannot write rvc with no columns");
  }
  const std::int64_t num_rows = table.num_rows();
  const std::int64_t block_rows = options.block_rows;
  const std::int64_t num_blocks =
      num_rows == 0 ? 0 : (num_rows + block_rows - 1) / block_rows;

  BinaryWriter meta;
  BinaryWriter data;
  meta.WriteI64(num_rows);
  meta.WriteI64(block_rows);
  meta.WriteU32(static_cast<std::uint32_t>(table.num_columns()));
  for (const auto& col : table.columns()) {
    meta.WriteString(col.name);
    meta.WriteBool(col.is_categorical());
    if (col.is_categorical()) meta.WriteStringVector(*col.dictionary);
  }
  meta.WriteI64(num_blocks);
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    const std::int64_t begin = b * block_rows;
    const std::int64_t rows = std::min(block_rows, num_rows - begin);
    meta.WriteI64(rows);
    for (const auto& col : table.columns()) {
      relational::Column slice;
      slice.name = col.name;
      slice.data.assign(col.data.begin() + begin,
                        col.data.begin() + begin + rows);
      WriteStats(relational::ComputeColumnStats(slice), &meta);
      const std::size_t offset = data.buffer().size();
      const std::uint8_t encoding = EncodePayload(
          col.data.data() + begin, rows, options.enable_rle, &data);
      const std::size_t length = data.buffer().size() - offset;
      meta.WriteU8(encoding);
      meta.WriteU64(offset);
      meta.WriteU64(length);
      meta.WriteU64(Fnv1a(data.buffer().data() + offset, length));
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kRvcVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t meta_len = meta.buffer().size();
  out.write(reinterpret_cast<const char*>(&meta_len), sizeof(meta_len));
  const std::uint64_t meta_checksum =
      Fnv1a(meta.buffer().data(), meta.buffer().size());
  out.write(reinterpret_cast<const char*>(&meta_checksum),
            sizeof(meta_checksum));
  out.write(meta.buffer().data(),
            static_cast<std::streamsize>(meta.buffer().size()));
  out.write(data.buffer().data(),
            static_cast<std::streamsize>(data.buffer().size()));
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::shared_ptr<DiskTable>> DiskTable::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat '" + path + "' failed");
  }
  const std::size_t file_size = static_cast<std::size_t>(st.st_size);
  if (file_size < kHeaderSize) {
    ::close(fd);
    return Corrupt(path, "truncated (smaller than header)");
  }
  void* mapping = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (mapping == MAP_FAILED) {
    ::close(fd);
    return Status::IoError("mmap '" + path + "' failed");
  }

  std::shared_ptr<DiskTable> table(new DiskTable());
  table->path_ = path;
  table->fd_ = fd;
  table->mapping_ = static_cast<const char*>(mapping);
  table->file_size_ = file_size;
  const char* base = table->mapping_;

  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic (not an rvc file)");
  }
  std::uint32_t version;
  std::memcpy(&version, base + 4, sizeof(version));
  if (version != kRvcVersion) {
    return Corrupt(path, "unsupported format version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kRvcVersion) + ")");
  }
  std::uint64_t meta_len;
  std::uint64_t meta_checksum;
  std::memcpy(&meta_len, base + 8, sizeof(meta_len));
  std::memcpy(&meta_checksum, base + 16, sizeof(meta_checksum));
  if (meta_len > file_size - kHeaderSize) {
    return Corrupt(path, "truncated (meta extends past end of file)");
  }
  const char* meta_start = base + kHeaderSize;
  if (Fnv1a(meta_start, meta_len) != meta_checksum) {
    return Corrupt(path, "meta checksum mismatch");
  }
  table->data_ = meta_start + meta_len;
  table->data_size_ = file_size - kHeaderSize - meta_len;

  BinaryReader reader(meta_start, meta_len);
  RAVEN_ASSIGN_OR_RETURN(table->num_rows_, reader.ReadI64());
  RAVEN_ASSIGN_OR_RETURN(table->block_rows_, reader.ReadI64());
  if (table->num_rows_ < 0 || table->block_rows_ < 1) {
    return Corrupt(path, "invalid row/block geometry");
  }
  RAVEN_ASSIGN_OR_RETURN(const std::uint32_t num_columns, reader.ReadU32());
  table->columns_.reserve(num_columns);
  for (std::uint32_t c = 0; c < num_columns; ++c) {
    ColumnMeta col;
    RAVEN_ASSIGN_OR_RETURN(col.name, reader.ReadString());
    bool categorical = false;
    RAVEN_ASSIGN_OR_RETURN(categorical, reader.ReadBool());
    if (categorical) {
      RAVEN_ASSIGN_OR_RETURN(col.dictionary, reader.ReadStringVector());
    }
    table->columns_.push_back(std::move(col));
  }
  std::int64_t num_blocks = 0;
  RAVEN_ASSIGN_OR_RETURN(num_blocks, reader.ReadI64());
  const std::int64_t expected_blocks =
      table->num_rows_ == 0
          ? 0
          : (table->num_rows_ + table->block_rows_ - 1) / table->block_rows_;
  if (num_blocks != expected_blocks) {
    return Corrupt(path, "block count does not match row count");
  }
  table->blocks_.reserve(static_cast<std::size_t>(num_blocks));
  std::int64_t rows_seen = 0;
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    BlockMeta block;
    RAVEN_ASSIGN_OR_RETURN(block.row_count, reader.ReadI64());
    const std::int64_t expected_rows =
        std::min(table->block_rows_, table->num_rows_ - rows_seen);
    if (block.row_count != expected_rows) {
      return Corrupt(path, "block " + std::to_string(b) +
                               " has unexpected row count");
    }
    rows_seen += block.row_count;
    block.payloads.reserve(num_columns);
    for (std::uint32_t c = 0; c < num_columns; ++c) {
      PayloadMeta payload;
      RAVEN_ASSIGN_OR_RETURN(payload.stats, ReadStats(&reader));
      std::uint8_t encoding = 0;
      RAVEN_ASSIGN_OR_RETURN(encoding, reader.ReadU8());
      if (encoding > 1) {
        return Corrupt(path, "unknown payload encoding " +
                                 std::to_string(encoding));
      }
      payload.encoding = static_cast<Encoding>(encoding);
      RAVEN_ASSIGN_OR_RETURN(payload.offset, reader.ReadU64());
      RAVEN_ASSIGN_OR_RETURN(payload.length, reader.ReadU64());
      RAVEN_ASSIGN_OR_RETURN(payload.checksum, reader.ReadU64());
      if (payload.offset > table->data_size_ ||
          payload.length > table->data_size_ - payload.offset) {
        return Corrupt(path, "truncated (payload extends past end of file)");
      }
      block.payloads.push_back(payload);
    }
    table->blocks_.push_back(std::move(block));
    for (const auto& payload : table->blocks_.back().payloads) {
      if (payload.encoding == Encoding::kRle) ++table->rle_payloads_;
    }
  }
  if (!reader.AtEnd()) {
    return Corrupt(path, "trailing bytes after block metadata");
  }
  return table;
}

DiskTable::~DiskTable() {
  if (mapping_ != nullptr) {
    ::munmap(const_cast<char*>(mapping_), file_size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

std::vector<std::string> DiskTable::ColumnNames() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col.name);
  return out;
}

std::int64_t DiskTable::BlockRowCount(std::int64_t block) const {
  if (block < 0 || block >= num_blocks()) return 0;
  return blocks_[static_cast<std::size_t>(block)].row_count;
}

const relational::ColumnStats* DiskTable::BlockStats(
    std::int64_t block, const std::string& column) const {
  if (block < 0 || block >= num_blocks()) return nullptr;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].name == column) {
      return &blocks_[static_cast<std::size_t>(block)].payloads[c].stats;
    }
  }
  return nullptr;
}

const std::vector<std::string>* DiskTable::Dictionary(
    const std::string& column) const {
  for (const auto& col : columns_) {
    if (col.name == column) {
      return col.dictionary.has_value() ? &*col.dictionary : nullptr;
    }
  }
  return nullptr;
}

Status DiskTable::DecodePayload(const PayloadMeta& payload,
                                std::int64_t row_count,
                                std::vector<double>* out) const {
  const char* bytes = data_ + payload.offset;
  if (Fnv1a(bytes, payload.length) != payload.checksum) {
    return Corrupt(path_, "payload checksum mismatch (corrupted block)");
  }
  out->clear();
  out->reserve(static_cast<std::size_t>(row_count));
  if (payload.encoding == Encoding::kPlain) {
    if (payload.length != static_cast<std::uint64_t>(row_count) * 8) {
      return Corrupt(path_, "plain payload has wrong length");
    }
    out->resize(static_cast<std::size_t>(row_count));
    std::memcpy(out->data(), bytes, payload.length);
    return Status::OK();
  }
  BinaryReader reader(bytes, payload.length);
  std::uint64_t num_runs = 0;
  RAVEN_ASSIGN_OR_RETURN(num_runs, reader.ReadU64());
  for (std::uint64_t r = 0; r < num_runs; ++r) {
    RAVEN_ASSIGN_OR_RETURN(const double value, reader.ReadF64());
    std::uint64_t count = 0;
    RAVEN_ASSIGN_OR_RETURN(count, reader.ReadU64());
    if (count == 0 ||
        count > static_cast<std::uint64_t>(row_count) - out->size()) {
      return Corrupt(path_, "rle run overflows block row count");
    }
    out->insert(out->end(), static_cast<std::size_t>(count), value);
  }
  if (static_cast<std::int64_t>(out->size()) != row_count ||
      !reader.AtEnd()) {
    return Corrupt(path_, "rle payload does not cover block row count");
  }
  return Status::OK();
}

Status DiskTable::ReadBlock(std::int64_t block,
                            relational::DataChunk* out) const {
  if (block < 0 || block >= num_blocks()) {
    return Status::OutOfRange("rvc block index out of range");
  }
  const BlockMeta& meta = blocks_[static_cast<std::size_t>(block)];
  out->names.clear();
  out->cols.clear();
  out->sel.clear();
  out->names.reserve(columns_.size());
  out->cols.reserve(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out->names.push_back(columns_[c].name);
    out->cols.emplace_back();
    RAVEN_RETURN_IF_ERROR(
        DecodePayload(meta.payloads[c], meta.row_count, &out->cols.back()));
  }
  return Status::OK();
}

Result<relational::Table> DiskTable::ReadRows(std::int64_t begin,
                                              std::int64_t end) const {
  if (begin < 0 || end > num_rows_ || begin > end) {
    return Status::OutOfRange("rvc row range invalid");
  }
  std::vector<std::vector<double>> cols(columns_.size());
  for (auto& col : cols) {
    col.reserve(static_cast<std::size_t>(end - begin));
  }
  relational::DataChunk chunk;
  const std::int64_t first_block = num_blocks() == 0 ? 0 : begin / block_rows_;
  for (std::int64_t b = first_block; b < num_blocks(); ++b) {
    const std::int64_t block_begin = b * block_rows_;
    if (block_begin >= end) break;
    RAVEN_RETURN_IF_ERROR(ReadBlock(b, &chunk));
    const std::int64_t lo = std::max(begin - block_begin, std::int64_t{0});
    const std::int64_t hi = std::min(end - block_begin, BlockRowCount(b));
    for (std::size_t c = 0; c < cols.size(); ++c) {
      cols[c].insert(cols[c].end(), chunk.cols[c].begin() + lo,
                     chunk.cols[c].begin() + hi);
    }
  }
  relational::Table out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].dictionary.has_value()) {
      RAVEN_RETURN_IF_ERROR(out.AddCategoricalColumn(
          columns_[c].name, std::move(cols[c]), *columns_[c].dictionary));
    } else {
      RAVEN_RETURN_IF_ERROR(
          out.AddNumericColumn(columns_[c].name, std::move(cols[c])));
    }
  }
  return out;
}

std::string DiskTable::Describe() const {
  std::int64_t dict_columns = 0;
  for (const auto& col : columns_) {
    if (col.dictionary.has_value()) ++dict_columns;
  }
  return path_ + ": " + std::to_string(num_rows_) + " rows in " +
         std::to_string(num_blocks()) + " blocks of " +
         std::to_string(block_rows_) + " (" +
         std::to_string(columns_.size()) + " columns, " +
         std::to_string(dict_columns) + " dictionary-encoded, " +
         std::to_string(rle_payloads_) + " rle payloads)";
}

}  // namespace raven::storage
