#!/usr/bin/env python3
"""Compares two combined bench.sh JSON documents benchmark-by-benchmark.

Usage:
  tools/bench_compare.py BASELINE.json CURRENT.json [--fail-over PCT]
                         [--gate REGEX]

Both inputs are bench.sh's combined format: a top-level object mapping each
bench binary name to Google Benchmark's native JSON. Every benchmark in
CURRENT is matched to the same (binary, benchmark-name) pair in BASELINE
and its real_time delta printed; benchmarks with no baseline counterpart
are reported as "new" and never gate.

--fail-over PCT exits non-zero when any GATED benchmark regressed by more
than PCT percent. The gate (--gate, default 'Scan|Filter|Predict') selects
the microbenchmarks whose regressions should fail CI; everything else is
reported but informational — figure benches covering optimizer rules have
their own acceptance criteria.
"""

import argparse
import json
import re
import sys

# Everything is normalized to nanoseconds before comparison.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """{(binary, name): real_time_ns} for one combined document."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for binary, report in doc.items():
        for bench in report.get("benchmarks", []):
            # Skip aggregate rows (mean/median/stddev) if repetitions were
            # used; the raw runs carry run_type "iteration".
            if bench.get("run_type", "iteration") == "aggregate":
                continue
            scale = _UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
            out[(binary, bench["name"])] = bench["real_time"] * scale
    return out


def format_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return "%.3f%s" % (ns / scale, unit)
    return "%.0fns" % ns


def main():
    parser = argparse.ArgumentParser(
        description="diff two bench.sh combined JSON documents")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--fail-over", type=float, metavar="PCT",
                        help="exit 1 when a gated benchmark regressed by "
                             "more than PCT percent")
    parser.add_argument("--gate", default="Scan|Filter|Predict",
                        help="regex selecting the benchmarks --fail-over "
                             "applies to (default: %(default)s)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    gate = re.compile(args.gate)

    offenders = []
    width = max((len(name) for _, name in current), default=4)
    print("%-*s  %12s  %12s  %9s" %
          (width, "benchmark", "baseline", "current", "delta"))
    for (binary, name), now_ns in sorted(current.items()):
        base_ns = baseline.get((binary, name))
        if base_ns is None:
            print("%-*s  %12s  %12s  %9s" %
                  (width, name, "-", format_ns(now_ns), "new"))
            continue
        delta_pct = (now_ns - base_ns) / base_ns * 100.0
        gated = bool(gate.search(name))
        marker = ""
        if (args.fail_over is not None and gated
                and delta_pct > args.fail_over):
            offenders.append((name, delta_pct))
            marker = "  REGRESSED"
        print("%-*s  %12s  %12s  %+8.1f%%%s" %
              (width, name, format_ns(base_ns), format_ns(now_ns),
               delta_pct, marker))

    missing = sorted(set(baseline) - set(current))
    for binary, name in missing:
        print("%-*s  %12s  %12s  %9s" %
              (width, name, format_ns(baseline[(binary, name)]), "-",
               "absent"))

    if offenders:
        print("\nbench_compare: %d gated benchmark(s) regressed more than "
              "%.1f%%:" % (len(offenders), args.fail_over), file=sys.stderr)
        for name, delta in offenders:
            print("  %s: +%.1f%%" % (name, delta), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
