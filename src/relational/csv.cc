#include "relational/csv.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace raven::relational {

namespace {

// One parsed CSV field: its text plus whether it was quoted in the source.
// Quoting is syntactically significant for type sniffing (a quoted field
// pins its column categorical), so it must survive parsing.
struct CsvField {
  std::string text;
  bool quoted = false;
};

// Writes one categorical value RFC-4180-style. Categorical fields are
// ALWAYS quoted: that is what lets ReadCsv tell a categorical "1.5" from a
// numeric 1.5, making write→read type-exact instead of heuristic.
void WriteQuoted(std::ostream& out, const std::string& value) {
  out << '"';
  for (char ch : value) {
    if (ch == '"') out << '"';
    out << ch;
  }
  out << '"';
}

// Formats a double with enough digits (max_digits10 == 17) that strtod
// recovers the exact bit pattern. Non-finite values print as nan/inf/-inf,
// which strtod also parses back.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Splits the raw file contents into records of fields, honoring quotes
// (embedded commas, escaped "" quotes, and embedded newlines inside quoted
// fields). Unquoted fields are trimmed; quoted fields are verbatim.
Result<std::vector<std::vector<CsvField>>> ParseCsv(const std::string& text) {
  std::vector<std::vector<CsvField>> records;
  std::vector<CsvField> record;
  std::string field;
  bool field_quoted = false;
  bool in_quotes = false;
  bool record_started = false;

  auto end_field = [&] {
    CsvField f;
    f.quoted = field_quoted;
    f.text = field_quoted ? field : TrimString(field);
    record.push_back(std::move(f));
    field.clear();
    field_quoted = false;
  };
  auto end_record = [&]() -> Status {
    if (!record_started) return Status::OK();  // blank line
    end_field();
    records.push_back(std::move(record));
    record.clear();
    record_started = false;
    return Status::OK();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_quotes = true;
        field_quoted = true;
        record_started = true;
        break;
      case ',':
        record_started = true;
        end_field();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        RAVEN_RETURN_IF_ERROR(end_record());
        break;
      default:
        if (!std::isspace(static_cast<unsigned char>(ch))) {
          record_started = true;
        }
        field += ch;
        break;
    }
  }
  if (in_quotes) {
    return Status::ParseError("CSV ends inside a quoted field");
  }
  RAVEN_RETURN_IF_ERROR(end_record());
  return records;
}

bool ParsesAsDouble(const std::string& field, double* out) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const auto& cols = table.columns();
  for (std::size_t c = 0; c < cols.size(); ++c) {
    if (c > 0) out << ",";
    WriteQuoted(out, cols[c].name);
  }
  out << "\n";
  const std::int64_t n = table.num_rows();
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      if (c > 0) out << ",";
      const double raw = cols[c].data[static_cast<std::size_t>(r)];
      if (cols[c].is_categorical()) {
        const auto code = static_cast<std::size_t>(raw);
        if (raw < 0 || code >= cols[c].dictionary->size() ||
            static_cast<double>(code) != raw) {
          return Status::InvalidArgument(
              "column '" + cols[c].name + "' row " + std::to_string(r) +
              ": dictionary code " + FormatDouble(raw) +
              " out of range (dictionary has " +
              std::to_string(cols[c].dictionary->size()) + " entries)");
        }
        WriteQuoted(out, (*cols[c].dictionary)[code]);
      } else {
        out << FormatDouble(raw);
      }
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = ParseCsv(buffer.str());
  RAVEN_RETURN_IF_ERROR(parsed.status());
  const auto& records = *parsed;
  if (records.empty()) return Status::ParseError("empty CSV");

  const std::vector<CsvField>& header = records.front();
  const std::size_t width = header.size();
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != width) {
      return Status::ParseError(
          "CSV row has " + std::to_string(records[r].size()) +
          " fields, expected " + std::to_string(width));
    }
  }
  const std::size_t num_rows = records.size() - 1;

  Table table;
  for (std::size_t c = 0; c < width; ++c) {
    // Pinned sniffing rules (see csv.h): any quoted field forces the
    // column categorical; otherwise the column is numeric iff it has at
    // least one non-empty field and every non-empty field fully parses
    // via strtod (the literals nan/inf therefore read as numeric). Empty
    // unquoted fields are the null sentinel (NaN) in numeric columns; an
    // all-empty column stays categorical.
    bool numeric = true;
    bool any_value = false;
    std::vector<double> nums;
    nums.reserve(num_rows);
    for (std::size_t r = 1; r <= num_rows; ++r) {
      const CsvField& field = records[r][c];
      if (field.quoted) {
        numeric = false;
        break;
      }
      if (field.text.empty()) {
        nums.push_back(std::numeric_limits<double>::quiet_NaN());
        continue;
      }
      double v = 0.0;
      if (!ParsesAsDouble(field.text, &v)) {
        numeric = false;
        break;
      }
      any_value = true;
      nums.push_back(v);
    }
    if (numeric && any_value) {
      RAVEN_RETURN_IF_ERROR(
          table.AddNumericColumn(header[c].text, std::move(nums)));
      continue;
    }
    std::map<std::string, double> dict_index;
    std::vector<std::string> dictionary;
    std::vector<double> codes;
    codes.reserve(num_rows);
    for (std::size_t r = 1; r <= num_rows; ++r) {
      const std::string& value = records[r][c].text;
      auto it = dict_index.find(value);
      if (it == dict_index.end()) {
        const double code = static_cast<double>(dictionary.size());
        dict_index[value] = code;
        dictionary.push_back(value);
        codes.push_back(code);
      } else {
        codes.push_back(it->second);
      }
    }
    RAVEN_RETURN_IF_ERROR(table.AddCategoricalColumn(
        header[c].text, std::move(codes), std::move(dictionary)));
  }
  return table;
}

}  // namespace raven::relational
