#include "server/query_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "frontend/sql_parser.h"

namespace raven::server {
namespace {

/// Scans one identifier-shaped word starting at `*pos` (skipping leading
/// whitespace); empty when the text is exhausted or starts with a
/// non-identifier character.
std::string NextWord(const std::string& text, std::size_t* pos) {
  while (*pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[*pos]))) {
    ++*pos;
  }
  const std::size_t begin = *pos;
  while (*pos < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[*pos])) ||
          text[*pos] == '_')) {
    ++*pos;
  }
  return text.substr(begin, *pos - begin);
}

std::string RestFrom(const std::string& text, std::size_t pos) {
  return TrimString(text.substr(std::min(pos, text.size())));
}

/// Valid CTE/view name: identifier-shaped (no leading digit) and not a
/// grammar keyword. Anything else would parse at CREATE but poison every
/// later statement once spliced in as `WITH <name> AS (...)`.
Status ValidateViewName(const std::string& name) {
  if (name.empty() || (!std::isalpha(static_cast<unsigned char>(name[0])) &&
                       name[0] != '_')) {
    return Status::InvalidArgument(
        "view name '" + name +
        "' must start with a letter or underscore");
  }
  static const char* kReserved[] = {
      "SELECT", "FROM",  "WHERE", "GROUP",   "BY",    "HAVING", "ORDER",
      "LIMIT",  "JOIN",  "ON",    "AS",      "WITH",  "PREDICT", "MODEL",
      "DATA",   "AND",   "OR",    "NOT",     "IN",    "ASC",    "DESC",
      "COUNT",  "SUM",   "AVG",   "MIN",     "MAX"};
  const std::string upper = ToUpper(name);
  for (const char* keyword : kReserved) {
    if (upper == keyword) {
      return Status::InvalidArgument("view name '" + name +
                                     "' is a reserved word");
    }
  }
  return Status::OK();
}

/// Parses the optional `( v1, v2, ... )` parameter list of a SQL-level
/// EXECUTE. Values are plain doubles (the engine is numeric end to end).
Result<std::vector<double>> ParseParamList(const std::string& rest) {
  std::vector<double> params;
  if (rest.empty()) return params;
  if (rest.front() != '(' || rest.back() != ')') {
    return Status::ParseError(
        "EXECUTE parameters must be parenthesized: EXECUTE name (1, 2.5)");
  }
  const std::string inner = TrimString(rest.substr(1, rest.size() - 2));
  if (inner.empty()) return params;
  for (const std::string& part : SplitString(inner, ',')) {
    const std::string value = TrimString(part);
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return Status::ParseError("EXECUTE parameter '" + value +
                                "' is not a number");
    }
    params.push_back(parsed);
  }
  return params;
}

}  // namespace

std::vector<std::pair<std::string, std::int64_t>> ServerStats::ToPairs()
    const {
  return {
      {"plan_cache_hits", plan_cache.hits},
      {"plan_cache_misses", plan_cache.misses},
      {"plan_cache_evictions", plan_cache.evictions},
      {"plan_cache_invalidations", plan_cache.invalidations},
      {"plan_cache_entries", plan_cache.entries},
      {"queries_active", admission.active},
      {"queries_queued", admission.queued},
      {"queries_admitted", admission.admitted},
      {"queries_ever_queued", admission.ever_queued},
      {"queries_shed", admission.shed},
      {"queue_timeouts", admission.timeouts},
      {"peak_active", admission.peak_active},
      {"peak_queued", admission.peak_queued},
      {"queries_served", queries_served},
      {"statements_prepared", statements_prepared},
      {"prepared_executions", prepared_executions},
      {"sessions_opened", sessions_opened},
      {"sessions_active", sessions_active},
      {"worker_restarts", worker_restarts},
      {"catalog_version", catalog_version},
      {"blocks_scanned", blocks_scanned},
      {"blocks_skipped", blocks_skipped},
      {"batches_flushed", batches_flushed},
      {"rows_coalesced", rows_coalesced},
      {"batch_occupancy_x100", batch_occupancy},
      {"epoll_wakeups", epoll_wakeups},
      {"nn_session_hits", nn_session_hits},
      {"nn_session_misses", nn_session_misses},
      {"nn_session_evictions", nn_session_evictions},
      {"nn_session_entries", nn_session_entries},
      {"nn_graph_optimizations", nn_graph_optimizations},
      {"nn_artifact_hits", nn_artifact_hits},
      {"nn_artifact_writes", nn_artifact_writes},
      {"nn_artifact_rejects", nn_artifact_rejects},
      {"nn_ops_profiled", nn_ops_profiled},
      {"nn_op_micros", nn_op_micros},
  };
}

std::int64_t ServerStats::BatchOccupancyX100(std::int64_t rows_flushed,
                                             std::int64_t batches_flushed) {
  // Round half-up rather than truncate: 1 row over 3 batches is 33, not 66
  // truncated from intermediate math, and 5/3 rounds to 167 not 166. No
  // batches yet is an explicit 0, not "skip the stat".
  if (batches_flushed <= 0) return 0;
  return (rows_flushed * 100 + batches_flushed / 2) / batches_flushed;
}

QueryServer::QueryServer(RavenContext* ctx, QueryServerOptions options)
    : ctx_(ctx),
      options_(std::move(options)),
      plan_cache_(options_.plan_cache_capacity),
      admission_(options_.admission),
      batcher_(std::make_shared<PredictBatcher>()) {
  // Every session's PREDICT scorers route through the shared batcher (the
  // window/row-cap knobs stay per-session SET state; with the default
  // window of 0 the scorer never consults it).
  options_.default_execution.predict_batcher = batcher_;
  // Sessions inherit the context's extra worker args (notably
  // --artifact-dir=..., appended by RavenContext when an artifact cache is
  // attached) so out-of-process/distributed children of server sessions
  // warm-start from the same compiled-graph artifacts.
  for (const std::string& arg :
       ctx_->execution_options().external.worker_args) {
    auto& args = options_.default_execution.external.worker_args;
    if (std::find(args.begin(), args.end(), arg) == args.end()) {
      args.push_back(arg);
    }
  }
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server is already running");
  }
  // Batcher Shutdown is permanent, so a restarted server gets a fresh
  // (open) one; Snapshot between Stop and the next Start still reads the
  // finished run's counters.
  batcher_ = std::make_shared<PredictBatcher>();
  options_.default_execution.predict_batcher = batcher_;
  // A client that disappears mid-response must surface as EPIPE on the
  // connection, not kill the server (same rationale as WorkerClient).
  ::signal(SIGPIPE, SIG_IGN);
  if (!options_.unix_socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError("socket(AF_UNIX) failed: " +
                             std::string(std::strerror(errno)));
    }
    ::unlink(options_.unix_socket_path.c_str());  // stale socket file
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string error = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IoError("bind(" + options_.unix_socket_path +
                             ") failed: " + error);
    }
  } else if (options_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError("socket(AF_INET) failed: " +
                             std::string(std::strerror(errno)));
    }
    const int reuse = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string error = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IoError("bind(127.0.0.1:" +
                             std::to_string(options_.tcp_port) +
                             ") failed: " + error);
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      bound_tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  } else {
    return Status::InvalidArgument(
        "configure either unix_socket_path or tcp_port");
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen failed: " + error);
  }

  EventLoopOptions loop;
  loop.max_connections = options_.max_connections;
  loop.max_request_frame_bytes = options_.max_request_frame_bytes;
  loop.idle_timeout_millis = options_.idle_timeout_millis;
  // Every admission slot and queue seat must be occupiable at once, or the
  // dispatch pool — not the admission controller — would become the real
  // shed/queue policy; the slack covers control traffic (SET, SHOW STATS,
  // pings) arriving while all admission seats are taken.
  loop.dispatch_threads = static_cast<int>(options_.admission.max_concurrent +
                                           options_.admission.max_queue + 4);
  loop.busy_payload = EncodeServerResponse(ErrorResponse(Status::ServerBusy(
      "connection limit (" + std::to_string(options_.max_connections) +
      ") reached; retry later")));
  loop.oversize_payload = EncodeServerResponse(ErrorResponse(
      Status::OutOfRange("request frame is over the cap of " +
                         std::to_string(options_.max_request_frame_bytes) +
                         " bytes")));
  event_loop_ = std::make_unique<EventLoop>(
      std::move(loop),
      [this]() -> void* {
        sessions_opened_.fetch_add(1, std::memory_order_relaxed);
        sessions_active_.fetch_add(1, std::memory_order_relaxed);
        return new Session(
            next_session_id_.fetch_add(1, std::memory_order_relaxed),
            options_.default_execution, &ctx_->session_cache());
      },
      [this](void* conn_ctx, std::string payload) -> std::string {
        ServerResponse response;
        auto request = DecodeClientRequest(payload);
        if (!request.ok()) {
          // Frames are length-delimited, so a malformed payload does not
          // desynchronize the stream; answer the error and keep serving.
          response = ErrorResponse(request.status());
        } else {
          response = HandleRequest(static_cast<Session*>(conn_ctx),
                                   request.value());
        }
        return EncodeServerResponse(response);
      },
      [this](void* conn_ctx) {
        delete static_cast<Session*>(conn_ctx);
        sessions_active_.fetch_sub(1, std::memory_order_relaxed);
      });
  Status started = event_loop_->Start(listen_fd_);
  if (!started.ok()) {
    event_loop_.reset();
    ::close(listen_fd_);
    listen_fd_ = -1;
    return started;
  }
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void QueryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Drain the batcher FIRST: pending leaders wake and flush their groups
  // immediately, and later submissions run solo — so the in-flight
  // statements the loop is about to wait on can never be parked on a batch
  // window waiting for company that will not arrive. No PREDICT waiter is
  // dropped: drained batches run normally, they just stop waiting.
  batcher_->Shutdown();
  // Severs connections, finishes in-flight handlers, joins every thread.
  if (event_loop_ != nullptr) event_loop_->Stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

ServerResponse QueryServer::ErrorResponse(const Status& status) {
  ServerResponse response;
  response.kind = status.code() == StatusCode::kServerBusy
                      ? ServerResponseKind::kBusy
                      : ServerResponseKind::kError;
  response.code = status.code();
  response.message = status.message();
  return response;
}

ServerResponse QueryServer::HandleRequest(Session* session,
                                          const ClientRequest& request) {
  switch (request.command) {
    case ClientCommand::kPing: {
      ServerResponse response;
      response.kind = ServerResponseKind::kAck;
      response.message = "pong";
      return response;
    }
    case ClientCommand::kExecute:
      return HandleExecute(session, request.statement_name, request.params);
    case ClientCommand::kQuery:
      return HandleStatement(session, request.sql);
  }
  return ErrorResponse(Status::InvalidArgument("unhandled client command"));
}

ServerResponse QueryServer::HandleStatement(Session* session,
                                            const std::string& sql) {
  std::string text = TrimString(sql);
  while (!text.empty() && text.back() == ';') {
    text.pop_back();
    text = TrimString(text);
  }
  if (text.empty()) {
    return ErrorResponse(Status::ParseError("empty statement"));
  }
  std::size_t pos = 0;
  const std::string verb = ToUpper(NextWord(text, &pos));
  if (verb == "PREPARE") {
    return HandlePrepare(session, RestFrom(text, pos));
  }
  if (verb == "EXECUTE") {
    const std::string name = NextWord(text, &pos);
    if (name.empty()) {
      return ErrorResponse(
          Status::ParseError("EXECUTE expects a statement name"));
    }
    auto params = ParseParamList(RestFrom(text, pos));
    if (!params.ok()) return ErrorResponse(params.status());
    return HandleExecute(session, name, params.value());
  }
  if (verb == "SET") {
    return HandleSet(session, RestFrom(text, pos));
  }
  if (verb == "EXPLAIN") {
    return HandleExplain(session, RestFrom(text, pos));
  }
  if (verb == "SHOW") {
    const std::string what = ToUpper(NextWord(text, &pos));
    if (what != "STATS") {
      return ErrorResponse(
          Status::ParseError("only SHOW STATS is supported"));
    }
    return ShowStats();
  }
  if (verb == "CREATE") {
    return HandleCreateView(session, RestFrom(text, pos));
  }
  if (verb == "DROP") {
    const std::string what = ToUpper(NextWord(text, &pos));
    const std::string name = NextWord(text, &pos);
    if (what != "VIEW" || name.empty()) {
      return ErrorResponse(Status::ParseError("expected DROP VIEW <name>"));
    }
    Status dropped = session->DropView(name);
    if (!dropped.ok()) return ErrorResponse(dropped);
    ServerResponse response;
    response.kind = ServerResponseKind::kAck;
    response.message = "dropped view '" + name + "'";
    return response;
  }
  return RunStatement(session, text);
}

ServerResponse QueryServer::HandleSet(Session* session,
                                      const std::string& rest) {
  // Accept `SET key = value` and `SET key value`.
  std::string key;
  std::string value;
  const std::size_t eq = rest.find('=');
  if (eq != std::string::npos) {
    key = TrimString(rest.substr(0, eq));
    value = TrimString(rest.substr(eq + 1));
  } else {
    std::size_t pos = 0;
    key = NextWord(rest, &pos);
    value = RestFrom(rest, pos);
  }
  if (key.empty() || value.empty()) {
    return ErrorResponse(Status::ParseError("expected SET <knob> = <value>"));
  }
  Status applied = session->ApplySet(key, value);
  if (!applied.ok()) return ErrorResponse(applied);
  ServerResponse response;
  response.kind = ServerResponseKind::kAck;
  response.message = "SET " + ToLower(key) + " = " + value;
  return response;
}

ServerResponse QueryServer::HandleCreateView(Session* session,
                                             const std::string& rest) {
  std::size_t pos = 0;
  std::string word = ToUpper(NextWord(rest, &pos));
  if (word == "TEMP" || word == "TEMPORARY") {
    word = ToUpper(NextWord(rest, &pos));
  }
  if (word != "VIEW") {
    return ErrorResponse(
        Status::ParseError("expected CREATE [TEMP] VIEW <name> AS <select>"));
  }
  const std::string name = NextWord(rest, &pos);
  const std::string as = ToUpper(NextWord(rest, &pos));
  const std::string body = RestFrom(rest, pos);
  if (name.empty() || as != "AS" || body.empty()) {
    return ErrorResponse(
        Status::ParseError("expected CREATE [TEMP] VIEW <name> AS <select>"));
  }
  Status valid_name = ValidateViewName(name);
  if (!valid_name.ok()) return ErrorResponse(valid_name);
  // Validate the body now (against the session's existing views) so a
  // broken view fails its CREATE, not every later statement that uses it.
  bool cache_hit = false;
  auto planned =
      PlanStatement(session, session->RewriteWithViews(body), &cache_hit);
  if (!planned.ok()) return ErrorResponse(planned.status());
  if ((*planned)->param_count > 0) {
    return ErrorResponse(Status::InvalidArgument(
        "views cannot contain ? placeholders (prepare a statement instead)"));
  }
  session->PutView(name, body);
  ServerResponse response;
  response.kind = ServerResponseKind::kAck;
  response.message = "created view '" + name + "'";
  return response;
}

ServerResponse QueryServer::HandlePrepare(Session* session,
                                          const std::string& rest) {
  std::size_t pos = 0;
  const std::string name = NextWord(rest, &pos);
  const std::string as = ToUpper(NextWord(rest, &pos));
  const std::string body = RestFrom(rest, pos);
  if (name.empty() || as != "AS" || body.empty()) {
    return ErrorResponse(
        Status::ParseError("expected PREPARE <name> AS <select>"));
  }
  const std::string rewritten = session->RewriteWithViews(body);
  // Version read BEFORE planning: if the catalog mutates mid-plan, the
  // template looks stale on the next EXECUTE and re-plans — never the
  // other way around (a stale plan that looks permanently fresh).
  const std::int64_t planned_version = ctx_->catalog().version();
  bool cache_hit = false;
  auto planned = PlanStatement(session, rewritten, &cache_hit);
  if (!planned.ok()) return ErrorResponse(planned.status());
  PreparedStatement prepared;
  prepared.name = name;
  prepared.sql = rewritten;
  prepared.plan = (*planned)->plan;
  prepared.param_count = (*planned)->param_count;
  prepared.fingerprint = (*planned)->fingerprint;
  prepared.catalog_version = planned_version;
  prepared.profile = session->PlanProfile();
  session->prepared()[name] = std::move(prepared);
  statements_prepared_.fetch_add(1, std::memory_order_relaxed);
  ServerResponse response;
  response.kind = ServerResponseKind::kAck;
  response.message = "prepared '" + name + "' (" +
                     std::to_string((*planned)->param_count) +
                     " parameters)";
  return response;
}

ServerResponse QueryServer::HandleExecute(Session* session,
                                          const std::string& name,
                                          const std::vector<double>& params) {
  auto it = session->prepared().find(name);
  if (it == session->prepared().end()) {
    return ErrorResponse(
        Status::NotFound("no prepared statement named '" + name + "'"));
  }
  PreparedStatement& prepared = it->second;
  bool cache_hit = true;
  if (prepared.catalog_version != ctx_->catalog().version() ||
      prepared.profile != session->PlanProfile()) {
    // The template went stale: the catalog moved since PREPARE (model
    // update, new table) or a SET changed the costing targets it was
    // optimized for. Re-plan from the stored text — same policy as the
    // plan cache, applied to the session-pinned template. Version read
    // before planning, same staleness direction as HandlePrepare.
    const std::int64_t planned_version = ctx_->catalog().version();
    auto replanned = PlanStatement(session, prepared.sql, &cache_hit);
    if (!replanned.ok()) return ErrorResponse(replanned.status());
    prepared.plan = (*replanned)->plan;
    prepared.param_count = (*replanned)->param_count;
    prepared.fingerprint = (*replanned)->fingerprint;
    prepared.catalog_version = planned_version;
    prepared.profile = session->PlanProfile();
  }
  if (static_cast<std::int64_t>(params.size()) != prepared.param_count) {
    return ErrorResponse(Status::InvalidArgument(
        "prepared statement '" + name + "' takes " +
        std::to_string(prepared.param_count) + " parameters, got " +
        std::to_string(params.size())));
  }
  prepared_executions_.fetch_add(1, std::memory_order_relaxed);
  if (prepared.param_count == 0) {
    return ExecutePlan(session, *prepared.plan, cache_hit);
  }
  auto bound = ir::BindPlanParameters(*prepared.plan->root(), params);
  if (!bound.ok()) return ErrorResponse(bound.status());
  const ir::IrPlan bound_plan(std::move(bound).value());
  return ExecutePlan(session, bound_plan, cache_hit);
}

ServerResponse QueryServer::HandleExplain(Session* session,
                                          const std::string& body) {
  if (body.empty()) {
    return ErrorResponse(Status::ParseError("EXPLAIN expects a statement"));
  }
  std::string text;
  {
    // Explain re-runs analyze + optimize and touches the shared
    // optimizer's per-query costing state, so it serializes like PlanFresh
    // (never cached — it is a diagnostic, not a hot path). Costing targets
    // come from the server's default execution options, not the session.
    std::lock_guard<std::mutex> lock(optimize_mu_);
    auto explained = ctx_->Explain(session->RewriteWithViews(body));
    if (!explained.ok()) return ErrorResponse(explained.status());
    text = std::move(explained).value();
  }
  // The plan text reports which PREDICT nodes are batch-eligible; whether
  // they actually coalesce is this session's knob state — append it so one
  // round trip answers both questions.
  const runtime::ExecutionOptions& exec = session->execution();
  text += "=== Session batching knobs ===\n";
  text += "  batch_window_micros = " +
          std::to_string(exec.predict_batch_window_micros);
  if (exec.predict_batch_window_micros <= 0) {
    text += "  (0: batch-eligible nodes run per-morsel, uncoalesced)";
  }
  text += "\n  max_batch_rows = " +
          std::to_string(exec.predict_max_batch_rows) + "\n";
  // Backend selection + profiling: which kernel set this session's PREDICT
  // sessions bind, the fp16 accuracy caveat, and the cumulative per-op cost
  // breakdown the profiling hooks have gathered so far (cache-wide).
  text += "=== NNRT backend ===\n";
  text += "  nn_backend = ";
  text += nnrt::BackendKindToString(exec.nn_backend);
  if (exec.nn_backend == nnrt::BackendKind::kFp16) {
    text +=
        "  (outputs rounded to fp16 per op: faster dense math, "
        "approximate scores — see docs/OPERATIONS.md for the tolerance)";
  }
  text += "\n";
  const std::vector<nnrt::OpProfile> ops =
      ctx_->session_cache().profiler().Snapshot();
  if (!ops.empty()) {
    text += "  per-op profile (cumulative, all sessions):\n";
    std::size_t shown = 0;
    for (const nnrt::OpProfile& op : ops) {
      if (++shown > 8) break;
      text += "    " + op.op_type + ": calls=" + std::to_string(op.calls) +
              " micros=" + std::to_string(static_cast<std::int64_t>(
                               op.wall_micros)) +
              " flops=" +
              std::to_string(static_cast<std::int64_t>(op.flops)) + "\n";
    }
  }
  ServerResponse response;
  response.kind = ServerResponseKind::kAck;
  response.message = std::move(text);
  return response;
}

ServerResponse QueryServer::RunStatement(Session* session,
                                         const std::string& sql) {
  bool cache_hit = false;
  auto planned =
      PlanStatement(session, session->RewriteWithViews(sql), &cache_hit);
  if (!planned.ok()) return ErrorResponse(planned.status());
  if ((*planned)->param_count > 0) {
    return ErrorResponse(Status::InvalidArgument(
        "statement has ? placeholders; use PREPARE/EXECUTE to bind them"));
  }
  return ExecutePlan(session, *(*planned)->plan, cache_hit);
}

Result<std::shared_ptr<const CachedPlan>> QueryServer::PlanStatement(
    Session* session, const std::string& sql, bool* cache_hit) {
  RAVEN_ASSIGN_OR_RETURN(std::string normalized,
                         frontend::NormalizeSql(sql));
  // The profile is the LAST \x1f-delimited segment and is machine-generated
  // (Session::PlanProfile must never emit \x1f): however the SQL segment
  // re-segments — string literals CAN carry arbitrary bytes — the final
  // separator still delimits the profile unambiguously, so two different
  // (sql, profile) pairs can't produce the same key.
  const std::string key = normalized + '\x1f' + session->PlanProfile();
  const std::int64_t version = ctx_->catalog().version();
  if (auto cached = plan_cache_.Get(key, version)) {
    *cache_hit = true;
    return cached;
  }
  *cache_hit = false;
  RAVEN_ASSIGN_OR_RETURN(std::shared_ptr<const CachedPlan> fresh,
                         PlanFresh(session, sql));
  plan_cache_.Put(key, version, fresh);
  return fresh;
}

Result<std::shared_ptr<const CachedPlan>> QueryServer::PlanFresh(
    Session* session, const std::string& sql) {
  // The analyzer is stateless and the catalog thread-safe, so analysis
  // runs concurrently across sessions; only Optimize is serialized (its
  // costing targets are per-query fields on the shared CrossOptimizer).
  RAVEN_ASSIGN_OR_RETURN(ir::IrPlan plan, ctx_->analyzer().Analyze(sql));
  {
    std::lock_guard<std::mutex> lock(optimize_mu_);
    const runtime::ExecutionOptions& exec = session->execution();
    optimizer::OptimizerOptions& opts = ctx_->optimizer_options();
    opts.target_parallelism =
        exec.mode == runtime::ExecutionMode::kInProcess ? exec.parallelism
                                                        : 1;
    opts.target_distributed_workers =
        exec.mode == runtime::ExecutionMode::kDistributed
            ? exec.distributed_workers
            : 0;
    RAVEN_RETURN_IF_ERROR(ctx_->cross_optimizer().Optimize(&plan));
  }
  auto cached = std::make_shared<CachedPlan>();
  cached->param_count = ir::PlanParamCount(*plan.root());
  cached->fingerprint = ir::PlanFingerprint(*plan.root());
  cached->plan = std::make_shared<const ir::IrPlan>(std::move(plan));
  return std::shared_ptr<const CachedPlan>(std::move(cached));
}

ServerResponse QueryServer::ExecutePlan(Session* session,
                                        const ir::IrPlan& plan,
                                        bool cache_hit) {
  Timer timer;
  auto ticket = admission_.Admit();
  if (!ticket.ok()) return ErrorResponse(ticket.status());
  runtime::ExecutionStats stats;
  auto result =
      ctx_->executor().Execute(plan, session->execution(), &stats);
  // The serving-path fields of ExecutionStats are filled here — the
  // response below is built FROM the stats, so an embedder reading the
  // stats and a client reading the response see the same numbers.
  stats.plan_cache_hit = cache_hit;
  stats.queue_wait_micros = ticket->queue_wait_micros();
  worker_restarts_.fetch_add(stats.worker_restarts,
                             std::memory_order_relaxed);
  blocks_scanned_.fetch_add(stats.blocks_scanned, std::memory_order_relaxed);
  blocks_skipped_.fetch_add(stats.blocks_skipped, std::memory_order_relaxed);
  if (!result.ok()) return ErrorResponse(result.status());
  const std::int64_t row_cap = options_.admission.max_result_rows;
  if (row_cap > 0 && result->num_rows() > row_cap) {
    return ErrorResponse(Status::ExecutionError(
        "result has " + std::to_string(result->num_rows()) +
        " rows, over the per-query cap of " + std::to_string(row_cap)));
  }
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  ServerResponse response;
  response.kind = ServerResponseKind::kTable;
  response.table = std::move(result).value();
  response.plan_cache_hit = stats.plan_cache_hit;
  response.queue_wait_micros = stats.queue_wait_micros;
  response.total_millis = timer.ElapsedMillis();
  return response;
}

ServerResponse QueryServer::ShowStats() const {
  ServerResponse response;
  response.kind = ServerResponseKind::kStats;
  response.stats = Snapshot().ToPairs();
  return response;
}

ServerStats QueryServer::Snapshot() const {
  ServerStats stats;
  stats.plan_cache = plan_cache_.stats();
  stats.admission = admission_.stats();
  stats.queries_served = queries_served_.load(std::memory_order_relaxed);
  stats.statements_prepared =
      statements_prepared_.load(std::memory_order_relaxed);
  stats.prepared_executions =
      prepared_executions_.load(std::memory_order_relaxed);
  stats.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  stats.sessions_active = sessions_active_.load(std::memory_order_relaxed);
  stats.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  stats.blocks_scanned = blocks_scanned_.load(std::memory_order_relaxed);
  stats.blocks_skipped = blocks_skipped_.load(std::memory_order_relaxed);
  stats.catalog_version = ctx_->catalog().version();
  const PredictBatcher::Stats batcher = batcher_->stats();
  stats.batches_flushed = batcher.batches_flushed;
  stats.rows_coalesced = batcher.rows_coalesced;
  stats.batch_occupancy = ServerStats::BatchOccupancyX100(
      batcher.rows_flushed, batcher.batches_flushed);
  if (event_loop_ != nullptr) {
    stats.epoll_wakeups = event_loop_->stats().epoll_wakeups;
  }
  const nnrt::SessionCacheStats nn = ctx_->session_cache().stats();
  stats.nn_session_hits = static_cast<std::int64_t>(nn.hits);
  stats.nn_session_misses = static_cast<std::int64_t>(nn.misses);
  stats.nn_session_evictions = static_cast<std::int64_t>(nn.evictions);
  stats.nn_session_entries = static_cast<std::int64_t>(nn.entries);
  stats.nn_graph_optimizations =
      static_cast<std::int64_t>(nn.graph_optimizations);
  stats.nn_artifact_hits = static_cast<std::int64_t>(nn.artifact_hits);
  stats.nn_artifact_writes = static_cast<std::int64_t>(nn.artifact_writes);
  stats.nn_artifact_rejects = static_cast<std::int64_t>(nn.artifact_rejects);
  const nnrt::OpProfiler& profiler = ctx_->session_cache().profiler();
  stats.nn_ops_profiled = profiler.total_calls();
  stats.nn_op_micros =
      static_cast<std::int64_t>(profiler.total_micros());
  return stats;
}

}  // namespace raven::server
