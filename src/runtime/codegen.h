#ifndef RAVEN_RUNTIME_CODEGEN_H_
#define RAVEN_RUNTIME_CODEGEN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "ir/ir.h"
#include "obs/trace.h"
#include "nnrt/session.h"
#include "relational/catalog.h"
#include "relational/operators.h"
#include "runtime/external_runtime.h"
#include "runtime/inference_batcher.h"

namespace raven::runtime {

/// Where query execution (and model scoring) runs (paper §5, in decreasing
/// integration order).
enum class ExecutionMode {
  kInProcess,     ///< NNRT linked into the engine (PREDICT operator)
  kDistributed,   ///< plan fragments ship to a persistent raven_worker pool
  kOutOfProcess,  ///< one-shot raven_worker per query over pipes (Raven Ext)
  kContainer,     ///< per-query worker with container boot cost (fallback)
};

const char* ExecutionModeToString(ExecutionMode mode);

/// Execution configuration for one query.
struct ExecutionOptions {
  ExecutionMode mode = ExecutionMode::kInProcess;
  /// Number of morsel-parallel workers; >1 enables the engine's automatic
  /// parallelization (paper §5 observation iii) for every in-process plan
  /// shape — scans, joins, aggregates, unions, PREDICT. Plans containing a
  /// LIMIT, and the out-of-process/container modes, run sequentially.
  std::int64_t parallelism = 1;
  /// Rows per scan morsel (0 = kChunkSize). Smaller morsels balance skew
  /// better, larger ones amortize scheduling; tests shrink this to force
  /// many morsels on small tables.
  std::int64_t morsel_rows = 0;
  /// NNRT device for in-process sessions (CPU or simulated accelerator).
  nnrt::DeviceSpec device = nnrt::DeviceSpec::Cpu();
  /// NNRT kernel implementation set for in-process sessions (reference,
  /// simd, fp16 — see nnrt/backend.h). Surfaced as `SET nn_backend`; part
  /// of the session-cache key so sessions never mix backends.
  nnrt::BackendKind nn_backend = nnrt::BackendKind::kReference;
  /// Out-of-process worker configuration (shared by the one-shot Raven Ext
  /// modes and the kDistributed worker pool: binary path, boot cost).
  ExternalRuntimeOptions external;
  /// Containerized execution adds container start-up on top of the worker
  /// boot cost.
  std::int64_t container_extra_boot_millis = 600;
  /// kDistributed: size of the persistent worker pool leaf-scan partitions
  /// spread over. The pool spawns lazily on the first distributed query and
  /// stays warm across queries.
  std::int64_t distributed_workers = 2;
  /// kDistributed: per-frame read timeout guarding against wedged workers
  /// (<= 0 disables). A timed-out partition retries on a fresh worker, then
  /// falls back to in-process execution.
  int distributed_frame_timeout_millis = 30000;
  /// Cross-query PREDICT micro-batching window. 0 (the default) disables
  /// coalescing entirely: NN scorers call their session directly, the exact
  /// per-morsel path. Positive values route in-process kNnGraph scoring
  /// through `predict_batcher`, which may merge rows from concurrent
  /// queries into shared NNRT batches (byte-identical per row — see
  /// runtime/inference_batcher.h). The query server surfaces this as the
  /// `SET batch_window_micros` session knob.
  std::int64_t predict_batch_window_micros = 0;
  /// Pending rows that force an early flush of a shared batch
  /// (`SET max_batch_rows`). Submissions at or over this size score solo —
  /// they are already amortized.
  std::int64_t predict_max_batch_rows = 256;
  /// The shared scheduler scorers submit to when the window is positive.
  /// Set by the query server (one batcher across all sessions); direct API
  /// runs leave it null and never coalesce.
  std::shared_ptr<InferenceBatcher> predict_batcher;
  /// On-disk (.rvc) scans: consult per-block zone maps against pushed-down
  /// filter conjuncts and skip blocks that cannot match (`SET
  /// zone_map_skipping`). Purely an I/O optimization — the filter above the
  /// scan still evaluates — so disabling it changes block counters, never
  /// results.
  bool zone_map_skipping = true;
  /// Optional per-query trace arena (obs/trace.h). Non-null enables span
  /// recording at phase/exchange/operator boundaries — never per row, so
  /// the data hot path takes no locks. Observation only: results are
  /// byte-identical with tracing on or off.
  obs::Trace* trace = nullptr;
};

/// Per-operator execution counters, summed over all workers that ran a
/// clone of the operator.
struct OperatorStats {
  std::string op;           ///< e.g. "Scan(patients)", "HashJoin", "Predict"
  std::int64_t rows = 0;    ///< rows emitted
  std::int64_t chunks = 0;  ///< chunks emitted
  double wall_micros = 0.0; ///< wall time inside Next (summed across workers)
  double open_micros = 0.0; ///< wall time inside Open (summed across workers)
  /// IR node the slot was registered under — lets EXPLAIN ANALYZE match
  /// actual counters back onto the optimized plan tree by node identity
  /// (names alone collide: one node can surface twice, e.g. an aggregate
  /// sink plus the rescan of its materialized result).
  const void* node = nullptr;
};

/// Accumulated execution statistics. Filled from a StatsCollector after the
/// run completes; plain data, no synchronization required by readers.
struct ExecutionStats {
  std::int64_t rows_out = 0;
  std::int64_t predict_batches = 0;
  double nn_wall_micros = 0.0;
  /// Device-model time for accelerator sessions (== wall time on CPU).
  double nn_simulated_micros = 0.0;
  /// Morsel-parallel workers the plan actually executed with (1 when the
  /// plan ran sequentially); pool workers in a distributed run.
  std::int64_t partitions_used = 1;
  /// Scan morsels dispensed across all pipelines (0 in sequential runs).
  std::int64_t morsels = 0;
  /// Distributed execution: kExecuteFragment request frames sent to pool
  /// workers (retries included).
  std::int64_t frames_sent = 0;
  /// Distributed execution: total request payload bytes shipped to workers
  /// plus response payload bytes received back.
  std::int64_t bytes_shipped = 0;
  /// Distributed execution: pool workers replaced after a failed exchange.
  std::int64_t worker_restarts = 0;
  /// Query server: the optimized plan came from the shared plan cache
  /// (parse + optimize were skipped). Always false for direct API runs.
  bool plan_cache_hit = false;
  /// Query server: wall time this query spent queued in the admission
  /// controller before an execution slot freed up (0 when admitted
  /// immediately or run outside the server).
  double queue_wait_micros = 0.0;
  /// Filter/project/PREDICT chains the code generator collapsed into single
  /// fused operators (counted once per chain, not per worker clone).
  std::int64_t fused_chains = 0;
  /// On-disk scans: blocks decoded, and blocks skipped because their zone
  /// map proved no row could match the pushed-down predicates. Each block
  /// counts once per query regardless of worker count.
  std::int64_t blocks_scanned = 0;
  std::int64_t blocks_skipped = 0;
  /// Per-operator counters in plan-build order.
  std::vector<OperatorStats> operators;
};

/// Internal, thread-safe accumulation target shared by all workers of one
/// execution. Scorer closures and instrumented operators update it through
/// atomics — no external stats mutex — and the executor folds it into the
/// caller's ExecutionStats once at the end.
class StatsCollector {
 public:
  void AddPredictBatch(std::int64_t rows, const nnrt::RunStats* nn_stats);

  /// Returns the (stable) stats slot for (`node`, `name`), creating it on
  /// first use. Called at plan-build time, possibly from several workers.
  /// Keyed by node AND label: one IR node can surface as two physical
  /// operators (an aggregate sink and the later scan of its materialized
  /// result), which must not share counters.
  relational::OperatorStatsSlot* SlotFor(const void* node,
                                         const std::string& name);

  /// Renders the atomics into `out` (operators in slot-creation order).
  void Finalize(ExecutionStats* out) const;

  std::atomic<std::int64_t> partitions_used{1};
  std::atomic<std::int64_t> morsels{0};
  std::atomic<std::int64_t> frames_sent{0};
  std::atomic<std::int64_t> bytes_shipped{0};
  std::atomic<std::int64_t> worker_restarts{0};
  /// Bumped by BuildPhysicalPlan once per fused chain (worker 0 only, so N
  /// worker clones of the same plan don't count a chain N times).
  std::atomic<std::int64_t> fused_chains{0};
  /// Bumped by DiskScanOperator as it decodes/skips blocks. The morsel
  /// queue hands each block to exactly one worker, so sharing the atomics
  /// across worker clones still counts each block once.
  std::atomic<std::int64_t> blocks_scanned{0};
  std::atomic<std::int64_t> blocks_skipped{0};

 private:
  std::atomic<std::int64_t> rows_out_{0};
  std::atomic<std::int64_t> predict_batches_{0};
  std::atomic<double> nn_wall_micros_{0.0};
  std::atomic<double> nn_simulated_micros_{0.0};

  struct SlotEntry {
    std::string name;
    const void* node;
    relational::OperatorStatsSlot slot;
  };

  mutable std::mutex mu_;  // guards the slot registry, not the counters
  std::deque<SlotEntry> slots_;
  std::map<std::pair<const void*, std::string>,
           relational::OperatorStatsSlot*>
      by_node_;
};

/// Shared state of one morsel-parallel execution, built by the PlanExecutor
/// and read by BuildPhysicalPlan when instantiating each worker's operator
/// tree. Maps are keyed by IR node identity.
struct ParallelExecState {
  std::int64_t num_workers = 1;
  std::int64_t morsel_rows = relational::kChunkSize;
  /// Scan sources of the pipeline currently being built: each entry hands
  /// out morsels to every worker; second = source ordinal for order keys.
  std::unordered_map<const ir::IrNode*,
                     std::pair<std::shared_ptr<MorselQueue>, std::int64_t>>
      scan_queues;
  /// Joins whose build side already ran as an earlier pipeline; the worker
  /// trees instantiate probe-only join operators over these.
  std::unordered_map<const ir::IrNode*,
                     std::shared_ptr<relational::JoinBuildState>>
      join_builds;
  /// Aggregates acting as the sink of the pipeline currently being built.
  std::unordered_map<const ir::IrNode*,
                     std::shared_ptr<relational::SharedAggregateState>>
      agg_sinks;
  /// Grouped aggregations acting as the sink of the pipeline currently
  /// being built (thread-local pre-aggregation merged into the shared
  /// lock-striped table).
  std::unordered_map<const ir::IrNode*,
                     std::shared_ptr<relational::SharedGroupByState>>
      group_sinks;
  /// Subtrees already executed and materialized (aggregate results); the
  /// worker trees scan these instead of recursing.
  std::unordered_map<const ir::IrNode*, const relational::Table*> materialized;
};

/// Shared state for building physical plans.
struct RuntimeContext {
  const relational::Catalog* catalog = nullptr;
  nnrt::SessionCache* session_cache = nullptr;
  ExecutionOptions options;
  /// Optional stats sink; shared across workers, internally synchronized.
  StatsCollector* stats = nullptr;
  /// Non-null while building the worker trees of a parallel pipeline.
  const ParallelExecState* parallel = nullptr;
  /// Which worker's tree is being built (feeds JoinBuildState::Append).
  std::int64_t worker_id = 0;
};

/// Lowers IR aggregate items to the relational operator's specs (shared by
/// the code generator and the parallel executor's aggregate pipelines).
std::vector<relational::AggregateSpec> ToAggregateSpecs(
    const std::vector<ir::AggregateItem>& items);

/// Lowers a kGroupBy node's payload to the relational GroupBySpec.
relational::GroupBySpec ToGroupBySpec(const ir::IrNode& node);

/// Lowers kOrderBy sort keys to the relational sort specs.
std::vector<relational::SortSpec> ToSortSpecs(
    const std::vector<ir::SortKey>& keys);

/// Raven's Runtime Code Generator: lowers an optimized IR plan to a
/// physical operator tree over the relational engine, binding each model
/// node to a scorer for the configured execution mode. With ctx.parallel
/// set it emits the parallel-aware operator variants (morsel scans,
/// probe-only joins, aggregate partial sinks) for worker ctx.worker_id.
Result<relational::OperatorPtr> BuildPhysicalPlan(const ir::IrNode& node,
                                                  const RuntimeContext& ctx);

/// Renders the optimized IR back to SQL text (the paper's code generator
/// emits a rewritten SQL query; this is that artifact, used by EXPLAIN).
std::string GenerateSql(const ir::IrNode& node);

/// Describes the fused filter/project/PREDICT chains BuildPhysicalPlan will
/// collapse for this plan, one chain per line in execution order (e.g.
/// "Fused[Filter+Predict(los)+Project]"). Empty string when the plan has no
/// chain of length >= 2. Used by EXPLAIN so the printed plan matches what
/// the runtime actually executes.
std::string DescribeFusedChains(const ir::IrNode& node);

/// Describes the PREDICT nodes whose scorers route through the cross-query
/// inference batcher when one is installed (kNnGraph nodes — their NNRT
/// kernels compute each output row from its input row alone, which is what
/// makes coalescing byte-identical), one node per line (e.g.
/// "Predict(los) -> score [NNRT graph]"). Empty when the plan has none.
std::string DescribeBatchablePredicts(const ir::IrNode& node);

/// Describes every on-disk (.rvc) scan in the plan, one per line: the
/// block layout plus the filter conjuncts the scan will test against
/// per-block zone maps (e.g. "DiskScan(patients): ... zone-map conjuncts:
/// age >= 30"). Empty when the plan scans no disk tables. Used by the
/// EXPLAIN storage section.
std::string DescribeStorageScans(const ir::IrNode& node,
                                 const relational::Catalog& catalog);

}  // namespace raven::runtime

#endif  // RAVEN_RUNTIME_CODEGEN_H_
