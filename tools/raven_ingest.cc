// raven_ingest: converts a CSV file into the `.rvc` block-columnar format
// that raven_serve attaches with --attach=NAME=PATH.
//
// Usage:
//   raven_ingest --input=data.csv --output=data.rvc
// Knobs:
//   --input=PATH       source CSV (header row required; see
//                      relational/csv.h for the type-sniffing rules)
//   --output=PATH      destination `.rvc` file (overwritten)
//   --block-rows=N     rows per block / zone-map granule (default 4096)
//   --no-rle           store every payload plain (skip run-length encoding)
//
// On success prints the opened file's layout (rows, blocks, encodings) so
// the operator sees what a scan will work with, and exits 0. Any CSV parse
// error, write failure, or verification failure is fatal with exit 1.

#include <cstdio>
#include <string>

#include "relational/csv.h"
#include "storage/columnar.h"
#include "tool_flags.h"

namespace {

using raven::tools::ParseFlag;

long FlagInt(const std::string& value, const char* name) {
  return raven::tools::FlagInt(value, name, "raven_ingest");
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  raven::storage::RvcWriteOptions write_options;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--input=", &value)) {
      input = value;
    } else if (ParseFlag(argv[i], "--output=", &value)) {
      output = value;
    } else if (ParseFlag(argv[i], "--block-rows=", &value)) {
      write_options.block_rows = FlagInt(value, "--block-rows");
    } else if (std::string(argv[i]) == "--no-rle") {
      write_options.enable_rle = false;
    } else {
      std::fprintf(stderr, "raven_ingest: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (input.empty() || output.empty()) {
    std::fprintf(stderr,
                 "raven_ingest: pass --input=CSV and --output=RVC\n");
    return 2;
  }

  auto table = raven::relational::ReadCsv(input);
  if (!table.ok()) {
    std::fprintf(stderr, "raven_ingest: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  raven::Status written =
      raven::storage::WriteRvc(table.value(), output, write_options);
  if (!written.ok()) {
    std::fprintf(stderr, "raven_ingest: %s\n", written.ToString().c_str());
    return 1;
  }
  // Re-open what we just wrote: the write path isn't trusted until the
  // (checksum-verifying) read path accepts the file.
  auto verify = raven::storage::DiskTable::Open(output);
  if (!verify.ok()) {
    std::fprintf(stderr, "raven_ingest: verification failed: %s\n",
                 verify.status().ToString().c_str());
    return 1;
  }
  std::printf("raven_ingest: %s\n", verify.value()->Describe().c_str());
  return 0;
}
