#include "server/session.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace raven::server {
namespace {

Result<std::int64_t> ParseInt(const std::string& key,
                              const std::string& value) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("SET " + key + " expects an integer, got '" +
                                   value + "'");
  }
  return static_cast<std::int64_t>(parsed);
}

}  // namespace

Status Session::ApplySet(const std::string& key, const std::string& value) {
  const std::string k = ToLower(TrimString(key));
  const std::string v = TrimString(value);
  if (k == "parallelism") {
    RAVEN_ASSIGN_OR_RETURN(std::int64_t n, ParseInt(k, v));
    if (n < 1 || n > 256) {
      return Status::InvalidArgument("parallelism must be in [1, 256]");
    }
    execution_.parallelism = n;
    return Status::OK();
  }
  if (k == "morsel_rows") {
    RAVEN_ASSIGN_OR_RETURN(std::int64_t n, ParseInt(k, v));
    if (n < 0) {
      return Status::InvalidArgument("morsel_rows must be >= 0 (0 = default)");
    }
    execution_.morsel_rows = n;
    return Status::OK();
  }
  if (k == "distributed_workers") {
    RAVEN_ASSIGN_OR_RETURN(std::int64_t n, ParseInt(k, v));
    if (n < 1 || n > 64) {
      return Status::InvalidArgument("distributed_workers must be in [1, 64]");
    }
    execution_.distributed_workers = n;
    return Status::OK();
  }
  if (k == "distributed_frame_timeout_millis") {
    RAVEN_ASSIGN_OR_RETURN(std::int64_t n, ParseInt(k, v));
    // A non-positive timeout would disable the wedged-worker hang guard —
    // remotely, by any client. Keep it bounded and positive.
    if (n < 1 || n > 3600000) {
      return Status::InvalidArgument(
          "distributed_frame_timeout_millis must be in [1, 3600000]");
    }
    execution_.distributed_frame_timeout_millis = static_cast<int>(n);
    return Status::OK();
  }
  if (k == "batch_window_micros") {
    RAVEN_ASSIGN_OR_RETURN(std::int64_t n, ParseInt(k, v));
    // Capped at 1s: the window is latency every lone PREDICT pays waiting
    // for company, and an unbounded one would let any client park the
    // server's dispatch threads inside the batcher.
    if (n < 0 || n > 1000000) {
      return Status::InvalidArgument(
          "batch_window_micros must be in [0, 1000000] (0 = off)");
    }
    execution_.predict_batch_window_micros = n;
    return Status::OK();
  }
  if (k == "max_batch_rows") {
    RAVEN_ASSIGN_OR_RETURN(std::int64_t n, ParseInt(k, v));
    if (n < 1 || n > 65536) {
      return Status::InvalidArgument("max_batch_rows must be in [1, 65536]");
    }
    execution_.predict_max_batch_rows = n;
    return Status::OK();
  }
  if (k == "zone_map_skipping") {
    RAVEN_ASSIGN_OR_RETURN(std::int64_t n, ParseInt(k, v));
    if (n != 0 && n != 1) {
      return Status::InvalidArgument(
          "zone_map_skipping must be 0 or 1 (1 = default)");
    }
    // Not part of PlanProfile(): skipping is a scan-time I/O optimization —
    // the plan is identical either way, so it must not fragment the plan
    // cache.
    execution_.zone_map_skipping = (n == 1);
    return Status::OK();
  }
  if (k == "nn_backend") {
    RAVEN_ASSIGN_OR_RETURN(nnrt::BackendKind kind,
                           nnrt::ParseBackendKind(ToLower(v)));
    // Not part of PlanProfile(): the backend binds at physical plan build
    // (it's baked into the NNRT session-cache key), never at optimization,
    // so it must not fragment the plan cache.
    execution_.nn_backend = kind;
    return Status::OK();
  }
  if (k == "nn_session_cache_capacity") {
    RAVEN_ASSIGN_OR_RETURN(std::int64_t n, ParseInt(k, v));
    if (n < 0 || n > 4096) {
      return Status::InvalidArgument(
          "nn_session_cache_capacity must be in [0, 4096] (0 = pass-through)");
    }
    if (shared_cache_ == nullptr) {
      return Status::InvalidArgument(
          "nn_session_cache_capacity requires a server-attached session "
          "cache");
    }
    // Server-wide, not per-session: resizes the engine's shared NNRT
    // session cache (takes effect immediately, evicting LRU entries when
    // shrinking).
    shared_cache_->set_capacity(static_cast<std::size_t>(n));
    return Status::OK();
  }
  if (k == "trace") {
    const std::string mode = ToLower(v);
    if (mode == "on" || mode == "1" || mode == "true") {
      trace_enabled_ = true;
    } else if (mode == "off" || mode == "0" || mode == "false") {
      trace_enabled_ = false;
    } else {
      return Status::InvalidArgument("trace must be on or off");
    }
    // Not part of PlanProfile(): tracing observes execution, it never
    // changes the plan — results are byte-identical either way, so it must
    // not fragment the plan cache.
    return Status::OK();
  }
  if (k == "slow_query_millis") {
    RAVEN_ASSIGN_OR_RETURN(std::int64_t n, ParseInt(k, v));
    if (n < 0 || n > 3600000) {
      return Status::InvalidArgument(
          "slow_query_millis must be in [0, 3600000] (0 = off)");
    }
    // Not part of PlanProfile() for the same reason as trace: a logging
    // threshold, not a planning input.
    slow_query_millis_ = n;
    return Status::OK();
  }
  if (k == "mode") {
    const std::string mode = ToLower(v);
    if (mode == "inprocess" || mode == "in_process") {
      execution_.mode = runtime::ExecutionMode::kInProcess;
    } else if (mode == "distributed") {
      execution_.mode = runtime::ExecutionMode::kDistributed;
    } else if (mode == "outofprocess" || mode == "out_of_process") {
      execution_.mode = runtime::ExecutionMode::kOutOfProcess;
    } else if (mode == "container") {
      execution_.mode = runtime::ExecutionMode::kContainer;
    } else {
      return Status::InvalidArgument(
          "unknown mode '" + v +
          "' (inprocess|distributed|outofprocess|container)");
    }
    return Status::OK();
  }
  return Status::InvalidArgument(
      "unknown session knob '" + key +
      "' (parallelism, morsel_rows, mode, distributed_workers, "
      "distributed_frame_timeout_millis, batch_window_micros, "
      "max_batch_rows, nn_backend, nn_session_cache_capacity, "
      "zone_map_skipping, trace, slow_query_millis)");
}

std::string Session::PlanProfile() const {
  // Only knobs the optimizer's cost model consumes belong here: adding
  // irrelevant ones (e.g. morsel_rows, the batching knobs) would fragment
  // the cache.
  return "mode=" +
         std::to_string(static_cast<int>(execution_.mode)) +
         ";dop=" + std::to_string(execution_.parallelism) +
         ";dw=" + std::to_string(execution_.distributed_workers);
}

void Session::PutView(const std::string& name, const std::string& select_sql) {
  for (auto& [existing, sql] : views_) {
    if (existing == name) {
      sql = select_sql;
      return;
    }
  }
  views_.emplace_back(name, select_sql);
}

Status Session::DropView(const std::string& name) {
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if (it->first == name) {
      views_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("view '" + name + "' not found in this session");
}

bool Session::HasView(const std::string& name) const {
  for (const auto& [existing, sql] : views_) {
    if (existing == name) return true;
  }
  return false;
}

std::string Session::RewriteWithViews(const std::string& sql) const {
  if (views_.empty()) return sql;
  // Views become leading CTEs, comma-chained (the parser's WITH list
  // continues only across commas). A statement that itself starts with
  // WITH joins the same list: its WITH keyword is spliced into a comma.
  std::string out = "WITH ";
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (i > 0) out += ", ";
    out += views_[i].first + " AS (" + views_[i].second + ")";
  }
  const std::string trimmed = TrimString(sql);
  if (trimmed.size() >= 4 && ToUpper(trimmed.substr(0, 4)) == "WITH" &&
      (trimmed.size() == 4 ||
       !(std::isalnum(static_cast<unsigned char>(trimmed[4])) ||
         trimmed[4] == '_'))) {
    out += ", " + TrimString(trimmed.substr(4));
  } else {
    out += " " + trimmed;
  }
  return out;
}

}  // namespace raven::server
