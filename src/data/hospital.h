#ifndef RAVEN_DATA_HOSPITAL_H_
#define RAVEN_DATA_HOSPITAL_H_

#include <cstdint>

#include "common/status.h"
#include "ml/pipeline.h"
#include "relational/table.h"

namespace raven::data {

/// Synthetic hospital length-of-stay dataset mirroring the paper's running
/// example (§2, based on the Microsoft hospital-LOS sample): three tables
/// joinable on `id`, mixed numeric vitals and binary categoricals, and a
/// learnable LOS signal dominated by blood pressure, age, and pregnancy.
///
///   patient_info(id, age, gender, pregnant, weight)
///   blood_tests(id, bp, hematocrit, glucose, platelets)
///   prenatal_tests(id, fetal_hr, amnio, prenatal_score)
struct HospitalDataset {
  relational::Table patient_info;
  relational::Table blood_tests;
  relational::Table prenatal_tests;
  /// The same rows pre-joined (feature columns only + length_of_stay
  /// label); used to train models and as the model-clustering sample.
  relational::Table joined;
};

/// Column names of the hospital feature set, in model-input order.
std::vector<std::string> HospitalFeatureColumns();

/// Generates `n` patients deterministically from `seed`.
HospitalDataset MakeHospitalDataset(std::int64_t n, std::uint64_t seed = 1);

/// Ground-truth-ish label generator exposed for tests.
double HospitalLengthOfStay(double age, double pregnant, double bp,
                            double fetal_hr, double noise);

/// Trains the paper's §2 model: FeatureUnion(scaler over vitals, one-hot
/// over gender/pregnant/amnio) -> DecisionTreeRegressor.
Result<ml::ModelPipeline> TrainHospitalTree(const HospitalDataset& data,
                                            std::int64_t max_depth = 8);

/// Random-forest variant (Fig 2(d), Fig 3).
Result<ml::ModelPipeline> TrainHospitalForest(const HospitalDataset& data,
                                              std::int64_t num_trees = 10,
                                              std::int64_t max_depth = 8);

/// MLP variant (Fig 3).
Result<ml::ModelPipeline> TrainHospitalMlp(const HospitalDataset& data);

/// The pipeline script (Python-subset DSL) matching the trained hospital
/// models, as a data scientist would INSERT it (paper Fig 1, M).
std::string HospitalTreeScript();
std::string HospitalForestScript();
std::string HospitalMlpScript();

}  // namespace raven::data

#endif  // RAVEN_DATA_HOSPITAL_H_
