#ifndef RAVEN_ML_FEATURIZER_H_
#define RAVEN_ML_FEATURIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace raven::ml {

/// z-score standardizer: y = (x - mean) / std, per column.
/// The scikit-learn StandardScaler equivalent.
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Learns per-column mean/std over the selected columns of X ([n, d]).
  Status Fit(const Tensor& x);
  /// Applies the learned transform; x must have the fitted column count.
  Result<Tensor> Transform(const Tensor& x) const;

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& scale() const { return scale_; }
  /// Directly installs parameters (used by tests and converters).
  void SetParams(std::vector<double> mean, std::vector<double> scale) {
    mean_ = std::move(mean);
    scale_ = std::move(scale);
  }

  void Serialize(BinaryWriter* writer) const;
  static Result<StandardScaler> Deserialize(BinaryReader* reader);

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;  // 1 / std (0-variance columns get scale 1).
};

/// One-hot encoder over integer category codes. Each input column i with
/// cardinality c_i expands to c_i binary features; codes outside [0, c_i)
/// produce an all-zero block (handle_unknown="ignore").
///
/// Model-projection pushdown (paper §4.1, Fig 2(a)) drops individual
/// one-hot features whose downstream weight is zero: `kept_codes` restricts
/// the emitted codes per column, shrinking the output block. An empty kept
/// list means "all codes".
class OneHotEncoder {
 public:
  OneHotEncoder() = default;

  /// Learns cardinalities = max code + 1 per column.
  Status Fit(const Tensor& x);
  Result<Tensor> Transform(const Tensor& x) const;

  const std::vector<std::int64_t>& cardinalities() const {
    return cardinalities_;
  }
  void SetCardinalities(std::vector<std::int64_t> cards) {
    cardinalities_ = std::move(cards);
    kept_codes_.assign(cardinalities_.size(), {});
  }
  std::int64_t TotalOutputFeatures() const;

  /// Codes emitted for column `col` in output order.
  std::vector<std::int64_t> EmittedCodes(std::size_t col) const;
  /// Number of features column `col` contributes.
  std::int64_t ColumnWidth(std::size_t col) const;
  /// Restricts column `col` to the given codes (ascending, deduplicated by
  /// caller). Passing all codes clears the restriction.
  Status RestrictColumn(std::size_t col, std::vector<std::int64_t> codes);

  void Serialize(BinaryWriter* writer) const;
  static Result<OneHotEncoder> Deserialize(BinaryReader* reader);

 private:
  std::vector<std::int64_t> cardinalities_;
  /// Parallel to cardinalities_; empty inner vector = all codes kept.
  std::vector<std::vector<std::int64_t>> kept_codes_;
};

/// The kind of transform a featurizer branch applies.
enum class TransformKind : std::uint8_t {
  kIdentity = 0,  ///< pass-through numeric columns
  kScaler = 1,    ///< StandardScaler
  kOneHot = 2,    ///< OneHotEncoder
};

const char* TransformKindToString(TransformKind kind);

/// One branch of a FeatureUnion: a column subset plus a transform. Branch
/// outputs are concatenated in declaration order, matching
/// sklearn.pipeline.FeatureUnion.
struct FeatureBranch {
  std::string name;
  std::vector<std::int64_t> input_columns;
  TransformKind kind = TransformKind::kIdentity;
  StandardScaler scaler;  // valid when kind == kScaler
  OneHotEncoder onehot;   // valid when kind == kOneHot

  /// Number of output features this branch emits.
  std::int64_t OutputWidth() const;
};

/// Where each output feature of a featurizer came from. This provenance is
/// what makes the Raven cross-optimizations possible: predicate-based
/// pruning and model-projection pushdown both need to map model features
/// back to relational columns.
struct FeatureProvenance {
  std::int64_t input_column = -1;   ///< source column in the raw input
  std::int64_t branch_index = -1;   ///< which FeatureBranch produced it
  TransformKind kind = TransformKind::kIdentity;
  /// For one-hot features: the category code this feature indicates,
  /// otherwise -1.
  std::int64_t category = -1;
};

/// A full featurization stage: an ordered set of branches whose outputs are
/// concatenated. Input is the raw [n, d] matrix; output is [n, F].
class Featurizer {
 public:
  Featurizer() = default;

  void AddBranch(FeatureBranch branch) {
    branches_.push_back(std::move(branch));
  }
  const std::vector<FeatureBranch>& branches() const { return branches_; }
  std::vector<FeatureBranch>& mutable_branches() { return branches_; }

  /// Fits every branch on its column subset of X.
  Status Fit(const Tensor& x);
  Result<Tensor> Transform(const Tensor& x) const;

  /// Total output feature count.
  std::int64_t OutputWidth() const;

  /// Provenance of each output feature, in output order.
  std::vector<FeatureProvenance> Provenance() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<Featurizer> Deserialize(BinaryReader* reader);

 private:
  std::vector<FeatureBranch> branches_;
};

/// Extracts the selected columns of a rank-2 tensor as a new tensor.
Result<Tensor> SelectColumns(const Tensor& x,
                             const std::vector<std::int64_t>& columns);

}  // namespace raven::ml

#endif  // RAVEN_ML_FEATURIZER_H_
