#include "runtime/worker_pool.h"

#include "ir/ir.h"
#include "relational/catalog.h"
#include "runtime/plan_executor.h"

namespace raven::runtime {

Result<relational::Table> FragmentResult::ToTable() const {
  relational::Table out;
  if (result_names.empty()) return out;  // column-less empty convention
  std::vector<std::vector<double>> cols(result_names.size());
  for (const auto& chunk : chunks) {
    if (chunk.cols.size() != result_names.size()) {
      return Status::ParseError("fragment chunk column count mismatch");
    }
    for (std::size_t c = 0; c < cols.size(); ++c) {
      cols[c].insert(cols[c].end(), chunk.cols[c].begin(),
                     chunk.cols[c].end());
    }
  }
  if (!cols.empty() &&
      static_cast<std::int64_t>(cols.front().size()) != result_rows) {
    return Status::ParseError("fragment stream row count mismatch");
  }
  for (std::size_t c = 0; c < cols.size(); ++c) {
    RAVEN_RETURN_IF_ERROR(
        out.AddNumericColumn(result_names[c], std::move(cols[c])));
  }
  return out;
}

WorkerPool::~WorkerPool() { Stop(); }

Status WorkerPool::Start(const WorkerPoolOptions& options) {
  Stop();
  options_ = options;
  frame_timeout_millis_.store(options.frame_timeout_millis,
                              std::memory_order_relaxed);
  const std::int64_t n = std::max<std::int64_t>(1, options.num_workers);
  for (std::int64_t w = 0; w < n; ++w) {
    auto client = std::make_unique<WorkerClient>();
    Status started = client->Start(options_.external);
    if (!started.ok()) {
      workers_.clear();
      worker_mus_.clear();
      return Status(started.code(),
                    "worker pool start failed (worker " + std::to_string(w) +
                        "/" + std::to_string(n) + "): " + started.message());
    }
    workers_.push_back(std::move(client));
    worker_mus_.push_back(std::make_unique<std::mutex>());
  }
  running_ = true;
  return Status::OK();
}

void WorkerPool::Stop() {
  workers_.clear();  // ~WorkerClient sends kShutdown and reaps
  worker_mus_.clear();
  running_ = false;
}

pid_t WorkerPool::worker_pid(std::int64_t w) const {
  if (w < 0 || w >= num_workers()) return -1;
  return workers_[static_cast<std::size_t>(w)]->pid();
}

Result<FragmentResult> WorkerPool::ExecuteFragment(
    std::int64_t w, const std::string& request_frame) {
  if (!running_ || w < 0 || w >= num_workers()) {
    return Status::InvalidArgument("no such pool worker " + std::to_string(w));
  }
  std::lock_guard<std::mutex> lock(*worker_mus_[static_cast<std::size_t>(w)]);
  // The pointer load happens under the lock: a concurrent RestartWorker on
  // this slot swaps (and destroys) the client.
  WorkerClient* worker = workers_[static_cast<std::size_t>(w)].get();
  const int timeout = frame_timeout_millis_.load(std::memory_order_relaxed);
  RAVEN_RETURN_IF_ERROR(worker->SendFrame(request_frame));
  FragmentResult result;
  for (;;) {
    RAVEN_ASSIGN_OR_RETURN(std::string payload,
                           worker->ReceiveFrame(timeout));
    result.bytes_received += static_cast<std::int64_t>(payload.size());
    RAVEN_ASSIGN_OR_RETURN(FragmentEvent event, DecodeFragmentEvent(payload));
    switch (event.kind) {
      case FragmentEventKind::kChunk:
        result.chunks.push_back(std::move(event.chunk));
        break;
      case FragmentEventKind::kDone:
        result.result_names = std::move(event.result_names);
        result.result_rows = event.result_rows;
        result.trace_spans = std::move(event.trace_spans);
        return result;
      case FragmentEventKind::kError:
        return Status::ExecutionError("worker fragment execution failed: " +
                                      event.error);
    }
  }
}

Status WorkerPool::RestartWorker(std::int64_t w) {
  if (w < 0 || w >= num_workers()) {
    return Status::InvalidArgument("no such pool worker " + std::to_string(w));
  }
  std::lock_guard<std::mutex> lock(*worker_mus_[static_cast<std::size_t>(w)]);
  auto fresh = std::make_unique<WorkerClient>();
  RAVEN_RETURN_IF_ERROR(fresh->Start(options_.external));
  workers_[static_cast<std::size_t>(w)] = std::move(fresh);
  restarts_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<relational::Table> ExecuteFragmentLocally(
    const FragmentRequest& request, nnrt::SessionCache* session_cache,
    obs::Trace* trace) {
  // Explicit start/end (not ScopedSpan): the span covers decode only, not
  // the execute below. Error returns leave it open — the whole call fails
  // and the trace is discarded with it.
  const std::int64_t decode_id =
      trace != nullptr ? trace->StartSpan("fragment.decode") : 0;
  BinaryReader table_reader(request.table_bytes);
  RAVEN_ASSIGN_OR_RETURN(relational::Table slice,
                         relational::Table::Deserialize(&table_reader));
  if (slice.num_rows() != request.range_end - request.range_begin) {
    return Status::ParseError(
        "fragment slice holds " + std::to_string(slice.num_rows()) +
        " rows but the partition range claims " +
        std::to_string(request.range_end - request.range_begin));
  }
  BinaryReader plan_reader(request.plan_bytes);
  RAVEN_ASSIGN_OR_RETURN(ir::IrNodePtr fragment,
                         ir::DeserializeFragment(&plan_reader));
  relational::Catalog catalog;
  RAVEN_RETURN_IF_ERROR(
      catalog.RegisterTable(request.table_name, std::move(slice)));
  if (trace != nullptr) {
    trace->EndSpan(
        decode_id,
        "table=" + request.table_name + " rows=" +
            std::to_string(request.range_end - request.range_begin) +
            (request.trace_id != 0
                 ? " exchange_span=" + std::to_string(request.trace_id)
                 : ""));
  }
  ir::IrPlan plan(std::move(fragment));
  PlanExecutor executor(&catalog, session_cache);
  // Partitions execute sequentially: the partition loop is the parallelism,
  // and sequential execution keeps partition output byte-identical to the
  // corresponding rows of a sequential whole-table run.
  ExecutionOptions options;
  options.trace = trace;
  return executor.Execute(plan, options);
}

}  // namespace raven::runtime
