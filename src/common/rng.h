#ifndef RAVEN_COMMON_RNG_H_
#define RAVEN_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace raven {

/// Deterministic xorshift128+ random number generator. All synthetic data,
/// model initialization, and property tests use this so every experiment is
/// reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    s0_ = seed ^ 0xA0761D6478BD642FULL;
    s1_ = (seed << 1) | 1;
    // Warm up so nearby seeds diverge.
    for (int i = 0; i < 8; ++i) NextU64();
  }

  std::uint64_t NextU64() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t NextUint(std::uint64_t n) { return NextU64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextUint(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = NextDouble();
    while (u1 <= 1e-12) u1 = NextDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace raven

#endif  // RAVEN_COMMON_RNG_H_
