// Fig 3: in-/out-of-process integration (hospital RF and MLP pipelines,
// NN-translated). The paper compares:
//   ORT       = standalone ONNX Runtime: load model + create session +
//               score per request (file-system cache only);
//   Raven     = PREDICT inside the engine with model/session caching and
//               automatic scan+PREDICT parallelization;
//   Raven Ext = out-of-process external runtime (~0.5 s boot per query).
// Observations to reproduce: (i) Raven ~ ORT in the mid range (<=15%
// overhead), (ii) Raven faster at small sizes thanks to session caching,
// (iii) Raven faster at 1M+ thanks to parallel scan+PREDICT (bounded here
// by the host's core count), (iv) Raven Ext pays a constant boot cost.

#include "bench_util.h"
#include "raven/raven.h"

namespace raven {
namespace {

ml::ModelPipeline TrainModel(const char* kind) {
  const auto& data = bench::Hospital(20000);
  if (std::string(kind) == "rf") {
    return bench::Must(data::TrainHospitalForest(data, 10, 8), "train rf");
  }
  return bench::Must(data::TrainHospitalMlp(data), "train mlp");
}

const std::string& ModelBytes(const char* kind) {
  static auto* cache = new std::map<std::string, std::string>();
  auto it = cache->find(kind);
  if (it == cache->end()) {
    nnrt::Graph graph = bench::Must(
        optimizer::PipelineToNnGraph(TrainModel(kind)), "translate");
    BinaryWriter w;
    graph.Serialize(&w);
    it = cache->emplace(kind, w.Release()).first;
  }
  return it->second;
}

/// Standalone "ORT": deserialize + optimize + run per request, like a
/// scoring service loading the model from disk per query.
void RunOrt(benchmark::State& state, const char* kind) {
  const std::int64_t rows = state.range(0);
  const auto& data = bench::Hospital(rows);
  ml::ModelPipeline model = TrainModel(kind);
  Tensor x = bench::Must(data.joined.ToTensor(model.input_columns), "tensor");
  const std::string& bytes = ModelBytes(kind);
  for (auto _ : state) {
    auto session = nnrt::InferenceSession::FromBytes(bytes);
    if (!session.ok()) {
      state.SkipWithError("session");
      return;
    }
    auto preds = (*session)->RunSingle(x);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

std::unique_ptr<RavenContext> MakeRaven(std::int64_t rows, const char* kind,
                                        runtime::ExecutionMode mode,
                                        std::int64_t parallelism) {
  RavenOptions options;
  options.optimizer.model_inlining = false;  // measure the NNRT path
  options.execution.mode = mode;
  options.execution.parallelism = parallelism;
  options.execution.external.boot_millis = 400;  // paper: ~0.5 s runtime boot
  auto ctx = std::make_unique<RavenContext>(options);
  bench::MustOk(
      ctx->RegisterTable("patients", bench::Hospital(rows).joined),
      "register");
  const std::string script = std::string(kind) == "rf"
                                 ? data::HospitalForestScript()
                                 : data::HospitalMlpScript();
  bench::MustOk(ctx->InsertModel("m", script, TrainModel(kind)), "insert");
  return ctx;
}

void RunRaven(benchmark::State& state, const char* kind,
              runtime::ExecutionMode mode, std::int64_t parallelism) {
  auto ctx = MakeRaven(state.range(0), kind, mode, parallelism);
  const char* sql =
      "SELECT id, p FROM PREDICT(MODEL='m', DATA=patients) WITH(p float)";
  // Warm the session cache (the paper measures warm runs).
  if (mode == runtime::ExecutionMode::kInProcess) {
    auto warm = ctx->Query(sql);
    if (!warm.ok()) {
      state.SkipWithError(warm.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto result = ctx->Query(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->table.num_rows());
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

/// Scan+PREDICT throughput at an explicit degree of parallelism
/// (args: rows, dop). The parallelism-1 vs parallelism-8 pair is the
/// regression signal for the morsel-driven executor: BENCH_*.json tracks
/// both so a scheduling regression shows up as the ratio collapsing.
void BM_Fig3_ScanPredictParallelism(benchmark::State& state) {
  RunRaven(state, "rf", runtime::ExecutionMode::kInProcess, state.range(1));
  state.counters["dop"] = static_cast<double>(state.range(1));
}

void BM_Fig3_RF_ORT(benchmark::State& state) { RunOrt(state, "rf"); }
void BM_Fig3_RF_Raven(benchmark::State& state) {
  RunRaven(state, "rf", runtime::ExecutionMode::kInProcess, 1);
}
void BM_Fig3_RF_RavenParallel(benchmark::State& state) {
  RunRaven(state, "rf", runtime::ExecutionMode::kInProcess, 4);
}
void BM_Fig3_RF_RavenExt(benchmark::State& state) {
  RunRaven(state, "rf", runtime::ExecutionMode::kOutOfProcess, 1);
}
void BM_Fig3_MLP_ORT(benchmark::State& state) { RunOrt(state, "mlp"); }
void BM_Fig3_MLP_Raven(benchmark::State& state) {
  RunRaven(state, "mlp", runtime::ExecutionMode::kInProcess, 1);
}
void BM_Fig3_MLP_RavenExt(benchmark::State& state) {
  RunRaven(state, "mlp", runtime::ExecutionMode::kOutOfProcess, 1);
}

// Paper sweeps 1K..10M; we sweep 1K..500K (memory-bounded substrate). The
// crossovers appear at the same relative positions.
#define FIG3_SIZES ->Arg(1000)->Arg(10000)->Arg(100000)->Arg(200000)

BENCHMARK(BM_Fig3_ScanPredictParallelism)
    ->Args({20000, 1})->Args({20000, 8})
    ->Args({200000, 1})->Args({200000, 8})
    ->Iterations(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig3_RF_ORT)
    FIG3_SIZES->Iterations(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig3_RF_Raven)
    FIG3_SIZES->Iterations(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig3_RF_RavenParallel)
    ->Arg(100000)->Arg(200000)->Iterations(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig3_RF_RavenExt)
    ->Arg(1000)->Arg(100000)->Iterations(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig3_MLP_ORT)
    FIG3_SIZES->Iterations(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig3_MLP_Raven)
    FIG3_SIZES->Iterations(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig3_MLP_RavenExt)
    ->Arg(1000)->Arg(100000)->Iterations(2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace raven
