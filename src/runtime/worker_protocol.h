#ifndef RAVEN_RUNTIME_WORKER_PROTOCOL_H_
#define RAVEN_RUNTIME_WORKER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "relational/chunk.h"
#include "tensor/tensor.h"

namespace raven::runtime {

/// Wire protocol between the database process and the out-of-process
/// worker (`tools/raven_worker`), the stand-in for SQL Server's
/// sp_execute_external_script runtime (paper §5, "Raven Ext"). Frames are
/// [u32 length][payload]; payloads use the common BinaryWriter encoding.
///
/// Two request families share the pipe, dispatched on the leading command
/// byte: one-shot scoring (kScorePipeline / kScoreGraph: a model plus one
/// tensor) and plan-fragment execution (kExecuteFragment: a serialized IR
/// fragment plus one scan partition, answered with a stream of result-chunk
/// frames terminated by a done/error frame).

enum class WorkerCommand : std::uint8_t {
  kPing = 0,
  kScorePipeline = 1,    ///< payload: pipeline bytes + input tensor
  kScoreGraph = 2,       ///< payload: NNRT graph bytes + input tensor
  kShutdown = 3,         ///< acknowledged with an ok ScoreResponse, then exit
  kExecuteFragment = 4,  ///< payload: FragmentRequest (see below)
};

struct ScoreRequest {
  WorkerCommand command = WorkerCommand::kPing;
  std::string model_bytes;
  Tensor input;
};

struct ScoreResponse {
  bool ok = false;
  std::string error;
  Tensor output;
};

std::string EncodeRequest(const ScoreRequest& request);
Result<ScoreRequest> DecodeRequest(const std::string& payload);
std::string EncodeResponse(const ScoreResponse& response);
Result<ScoreResponse> DecodeResponse(const std::string& payload);

// -- Plan-fragment execution ------------------------------------------------

/// One partition of a distributed fragment execution: the serialized IR
/// fragment (ir::SerializeFragment), the leaf scan's table name, the scan
/// partition range the slice was cut from (engine row coordinates, for
/// provenance and diagnostics), and the serialized Table slice holding
/// exactly rows [range_begin, range_end) of the scan. Frames are
/// self-contained — workers stay stateless across queries, so a retry after
/// a worker death is a plain resend.
struct FragmentRequest {
  std::string plan_bytes;
  std::string table_name;
  std::int64_t range_begin = 0;
  std::int64_t range_end = 0;
  std::string table_bytes;
  /// Coordinator-side tracing state, carried in the frame header (protocol
  /// v2): when enabled, the worker records its own span tree (fragment
  /// decode/execute, per-operator) and ships it back in the kDone frame so
  /// the coordinator can stitch it under the exchange span. `trace_id` is
  /// the coordinator's exchange span id, echoed in the worker's root span
  /// detail so stitched trees stay attributable after retries.
  bool trace_enabled = false;
  std::uint64_t trace_id = 0;
};

std::string EncodeFragmentRequest(const FragmentRequest& request);
Result<FragmentRequest> DecodeFragmentRequest(const std::string& payload);

/// Response stream of one kExecuteFragment: zero or more kChunk frames in
/// result row order, then exactly one kDone (schema + total rows, so empty
/// results keep their column names) or kError frame.
enum class FragmentEventKind : std::uint8_t {
  kChunk = 0,
  kDone = 1,
  kError = 2,
};

struct FragmentEvent {
  FragmentEventKind kind = FragmentEventKind::kError;
  relational::DataChunk chunk;            ///< kChunk
  std::vector<std::string> result_names;  ///< kDone
  std::int64_t result_rows = 0;           ///< kDone
  /// kDone: worker-side span tree (obs::Trace::SerializeSpans bytes);
  /// empty when the request did not enable tracing.
  std::string trace_spans;                ///< kDone
  std::string error;                      ///< kError
};

std::string EncodeFragmentChunk(const relational::DataChunk& chunk);
std::string EncodeFragmentDone(const std::vector<std::string>& names,
                               std::int64_t rows,
                               const std::string& trace_spans = "");
std::string EncodeFragmentError(const std::string& message);
Result<FragmentEvent> DecodeFragmentEvent(const std::string& payload);

// -- Frame I/O --------------------------------------------------------------

/// Blocking full-frame I/O on file descriptors (length-prefixed). Both
/// directions retry on EINTR and loop over short reads/writes. ReadFrame
/// rejects frames whose header claims more than `max_frame_bytes` BEFORE
/// allocating the payload buffer (a corrupt or malicious length would
/// otherwise cost the claimed allocation and stall the reader for the
/// duration of the timeout). The default cap is the worker protocol's
/// 1 GiB; the query server reads client requests with a much smaller cap.
/// With `timeout_millis` >= 0 the read polls against a TOTAL deadline per
/// header/payload read (a whole frame is bounded by twice the timeout) —
/// the guard against wedged workers and slow-loris clients alike; a peer
/// dripping single bytes cannot re-arm it.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;
Status WriteFrame(int fd, const std::string& payload);
Result<std::string> ReadFrame(int fd, int timeout_millis = -1,
                              std::uint32_t max_frame_bytes = kMaxFrameBytes);

}  // namespace raven::runtime

#endif  // RAVEN_RUNTIME_WORKER_PROTOCOL_H_
