#ifndef RAVEN_NNRT_DEVICE_H_
#define RAVEN_NNRT_DEVICE_H_

#include <string>

namespace raven::nnrt {

/// Execution device for an inference session.
///
/// kCpu runs kernels on the host and reports measured wall time.
///
/// kAccelerator is the paper's GPU substitute (DESIGN.md §1): the run is
/// still executed on the CPU for bit-exact results, but the reported
/// `simulated_micros` follows the canonical accelerator cost model
///     t = launch_overhead_us + flops / flops_per_us
/// which reproduces the Fig 2(d) mechanism — launch overhead dominates tiny
/// batches (GPU ≈ CPU), throughput dominates large batches (GPU up to ~15×).
enum class DeviceType { kCpu, kAccelerator };

struct DeviceSpec {
  DeviceType type = DeviceType::kCpu;
  /// Fixed per-inference-call overhead (kernel launch + transfer setup).
  double launch_overhead_us = 0.0;
  /// Sustained throughput for the simulated accelerator.
  double flops_per_us = 1.0;

  static DeviceSpec Cpu() { return DeviceSpec{DeviceType::kCpu, 0.0, 1.0}; }

  /// Default accelerator roughly shaped like the paper's K80 relative to a
  /// 16-vCPU host: ~60 us launch overhead, ~20 GFLOP/s effective per-query
  /// throughput (2e4 flops/us).
  static DeviceSpec Accelerator(double launch_overhead_us = 60.0,
                                double flops_per_us = 2.0e4) {
    return DeviceSpec{DeviceType::kAccelerator, launch_overhead_us,
                      flops_per_us};
  }

  std::string ToString() const {
    return type == DeviceType::kCpu ? "cpu" : "accelerator";
  }
};

}  // namespace raven::nnrt

#endif  // RAVEN_NNRT_DEVICE_H_
