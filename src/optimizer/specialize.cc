#include "optimizer/specialize.h"

#include <cmath>
#include <limits>
#include <map>
#include <set>

namespace raven::optimizer {
namespace {

using ml::FeatureProvenance;
using ml::ModelPipeline;
using ml::PredictorKind;
using ml::TransformKind;
using relational::CompareOp;
using relational::SimplePredicate;

/// Per-raw-column constraint derived from predicates: an interval plus an
/// optional exact value.
struct ColumnConstraint {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool has_fixed = false;
  double fixed = 0.0;
};

std::map<std::int64_t, ColumnConstraint> BuildConstraints(
    const ModelPipeline& pipeline,
    const std::vector<SimplePredicate>& predicates) {
  std::map<std::string, std::int64_t> col_index;
  for (std::size_t i = 0; i < pipeline.input_columns.size(); ++i) {
    col_index[pipeline.input_columns[i]] = static_cast<std::int64_t>(i);
  }
  std::map<std::int64_t, ColumnConstraint> constraints;
  for (const auto& pred : predicates) {
    auto it = col_index.find(pred.column);
    if (it == col_index.end()) continue;  // predicate on a non-model column
    ColumnConstraint& c = constraints[it->second];
    switch (pred.op) {
      case CompareOp::kEq:
        c.has_fixed = true;
        c.fixed = pred.constant;
        c.lo = std::max(c.lo, pred.constant);
        c.hi = std::min(c.hi, pred.constant);
        break;
      case CompareOp::kLt:
        // Closed-interval approximation of a strict bound is sound for
        // pruning: we only remove branches *proven* unreachable.
        c.hi = std::min(c.hi, pred.constant);
        break;
      case CompareOp::kLe:
        c.hi = std::min(c.hi, pred.constant);
        break;
      case CompareOp::kGt:
        c.lo = std::max(c.lo, pred.constant);
        break;
      case CompareOp::kGe:
        c.lo = std::max(c.lo, pred.constant);
        break;
      case CompareOp::kNe:
        break;  // not usable for intervals
    }
  }
  return constraints;
}

/// Synthesizes identity provenance when the pipeline has no featurizer.
std::vector<FeatureProvenance> ProvenanceOf(const ModelPipeline& pipeline) {
  if (!pipeline.featurizer.branches().empty()) {
    return pipeline.featurizer.Provenance();
  }
  std::vector<FeatureProvenance> prov;
  const std::int64_t d = pipeline.NumFeatures();
  for (std::int64_t f = 0; f < d; ++f) {
    prov.push_back(FeatureProvenance{f, -1, TransformKind::kIdentity, -1});
  }
  return prov;
}

/// Affine transform applied to raw column values by the branch that
/// produced feature `f` (y = (x - offset) * scale). Identity/one-hot
/// features get offset 0 / scale 1.
void FeatureAffine(const ModelPipeline& pipeline, const FeatureProvenance& p,
                   double* offset, double* scale) {
  *offset = 0.0;
  *scale = 1.0;
  if (p.kind != TransformKind::kScaler || p.branch_index < 0) return;
  const auto& branch = pipeline.featurizer.branches()
                           [static_cast<std::size_t>(p.branch_index)];
  for (std::size_t c = 0; c < branch.input_columns.size(); ++c) {
    if (branch.input_columns[c] == p.input_column) {
      *offset = branch.scaler.mean()[c];
      *scale = branch.scaler.scale()[c];
      return;
    }
  }
}

std::int64_t TreeNodesOf(const ModelPipeline& pipeline) {
  if (const auto* tree = std::get_if<ml::DecisionTree>(&pipeline.predictor)) {
    return tree->num_nodes();
  }
  if (const auto* forest =
          std::get_if<ml::RandomForest>(&pipeline.predictor)) {
    return forest->total_nodes();
  }
  return 0;
}

/// Rebuilds pipeline with only the `keep`-marked features. For linear
/// predictors, features with a fixed value fold into the bias.
/// `fixed_values[f]` is meaningful when `fixed_mask[f]`.
Result<SpecializationResult> RebuildWithFeatureMask(
    const ModelPipeline& pipeline, const std::vector<bool>& keep,
    const std::vector<bool>& fixed_mask,
    const std::vector<double>& fixed_values, ml::Predictor new_predictor) {
  const auto prov = ProvenanceOf(pipeline);
  const std::int64_t f_total = static_cast<std::int64_t>(prov.size());

  SpecializationResult result;
  result.features_before = f_total;
  result.tree_nodes_before = TreeNodesOf(pipeline);
  (void)fixed_mask;
  (void)fixed_values;

  // Which raw input columns survive: a column survives iff any of its
  // features is kept.
  std::set<std::int64_t> kept_raw;
  for (std::int64_t f = 0; f < f_total; ++f) {
    if (keep[static_cast<std::size_t>(f)]) {
      kept_raw.insert(prov[static_cast<std::size_t>(f)].input_column);
    }
  }

  // Raw index remap old -> new (original order preserved).
  const std::int64_t d_old =
      static_cast<std::int64_t>(pipeline.input_columns.size());
  std::vector<std::int64_t> raw_old_to_new(static_cast<std::size_t>(d_old),
                                           -1);
  std::vector<std::string> new_inputs;
  for (std::int64_t c = 0; c < d_old; ++c) {
    if (kept_raw.count(c) > 0) {
      raw_old_to_new[static_cast<std::size_t>(c)] =
          static_cast<std::int64_t>(new_inputs.size());
      new_inputs.push_back(
          pipeline.input_columns[static_cast<std::size_t>(c)]);
    }
  }

  // Rebuild the featurizer branch by branch.
  ml::Featurizer new_featurizer;
  if (!pipeline.featurizer.branches().empty()) {
    const auto& branches = pipeline.featurizer.branches();
    for (std::size_t b = 0; b < branches.size(); ++b) {
      const auto& branch = branches[b];
      ml::FeatureBranch nb;
      nb.name = branch.name;
      nb.kind = branch.kind;
      std::vector<double> new_mean;
      std::vector<double> new_scale;
      std::vector<std::int64_t> new_cards;
      std::vector<std::vector<std::int64_t>> new_kept_codes;
      for (std::size_t c = 0; c < branch.input_columns.size(); ++c) {
        const std::int64_t raw = branch.input_columns[c];
        // Collect this column's kept features (in provenance order).
        bool any_kept = false;
        std::vector<std::int64_t> kept_codes;
        for (std::int64_t f = 0; f < f_total; ++f) {
          const auto& p = prov[static_cast<std::size_t>(f)];
          if (p.branch_index != static_cast<std::int64_t>(b) ||
              p.input_column != raw) {
            continue;
          }
          if (keep[static_cast<std::size_t>(f)]) {
            any_kept = true;
            if (branch.kind == TransformKind::kOneHot) {
              kept_codes.push_back(p.category);
            }
          }
        }
        if (!any_kept) continue;  // column dropped from this branch
        nb.input_columns.push_back(raw_old_to_new[static_cast<std::size_t>(raw)]);
        switch (branch.kind) {
          case TransformKind::kIdentity:
            break;
          case TransformKind::kScaler:
            new_mean.push_back(branch.scaler.mean()[c]);
            new_scale.push_back(branch.scaler.scale()[c]);
            break;
          case TransformKind::kOneHot:
            new_cards.push_back(branch.onehot.cardinalities()[c]);
            new_kept_codes.push_back(std::move(kept_codes));
            break;
        }
      }
      if (nb.input_columns.empty()) continue;  // whole branch dropped
      if (nb.kind == TransformKind::kScaler) {
        nb.scaler.SetParams(std::move(new_mean), std::move(new_scale));
      } else if (nb.kind == TransformKind::kOneHot) {
        nb.onehot.SetCardinalities(new_cards);
        for (std::size_t c = 0; c < new_kept_codes.size(); ++c) {
          if (static_cast<std::int64_t>(new_kept_codes[c].size()) !=
              new_cards[c]) {
            RAVEN_RETURN_IF_ERROR(
                nb.onehot.RestrictColumn(c, std::move(new_kept_codes[c])));
          }
        }
      }
      new_featurizer.AddBranch(std::move(nb));
    }
  }

  result.pipeline.input_columns = new_inputs;
  result.pipeline.featurizer = std::move(new_featurizer);
  result.pipeline.predictor = std::move(new_predictor);
  result.kept_inputs = std::move(new_inputs);
  result.features_after = result.pipeline.NumFeatures();
  result.tree_nodes_after = TreeNodesOf(result.pipeline);
  result.changed = true;
  return result;
}

SpecializationResult Unchanged(const ModelPipeline& pipeline) {
  SpecializationResult result;
  result.pipeline = pipeline;
  result.kept_inputs = pipeline.input_columns;
  result.changed = false;
  result.features_before = result.features_after = pipeline.NumFeatures();
  result.tree_nodes_before = result.tree_nodes_after = TreeNodesOf(pipeline);
  return result;
}

/// Shared specialization path for tree/forest predictors: prune with
/// intervals (possibly empty), then drop unused features.
template <typename TreeModel>
Result<SpecializationResult> SpecializeTrees(
    const ModelPipeline& pipeline, const TreeModel& model,
    const std::vector<ml::FeatureInterval>& intervals) {
  TreeModel pruned =
      intervals.empty() ? model : model.PruneWithIntervals(intervals);
  const std::vector<std::int64_t> used = pruned.UsedFeatures();
  const std::int64_t f_total = pipeline.NumFeatures();
  std::vector<bool> keep(static_cast<std::size_t>(f_total), false);
  for (std::int64_t f : used) keep[static_cast<std::size_t>(f)] = true;
  // Degenerate single-leaf model: keep one feature so shapes stay sane.
  if (used.empty() && f_total > 0) keep[0] = true;

  // Feature remap for the predictor.
  std::vector<std::int64_t> old_to_new(static_cast<std::size_t>(f_total), -1);
  std::int64_t next = 0;
  for (std::int64_t f = 0; f < f_total; ++f) {
    if (keep[static_cast<std::size_t>(f)]) {
      old_to_new[static_cast<std::size_t>(f)] = next++;
    }
  }
  RAVEN_RETURN_IF_ERROR(pruned.RemapFeatures(old_to_new));
  return RebuildWithFeatureMask(pipeline, keep,
                                std::vector<bool>(keep.size(), false),
                                std::vector<double>(keep.size(), 0.0),
                                ml::Predictor(std::move(pruned)));
}

}  // namespace

Result<SpecializationResult> PruneWithPredicates(
    const ModelPipeline& pipeline,
    const std::vector<SimplePredicate>& predicates) {
  const auto constraints = BuildConstraints(pipeline, predicates);
  if (constraints.empty()) return Unchanged(pipeline);
  const auto prov = ProvenanceOf(pipeline);
  const std::int64_t f_total = static_cast<std::int64_t>(prov.size());

  // Translate raw-column constraints into per-feature intervals / fixed
  // values in featurized space.
  std::vector<ml::FeatureInterval> intervals;
  std::vector<bool> fixed_mask(static_cast<std::size_t>(f_total), false);
  std::vector<double> fixed_values(static_cast<std::size_t>(f_total), 0.0);
  for (std::int64_t f = 0; f < f_total; ++f) {
    const auto& p = prov[static_cast<std::size_t>(f)];
    auto it = constraints.find(p.input_column);
    if (it == constraints.end()) continue;
    const ColumnConstraint& c = it->second;
    if (p.kind == TransformKind::kOneHot) {
      if (!c.has_fixed) continue;  // intervals don't determine a category
      const double v =
          p.category == static_cast<std::int64_t>(std::llround(c.fixed))
              ? 1.0
              : 0.0;
      intervals.push_back(ml::FeatureInterval{f, v, v});
      fixed_mask[static_cast<std::size_t>(f)] = true;
      fixed_values[static_cast<std::size_t>(f)] = v;
      continue;
    }
    double offset = 0.0;
    double scale = 1.0;
    FeatureAffine(pipeline, p, &offset, &scale);
    // y = (x - offset) * scale with scale > 0 preserves ordering.
    const double lo = c.lo == -std::numeric_limits<double>::infinity()
                          ? c.lo
                          : (c.lo - offset) * scale;
    const double hi = c.hi == std::numeric_limits<double>::infinity()
                          ? c.hi
                          : (c.hi - offset) * scale;
    intervals.push_back(ml::FeatureInterval{f, lo, hi});
    if (c.has_fixed) {
      fixed_mask[static_cast<std::size_t>(f)] = true;
      fixed_values[static_cast<std::size_t>(f)] = (c.fixed - offset) * scale;
    }
  }
  if (intervals.empty()) return Unchanged(pipeline);

  switch (ml::KindOf(pipeline.predictor)) {
    case PredictorKind::kDecisionTree: {
      const auto& tree = std::get<ml::DecisionTree>(pipeline.predictor);
      RAVEN_ASSIGN_OR_RETURN(auto result,
                             SpecializeTrees(pipeline, tree, intervals));
      result.changed = result.tree_nodes_after < result.tree_nodes_before ||
                       result.features_after < result.features_before;
      return result;
    }
    case PredictorKind::kRandomForest: {
      const auto& forest = std::get<ml::RandomForest>(pipeline.predictor);
      RAVEN_ASSIGN_OR_RETURN(auto result,
                             SpecializeTrees(pipeline, forest, intervals));
      result.changed = result.tree_nodes_after < result.tree_nodes_before ||
                       result.features_after < result.features_before;
      return result;
    }
    case PredictorKind::kLinearModel: {
      const auto& linear = std::get<ml::LinearModel>(pipeline.predictor);
      // Keep unfixed features; fold fixed ones into the bias.
      std::vector<bool> keep(static_cast<std::size_t>(f_total), true);
      bool any_fixed = false;
      std::vector<std::int64_t> kept_list;
      double bias_delta = 0.0;
      for (std::int64_t f = 0; f < f_total; ++f) {
        if (fixed_mask[static_cast<std::size_t>(f)]) {
          keep[static_cast<std::size_t>(f)] = false;
          bias_delta += linear.weights()[static_cast<std::size_t>(f)] *
                        fixed_values[static_cast<std::size_t>(f)];
          any_fixed = true;
        } else {
          kept_list.push_back(f);
        }
      }
      if (!any_fixed) return Unchanged(pipeline);
      ml::LinearModel specialized(linear.kind());
      std::vector<double> new_weights;
      new_weights.reserve(kept_list.size());
      for (std::int64_t f : kept_list) {
        new_weights.push_back(linear.weights()[static_cast<std::size_t>(f)]);
      }
      specialized.SetParams(std::move(new_weights),
                            linear.bias() + bias_delta);
      return RebuildWithFeatureMask(pipeline, keep, fixed_mask, fixed_values,
                                    ml::Predictor(std::move(specialized)));
    }
    case PredictorKind::kMlp:
      // MLP constants fold later, inside the translated NNRT graph.
      return Unchanged(pipeline);
  }
  return Status::Internal("unreachable predictor kind");
}

Result<SpecializationResult> ProjectUnusedFeatures(
    const ModelPipeline& pipeline) {
  const std::int64_t f_total = pipeline.NumFeatures();
  switch (ml::KindOf(pipeline.predictor)) {
    case PredictorKind::kDecisionTree: {
      const auto& tree = std::get<ml::DecisionTree>(pipeline.predictor);
      if (static_cast<std::int64_t>(tree.UsedFeatures().size()) == f_total) {
        return Unchanged(pipeline);
      }
      RAVEN_ASSIGN_OR_RETURN(auto result, SpecializeTrees(pipeline, tree, {}));
      result.changed = result.features_after < result.features_before;
      return result;
    }
    case PredictorKind::kRandomForest: {
      const auto& forest = std::get<ml::RandomForest>(pipeline.predictor);
      if (static_cast<std::int64_t>(forest.UsedFeatures().size()) ==
          f_total) {
        return Unchanged(pipeline);
      }
      RAVEN_ASSIGN_OR_RETURN(auto result,
                             SpecializeTrees(pipeline, forest, {}));
      result.changed = result.features_after < result.features_before;
      return result;
    }
    case PredictorKind::kLinearModel: {
      const auto& linear = std::get<ml::LinearModel>(pipeline.predictor);
      const auto nonzero = linear.NonZeroFeatures();
      if (static_cast<std::int64_t>(nonzero.size()) == f_total) {
        return Unchanged(pipeline);
      }
      std::vector<bool> keep(static_cast<std::size_t>(f_total), false);
      std::vector<double> new_weights;
      for (std::int64_t f : nonzero) {
        keep[static_cast<std::size_t>(f)] = true;
        new_weights.push_back(linear.weights()[static_cast<std::size_t>(f)]);
      }
      if (nonzero.empty() && f_total > 0) {
        keep[0] = true;  // degenerate all-zero model keeps one feature
        new_weights.push_back(0.0);
      }
      ml::LinearModel specialized(linear.kind());
      specialized.SetParams(std::move(new_weights), linear.bias());
      return RebuildWithFeatureMask(
          pipeline, keep, std::vector<bool>(keep.size(), false),
          std::vector<double>(keep.size(), 0.0),
          ml::Predictor(std::move(specialized)));
    }
    case PredictorKind::kMlp:
      return Unchanged(pipeline);
  }
  return Status::Internal("unreachable predictor kind");
}

Result<SpecializationResult> RestrictToValueSets(
    const ModelPipeline& pipeline,
    const std::map<std::int64_t, std::vector<double>>& value_sets) {
  if (value_sets.empty()) return Unchanged(pipeline);
  const auto prov = ProvenanceOf(pipeline);
  const std::int64_t f_total = static_cast<std::int64_t>(prov.size());

  auto code_allowed = [&](std::int64_t col, std::int64_t code) {
    auto it = value_sets.find(col);
    if (it == value_sets.end()) return true;
    for (double v : it->second) {
      if (static_cast<std::int64_t>(std::llround(v)) == code) return true;
    }
    return false;
  };

  std::vector<bool> keep(static_cast<std::size_t>(f_total), true);
  bool any_dropped = false;
  for (std::int64_t f = 0; f < f_total; ++f) {
    const auto& p = prov[static_cast<std::size_t>(f)];
    if (p.kind != TransformKind::kOneHot) continue;
    if (!code_allowed(p.input_column, p.category)) {
      keep[static_cast<std::size_t>(f)] = false;
      any_dropped = true;
    }
  }
  if (!any_dropped) return Unchanged(pipeline);

  switch (ml::KindOf(pipeline.predictor)) {
    case PredictorKind::kLinearModel: {
      // Dropped features are identically zero on in-set rows, so their
      // weights simply vanish — no bias folding.
      const auto& linear = std::get<ml::LinearModel>(pipeline.predictor);
      ml::LinearModel specialized(linear.kind());
      std::vector<double> new_weights;
      for (std::int64_t f = 0; f < f_total; ++f) {
        if (keep[static_cast<std::size_t>(f)]) {
          new_weights.push_back(
              linear.weights()[static_cast<std::size_t>(f)]);
        }
      }
      specialized.SetParams(std::move(new_weights), linear.bias());
      return RebuildWithFeatureMask(
          pipeline, keep, std::vector<bool>(keep.size(), false),
          std::vector<double>(keep.size(), 0.0),
          ml::Predictor(std::move(specialized)));
    }
    case PredictorKind::kDecisionTree: {
      // Absent codes pin their indicator features to 0.
      std::vector<ml::FeatureInterval> intervals;
      for (std::int64_t f = 0; f < f_total; ++f) {
        if (!keep[static_cast<std::size_t>(f)]) {
          intervals.push_back(ml::FeatureInterval{f, 0.0, 0.0});
        }
      }
      const auto& tree = std::get<ml::DecisionTree>(pipeline.predictor);
      return SpecializeTrees(pipeline, tree, intervals);
    }
    case PredictorKind::kRandomForest: {
      std::vector<ml::FeatureInterval> intervals;
      for (std::int64_t f = 0; f < f_total; ++f) {
        if (!keep[static_cast<std::size_t>(f)]) {
          intervals.push_back(ml::FeatureInterval{f, 0.0, 0.0});
        }
      }
      const auto& forest = std::get<ml::RandomForest>(pipeline.predictor);
      return SpecializeTrees(pipeline, forest, intervals);
    }
    case PredictorKind::kMlp:
      return Unchanged(pipeline);
  }
  return Status::Internal("unreachable predictor kind");
}

Result<ir::ClusteredModel> BuildClusteredModel(
    const ModelPipeline& pipeline, const relational::Table& sample,
    const ClusteringOptions& options) {
  // Determine routing columns: explicitly given, else every one-hot input.
  std::vector<std::int64_t> routing;
  if (!options.routing_columns.empty()) {
    for (const auto& name : options.routing_columns) {
      bool found = false;
      for (std::size_t i = 0; i < pipeline.input_columns.size(); ++i) {
        if (pipeline.input_columns[i] == name) {
          routing.push_back(static_cast<std::int64_t>(i));
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotFound("routing column '" + name +
                                "' not a pipeline input");
      }
    }
  } else {
    std::set<std::int64_t> onehot_cols;
    for (const auto& branch : pipeline.featurizer.branches()) {
      if (branch.kind != TransformKind::kOneHot) continue;
      for (std::int64_t c : branch.input_columns) onehot_cols.insert(c);
    }
    routing.assign(onehot_cols.begin(), onehot_cols.end());
  }
  if (routing.empty()) {
    return Status::InvalidArgument(
        "model clustering needs at least one routing column");
  }

  RAVEN_ASSIGN_OR_RETURN(Tensor x, sample.ToTensor(pipeline.input_columns));
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  Tensor routing_matrix =
      Tensor::Zeros({n, static_cast<std::int64_t>(routing.size())});
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::size_t j = 0; j < routing.size(); ++j) {
      routing_matrix.raw()[r * static_cast<std::int64_t>(routing.size()) +
                           static_cast<std::int64_t>(j)] =
          x.raw()[r * d + routing[j]];
    }
  }
  ir::ClusteredModel out;
  ml::KMeansOptions km_options;
  km_options.k = options.k;
  km_options.max_iters = options.max_iters;
  km_options.seed = options.seed;
  RAVEN_RETURN_IF_ERROR(out.router.Fit(routing_matrix, km_options));
  out.routing_columns = routing;
  out.fallback = pipeline;

  RAVEN_ASSIGN_OR_RETURN(auto assignment, out.router.Assign(routing_matrix));
  for (std::int64_t c = 0; c < out.router.k(); ++c) {
    // Summarize each routing column within this cluster: constant columns
    // become equality predicates (feature fixing); small value sets become
    // one-hot code restrictions ("only specific unique values appear").
    std::vector<std::pair<std::int64_t, double>> constants;
    std::map<std::int64_t, std::vector<double>> value_sets;
    bool cluster_empty = true;
    for (std::size_t j = 0; j < routing.size(); ++j) {
      std::set<double> values;
      for (std::int64_t r = 0; r < n; ++r) {
        if (assignment[static_cast<std::size_t>(r)] != c) continue;
        cluster_empty = false;
        values.insert(x.raw()[r * d + routing[j]]);
      }
      if (values.empty()) continue;
      if (values.size() == 1) {
        constants.emplace_back(routing[j], *values.begin());
      } else {
        value_sets[routing[j]] =
            std::vector<double>(values.begin(), values.end());
      }
    }
    if (cluster_empty) {
      out.cluster_models.push_back(pipeline);
      out.assumptions.push_back({});
      out.allowed_values.push_back({});
      continue;
    }
    ModelPipeline specialized = pipeline;
    if (!constants.empty()) {
      std::vector<SimplePredicate> predicates;
      for (const auto& [col, value] : constants) {
        predicates.push_back(SimplePredicate{
            pipeline.input_columns[static_cast<std::size_t>(col)],
            CompareOp::kEq, value});
      }
      RAVEN_ASSIGN_OR_RETURN(auto result,
                             PruneWithPredicates(specialized, predicates));
      specialized = std::move(result.pipeline);
    }
    // Re-map the value-set column indices into the (possibly narrowed)
    // specialized pipeline before restricting codes.
    std::map<std::int64_t, std::vector<double>> remapped_sets;
    for (const auto& [col, values] : value_sets) {
      const std::string& name =
          pipeline.input_columns[static_cast<std::size_t>(col)];
      for (std::size_t i = 0; i < specialized.input_columns.size(); ++i) {
        if (specialized.input_columns[i] == name) {
          remapped_sets[static_cast<std::int64_t>(i)] = values;
          break;
        }
      }
    }
    if (!remapped_sets.empty()) {
      RAVEN_ASSIGN_OR_RETURN(auto result,
                             RestrictToValueSets(specialized, remapped_sets));
      specialized = std::move(result.pipeline);
    }
    out.cluster_models.push_back(std::move(specialized));
    out.assumptions.push_back(std::move(constants));
    out.allowed_values.push_back(std::move(value_sets));
  }
  return out;
}

}  // namespace raven::optimizer
