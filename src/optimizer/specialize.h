#ifndef RAVEN_OPTIMIZER_SPECIALIZE_H_
#define RAVEN_OPTIMIZER_SPECIALIZE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/clustered_model.h"
#include "ml/pipeline.h"
#include "relational/expression.h"
#include "relational/table.h"

namespace raven::optimizer {

/// Output of a pipeline specialization: the rewritten pipeline, the raw
/// input columns it still needs, and size accounting for EXPLAIN/tests.
struct SpecializationResult {
  ml::ModelPipeline pipeline;
  /// Raw input column names kept, in original order (== pipeline.input_columns).
  std::vector<std::string> kept_inputs;
  bool changed = false;
  std::int64_t features_before = 0;
  std::int64_t features_after = 0;
  std::int64_t tree_nodes_before = 0;
  std::int64_t tree_nodes_after = 0;
};

/// Predicate-based model pruning (paper §4.1): specializes `pipeline` under
/// the given column predicates, which are guaranteed to hold for every row
/// reaching the model.
///  - decision trees / forests: branches incompatible with the implied
///    feature intervals are removed, then unused features projected out;
///  - linear models: features fixed by equality predicates (numeric values
///    and whole one-hot blocks) are folded into the bias and dropped;
///  - MLPs: returned unchanged (their constants fold later inside the NNRT
///    graph optimizer).
/// The specialized pipeline is observationally equivalent to the original
/// on all rows satisfying the predicates.
Result<SpecializationResult> PruneWithPredicates(
    const ml::ModelPipeline& pipeline,
    const std::vector<relational::SimplePredicate>& predicates);

/// Model-projection pushdown (paper §4.1, Fig 2(a)): drops features the
/// predictor provably ignores — zero-weight features of L1-regularized
/// linear models, features untested by any tree. Raw input columns none of
/// whose features survive are dropped from the pipeline, enabling
/// relational projection pushdown and join elimination upstream.
Result<SpecializationResult> ProjectUnusedFeatures(
    const ml::ModelPipeline& pipeline);

/// Value-set specialization (paper §4.1: "only specific unique values
/// appear in the data"): restricts each listed one-hot input column to the
/// given codes, projecting all other codes' features out of the model.
/// Sound on any row whose column values stay within the sets (those
/// features are identically zero there); rows outside the sets must be
/// routed elsewhere (ClusteredModel handles that with its fallback).
Result<SpecializationResult> RestrictToValueSets(
    const ml::ModelPipeline& pipeline,
    const std::map<std::int64_t, std::vector<double>>& value_sets);

/// Options for offline model clustering (paper §4.1, Fig 2(b)).
struct ClusteringOptions {
  std::int64_t k = 8;
  std::int64_t max_iters = 20;
  std::uint64_t seed = 53;
  /// Raw input columns (by name) to cluster on; empty = all one-hot
  /// (categorical) inputs of the pipeline.
  std::vector<std::string> routing_columns;
};

/// Builds the clustering artifact: k-means over the routing columns of a
/// historical sample, plus one precompiled (predicate-pruned) model per
/// cluster for the routing-column values that are constant within it.
Result<ir::ClusteredModel> BuildClusteredModel(
    const ml::ModelPipeline& pipeline, const relational::Table& sample,
    const ClusteringOptions& options);

}  // namespace raven::optimizer

#endif  // RAVEN_OPTIMIZER_SPECIALIZE_H_
