#ifndef RAVEN_BENCH_BENCH_UTIL_H_
#define RAVEN_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark harness. Each bench binary regenerates
// one table/figure of the paper (see EXPERIMENTS.md for the index and the
// paper-vs-measured comparison).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "data/flight.h"
#include "data/hospital.h"

namespace raven::bench {

/// Process-wide dataset cache so size sweeps reuse generated data.
inline const data::HospitalDataset& Hospital(std::int64_t n) {
  static auto* cache = new std::map<std::int64_t, data::HospitalDataset>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, data::MakeHospitalDataset(n, 1234)).first;
  }
  return it->second;
}

inline const data::FlightDataset& Flight(std::int64_t n) {
  static auto* cache = new std::map<std::int64_t, data::FlightDataset>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, data::MakeFlightDataset(n, 4321)).first;
  }
  return it->second;
}

/// Aborts the benchmark with a readable message on setup failure.
template <typename T>
T Must(Result<T> result, const char* what) {
  if (!result.ok()) {
    fprintf(stderr, "bench setup failed (%s): %s\n", what,
            result.status().ToString().c_str());
    abort();
  }
  return std::move(result).value();
}

inline void MustOk(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "bench setup failed (%s): %s\n", what,
            status.ToString().c_str());
    abort();
  }
}

}  // namespace raven::bench

#endif  // RAVEN_BENCH_BENCH_UTIL_H_
