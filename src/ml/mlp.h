#ifndef RAVEN_ML_MLP_H_
#define RAVEN_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace raven::ml {

/// Activation applied after a dense layer.
enum class Activation : std::uint8_t {
  kNone = 0,
  kRelu = 1,
  kSigmoid = 2,
  kTanh = 3,
};

/// One dense layer: y = act(x W + b), W stored row-major [in, out].
struct DenseLayer {
  std::int64_t in = 0;
  std::int64_t out = 0;
  std::vector<float> weights;  // in * out
  std::vector<float> bias;     // out
  Activation activation = Activation::kNone;
};

/// Multi-layer perceptron training options (SGD on MSE / log loss).
struct MlpTrainOptions {
  std::vector<std::int64_t> hidden = {32, 16};
  std::int64_t epochs = 30;
  double learning_rate = 0.05;
  std::uint64_t seed = 41;
  /// Final activation: sigmoid for binary targets, none for regression.
  Activation output_activation = Activation::kSigmoid;
};

/// A small feed-forward network. Raven treats the MLP as an inherently
/// LA-category model: its conversion to an NNRT graph is a direct layer ->
/// Gemm+activation mapping.
class Mlp {
 public:
  Mlp() = default;

  Status Fit(const Tensor& x, const std::vector<float>& y,
             const MlpTrainOptions& options = MlpTrainOptions());

  /// Forward pass; returns [n, 1].
  Result<Tensor> Predict(const Tensor& x) const;
  float PredictRow(const float* row, std::int64_t num_features) const;

  const std::vector<DenseLayer>& layers() const { return layers_; }
  void AddLayer(DenseLayer layer) { layers_.push_back(std::move(layer)); }
  std::int64_t num_features() const {
    return layers_.empty() ? 0 : layers_.front().in;
  }

  void Serialize(BinaryWriter* writer) const;
  static Result<Mlp> Deserialize(BinaryReader* reader);

 private:
  std::vector<DenseLayer> layers_;
};

}  // namespace raven::ml

#endif  // RAVEN_ML_MLP_H_
