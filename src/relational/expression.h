#ifndef RAVEN_RELATIONAL_EXPRESSION_H_
#define RAVEN_RELATIONAL_EXPRESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "relational/chunk.h"

namespace raven::relational {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Comparison operators for predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
/// Binary arithmetic operators.
enum class ArithOp { kAdd, kSub, kMul, kDiv };
/// Logical connectives.
enum class LogicalOp { kAnd, kOr, kNot };

const char* CompareOpToString(CompareOp op);
CompareOp FlipCompareOp(CompareOp op);

/// Vectorized scalar expression tree over DataChunk columns. Boolean
/// results use 0.0 / 1.0. This engine evaluates both WHERE predicates and
/// inlined models (decision trees compiled to nested CASE WHEN, the
/// relational analogue of SQL Server UDF inlining).
///
/// Query execution no longer walks these trees per chunk: operators
/// compile them once at Open() into a relational::KernelProgram
/// (kernel.h) with ordinals resolved and constants folded. Evaluate()
/// remains as the reference interpreter — kernel_test.cc checks compiled
/// programs against it bit-for-bit — and for one-off evaluation outside
/// an operator pipeline.
class Expr {
 public:
  enum class Kind {
    kColumnRef,
    kLiteral,
    kCompare,
    kArith,
    kLogical,
    kCaseWhen,
    kIn,
    kParam,
  };

  virtual ~Expr() = default;

  Kind kind() const { return kind_; }

  /// Evaluates over all rows of the chunk into `out` (resized to fit).
  virtual Status Evaluate(const DataChunk& chunk,
                          std::vector<double>* out) const = 0;
  virtual std::string ToString() const = 0;
  virtual ExprPtr Clone() const = 0;
  /// Adds every referenced column name to `out`.
  virtual void CollectColumns(std::set<std::string>* out) const = 0;

 protected:
  explicit Expr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

class ColumnRefExpr final : public Expr {
 public:
  explicit ColumnRefExpr(std::string name)
      : Expr(Kind::kColumnRef), name_(std::move(name)) {}
  const std::string& name() const { return name_; }

  Status Evaluate(const DataChunk& chunk,
                  std::vector<double>* out) const override;
  std::string ToString() const override { return name_; }
  ExprPtr Clone() const override {
    return std::make_unique<ColumnRefExpr>(name_);
  }
  void CollectColumns(std::set<std::string>* out) const override {
    out->insert(name_);
  }

 private:
  std::string name_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(double value) : Expr(Kind::kLiteral), value_(value) {}
  double value() const { return value_; }

  Status Evaluate(const DataChunk& chunk,
                  std::vector<double>* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }
  void CollectColumns(std::set<std::string>*) const override {}

 private:
  double value_;
};

class CompareExpr final : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kCompare), op_(op), lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}
  CompareOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

  Status Evaluate(const DataChunk& chunk,
                  std::vector<double>* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<CompareExpr>(op_, lhs_->Clone(), rhs_->Clone());
  }
  void CollectColumns(std::set<std::string>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kArith), op_(op), lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}
  ArithOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

  Status Evaluate(const DataChunk& chunk,
                  std::vector<double>* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<ArithExpr>(op_, lhs_->Clone(), rhs_->Clone());
  }
  void CollectColumns(std::set<std::string>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }

 private:
  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class LogicalExpr final : public Expr {
 public:
  /// For kNot, rhs is null.
  LogicalExpr(LogicalOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kLogical), op_(op), lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}
  LogicalOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr* rhs() const { return rhs_.get(); }

  Status Evaluate(const DataChunk& chunk,
                  std::vector<double>* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<LogicalExpr>(
        op_, lhs_->Clone(), rhs_ ? rhs_->Clone() : nullptr);
  }
  void CollectColumns(std::set<std::string>* out) const override {
    lhs_->CollectColumns(out);
    if (rhs_) rhs_->CollectColumns(out);
  }

 private:
  LogicalOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// CASE WHEN c1 THEN v1 WHEN c2 THEN v2 ... ELSE e END. Conditions are
/// evaluated in order; this is the compilation target for inlined decision
/// trees.
class CaseWhenExpr final : public Expr {
 public:
  struct Arm {
    ExprPtr when;
    ExprPtr then;
  };

  CaseWhenExpr(std::vector<Arm> arms, ExprPtr else_expr)
      : Expr(Kind::kCaseWhen), arms_(std::move(arms)),
        else_(std::move(else_expr)) {}
  const std::vector<Arm>& arms() const { return arms_; }
  const Expr* else_expr() const { return else_.get(); }

  Status Evaluate(const DataChunk& chunk,
                  std::vector<double>* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override;
  void CollectColumns(std::set<std::string>* out) const override;

 private:
  std::vector<Arm> arms_;
  ExprPtr else_;
};

/// A `?` placeholder of a prepared statement, identified by its 0-based
/// lexical position in the statement text. Placeholders never evaluate:
/// EXECUTE substitutes literals into a clone of the prepared plan
/// (BindParameters) before execution, so hitting one at runtime means an
/// unbound parameter — a diagnosable ExecutionError, not UB.
class ParamExpr final : public Expr {
 public:
  explicit ParamExpr(std::int64_t index)
      : Expr(Kind::kParam), index_(index) {}
  std::int64_t index() const { return index_; }

  Status Evaluate(const DataChunk& chunk,
                  std::vector<double>* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<ParamExpr>(index_);
  }
  void CollectColumns(std::set<std::string>*) const override {}

 private:
  std::int64_t index_;
};

/// `expr IN (v1, v2, ...)` over numeric constants.
class InExpr final : public Expr {
 public:
  InExpr(ExprPtr input, std::vector<double> values)
      : Expr(Kind::kIn), input_(std::move(input)), values_(std::move(values)) {}
  const Expr& input() const { return *input_; }
  const std::vector<double>& values() const { return values_; }

  Status Evaluate(const DataChunk& chunk,
                  std::vector<double>* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<InExpr>(input_->Clone(), values_);
  }
  void CollectColumns(std::set<std::string>* out) const override {
    input_->CollectColumns(out);
  }

 private:
  ExprPtr input_;
  std::vector<double> values_;
};

// Convenience factories.
ExprPtr Col(const std::string& name);
ExprPtr Lit(double value);
ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr operand);

/// A predicate of the shape `column <op> constant`, the unit the cross
/// optimizer reasons about (predicate-based model pruning, pushdown).
struct SimplePredicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  double constant = 0.0;
};

/// Binary serialization of expression trees, in the common BinaryWriter
/// format (used by the plan-fragment wire protocol: WHERE predicates and
/// projection expressions ship to pool workers inside serialized IR
/// fragments). Deserialization is depth-limited so corrupt payloads fail
/// with a parse error instead of exhausting the stack.
void SerializeExpr(const Expr& expr, BinaryWriter* writer);
Result<ExprPtr> DeserializeExpr(BinaryReader* reader);

/// Splits a predicate tree into top-level AND conjuncts.
std::vector<const Expr*> ExtractConjuncts(const Expr& expr);

/// Recognizes `col <op> const` or `const <op> col` (flipping the operator).
std::optional<SimplePredicate> MatchSimplePredicate(const Expr& expr);

/// Rebuilds an AND tree from conjunct clones; nullptr when empty.
ExprPtr ConjoinClones(const std::vector<const Expr*>& conjuncts);

// -- Prepared-statement parameters ------------------------------------------

/// Largest ParamExpr index anywhere in `expr`, or -1 when it has none.
std::int64_t MaxParamIndex(const Expr& expr);

/// Clone of `expr` with every ParamExpr replaced by the literal value at
/// its index. Fails on an index outside `values` (too few parameters).
Result<ExprPtr> BindParameters(const Expr& expr,
                               const std::vector<double>& values);

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_EXPRESSION_H_
