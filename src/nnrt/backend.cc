#include "nnrt/backend.h"

#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace raven::nnrt {
namespace {

// ---------------------------------------------------------------------------
// SIMD kernels.
//
// Byte-identity contract with kernels.cc: every element undergoes exactly the
// same sequence of IEEE single-precision operations in the same order as the
// scalar reference — vectorizing only across elements that the scalar code
// computes independently (the j/column axis), never across a reduction.
// No FMA: the accumulate is an explicit mul-round then add-round, matching
// `orow[j] += av * brow[j]` built without -mfma/-ffast-math. Order-sensitive
// ops (Softmax, ReduceSum, TreeEnsemble, ...) stay on the reference registry.
// ---------------------------------------------------------------------------

std::pair<std::int64_t, std::int64_t> AsMatrix(const Tensor& t) {
  if (t.rank() == 2) return {t.dim(0), t.dim(1)};
  if (t.rank() == 1) return {1, t.dim(0)};
  return {1, t.num_elements()};
}

#if defined(__SSE2__)

enum class BinOp { kAdd, kSub, kMul, kDiv };

template <BinOp op>
inline float ScalarBin(float x, float y) {
  if constexpr (op == BinOp::kAdd) return x + y;
  if constexpr (op == BinOp::kSub) return x - y;
  if constexpr (op == BinOp::kMul) return x * y;
  return x / y;
}

template <BinOp op>
inline __m128 VecBin(__m128 x, __m128 y) {
  if constexpr (op == BinOp::kAdd) return _mm_add_ps(x, y);
  if constexpr (op == BinOp::kSub) return _mm_sub_ps(x, y);
  if constexpr (op == BinOp::kMul) return _mm_mul_ps(x, y);
  return _mm_div_ps(x, y);
}

template <BinOp op>
Status SimdElementwiseBinary(KernelContext* ctx) {
  if (ctx->inputs.size() != 2) {
    return Status::InvalidArgument(ctx->node->op_type + " expects 2 inputs");
  }
  const Tensor& a = ctx->input(0);
  const Tensor& b = ctx->input(1);
  Tensor out = Tensor::Zeros(a.shape());
  const auto [rows, cols] = AsMatrix(a);
  const std::int64_t n = a.num_elements();
  const std::int64_t bn = b.num_elements();
  if (bn == n) {
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
      _mm_storeu_ps(out.raw() + i, VecBin<op>(_mm_loadu_ps(a.raw() + i),
                                              _mm_loadu_ps(b.raw() + i)));
    }
    for (; i < n; ++i) out.raw()[i] = ScalarBin<op>(a.raw()[i], b.raw()[i]);
  } else if (bn == 1) {
    const float bv = b.raw()[0];
    const __m128 vb = _mm_set1_ps(bv);
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
      _mm_storeu_ps(out.raw() + i, VecBin<op>(_mm_loadu_ps(a.raw() + i), vb));
    }
    for (; i < n; ++i) out.raw()[i] = ScalarBin<op>(a.raw()[i], bv);
  } else if (bn == cols) {
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* arow = a.raw() + r * cols;
      float* orow = out.raw() + r * cols;
      std::int64_t c = 0;
      for (; c + 4 <= cols; c += 4) {
        _mm_storeu_ps(orow + c, VecBin<op>(_mm_loadu_ps(arow + c),
                                           _mm_loadu_ps(b.raw() + c)));
      }
      for (; c < cols; ++c) orow[c] = ScalarBin<op>(arow[c], b.raw()[c]);
    }
  } else {
    return Status::InvalidArgument(
        ctx->node->op_type + ": cannot broadcast " + ShapeToString(b.shape()) +
        " against " + ShapeToString(a.shape()));
  }
  ctx->flops = static_cast<double>(n);
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

// Relu as cmpgt+and: x > 0 ? x : 0 — identical to the scalar conditional for
// -0.0f (compare false -> +0) and NaN (compare false -> +0), where
// _mm_max_ps's operand-ordering subtleties would invite drift.
Status SimdReluKernel(KernelContext* ctx) {
  if (ctx->inputs.size() != 1) {
    return Status::InvalidArgument("Relu expects 1 input");
  }
  const Tensor& a = ctx->input(0);
  Tensor out = Tensor::Zeros(a.shape());
  const std::int64_t n = a.num_elements();
  const __m128 zero = _mm_setzero_ps();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 x = _mm_loadu_ps(a.raw() + i);
    _mm_storeu_ps(out.raw() + i, _mm_and_ps(x, _mm_cmpgt_ps(x, zero)));
  }
  for (; i < n; ++i) out.raw()[i] = a.raw()[i] > 0 ? a.raw()[i] : 0.f;
  ctx->flops = static_cast<double>(n);
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

Status SimdMatMulImpl(const Tensor& a, const Tensor& b, const Tensor* bias,
                      KernelContext* ctx) {
  const auto [n, k] = AsMatrix(a);
  if (b.rank() != 2 || b.dim(0) != k) {
    return Status::InvalidArgument(
        "MatMul shape mismatch: " + ShapeToString(a.shape()) + " x " +
        ShapeToString(b.shape()));
  }
  const std::int64_t m = b.dim(1);
  if (bias != nullptr && bias->num_elements() != m) {
    return Status::InvalidArgument("Gemm bias size mismatch");
  }
  Tensor out = Tensor::Zeros({n, m});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::int64_t i = 0; i < n; ++i) {
    if (bias != nullptr) {
      std::int64_t j = 0;
      for (; j + 4 <= m; j += 4) {
        _mm_storeu_ps(po + i * m + j, _mm_loadu_ps(bias->raw() + j));
      }
      for (; j < m; ++j) po[i * m + j] = bias->raw()[j];
    }
    // k stays the outer (sequential) loop exactly as in the reference so each
    // output element accumulates its k partial products in the same order.
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;  // Preserve the reference's one-hot skip.
      const float* brow = pb + kk * m;
      float* orow = po + i * m;
      const __m128 va = _mm_set1_ps(av);
      std::int64_t j = 0;
      for (; j + 4 <= m; j += 4) {
        const __m128 prod = _mm_mul_ps(va, _mm_loadu_ps(brow + j));
        _mm_storeu_ps(orow + j, _mm_add_ps(_mm_loadu_ps(orow + j), prod));
      }
      for (; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  ctx->flops = 2.0 * static_cast<double>(n) * static_cast<double>(k) *
               static_cast<double>(m);
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

Status SimdMatMulKernel(KernelContext* ctx) {
  if (ctx->inputs.size() != 2) {
    return Status::InvalidArgument("MatMul expects 2 inputs");
  }
  return SimdMatMulImpl(ctx->input(0), ctx->input(1), nullptr, ctx);
}

Status SimdGemmKernel(KernelContext* ctx) {
  if (ctx->inputs.size() < 2 || ctx->inputs.size() > 3) {
    return Status::InvalidArgument("Gemm expects 2 or 3 inputs");
  }
  const Tensor* bias = ctx->num_inputs() == 3 ? &ctx->input(2) : nullptr;
  return SimdMatMulImpl(ctx->input(0), ctx->input(1), bias, ctx);
}

Status SimdScalerKernel(KernelContext* ctx) {
  if (ctx->inputs.size() != 1) {
    return Status::InvalidArgument("Scaler expects 1 input");
  }
  RAVEN_ASSIGN_OR_RETURN(auto offset, ctx->node->GetFloatsAttr("offset"));
  RAVEN_ASSIGN_OR_RETURN(auto scale, ctx->node->GetFloatsAttr("scale"));
  const Tensor& a = ctx->input(0);
  const auto [rows, cols] = AsMatrix(a);
  if (static_cast<std::int64_t>(offset.size()) != cols ||
      static_cast<std::int64_t>(scale.size()) != cols) {
    return Status::InvalidArgument("Scaler offset/scale size mismatch");
  }
  // Hoist the per-element double->float casts out of the row loop; the cast
  // result is position-independent so the values match the reference exactly.
  std::vector<float> offs(static_cast<std::size_t>(cols));
  std::vector<float> scls(static_cast<std::size_t>(cols));
  for (std::int64_t c = 0; c < cols; ++c) {
    offs[static_cast<std::size_t>(c)] =
        static_cast<float>(offset[static_cast<std::size_t>(c)]);
    scls[static_cast<std::size_t>(c)] =
        static_cast<float>(scale[static_cast<std::size_t>(c)]);
  }
  Tensor out = Tensor::Zeros(a.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = a.raw() + r * cols;
    float* o = out.raw() + r * cols;
    std::int64_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      const __m128 x = _mm_sub_ps(_mm_loadu_ps(in + c),
                                  _mm_loadu_ps(offs.data() + c));
      _mm_storeu_ps(o + c, _mm_mul_ps(x, _mm_loadu_ps(scls.data() + c)));
    }
    for (; c < cols; ++c) {
      o[c] = (in[c] - offs[static_cast<std::size_t>(c)]) *
             scls[static_cast<std::size_t>(c)];
    }
  }
  ctx->flops = 2.0 * static_cast<double>(a.num_elements());
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

const std::map<std::string, Kernel>& SimdOverrides() {
  static const std::map<std::string, Kernel>* overrides =
      new std::map<std::string, Kernel>{
          {"Add", SimdElementwiseBinary<BinOp::kAdd>},
          {"Sub", SimdElementwiseBinary<BinOp::kSub>},
          {"Mul", SimdElementwiseBinary<BinOp::kMul>},
          {"Div", SimdElementwiseBinary<BinOp::kDiv>},
          {"Relu", SimdReluKernel},
          {"MatMul", SimdMatMulKernel},
          {"Gemm", SimdGemmKernel},
          {"Scaler", SimdScalerKernel},
      };
  return *overrides;
}

#else  // !__SSE2__

// Non-x86 builds: the "simd" backend degrades to the reference registry, so
// backend selection stays portable and the differential tests pass trivially.
const std::map<std::string, Kernel>& SimdOverrides() {
  static const std::map<std::string, Kernel>* overrides =
      new std::map<std::string, Kernel>{};
  return *overrides;
}

#endif  // __SSE2__

// ---------------------------------------------------------------------------
// fp16 storage rounding.
// ---------------------------------------------------------------------------

std::uint16_t F32ToF16Bits(float x) {
  std::uint32_t f;
  std::memcpy(&f, &x, sizeof(f));
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t exp = (f >> 23) & 0xffu;
  std::uint32_t man = f & 0x7fffffu;
  if (exp == 255u) {  // Inf / NaN (keep NaN-ness via a sticky mantissa bit).
    return static_cast<std::uint16_t>(
        sign | 0x7c00u | (man != 0 ? (0x200u | (man >> 13)) : 0u));
  }
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 31) return static_cast<std::uint16_t>(sign | 0x7c00u);  // -> inf
  if (e <= 0) {
    if (e < -10) return static_cast<std::uint16_t>(sign);  // -> signed zero
    // Subnormal half: shift the 24-bit significand down, rounding to even.
    man |= 0x800000u;
    const int shift = 14 - e;
    const std::uint32_t half = man >> shift;
    const std::uint32_t rem = man & ((1u << shift) - 1u);
    const std::uint32_t mid = 1u << (shift - 1);
    std::uint16_t out = static_cast<std::uint16_t>(sign | half);
    if (rem > mid || (rem == mid && (half & 1u))) ++out;
    return out;
  }
  std::uint32_t out =
      sign | (static_cast<std::uint32_t>(e) << 10) | (man >> 13);
  const std::uint32_t rem = man & 0x1fffu;
  // Round to nearest even; a carry ripples into the exponent (and up to inf)
  // through the packed representation, which is exactly what IEEE wants.
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;
  return static_cast<std::uint16_t>(out);
}

float F16BitsToF32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t man = h & 0x3ffu;
  std::uint32_t f;
  if (exp == 0u) {
    if (man == 0u) {
      f = sign;
    } else {
      int e = -1;
      do {
        man <<= 1;
        ++e;
      } while ((man & 0x400u) == 0u);
      man &= 0x3ffu;
      f = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) | (man << 13);
    }
  } else if (exp == 31u) {
    f = sign | 0x7f800000u | (man << 13);
  } else {
    f = sign | ((exp - 15u + 127u) << 23) | (man << 13);
  }
  float out;
  std::memcpy(&out, &f, sizeof(out));
  return out;
}

// ---------------------------------------------------------------------------
// Backend implementations.
// ---------------------------------------------------------------------------

class ReferenceBackend final : public Backend {
 public:
  const char* name() const override { return "reference"; }
  const Kernel* FindKernel(const std::string& op_type) const override {
    return nnrt::FindKernel(op_type);
  }
};

class SimdBackend final : public Backend {
 public:
  const char* name() const override { return "simd"; }
  const Kernel* FindKernel(const std::string& op_type) const override {
    const auto& overrides = SimdOverrides();
    auto it = overrides.find(op_type);
    if (it != overrides.end()) return &it->second;
    return nnrt::FindKernel(op_type);
  }
};

/// Decorates the SIMD backend: runs its kernel, then rounds every output
/// element to the nearest binary16 value. Compute stays fp32 — this models
/// fp16 *storage* of activations, the dominant error source of a real
/// half-precision engine, without a second dtype in Tensor.
class Fp16Backend final : public Backend {
 public:
  const char* name() const override { return "fp16"; }
  bool fp16() const override { return true; }
  const Kernel* FindKernel(const std::string& op_type) const override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = wrapped_.find(op_type);
    if (it != wrapped_.end()) return &it->second;
    const Kernel* inner = GetBackend(BackendKind::kSimd)->FindKernel(op_type);
    if (inner == nullptr) return nullptr;
    Kernel k = [inner](KernelContext* ctx) -> Status {
      RAVEN_RETURN_IF_ERROR((*inner)(ctx));
      for (Tensor& out : ctx->outputs) {
        float* p = out.raw();
        const std::int64_t n = out.num_elements();
        for (std::int64_t i = 0; i < n; ++i) p[i] = RoundToFp16(p[i]);
      }
      return Status::OK();
    };
    auto [pos, inserted] = wrapped_.emplace(op_type, std::move(k));
    (void)inserted;
    return &pos->second;
  }

 private:
  mutable std::mutex mu_;
  mutable std::map<std::string, Kernel> wrapped_;
};

}  // namespace

float RoundToFp16(float x) { return F16BitsToF32(F32ToF16Bits(x)); }

const Backend* GetBackend(BackendKind kind) {
  static const ReferenceBackend* reference = new ReferenceBackend();
  static const SimdBackend* simd = new SimdBackend();
  static const Fp16Backend* fp16 = new Fp16Backend();
  switch (kind) {
    case BackendKind::kSimd:
      return simd;
    case BackendKind::kFp16:
      return fp16;
    case BackendKind::kReference:
    default:
      return reference;
  }
}

const char* BackendKindToString(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSimd:
      return "simd";
    case BackendKind::kFp16:
      return "fp16";
    case BackendKind::kReference:
    default:
      return "reference";
  }
}

Result<BackendKind> ParseBackendKind(const std::string& name) {
  if (name == "reference") return BackendKind::kReference;
  if (name == "simd") return BackendKind::kSimd;
  if (name == "fp16") return BackendKind::kFp16;
  return Status::InvalidArgument(
      "unknown nn_backend '" + name +
      "' (expected one of: reference, simd, fp16)");
}

}  // namespace raven::nnrt
