#ifndef RAVEN_RELATIONAL_KERNEL_H_
#define RAVEN_RELATIONAL_KERNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/chunk.h"
#include "relational/expression.h"

namespace raven::relational {

/// Where one kernel operand's values come from.
struct KernelOperand {
  enum class Kind : std::uint8_t {
    kColumn,     ///< chunk column, by ordinal resolved at compile time
    kRegister,   ///< a previous instruction's output register
    kImmediate,  ///< a compile-time constant (literal or folded subtree)
  };
  Kind kind = Kind::kImmediate;
  std::int32_t index = 0;  ///< column ordinal or register index
  double imm = 0.0;        ///< kImmediate payload
};

/// An Expr tree compiled once (at operator Open) into a postorder sequence
/// of typed columnar kernels over a reusable vector-register pool.
///
/// Compared to Expr::Evaluate — which re-resolves column names with a
/// per-chunk string scan and allocates fresh std::vector temporaries for
/// every interior node of every chunk — a compiled program:
///  - resolves every column reference to an ordinal exactly once, failing
///    at compile time (with the column and operator named) on unknown or
///    ambiguous references;
///  - folds constant subtrees into immediates;
///  - runs each binary kernel as a tight loop specialized for its operand
///    shape (vector/vector, vector/scalar, scalar/vector), writing into
///    registers that are allocated once and reused for every chunk.
///
/// Numeric semantics are identical to the interpreter: the same IEEE-754
/// operations are applied per row in the same order, so compiled plans
/// produce byte-identical results. Kernels always evaluate all rows of the
/// chunk; a selection vector, if any, is applied downstream at gather
/// points (filters refine it, projections gather through it).
///
/// A program is thread-confined like the operator that owns it; distinct
/// workers compile their own copies from their own operator trees.
class KernelProgram {
 public:
  KernelProgram() = default;
  KernelProgram(KernelProgram&&) = default;
  KernelProgram& operator=(KernelProgram&&) = default;

  /// Compiles `expr` against the (positional) column schema the owning
  /// operator's input chunks will carry. `op_context` names that operator
  /// for diagnostics, e.g. "Filter" or "Project expression 2 (score)".
  static Result<KernelProgram> Compile(const Expr& expr,
                                       const std::vector<std::string>& schema,
                                       const std::string& op_context);

  /// Evaluates over all rows of `chunk`. The returned vector is either a
  /// register owned by this program or a column of `chunk`; it is valid
  /// until the next Run call (or until the chunk mutates). Never returns
  /// nullptr on OK.
  Result<const std::vector<double>*> Run(const DataChunk& chunk);

  /// Like Run, but copies the result into `out` (interpreter-parity shape,
  /// used by tests and callers that keep the values past the next chunk).
  Status RunInto(const DataChunk& chunk, std::vector<double>* out);

  /// Ordinal of `name` in `schema`; NotFound / InvalidArgument (ambiguous)
  /// with `name` and `op_context` in the message. Shared by operators that
  /// resolve plain column references (aggregates, joins, PREDICT inputs)
  /// so all Open-time schema errors read the same.
  static Result<std::int64_t> ResolveOrdinal(
      const std::vector<std::string>& schema, const std::string& name,
      const std::string& op_context);

  std::size_t num_instructions() const { return instrs_.size(); }
  std::size_t num_registers() const { return regs_.size(); }

 private:
  struct Instr {
    enum class Op : std::uint8_t {
      kCompare,
      kArith,
      kAnd,
      kOr,
      kNot,
      kCase,  ///< args = when0, then0, when1, then1, ..., else
      kIn,
    };
    Op op = Op::kCompare;
    CompareOp cmp = CompareOp::kEq;
    ArithOp arith = ArithOp::kAdd;
    std::int32_t out = 0;
    std::vector<KernelOperand> args;
    std::vector<double> in_values;  ///< kIn candidate list
  };

  class Compiler;

  /// Materializes operand `o`'s values for an n-row chunk: column pointer,
  /// register pointer, or nullptr for an immediate (the caller then uses
  /// o.imm as a scalar).
  const std::vector<double>* Vec(const KernelOperand& o,
                                 const DataChunk& chunk) const;

  std::vector<Instr> instrs_;
  mutable std::vector<std::vector<double>> regs_;  ///< reused across chunks
  std::vector<std::uint8_t> case_decided_;         ///< kCase scratch
  KernelOperand result_;  ///< where the root's values land
};

/// Gathers `values` through a selection vector into `out` (plain copy when
/// `sel` is empty). The compact-output half of selection-vector execution.
void GatherSelected(const std::vector<double>& values,
                    const std::vector<std::int32_t>& sel,
                    std::vector<double>* out);

/// Order-independent, correctly-rounded float accumulator (a Shewchuk /
/// fsum-style expansion of non-overlapping partials, the compensated form
/// of Neumaier summation carried to full precision). SUM/AVG built on it
/// are bit-identical for ANY accumulation or merge order — sequential
/// chunks, morsel-parallel partials, and distributed fragments all round
/// the same exact value — which is what restores the engine's byte-
/// identical-at-any-dop guarantee for float aggregates.
///
/// Non-finite inputs are diverted to counters so they cannot poison the
/// expansion: the rounded result is NaN if any input was NaN or both
/// infinity signs appeared, +/-infinity if one sign appeared, else the
/// correctly rounded exact sum. The empty sum rounds to +0.0; an all
/// negative-zero input stream keeps its -0.0 (IEEE addition identities
/// fall out of the expansion itself, no special casing).
class ExactFloatSum {
 public:
  void Add(double v);
  void MergeFrom(const ExactFloatSum& other);
  /// The correctly rounded value of everything added so far.
  double Round() const;

 private:
  void AddFinite(double v);

  std::vector<double> terms_;  ///< increasing magnitude, non-overlapping
  std::int64_t pos_inf_ = 0;
  std::int64_t neg_inf_ = 0;
  bool saw_nan_ = false;
};

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_KERNEL_H_
