#ifndef RAVEN_FRONTEND_SQL_PARSER_H_
#define RAVEN_FRONTEND_SQL_PARSER_H_

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "ir/ir.h"
#include "relational/catalog.h"

namespace raven::frontend {

/// Builds the model-scoring IR node for PREDICT(MODEL='name', DATA=...).
/// The static analyzer supplies this: it looks the model up in the catalog,
/// analyzes its script, and returns either a ModelPipeline IR node or an
/// OpaquePipeline fallback. `output_column` is the WITH(...) name.
using ModelNodeBuilder = std::function<Result<ir::IrNodePtr>(
    const std::string& model_name, ir::IrNodePtr data,
    const std::string& output_column)>;

/// Parses an inference query into the unified IR.
///
/// Supported grammar (a faithful subset of the paper's SQL Server dialect):
///
///   [WITH cte AS ( select )] select
///   select  := SELECT items FROM source [WHERE pred] [LIMIT n]
///   items   := * | expr [AS name] {, expr [AS name]}
///            | agg [AS name] {, agg [AS name]}      -- no GROUP BY;
///                                                   -- LIMIT applies above
///                                                   -- the aggregate row
///   agg     := COUNT(* | col) | SUM(col) | AVG(col) | MIN(col) | MAX(col)
///   source  := PREDICT(MODEL='name', DATA=ref) [WITH(col [type])] [AS a]
///            | table [AS a] {JOIN table [AS a] ON col = col}
///            | ( select ) [AS a]
///   ref     := cte-or-table name | ( select )
///   pred    := OR/AND/NOT tree over comparisons, IN lists, parentheses
///
/// Alias qualifiers (`d.bp`) are accepted and stripped — Raven's flattened
/// schemas use globally unique column names. String literals compared to
/// dictionary-encoded categorical columns are resolved to their codes at
/// parse time via the catalog.
Result<ir::IrPlan> ParseInferenceQuery(const std::string& sql,
                                       const relational::Catalog& catalog,
                                       const ModelNodeBuilder& model_builder);

}  // namespace raven::frontend

#endif  // RAVEN_FRONTEND_SQL_PARSER_H_
