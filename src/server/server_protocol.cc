#include "server/server_protocol.h"

namespace raven::server {

std::string EncodeClientRequest(const ClientRequest& request) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(request.command));
  writer.WriteString(request.sql);
  writer.WriteString(request.statement_name);
  writer.WriteF64Vector(request.params);
  return writer.Release();
}

Result<ClientRequest> DecodeClientRequest(const std::string& payload) {
  BinaryReader reader(payload);
  ClientRequest request;
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t command, reader.ReadU8());
  if (command > static_cast<std::uint8_t>(ClientCommand::kPing)) {
    return Status::ParseError("unknown client command code " +
                              std::to_string(command));
  }
  request.command = static_cast<ClientCommand>(command);
  RAVEN_ASSIGN_OR_RETURN(request.sql, reader.ReadString());
  RAVEN_ASSIGN_OR_RETURN(request.statement_name, reader.ReadString());
  RAVEN_ASSIGN_OR_RETURN(request.params, reader.ReadF64Vector());
  if (!reader.AtEnd()) {
    return Status::ParseError("trailing bytes after client request");
  }
  return request;
}

std::string EncodeServerResponse(const ServerResponse& response) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(response.kind));
  writer.WriteString(response.message);
  writer.WriteI32(static_cast<std::int32_t>(response.code));
  writer.WriteBool(response.plan_cache_hit);
  writer.WriteF64(response.queue_wait_micros);
  writer.WriteF64(response.total_millis);
  response.table.Serialize(&writer);
  writer.WriteU64(response.stats.size());
  for (const auto& [key, value] : response.stats) {
    writer.WriteString(key);
    writer.WriteI64(value);
  }
  return writer.Release();
}

Result<ServerResponse> DecodeServerResponse(const std::string& payload) {
  BinaryReader reader(payload);
  ServerResponse response;
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t kind, reader.ReadU8());
  if (kind > static_cast<std::uint8_t>(ServerResponseKind::kStats)) {
    return Status::ParseError("unknown server response kind code " +
                              std::to_string(kind));
  }
  response.kind = static_cast<ServerResponseKind>(kind);
  RAVEN_ASSIGN_OR_RETURN(response.message, reader.ReadString());
  RAVEN_ASSIGN_OR_RETURN(std::int32_t code, reader.ReadI32());
  if (code < 0 ||
      code > static_cast<std::int32_t>(StatusCode::kServerBusy)) {
    return Status::ParseError("unknown status code in server response");
  }
  response.code = static_cast<StatusCode>(code);
  RAVEN_ASSIGN_OR_RETURN(response.plan_cache_hit, reader.ReadBool());
  RAVEN_ASSIGN_OR_RETURN(response.queue_wait_micros, reader.ReadF64());
  RAVEN_ASSIGN_OR_RETURN(response.total_millis, reader.ReadF64());
  RAVEN_ASSIGN_OR_RETURN(response.table,
                         relational::Table::Deserialize(&reader));
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t n, reader.ReadU64());
  if (n > reader.remaining()) {
    return Status::ParseError("implausible stats count in server response");
  }
  response.stats.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    RAVEN_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
    RAVEN_ASSIGN_OR_RETURN(std::int64_t value, reader.ReadI64());
    response.stats.emplace_back(std::move(key), value);
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("trailing bytes after server response");
  }
  return response;
}

Status ResponseStatus(const ServerResponse& response) {
  switch (response.kind) {
    case ServerResponseKind::kBusy:
      return Status::ServerBusy(response.message);
    case ServerResponseKind::kError:
      return Status(response.code == StatusCode::kOk ? StatusCode::kInternal
                                                     : response.code,
                    response.message);
    default:
      return Status::OK();
  }
}

}  // namespace raven::server
