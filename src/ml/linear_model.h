#ifndef RAVEN_ML_LINEAR_MODEL_H_
#define RAVEN_ML_LINEAR_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace raven::ml {

/// Whether the linear model is a plain regression or a logistic classifier.
enum class LinearKind : std::uint8_t { kRegression = 0, kLogistic = 1 };

/// Training options for gradient descent with optional L1 proximal step.
/// L1 produces genuinely sparse weights, which is what model-projection
/// pushdown (paper §4.1, Fig 2(a)) exploits.
struct LinearTrainOptions {
  std::int64_t epochs = 60;
  double learning_rate = 0.1;
  /// L1 regularization strength; 0 disables the proximal step.
  double l1 = 0.0;
  std::uint64_t seed = 31;
};

/// Linear / logistic model: y = x . w + b (logistic applies a sigmoid).
class LinearModel {
 public:
  LinearModel() = default;
  explicit LinearModel(LinearKind kind) : kind_(kind) {}

  Status Fit(const Tensor& x, const std::vector<float>& y,
             const LinearTrainOptions& options = LinearTrainOptions());

  float PredictRow(const float* row, std::int64_t num_features) const;
  /// [n, 1] predictions (probabilities for logistic).
  Result<Tensor> Predict(const Tensor& x) const;

  LinearKind kind() const { return kind_; }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  void SetParams(std::vector<double> weights, double bias) {
    weights_ = std::move(weights);
    bias_ = bias;
  }
  void set_kind(LinearKind kind) { kind_ = kind; }
  std::int64_t num_features() const {
    return static_cast<std::int64_t>(weights_.size());
  }

  /// Fraction of exactly-zero weights (the paper quotes 41.75% / 80.96%).
  double Sparsity() const;
  /// Indices of features with non-zero weight.
  std::vector<std::int64_t> NonZeroFeatures() const;
  /// Zeroes out all weights with |w| < threshold (lossy pushdown study).
  std::int64_t ThresholdWeights(double threshold);

  /// Keeps only `keep` features (in order); weights are re-indexed. Folds
  /// dropped features' contribution at their fixed values into the bias —
  /// `fixed_values[i]` supplies the value for dropped feature i (0 for pure
  /// zero-weight drops).
  Status ProjectFeatures(const std::vector<std::int64_t>& keep,
                         const std::vector<double>& fixed_values);

  void Serialize(BinaryWriter* writer) const;
  static Result<LinearModel> Deserialize(BinaryReader* reader);

 private:
  LinearKind kind_ = LinearKind::kRegression;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace raven::ml

#endif  // RAVEN_ML_LINEAR_MODEL_H_
