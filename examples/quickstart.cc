// Quickstart: store a model pipeline in the database and score it with SQL.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "data/hospital.h"
#include "raven/raven.h"

int main() {
  using namespace raven;

  // 1. An in-memory Raven instance (relational engine + NNRT + optimizer).
  RavenContext ctx;

  // 2. Register a table. (Real deployments load CSVs or app data; here we
  //    generate the paper's synthetic hospital dataset.)
  auto data = data::MakeHospitalDataset(10000, /*seed=*/7);
  if (auto s = ctx.RegisterTable("patients", data.joined); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Train a model pipeline (featurizers + decision tree) and INSERT it
  //    together with its pipeline script — the paper's Fig 1 "M".
  auto pipeline = data::TrainHospitalTree(data, /*max_depth=*/7);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  if (auto s = ctx.InsertModel("duration_of_stay",
                               data::HospitalTreeScript(), *pipeline);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // 4. Issue an inference query — the paper's Fig 1 "Q".
  auto result = ctx.Query(
      "SELECT id, los FROM PREDICT(MODEL='duration_of_stay', "
      "DATA=patients) WITH(los float) "
      "WHERE pregnant = 1 AND los > 7 LIMIT 8");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("pregnant patients with predicted stay > 7 days:\n%s\n",
              result->table.ToString().c_str());
  std::printf("query time: %.2f ms, optimizer rules fired: %zu\n",
              result->total_millis,
              result->optimization.TotalApplications());
  std::printf("generated SQL:\n  %s\n", result->generated_sql.c_str());
  return 0;
}
