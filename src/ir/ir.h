#ifndef RAVEN_IR_IR_H_
#define RAVEN_IR_IR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "ir/clustered_model.h"
#include "ml/pipeline.h"
#include "nnrt/graph.h"
#include "relational/catalog.h"
#include "relational/expression.h"

namespace raven::ir {

/// Operator taxonomy of the unified IR (paper §3.1): relational algebra,
/// linear algebra, classical-ML / data featurizers, and black-box UDFs.
enum class OpCategory { kRelational, kLinearAlgebra, kClassicalMl, kUdf };

const char* OpCategoryToString(OpCategory category);

/// Operator kinds spanning both worlds. The IR deliberately mixes
/// higher-level operators (kModelPipeline — a whole sklearn-style pipeline)
/// and lower-level ones (kNnGraph — raw linear algebra), like MLIR: rules
/// lower between levels to unlock different optimizations.
enum class IrOpKind {
  // Relational algebra (RA).
  kTableScan,
  kFilter,
  kProject,
  kJoin,
  kUnionAll,
  kLimit,
  kAggregate,
  kGroupBy,
  kOrderBy,
  // Classical ML + featurizers (MLD). A pipeline node scores a trained
  // ModelPipeline (featurizer branches + predictor) over named columns.
  kModelPipeline,
  kClusteredPredict,
  // Linear algebra (LA): an NNRT dataflow graph produced by NN translation.
  kNnGraph,
  // Black-box fallback: an unanalyzable pipeline, kept as stored bytes.
  kOpaquePipeline,
};

const char* IrOpKindToString(IrOpKind kind);
OpCategory CategoryOf(IrOpKind kind);

/// True for single-child, chunk-at-a-time operators the code generator can
/// fuse into one pass per chunk (filters, projections, and the PREDICT
/// family). A maximal run of >= 2 such nodes executes as one FusedOperator;
/// pipeline breakers (joins, aggregates, sorts) always end a run. Shared by
/// the runtime (which builds the fused operator) and the optimizer's EXPLAIN
/// (which annotates the chains) so the two never disagree.
bool IsFusablePipelineKind(IrOpKind kind);

/// Aggregate functions. kAggregate folds the whole input into one row;
/// kGroupBy emits one row per distinct group-key tuple.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncToString(AggFunc func);

/// One item of a kAggregate / kGroupBy node's output.
struct AggregateItem {
  AggFunc func = AggFunc::kCount;
  std::string column;  // empty for COUNT(*)
  std::string output_name;

  bool operator==(const AggregateItem& other) const {
    return func == other.func && column == other.column &&
           output_name == other.output_name;
  }
};

/// One key of a kOrderBy node: column name plus direction.
struct SortKey {
  std::string column;
  bool descending = false;

  bool operator==(const SortKey& other) const {
    return column == other.column && descending == other.descending;
  }
};

// Binary serialization of the plan payload structs, in the same
// BinaryWriter format as models and the worker wire protocol. The
// plan-shipping path (kExecuteFragment) encodes whole fragments with
// SerializeFragment below; these remain the shared payload encoders.
void WriteAggregateItems(const std::vector<AggregateItem>& items,
                         BinaryWriter* writer);
Result<std::vector<AggregateItem>> ReadAggregateItems(BinaryReader* reader);
void WriteSortKeys(const std::vector<SortKey>& keys, BinaryWriter* writer);
Result<std::vector<SortKey>> ReadSortKeys(BinaryReader* reader);

struct IrNode;
using IrNodePtr = std::unique_ptr<IrNode>;

/// A node of the unified IR plan tree. Payload fields are populated per
/// kind; unused fields stay empty. Plans are trees (sufficient for the
/// query shapes Raven optimizes; the paper's figures are trees too).
struct IrNode {
  IrOpKind kind;
  std::vector<IrNodePtr> children;

  // --- RA payloads ---------------------------------------------------------
  std::string table_name;                       // kTableScan
  relational::ExprPtr predicate;                // kFilter
  std::vector<relational::ExprPtr> proj_exprs;  // kProject
  std::vector<std::string> proj_names;          // kProject
  std::string left_key, right_key;              // kJoin
  std::int64_t limit = 0;                       // kLimit
  std::vector<AggregateItem> aggregates;        // kAggregate, kGroupBy
  std::vector<std::string> group_keys;          // kGroupBy
  std::vector<SortKey> sort_keys;               // kOrderBy

  // --- ML payloads ---------------------------------------------------------
  /// Stored-model name this node came from (for cache keys / EXPLAIN).
  std::string model_name;
  /// Output column the prediction is exposed as.
  std::string output_column;
  /// kModelPipeline: the (possibly optimizer-specialized) pipeline.
  std::shared_ptr<ml::ModelPipeline> pipeline;
  /// kClusteredPredict payload.
  std::shared_ptr<ClusteredModel> clustered;
  /// kNnGraph payload plus the relational columns feeding the graph input.
  std::shared_ptr<nnrt::Graph> nn_graph;
  /// Content hash of nn_graph, computed once when the node is built (or
  /// deserialized) so the per-execution session-cache key never has to
  /// re-serialize the model. 0 only for hand-assembled nodes that bypassed
  /// the factory — consumers fall back to hashing the bytes themselves.
  std::uint64_t nn_graph_fingerprint = 0;
  std::vector<std::string> model_input_columns;
  /// kOpaquePipeline: stored bytes + why analysis failed.
  std::string opaque_bytes;
  std::string opaque_reason;

  explicit IrNode(IrOpKind k) : kind(k) {}

  OpCategory category() const { return CategoryOf(kind); }

  IrNodePtr Clone() const;

  // Factories.
  static IrNodePtr TableScan(std::string table);
  static IrNodePtr Filter(IrNodePtr child, relational::ExprPtr predicate);
  static IrNodePtr Project(IrNodePtr child,
                           std::vector<relational::ExprPtr> exprs,
                           std::vector<std::string> names);
  /// Convenience projection of plain columns.
  static IrNodePtr ProjectColumns(IrNodePtr child,
                                  const std::vector<std::string>& columns);
  static IrNodePtr Join(IrNodePtr left, IrNodePtr right, std::string left_key,
                        std::string right_key);
  static IrNodePtr UnionAll(std::vector<IrNodePtr> children);
  static IrNodePtr Limit(IrNodePtr child, std::int64_t limit);
  static IrNodePtr Aggregate(IrNodePtr child,
                             std::vector<AggregateItem> aggregates);
  /// Grouped aggregation: one output row per distinct `group_keys` tuple,
  /// schema = group keys then aggregate outputs. Rows are emitted in
  /// ascending key order (deterministic across degrees of parallelism).
  /// `aggregates` may be empty: that is SELECT DISTINCT over the keys.
  static IrNodePtr GroupBy(IrNodePtr child, std::vector<std::string> group_keys,
                           std::vector<AggregateItem> aggregates);
  /// Total sort of the child's rows (stable, so equal-key rows keep the
  /// child's sequential order); schema passes through.
  static IrNodePtr OrderBy(IrNodePtr child, std::vector<SortKey> sort_keys);
  static IrNodePtr ModelPipelineNode(IrNodePtr child, std::string model_name,
                                     std::shared_ptr<ml::ModelPipeline> model,
                                     std::vector<std::string> input_columns,
                                     std::string output_column);
  static IrNodePtr ClusteredPredict(IrNodePtr child, std::string model_name,
                                    std::shared_ptr<ClusteredModel> model,
                                    std::vector<std::string> input_columns,
                                    std::string output_column);
  static IrNodePtr NnGraph(IrNodePtr child, std::string model_name,
                           std::shared_ptr<nnrt::Graph> graph,
                           std::vector<std::string> input_columns,
                           std::string output_column);
  static IrNodePtr OpaquePipeline(IrNodePtr child, std::string model_name,
                                  std::string bytes, std::string reason,
                                  std::vector<std::string> input_columns,
                                  std::string output_column);
};

/// A full inference-query plan: the IR tree plus bookkeeping the optimizer
/// and tests use.
class IrPlan {
 public:
  IrPlan() = default;
  explicit IrPlan(IrNodePtr root) : root_(std::move(root)) {}

  IrNode* root() { return root_.get(); }
  const IrNode* root() const { return root_.get(); }
  IrNodePtr& mutable_root() { return root_; }

  IrPlan Clone() const;

  /// Output column names of `node` given the catalog's table schemas.
  static Result<std::vector<std::string>> ComputeSchema(
      const IrNode& node, const relational::Catalog& catalog);

  /// Structural validation: children counts, schema resolvability, model
  /// input columns present in child schema.
  Status Validate(const relational::Catalog& catalog) const;

  /// Indented tree dump (EXPLAIN).
  std::string ToString() const;

  /// Number of nodes of the given kind anywhere in the plan.
  std::size_t CountKind(IrOpKind kind) const;

 private:
  IrNodePtr root_;
};

/// Applies `fn` to every node (pre-order); fn may mutate payloads.
void VisitIr(IrNode* node, const std::function<void(IrNode*)>& fn);
void VisitIr(const IrNode* node,
             const std::function<void(const IrNode*)>& fn);

// -- Plan-fragment wire serialization ---------------------------------------
//
// Whole plan subtrees encode to the common BinaryWriter format (versioned,
// depth-limited on decode) so the engine can ship fragments to persistent
// pool workers over the kExecuteFragment protocol command. Model payloads
// travel as their existing serialized forms (ModelPipeline / nnrt::Graph
// bytes). Two kinds cannot ship and serialize to an error:
// kClusteredPredict (clustering artifacts live in the optimizer process)
// and kOpaquePipeline (it must score through its own external runtime).

Status SerializeFragment(const IrNode& node, BinaryWriter* writer);
Result<IrNodePtr> DeserializeFragment(BinaryReader* reader);

/// True iff the subtree rooted at `node` consists solely of row-wise
/// operators (filter / project / pipeline / NN-graph scoring) over a single
/// table scan — the unit the distributed executor ships to workers, because
/// partitioning the scan's rows and concatenating the partition outputs in
/// range order is byte-identical to running the subtree over the whole
/// table.
bool IsDistributableFragment(const IrNode& node);

/// Collects the maximal distributable subtrees of the plan, in the
/// deterministic preorder the distributed executor (and its cost-model
/// mirror) both rely on.
void CollectDistributableFragments(const IrNode& root,
                                   std::vector<const IrNode*>* out);

// -- Plan identity & prepared-statement parameters --------------------------

/// Structural 64-bit fingerprint of the subtree (FNV-1a over a canonical
/// preorder encoding of kinds and payloads; model payloads hash by stored
/// name, so two plans over the same stored model fingerprint equal even
/// when the optimizer specialized their in-memory pipelines differently).
/// The query server's plan cache uses this to report distinct-plan counts
/// and tests use it to assert cached-plan identity.
std::uint64_t PlanFingerprint(const IrNode& node);

/// Number of `?` placeholders the plan's expressions reference (max index
/// + 1; 0 for a plan without parameters).
std::int64_t PlanParamCount(const IrNode& node);

/// Deep clone with every ParamExpr replaced by its literal value from
/// `values` (EXECUTE's bind step). Fails when the plan references an index
/// outside `values`; fails-fast rather than executing with unbound
/// placeholders.
Result<IrNodePtr> BindPlanParameters(const IrNode& node,
                                     const std::vector<double>& values);

}  // namespace raven::ir

#endif  // RAVEN_IR_IR_H_
