#ifndef RAVEN_OPTIMIZER_CROSS_OPTIMIZER_H_
#define RAVEN_OPTIMIZER_CROSS_OPTIMIZER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/ir.h"
#include "optimizer/converters.h"
#include "relational/catalog.h"

namespace raven::optimizer {

/// Per-rule toggles; every optimization the paper describes can be switched
/// independently (the benchmark harness uses this for its ablations).
struct OptimizerOptions {
  bool predicate_pushdown = true;
  bool predicate_model_pruning = true;
  bool model_projection_pushdown = true;
  bool projection_pushdown = true;
  bool join_elimination = true;
  bool model_clustering = true;  // applies only when an artifact is registered
  bool model_query_splitting = false;
  /// Derive predicates from base-table statistics (paper §4.1 variant,
  /// "all patients are above 35"). Off by default: it scans table columns
  /// at optimization time.
  bool data_property_pruning = false;
  /// Lossy model-projection pushdown: drop |w| < threshold weights from
  /// linear models (0 disables). Changes results within a bounded error;
  /// never enabled by the semantics property tests.
  double lossy_projection_threshold = 0.0;
  bool model_inlining = true;
  /// Trees at most this big are inlined into CASE expressions; bigger trees
  /// fall through to NN translation.
  std::int64_t inline_max_nodes = 512;
  bool nn_translation = true;
  NnTranslationOptions nn_options;
  /// Degree of parallelism the runtime will execute the plan at. The cost
  /// model divides parallelizable work by it, so plan costing no longer
  /// assumes sequential scans; RavenContext wires the execution option in.
  std::int64_t target_parallelism = 1;
  /// Worker-pool size the plan's distributable fragments would ship to
  /// under ExecutionMode::kDistributed; 0/1 = not distributed. RavenContext
  /// wires this from the execution options so EXPLAIN reports the
  /// fragment-shipping cost of the mode that will actually run.
  std::int64_t target_distributed_workers = 0;
};

/// One EXPLAIN cost row: an operator of the optimized plan with the cost of
/// its whole subtree run sequentially and at the costed parallelism. The
/// parallel column shows which operators the morsel executor actually
/// speeds up (e.g. a GROUP BY's accumulation divides by dop while an ORDER
/// BY's sort is a sequential tail).
struct OperatorCost {
  std::string op;      ///< operator kind, e.g. "GroupBy"
  int depth = 0;       ///< nesting depth in the plan tree (for indentation)
  double output_rows = 0.0;
  double sequential_cost = 0.0;
  double parallel_cost = 0.0;
  /// The runtime executes this operator fused into its parent (one pass per
  /// chunk over the whole filter/project/PREDICT chain); EXPLAIN marks the
  /// row so the cost tree matches the physical plan.
  bool fused_into_parent = false;
};

/// How many times each rule fired plus the plan snapshots for EXPLAIN.
struct OptimizationReport {
  std::vector<std::pair<std::string, std::size_t>> rule_applications;
  std::string before;
  std::string after;
  /// Cost of the optimized plan (abstract work units) run sequentially and
  /// at options.target_parallelism workers (equal when the target is 1).
  double sequential_cost = 0.0;
  double parallel_cost = 0.0;
  std::int64_t costed_parallelism = 1;
  /// Cost of shipping the plan's distributable fragments to a pool of
  /// costed_distributed_workers (0 when the target mode isn't distributed):
  /// fragment compute divided across the pool plus the serialization /
  /// pipe / frame tax of the kExecuteFragment protocol.
  double distributed_cost = 0.0;
  std::int64_t costed_distributed_workers = 0;
  /// Per-operator subtree costs of the optimized plan, preorder.
  std::vector<OperatorCost> operator_costs;

  std::size_t TotalApplications() const {
    std::size_t total = 0;
    for (const auto& [rule, count] : rule_applications) {
      (void)rule;
      total += count;
    }
    return total;
  }
};

/// Raven's Cross Optimizer (paper §4.3): a heuristic rule pipeline applying
/// cross-IR optimizations and operator transformations in a fixed order —
/// relational pushdowns first (they feed the model rules), then model
/// specialization (clustering, pruning, projection), then representation
/// choice (inline small trees into SQL vs. translate to the NN runtime,
/// decided with the cost model), then relational cleanup.
class CrossOptimizer {
 public:
  CrossOptimizer(const relational::Catalog* catalog, OptimizerOptions options)
      : catalog_(catalog), options_(std::move(options)) {}

  /// Registers an offline-built clustering artifact for a stored model.
  void RegisterClusteredModel(const std::string& model_name,
                              std::shared_ptr<ir::ClusteredModel> artifact) {
    clustering_artifacts_[model_name] = std::move(artifact);
  }

  const OptimizerOptions& options() const { return options_; }
  OptimizerOptions& mutable_options() { return options_; }

  /// Optimizes the plan in place.
  Status Optimize(ir::IrPlan* plan, OptimizationReport* report = nullptr) const;

 private:
  const relational::Catalog* catalog_;
  OptimizerOptions options_;
  std::map<std::string, std::shared_ptr<ir::ClusteredModel>>
      clustering_artifacts_;
};

}  // namespace raven::optimizer

#endif  // RAVEN_OPTIMIZER_CROSS_OPTIMIZER_H_
