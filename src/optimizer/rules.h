#ifndef RAVEN_OPTIMIZER_RULES_H_
#define RAVEN_OPTIMIZER_RULES_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "ir/ir.h"
#include "optimizer/converters.h"
#include "relational/catalog.h"

namespace raven::optimizer {

/// Each rule is a plan-tree rewrite returning how many times it fired.
/// All rules preserve query semantics (verified by the property tests in
/// tests/optimizer_semantics_test.cc).

/// Standard relational predicate pushdown, extended across model nodes:
/// predicates not referencing the prediction column move below PREDICT,
/// through projections, and into join sides.
Result<std::size_t> ApplyPredicatePushdown(ir::IrNodePtr* root,
                                           const relational::Catalog& catalog);

/// Predicate-based model pruning (paper §4.1): simple predicates in a model
/// node's subtree specialize the model (tree-branch elimination, categorical
/// one-hot block folding for linear models).
Result<std::size_t> ApplyPredicateModelPruning(ir::IrNodePtr* root);

/// Model-projection pushdown (paper §4.1, Fig 2(a)): drop features the
/// predictor ignores (zero weights, untested features); shrink the model's
/// relational input requirements accordingly.
Result<std::size_t> ApplyModelProjectionPushdown(ir::IrNodePtr* root);

/// Relational projection pushdown: narrows scans/projections to the columns
/// actually required upstream (including model inputs).
Result<std::size_t> ApplyProjectionPushdown(ir::IrNodePtr* root,
                                            const relational::Catalog& catalog);

/// Join elimination: removes a join's build side when no surviving column
/// needs it (enabled by model-projection pushdown; assumes key/FK integrity,
/// which the synthetic datasets satisfy by construction).
Result<std::size_t> ApplyJoinElimination(ir::IrNodePtr* root,
                                         const relational::Catalog& catalog);

/// Model inlining (paper §4.2, Fig 2(c)): decision-tree pipelines at most
/// `max_nodes` big become relational CASE expressions (UDF-inlining
/// analogue), unlocking relational optimizations over the model itself.
Result<std::size_t> ApplyModelInlining(ir::IrNodePtr* root,
                                       const relational::Catalog& catalog,
                                       std::int64_t max_nodes);

/// NN translation (paper §4.2, Fig 2(d)): classical pipelines become NNRT
/// linear-algebra graphs for batch/accelerator execution.
Result<std::size_t> ApplyNnTranslation(ir::IrNodePtr* root,
                                       const NnTranslationOptions& options);

/// Model clustering (paper §4.1, Fig 2(b)): swaps a model node for its
/// registered per-cluster precompiled artifact.
Result<std::size_t> ApplyModelClustering(
    ir::IrNodePtr* root,
    const std::map<std::string, std::shared_ptr<ir::ClusteredModel>>&
        artifacts);

/// Model/query splitting (paper §2): partitions a tree model on its root
/// predicate into two simpler (query branch, model) pairs under a UNION ALL.
Result<std::size_t> ApplyModelQuerySplitting(ir::IrNodePtr* root);

/// Data-property-derived predicate pruning (paper §4.1: "This technique can
/// also be applied based on data properties instead of explicit selections
/// ... e.g., all patients are above 35"): derives [min, max] (or constant)
/// predicates from base-table statistics for each model input column and
/// specializes the model with them. Sound because statistics summarize the
/// very rows the query scans, and filters/inner joins only remove rows.
Result<std::size_t> ApplyDataPropertyPruning(ir::IrNodePtr* root,
                                             const relational::Catalog& catalog);

/// Lossy model-projection pushdown (paper §4.1 open question: "what would
/// be the impact ... when applying lossy model-projection pushdown, where
/// small, but non-zero, weights are removed?"): zeroes linear-model weights
/// with |w| < threshold, then projects. Changes predictions by at most
/// threshold * sum(|dropped feature range|); the ablation bench measures
/// the accuracy/latency trade-off.
Result<std::size_t> ApplyLossyProjection(ir::IrNodePtr* root,
                                         double weight_threshold);

}  // namespace raven::optimizer

#endif  // RAVEN_OPTIMIZER_RULES_H_
