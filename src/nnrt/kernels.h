#ifndef RAVEN_NNRT_KERNELS_H_
#define RAVEN_NNRT_KERNELS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "nnrt/graph.h"
#include "tensor/tensor.h"

namespace raven::nnrt {

/// Per-invocation kernel state: bound input tensors, output slots, and a
/// floating-point-operation estimate used by the simulated-accelerator cost
/// model (see DESIGN.md §1, GPU substitution).
struct KernelContext {
  const Node* node = nullptr;
  std::vector<const Tensor*> inputs;
  std::vector<Tensor> outputs;
  double flops = 0.0;

  const Tensor& input(std::size_t i) const { return *inputs[i]; }
  std::size_t num_inputs() const { return inputs.size(); }
};

using Kernel = std::function<Status(KernelContext*)>;

/// Looks up the CPU kernel for `op_type`; nullptr when unsupported (callers
/// turn that into a Status and, at the Raven layer, into external-runtime
/// fallback).
const Kernel* FindKernel(const std::string& op_type);

/// True if the executor has a kernel for this op type.
bool IsOpSupported(const std::string& op_type);

/// All registered op types, sorted (for diagnostics and docs).
std::vector<std::string> SupportedOps();

}  // namespace raven::nnrt

#endif  // RAVEN_NNRT_KERNELS_H_
