#ifndef RAVEN_RELATIONAL_CSV_H_
#define RAVEN_RELATIONAL_CSV_H_

#include <string>

#include "common/status.h"
#include "relational/table.h"

namespace raven::relational {

/// Writes a table to CSV so that ReadCsv recovers it exactly:
///  - numeric values print at max_digits10 (17 significant digits), enough
///    for strtod to recover the identical bits; NaN/±inf print as nan/inf.
///  - categorical values (and column names) are always RFC-4180 quoted,
///    with `"` escaped as `""` — embedded commas, quotes, and newlines
///    survive, and the quoting itself tells ReadCsv the column is
///    categorical even when every value looks like a number.
/// A categorical cell whose code is not an exact in-range dictionary index
/// is an InvalidArgument error, never a silently empty field.
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV with a header row, honoring RFC-4180 quoting (embedded
/// commas, `""` escapes, and newlines inside quoted fields). Type sniffing
/// is pinned to these rules so the same logical column cannot flip
/// numeric↔categorical between files:
///  - any quoted field forces its column categorical;
///  - otherwise a column is numeric iff it has at least one non-empty
///    field and every non-empty (trimmed) field fully parses via strtod —
///    so the literals `nan`/`inf` are numeric values, not strings;
///  - empty unquoted fields in a numeric column read as NaN (the null
///    sentinel); an all-empty column stays categorical.
/// Unquoted fields are whitespace-trimmed; quoted fields are verbatim.
Result<Table> ReadCsv(const std::string& path);

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_CSV_H_
