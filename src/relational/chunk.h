#ifndef RAVEN_RELATIONAL_CHUNK_H_
#define RAVEN_RELATIONAL_CHUNK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace raven::relational {

/// Preferred number of rows per execution batch (DuckDB-style vectorized
/// execution).
inline constexpr std::int64_t kChunkSize = 2048;

/// A batch of rows flowing between physical operators, stored columnar.
struct DataChunk {
  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;

  /// Provenance of the scan morsel this chunk's rows derive from:
  /// (source ordinal, morsel index). Operators that transform chunks 1:1
  /// propagate the key; the parallel executor sorts merged output by it so
  /// morsel-parallel runs reproduce sequential row order exactly.
  std::int64_t order_source = 0;
  std::int64_t order_morsel = 0;

  std::int64_t num_rows() const {
    return cols.empty() ? 0 : static_cast<std::int64_t>(cols.front().size());
  }
  std::int64_t num_cols() const {
    return static_cast<std::int64_t>(cols.size());
  }

  Result<std::int64_t> ColumnIndex(const std::string& name) const {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<std::int64_t>(i);
    }
    return Status::NotFound("chunk column '" + name + "' not found");
  }

  void Clear() {
    for (auto& c : cols) c.clear();
  }
};

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_CHUNK_H_
