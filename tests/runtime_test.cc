#include <gtest/gtest.h>

#include "data/hospital.h"
#include "frontend/analyzer.h"
#include "optimizer/converters.h"
#include "optimizer/rules.h"
#include "runtime/codegen.h"
#include "runtime/external_runtime.h"
#include "runtime/plan_executor.h"
#include "common/timer.h"
#include "runtime/worker_protocol.h"
#include "test_util.h"

namespace raven::runtime {
namespace {

TEST(WorkerProtocolTest, RequestRoundTrip) {
  ScoreRequest request;
  request.command = WorkerCommand::kScoreGraph;
  request.model_bytes = "model-bytes-here";
  request.input = *Tensor::FromData({2, 2}, {1, 2, 3, 4});
  ScoreRequest back = *DecodeRequest(EncodeRequest(request));
  EXPECT_EQ(back.command, WorkerCommand::kScoreGraph);
  EXPECT_EQ(back.model_bytes, request.model_bytes);
  EXPECT_TRUE(back.input.Equals(request.input));
}

TEST(WorkerProtocolTest, ResponseRoundTrip) {
  ScoreResponse response;
  response.ok = false;
  response.error = "boom";
  ScoreResponse back = *DecodeResponse(EncodeResponse(response));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, "boom");
}

TEST(WorkerProtocolTest, DecodeGarbageFails) {
  EXPECT_FALSE(DecodeRequest("garbage").ok());
  EXPECT_FALSE(DecodeResponse("").ok());
}

class WorkerFixture : public ::testing::Test {
 protected:
  static ml::ModelPipeline MakePipeline() {
    ml::ModelPipeline pipeline;
    pipeline.input_columns = {"a", "b"};
    ml::LinearModel model(ml::LinearKind::kRegression);
    model.SetParams({2.0, 3.0}, 1.0);
    pipeline.predictor = std::move(model);
    return pipeline;
  }
};

TEST_F(WorkerFixture, ScorePipelineOutOfProcess) {
  WorkerClient client;
  ExternalRuntimeOptions options;
  auto start = client.Start(options);
  ASSERT_TRUE(start.ok()) << start.ToString();
  ml::ModelPipeline pipeline = MakePipeline();
  Tensor x = *Tensor::FromData({2, 2}, {1, 1, 2, 2});
  Tensor out = *client.Score(WorkerCommand::kScorePipeline,
                             pipeline.ToBytes(), x);
  EXPECT_NEAR(out.raw()[0], 6.0f, 1e-5f);
  EXPECT_NEAR(out.raw()[1], 11.0f, 1e-5f);
  client.Stop();
  EXPECT_FALSE(client.running());
}

TEST_F(WorkerFixture, ScoreGraphOutOfProcess) {
  WorkerClient client;
  ASSERT_TRUE(client.Start(ExternalRuntimeOptions()).ok());
  nnrt::Graph graph = *optimizer::PipelineToNnGraph(MakePipeline());
  BinaryWriter w;
  graph.Serialize(&w);
  Tensor x = *Tensor::FromData({1, 2}, {3, 4});
  Tensor out = *client.Score(WorkerCommand::kScoreGraph, w.buffer(), x);
  EXPECT_NEAR(out.raw()[0], 2 * 3 + 3 * 4 + 1, 1e-4f);
}

TEST_F(WorkerFixture, CorruptModelBytesReportError) {
  WorkerClient client;
  ASSERT_TRUE(client.Start(ExternalRuntimeOptions()).ok());
  auto result = client.Score(WorkerCommand::kScorePipeline, "corrupt",
                             Tensor::Zeros({1, 1}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  // The worker survives a bad request.
  ml::ModelPipeline pipeline = MakePipeline();
  EXPECT_TRUE(client
                  .Score(WorkerCommand::kScorePipeline, pipeline.ToBytes(),
                         *Tensor::FromData({1, 2}, {0, 0}))
                  .ok());
}

TEST_F(WorkerFixture, BootDelayIsPaidAtStart) {
  WorkerClient client;
  ExternalRuntimeOptions options;
  options.boot_millis = 150;
  Timer timer;
  ASSERT_TRUE(client.Start(options).ok());
  EXPECT_GE(timer.ElapsedMillis(), 140.0);
}

TEST(WorkerPathTest, MissingBinaryIsNotFound) {
  auto result = ResolveWorkerPath("/nonexistent/raven_worker");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // Auto-discovery from the test binary location works.
  EXPECT_TRUE(ResolveWorkerPath("").ok());
}

class ExecutionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = data::MakeHospitalDataset(2000, 55);
    ASSERT_TRUE(catalog_.RegisterTable("patients", data_.joined).ok());
    pipeline_ = test_util::InsertHospitalTreeModel(&catalog_, data_, 6);
    ASSERT_FALSE(HasFailure()) << "fixture setup failed";
  }

  ir::IrPlan Analyze(const std::string& sql) {
    return test_util::AnalyzePlan(catalog_, sql);
  }

  data::HospitalDataset data_;
  relational::Catalog catalog_;
  ml::ModelPipeline pipeline_;
  nnrt::SessionCache cache_{8};
};

TEST_F(ExecutionFixture, InProcessExecution) {
  PlanExecutor executor(&catalog_, &cache_);
  auto plan = Analyze(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE p > 5");
  ExecutionStats stats;
  relational::Table out = *executor.Execute(plan, ExecutionOptions(), &stats);
  EXPECT_GT(out.num_rows(), 0);
  EXPECT_LT(out.num_rows(), data_.joined.num_rows());
  EXPECT_GT(stats.predict_batches, 0);
}

TEST_F(ExecutionFixture, OutOfProcessMatchesInProcess) {
  PlanExecutor executor(&catalog_, &cache_);
  auto plan = Analyze(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float)");
  ExecutionOptions in_proc;
  relational::Table expected = *executor.Execute(plan, in_proc);
  ExecutionOptions out_proc;
  out_proc.mode = ExecutionMode::kOutOfProcess;
  relational::Table actual = *executor.Execute(plan, out_proc);
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  EXPECT_EQ((*expected.GetColumn("p"))->data, (*actual.GetColumn("p"))->data);
}

TEST_F(ExecutionFixture, ContainerModeMatchesToo) {
  PlanExecutor executor(&catalog_, &cache_);
  auto plan = Analyze(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "LIMIT 50");
  ExecutionOptions container;
  container.mode = ExecutionMode::kContainer;
  container.container_extra_boot_millis = 10;  // keep the test quick
  relational::Table out = *executor.Execute(plan, container);
  EXPECT_EQ(out.num_rows(), 50);
}

TEST_F(ExecutionFixture, ParallelMatchesSequential) {
  PlanExecutor executor(&catalog_, &cache_);
  auto plan = Analyze(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE pregnant = 1");
  ExecutionOptions sequential;
  relational::Table expected = *executor.Execute(plan, sequential);
  ExecutionOptions parallel;
  parallel.parallelism = 4;
  relational::Table actual = *executor.Execute(plan, parallel);
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  EXPECT_EQ((*expected.GetColumn("id"))->data,
            (*actual.GetColumn("id"))->data);
  EXPECT_EQ((*expected.GetColumn("p"))->data, (*actual.GetColumn("p"))->data);
}

TEST_F(ExecutionFixture, OpaquePipelineRoutesToWorker) {
  // Store a model whose script is unanalyzable; it must still execute, out
  // of process, with correct results.
  ASSERT_TRUE(catalog_.InsertModel("opaque",
                                   "import magic\nmodel_pipeline = "
                                   "Pipeline([('clf', magic.Thing())])",
                                   pipeline_.ToBytes()).ok());
  PlanExecutor executor(&catalog_, &cache_);
  auto plan = Analyze(
      "SELECT id, p FROM PREDICT(MODEL='opaque', DATA=patients) "
      "WITH(p float) LIMIT 20");
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kOpaquePipeline), 1u);
  relational::Table out = *executor.Execute(plan, ExecutionOptions());
  EXPECT_EQ(out.num_rows(), 20);

  // Same rows through the analyzable model agree.
  auto good_plan = Analyze(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(p float) LIMIT 20");
  relational::Table good = *executor.Execute(good_plan, ExecutionOptions());
  EXPECT_EQ((*out.GetColumn("p"))->data, (*good.GetColumn("p"))->data);
}

TEST_F(ExecutionFixture, NnGraphInProcessViaSessionCache) {
  auto plan = Analyze(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float)");
  // Translate to an NNRT graph node first.
  optimizer::NnTranslationOptions nn_options;
  (void)*optimizer::ApplyNnTranslation(&plan.mutable_root(), nn_options);
  ASSERT_EQ(plan.CountKind(ir::IrOpKind::kNnGraph), 1u);
  PlanExecutor executor(&catalog_, &cache_);
  const auto misses_before = cache_.misses();
  relational::Table a = *executor.Execute(plan, ExecutionOptions());
  relational::Table b = *executor.Execute(plan, ExecutionOptions());
  EXPECT_EQ(cache_.misses(), misses_before + 1);  // second run hits cache
  EXPECT_GT(cache_.hits(), 0u);
  EXPECT_EQ((*a.GetColumn("p"))->data, (*b.GetColumn("p"))->data);
}

TEST_F(ExecutionFixture, GeneratedSqlMentionsRuntimeAndModel) {
  auto plan = Analyze(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE pregnant = 1");
  const std::string sql = GenerateSql(*plan.root());
  EXPECT_NE(sql.find("PREDICT(MODEL='los'"), std::string::npos);
  EXPECT_NE(sql.find("pregnant"), std::string::npos);
  EXPECT_NE(sql.find("SELECT"), std::string::npos);
}

}  // namespace
}  // namespace raven::runtime
