#include "nnrt/executor.h"

#include "common/timer.h"
#include "nnrt/kernels.h"

namespace raven::nnrt {

Result<TensorMap> ExecuteGraph(const Graph& graph, const TensorMap& inputs,
                               RunStats* stats) {
  Timer timer;
  TensorMap env;
  for (const auto& [name, tensor] : graph.initializers()) {
    env[name] = tensor;
  }
  for (const auto& name : graph.inputs()) {
    auto it = inputs.find(name);
    if (it == inputs.end()) {
      return Status::InvalidArgument("missing graph input '" + name + "'");
    }
    env[name] = it->second;
  }

  RAVEN_ASSIGN_OR_RETURN(auto order, graph.TopologicalOrder());
  double total_flops = 0.0;
  std::size_t executed = 0;
  for (std::size_t idx : order) {
    const Node& node = graph.nodes()[idx];
    const Kernel* kernel = FindKernel(node.op_type);
    if (kernel == nullptr) {
      return Status::Unimplemented("no NNRT kernel for op '" + node.op_type +
                                   "' (node '" + node.name + "')");
    }
    KernelContext ctx;
    ctx.node = &node;
    ctx.inputs.reserve(node.inputs.size());
    for (const auto& in : node.inputs) {
      auto it = env.find(in);
      if (it == env.end()) {
        return Status::ExecutionError("value '" + in +
                                      "' not materialized before node '" +
                                      node.name + "'");
      }
      ctx.inputs.push_back(&it->second);
    }
    ctx.outputs.resize(node.outputs.size());
    RAVEN_RETURN_IF_ERROR((*kernel)(&ctx));
    for (std::size_t o = 0; o < node.outputs.size(); ++o) {
      env[node.outputs[o]] = std::move(ctx.outputs[o]);
    }
    total_flops += ctx.flops;
    ++executed;
  }

  TensorMap out;
  for (const auto& name : graph.outputs()) {
    auto it = env.find(name);
    if (it == env.end()) {
      return Status::ExecutionError("graph output '" + name +
                                    "' was not produced");
    }
    out[name] = std::move(it->second);
  }
  if (stats != nullptr) {
    stats->wall_micros = timer.ElapsedMicros();
    stats->simulated_micros = stats->wall_micros;
    stats->flops = total_flops;
    stats->nodes_executed = executed;
  }
  return out;
}

}  // namespace raven::nnrt
