#ifndef RAVEN_RELATIONAL_TABLE_H_
#define RAVEN_RELATIONAL_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace raven::relational {

/// A column of a columnar table. The engine is numeric at its core (like a
/// vectorized engine executing on encoded data): categorical columns are
/// dictionary-encoded, storing the code in `data` and the human-readable
/// categories in `dictionary`.
struct Column {
  std::string name;
  std::vector<double> data;
  /// Present iff the column is categorical; data values are indices into it.
  std::optional<std::vector<std::string>> dictionary;

  bool is_categorical() const { return dictionary.has_value(); }
  std::int64_t size() const { return static_cast<std::int64_t>(data.size()); }
};

/// An in-memory columnar table.
class Table {
 public:
  Table() = default;

  /// Adds a column; all columns must end up the same length.
  Status AddColumn(Column column);
  Status AddNumericColumn(const std::string& name, std::vector<double> data);
  Status AddCategoricalColumn(const std::string& name,
                              std::vector<double> codes,
                              std::vector<std::string> dictionary);

  std::int64_t num_rows() const {
    return columns_.empty() ? 0 : columns_.front().size();
  }
  std::int64_t num_columns() const {
    return static_cast<std::int64_t>(columns_.size());
  }

  const std::vector<Column>& columns() const { return columns_; }
  std::vector<Column>& mutable_columns() { return columns_; }

  /// Column index by name, or error.
  Result<std::int64_t> ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const;
  Result<const Column*> GetColumn(const std::string& name) const;

  std::vector<std::string> ColumnNames() const;

  /// Returns the first `n` rows (all columns) as a new table.
  Table Head(std::int64_t n) const;
  /// Returns rows [begin, end).
  Table SliceRows(std::int64_t begin, std::int64_t end) const;

  /// Packs the named columns into a float32 [n, k] tensor (model input).
  Result<Tensor> ToTensor(const std::vector<std::string>& column_names) const;

  /// Builds a table from a tensor, naming columns col0..colk-1 unless names
  /// are given.
  static Result<Table> FromTensor(const Tensor& tensor,
                                  std::vector<std::string> names = {});

  std::string ToString(std::int64_t max_rows = 10) const;

  /// Binary serialization in the common BinaryWriter format (columns with
  /// their dictionaries). Used by the plan-fragment wire protocol to ship
  /// scan partitions to pool workers.
  void Serialize(BinaryWriter* writer) const;
  static Result<Table> Deserialize(BinaryReader* reader);

 private:
  std::vector<Column> columns_;
};

/// Concatenates same-schema tables row-wise (numeric data; dictionaries
/// are not propagated, matching MaterializeAll's convention). Column-less
/// parts — the engine-wide "no rows produced" convention — are skipped, so
/// the result is column-less only when every part is. Fails when non-empty
/// parts disagree on schema. This is the single merge routine behind both
/// partitioned-parallel execution and distributed fragment reassembly.
Result<Table> ConcatTables(std::vector<Table> parts);

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_TABLE_H_
