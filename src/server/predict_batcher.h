#ifndef RAVEN_SERVER_PREDICT_BATCHER_H_
#define RAVEN_SERVER_PREDICT_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "runtime/inference_batcher.h"

namespace raven::server {

/// Cross-query inference micro-batch scheduler (the tentpole of the
/// paper's per-call-overhead argument applied across sessions): PREDICT
/// scorers from many in-flight queries submit their input rows here; rows
/// that share a model key are concatenated — in arrival order, each
/// submission's rows kept contiguous — into one NNRT Run, and the result
/// is sliced back to each waiter. 64 concurrent single-row PREDICT queries
/// cost ~1 session call instead of 64.
///
/// Leader/follower design, no dedicated flusher thread: the first
/// submission of an empty group becomes the leader and waits until its
/// `window_micros` deadline; followers that push the group to
/// `max_batch_rows` pending rows wake it early. The leader then claims the
/// group (new arrivals start a fresh one), runs the batch OUTSIDE the
/// lock, scatters, and wakes everyone. All waits are bounded: followers
/// wait on a leader that is itself bounded by a timed wait, so no
/// submission ever blocks indefinitely — including across Shutdown.
///
/// Byte-identity: every NNRT kernel computes output row i from input row i
/// alone, so the sliced results are bit-identical to solo runs (asserted
/// by predict_batcher_test and the server soak/fuzz differential bars).
class PredictBatcher : public runtime::InferenceBatcher {
 public:
  struct Stats {
    std::int64_t submissions = 0;       ///< Score() calls routed here
    std::int64_t rows_submitted = 0;
    std::int64_t batches_flushed = 0;   ///< physical NNRT invocations
    std::int64_t rows_flushed = 0;      ///< rows across those invocations
    /// Rows that actually shared a flush with rows from another
    /// submission (a batch of one coalesces nothing).
    std::int64_t rows_coalesced = 0;
    std::int64_t deadline_flushes = 0;  ///< window expired
    std::int64_t full_flushes = 0;      ///< max_batch_rows reached
    /// Submissions that bypassed coalescing: already at/over the row cap,
    /// non-batchable shape, or the batcher was shut down.
    std::int64_t solo_runs = 0;
  };

  PredictBatcher() = default;
  ~PredictBatcher() override;

  PredictBatcher(const PredictBatcher&) = delete;
  PredictBatcher& operator=(const PredictBatcher&) = delete;

  /// See runtime::InferenceBatcher. Thread-safe; called concurrently from
  /// dispatch threads and morsel-parallel pipeline workers.
  Result<Tensor> Score(const Request& request,
                       nnrt::RunStats* stats) override;

  /// Drains deterministically: wakes every pending leader (which flushes
  /// its group's rows through the session as usual) and routes all later
  /// submissions straight to their session. Called by QueryServer::Stop
  /// BEFORE the dispatch threads are joined, so no PREDICT waiter is ever
  /// left blocked on a batch window during shutdown. Idempotent; results
  /// stay byte-identical (drained batches run normally, they just stop
  /// waiting for company).
  void Shutdown();

  Stats stats() const;

 private:
  /// One blocked Score() call: its borrowed input and, after the flush,
  /// its slice of the batch result. Lives on the submitter's stack.
  struct Pending {
    const Tensor* input = nullptr;
    std::int64_t rows = 0;
    Result<Tensor> result = Status::Internal("pending batch flush");
    nnrt::RunStats run_stats;
    bool done = false;
  };

  /// Submissions accumulating toward one shared NNRT call, keyed by
  /// (model key, feature width). The first member is the leader.
  struct Group {
    std::vector<Pending*> members;
    std::int64_t rows = 0;
    std::int64_t limit = 0;  ///< min over members' max_batch_rows
    std::shared_ptr<nnrt::InferenceSession> session;
    bool full = false;   ///< limit reached — leader should flush now
    bool wake = false;   ///< Shutdown — leader should flush now
    std::condition_variable cv;
  };

  Result<Tensor> RunSolo(const Request& request, nnrt::RunStats* stats);
  /// Runs the claimed group's batch (outside mu_), then scatters results
  /// and stats to every member under mu_ and notifies the group.
  void FlushGroup(Group* group, bool full);

  mutable std::mutex mu_;
  bool closed_ = false;
  std::unordered_map<std::string, std::shared_ptr<Group>> groups_;
  Stats stats_;
};

}  // namespace raven::server

#endif  // RAVEN_SERVER_PREDICT_BATCHER_H_
