#include <gtest/gtest.h>

#include "data/flight.h"
#include "data/hospital.h"
#include "frontend/analyzer.h"
#include "frontend/pipeline_parser.h"
#include "frontend/sql_parser.h"
#include "ir/ir.h"
#include "test_util.h"

namespace raven::frontend {
namespace {

TEST(PipelineParserTest, ParsesSimplePipeline) {
  const std::string script =
      "from sklearn.pipeline import Pipeline\n"
      "from sklearn.tree import DecisionTreeClassifier\n"
      "# a comment\n"
      "model_pipeline = Pipeline([('clf', DecisionTreeClassifier("
      "max_depth=6))])\n";
  PyScript parsed = *ParsePipelineScript(script);
  EXPECT_EQ(parsed.assignments.size(), 1u);
  PipelineSpec spec = *ExtractPipelineSpec(parsed);
  EXPECT_EQ(spec.predictor_callable, "DecisionTreeClassifier");
  EXPECT_EQ(spec.predictor_params.at("max_depth"), 6.0);
  EXPECT_TRUE(spec.branches.empty());
}

TEST(PipelineParserTest, ParsesFeatureUnion) {
  PyScript parsed = *ParsePipelineScript(data::HospitalTreeScript());
  PipelineSpec spec = *ExtractPipelineSpec(parsed);
  ASSERT_EQ(spec.branches.size(), 2u);
  EXPECT_EQ(spec.branches[0].callable, "StandardScaler");
  EXPECT_EQ(spec.branches[0].columns.front(), "age");
  EXPECT_EQ(spec.branches[1].callable, "OneHotEncoder");
  EXPECT_EQ(spec.predictor_callable, "DecisionTreeRegressor");
}

TEST(PipelineParserTest, VariableAliasResolved) {
  const std::string script =
      "clf = Pipeline([('m', LinearRegression())])\n"
      "model_pipeline = clf\n";
  PyScript parsed = *ParsePipelineScript(script);
  PipelineSpec spec = *ExtractPipelineSpec(parsed);
  EXPECT_EQ(spec.predictor_callable, "LinearRegression");
}

TEST(PipelineParserTest, ControlFlowRejected) {
  const std::string script =
      "for i in range(10):\n"
      "    train(i)\n";
  auto result = ParsePipelineScript(script);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("control-flow"),
            std::string::npos);
}

TEST(PipelineParserTest, UnknownEstimatorRejected) {
  const std::string script =
      "model_pipeline = Pipeline([('clf', XGBoostMagicClassifier())])\n";
  PyScript parsed = *ParsePipelineScript(script);
  auto spec = ExtractPipelineSpec(parsed);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("XGBoostMagicClassifier"),
            std::string::npos);
}

TEST(PipelineParserTest, UnterminatedStringIsParseError) {
  EXPECT_FALSE(ParsePipelineScript("x = 'oops\n").ok());
}

TEST(PipelineParserTest, NoPipelineFound) {
  PyScript parsed = *ParsePipelineScript("x = 5\n");
  EXPECT_FALSE(ExtractPipelineSpec(parsed).ok());
}

TEST(PipelineParserTest, KnowledgeBase) {
  EXPECT_TRUE(KnowledgeBaseContains("StandardScaler"));
  EXPECT_TRUE(KnowledgeBaseContains("MLPRegressor"));
  EXPECT_FALSE(KnowledgeBaseContains("TransformerLM"));
}

class SqlParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto data = data::MakeHospitalDataset(50, 5);
    ASSERT_NO_FATAL_FAILURE(test_util::RegisterHospitalTables(
        &catalog_, data, /*include_joined=*/false));
    model_builder_ = [](const std::string& name, ir::IrNodePtr child,
                        const std::string& out) -> Result<ir::IrNodePtr> {
      // Test double: record the model reference without catalog lookup.
      return ir::IrNode::OpaquePipeline(std::move(child), name, "", "test",
                                        {}, out);
    };
  }

  relational::Catalog catalog_;
  ModelNodeBuilder model_builder_;
};

TEST_F(SqlParserTest, SimpleSelect) {
  auto plan = std::move(ParseInferenceQuery(
      "SELECT id, age FROM patient_info WHERE age > 40", catalog_,
      model_builder_)).value();
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kProject), 1u);
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kFilter), 1u);
  EXPECT_TRUE(plan.Validate(catalog_).ok());
}

TEST_F(SqlParserTest, JoinChain) {
  auto plan = std::move(ParseInferenceQuery(
      "SELECT * FROM patient_info AS pi "
      "JOIN blood_tests AS bt ON pi.id = bt.id "
      "JOIN prenatal_tests AS pt ON bt.id = pt.id",
      catalog_, model_builder_)).value();
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kJoin), 2u);
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kTableScan), 3u);
}

TEST_F(SqlParserTest, PaperRunningExample) {
  const std::string sql =
      "WITH data AS (SELECT * FROM patient_info AS pi "
      "  JOIN blood_tests AS bt ON pi.id = bt.id "
      "  JOIN prenatal_tests AS pt ON bt.id = pt.id) "
      "SELECT d.id, p.length_of_stay "
      "FROM PREDICT(MODEL='duration_of_stay', DATA=data AS d) "
      "WITH(length_of_stay float) AS p "
      "WHERE d.pregnant = 1 AND p.length_of_stay > 7";
  auto plan = std::move(ParseInferenceQuery(sql, catalog_, model_builder_)).value();
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kOpaquePipeline), 1u);
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kJoin), 2u);
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("duration_of_stay"), std::string::npos);
  EXPECT_NE(s.find("length_of_stay"), std::string::npos);
}

TEST_F(SqlParserTest, AtVariableModelReference) {
  auto plan = std::move(ParseInferenceQuery(
      "SELECT * FROM PREDICT(MODEL=@my_model, DATA=patient_info)", catalog_,
      model_builder_)).value();
  bool found = false;
  ir::VisitIr(plan.root(), [&](const ir::IrNode* node) {
    if (node->kind == ir::IrOpKind::kOpaquePipeline) {
      EXPECT_EQ(node->model_name, "my_model");
      found = true;
    }
  });
  EXPECT_TRUE(found);
}

TEST_F(SqlParserTest, StringLiteralResolvesAgainstDictionary) {
  auto plan = std::move(ParseInferenceQuery(
      "SELECT id FROM patient_info WHERE gender = 'F'", catalog_,
      model_builder_)).value();
  // 'F' is code 0 in the gender dictionary.
  bool found = false;
  ir::VisitIr(plan.root(), [&](const ir::IrNode* node) {
    if (node->kind == ir::IrOpKind::kFilter) {
      EXPECT_NE(node->predicate->ToString().find("(gender = 0)"),
                std::string::npos);
      found = true;
    }
  });
  EXPECT_TRUE(found);
}

TEST_F(SqlParserTest, UnknownStringValueIsError) {
  auto result = ParseInferenceQuery(
      "SELECT id FROM patient_info WHERE gender = 'X'", catalog_,
      model_builder_);
  EXPECT_FALSE(result.ok());
}

TEST_F(SqlParserTest, ErrorsOnBadSyntax) {
  EXPECT_FALSE(
      ParseInferenceQuery("SELECT FROM x", catalog_, model_builder_).ok());
  EXPECT_FALSE(ParseInferenceQuery("SELECT * FROM missing_table", catalog_,
                                   model_builder_)
                   .ok());
  EXPECT_FALSE(ParseInferenceQuery("SELECT * FROM patient_info trailing junk(",
                                   catalog_, model_builder_)
                   .ok());
  EXPECT_FALSE(ParseInferenceQuery(
                   "SELECT * FROM PREDICT(MODEL=42, DATA=patient_info)",
                   catalog_, model_builder_)
                   .ok());
}

TEST_F(SqlParserTest, LimitAndIn) {
  auto plan = std::move(ParseInferenceQuery(
      "SELECT id FROM patient_info WHERE pregnant IN (1) LIMIT 3", catalog_,
      model_builder_)).value();
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kLimit), 1u);
}

TEST_F(SqlParserTest, AggregateSelect) {
  auto plan = std::move(ParseInferenceQuery(
      "SELECT COUNT(*) AS n, AVG(age) AS mean_age, MAX(bp) "
      "FROM patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id "
      "WHERE pregnant = 1",
      catalog_, model_builder_)).value();
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kAggregate), 1u);
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kFilter), 1u);
  ASSERT_EQ(plan.root()->kind, ir::IrOpKind::kAggregate);
  const auto& aggs = plan.root()->aggregates;
  ASSERT_EQ(aggs.size(), 3u);
  EXPECT_EQ(aggs[0].func, ir::AggFunc::kCount);
  EXPECT_EQ(aggs[0].output_name, "n");
  EXPECT_EQ(aggs[1].func, ir::AggFunc::kAvg);
  EXPECT_EQ(aggs[1].column, "age");
  EXPECT_EQ(aggs[2].output_name, "max_bp");  // default alias
  EXPECT_TRUE(plan.Validate(catalog_).ok());
  auto schema = *ir::IrPlan::ComputeSchema(*plan.root(), catalog_);
  EXPECT_EQ(schema, (std::vector<std::string>{"n", "mean_age", "max_bp"}));
}

TEST_F(SqlParserTest, AggregateWithLimit) {
  auto plan = std::move(ParseInferenceQuery(
      "SELECT COUNT(*) AS n FROM patient_info LIMIT 1", catalog_,
      model_builder_)).value();
  ASSERT_EQ(plan.root()->kind, ir::IrOpKind::kLimit);
  EXPECT_EQ(plan.root()->children[0]->kind, ir::IrOpKind::kAggregate);
}

TEST_F(SqlParserTest, AggregateErrors) {
  // Mixing aggregates and plain items is rejected (no GROUP BY support).
  EXPECT_FALSE(ParseInferenceQuery("SELECT COUNT(*), id FROM patient_info",
                                   catalog_, model_builder_)
                   .ok());
  // Star is only valid under COUNT.
  EXPECT_FALSE(ParseInferenceQuery("SELECT SUM(*) FROM patient_info",
                                   catalog_, model_builder_)
                   .ok());
  // A column named like an aggregate function still parses as a column
  // when not followed by '('.
  auto plan = ParseInferenceQuery("SELECT count FROM patient_info",
                                  catalog_, model_builder_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->CountKind(ir::IrOpKind::kAggregate), 0u);
}

TEST_F(SqlParserTest, GroupByBasic) {
  auto plan = std::move(ParseInferenceQuery(
      "SELECT pregnant, COUNT(*) AS n, AVG(age) AS mean_age "
      "FROM patient_info GROUP BY pregnant",
      catalog_, model_builder_)).value();
  // Shape: Project (select order/aliases) over GroupBy.
  ASSERT_EQ(plan.root()->kind, ir::IrOpKind::kProject);
  const ir::IrNode* group = plan.root()->children[0].get();
  ASSERT_EQ(group->kind, ir::IrOpKind::kGroupBy);
  EXPECT_EQ(group->group_keys, (std::vector<std::string>{"pregnant"}));
  ASSERT_EQ(group->aggregates.size(), 2u);
  EXPECT_EQ(group->aggregates[0].func, ir::AggFunc::kCount);
  EXPECT_EQ(group->aggregates[1].column, "age");
  EXPECT_TRUE(plan.Validate(catalog_).ok());
  auto schema = *ir::IrPlan::ComputeSchema(*plan.root(), catalog_);
  EXPECT_EQ(schema, (std::vector<std::string>{"pregnant", "n", "mean_age"}));
}

TEST_F(SqlParserTest, GroupByMultiKeySelectOrderPreserved) {
  // Aggregate listed before a key: the projection restores select order.
  auto plan = std::move(ParseInferenceQuery(
      "SELECT MAX(age) AS oldest, gender, pregnant FROM patient_info "
      "GROUP BY gender, pregnant",
      catalog_, model_builder_)).value();
  EXPECT_TRUE(plan.Validate(catalog_).ok());
  auto schema = *ir::IrPlan::ComputeSchema(*plan.root(), catalog_);
  EXPECT_EQ(schema, (std::vector<std::string>{"oldest", "gender", "pregnant"}));
}

TEST_F(SqlParserTest, HavingBecomesFilterAboveGroupBy) {
  auto plan = std::move(ParseInferenceQuery(
      "SELECT pregnant, AVG(age) AS mean_age FROM patient_info "
      "GROUP BY pregnant HAVING AVG(age) > 30 AND COUNT(*) > 2",
      catalog_, model_builder_)).value();
  ASSERT_EQ(plan.root()->kind, ir::IrOpKind::kProject);
  const ir::IrNode* filter = plan.root()->children[0].get();
  ASSERT_EQ(filter->kind, ir::IrOpKind::kFilter);
  // AVG(age) reuses the select item's output; COUNT(*) becomes a hidden
  // aggregate that the projection drops again.
  EXPECT_NE(filter->predicate->ToString().find("mean_age"),
            std::string::npos);
  EXPECT_NE(filter->predicate->ToString().find("count"), std::string::npos);
  const ir::IrNode* group = filter->children[0].get();
  ASSERT_EQ(group->kind, ir::IrOpKind::kGroupBy);
  ASSERT_EQ(group->aggregates.size(), 2u);  // mean_age + hidden count
  EXPECT_TRUE(plan.Validate(catalog_).ok());
  auto schema = *ir::IrPlan::ComputeSchema(*plan.root(), catalog_);
  EXPECT_EQ(schema, (std::vector<std::string>{"pregnant", "mean_age"}));
}

TEST_F(SqlParserTest, GroupByWithoutAggregatesIsDistinct) {
  // SELECT DISTINCT-shaped: keys only, no aggregate items.
  auto plan = std::move(ParseInferenceQuery(
      "SELECT gender, pregnant FROM patient_info GROUP BY gender, pregnant",
      catalog_, model_builder_)).value();
  EXPECT_TRUE(plan.Validate(catalog_).ok()) << plan.ToString();
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kGroupBy), 1u);
  auto schema = *ir::IrPlan::ComputeSchema(*plan.root(), catalog_);
  EXPECT_EQ(schema, (std::vector<std::string>{"gender", "pregnant"}));
}

TEST_F(SqlParserTest, HavingHiddenAggregateDodgesGroupKeyName) {
  // A group key literally named like a default aggregate output
  // ("count_v") must not collide with the hidden HAVING item.
  relational::Table t;
  ASSERT_TRUE(t.AddNumericColumn("count_v", {1, 1, 2}).ok());
  ASSERT_TRUE(t.AddNumericColumn("v", {10, 20, 30}).ok());
  ASSERT_TRUE(catalog_.RegisterTable("tcol", std::move(t)).ok());
  auto plan = std::move(ParseInferenceQuery(
      "SELECT count_v FROM tcol GROUP BY count_v HAVING COUNT(v) > 1",
      catalog_, model_builder_)).value();
  EXPECT_TRUE(plan.Validate(catalog_).ok()) << plan.ToString();
  // The hidden aggregate got a de-collided name.
  bool found = false;
  ir::VisitIr(plan.root(), [&](const ir::IrNode* node) {
    if (node->kind != ir::IrOpKind::kGroupBy) return;
    ASSERT_EQ(node->aggregates.size(), 1u);
    EXPECT_EQ(node->aggregates[0].output_name, "count_v_2");
    found = true;
  });
  EXPECT_TRUE(found);
}

TEST_F(SqlParserTest, OrderByColumnsAndOrdinals) {
  auto plan = std::move(ParseInferenceQuery(
      "SELECT id, age FROM patient_info ORDER BY age DESC, 1 LIMIT 5",
      catalog_, model_builder_)).value();
  // LIMIT must sit above the sort (top-5 by age), sort above the project.
  ASSERT_EQ(plan.root()->kind, ir::IrOpKind::kLimit);
  const ir::IrNode* order = plan.root()->children[0].get();
  ASSERT_EQ(order->kind, ir::IrOpKind::kOrderBy);
  ASSERT_EQ(order->sort_keys.size(), 2u);
  EXPECT_EQ(order->sort_keys[0].column, "age");
  EXPECT_TRUE(order->sort_keys[0].descending);
  EXPECT_EQ(order->sort_keys[1].column, "id");  // ordinal 1 -> first item
  EXPECT_FALSE(order->sort_keys[1].descending);
  EXPECT_EQ(order->children[0]->kind, ir::IrOpKind::kProject);
  EXPECT_TRUE(plan.Validate(catalog_).ok());
}

TEST_F(SqlParserTest, GroupByOrderByOrdinalOverAggregate) {
  auto plan = std::move(ParseInferenceQuery(
      "SELECT gender, AVG(age) AS mean_age FROM patient_info "
      "GROUP BY gender ORDER BY 2 DESC",
      catalog_, model_builder_)).value();
  ASSERT_EQ(plan.root()->kind, ir::IrOpKind::kOrderBy);
  ASSERT_EQ(plan.root()->sort_keys.size(), 1u);
  EXPECT_EQ(plan.root()->sort_keys[0].column, "mean_age");
  EXPECT_TRUE(plan.root()->sort_keys[0].descending);
  EXPECT_TRUE(plan.Validate(catalog_).ok());
}

TEST_F(SqlParserTest, GroupByErrors) {
  // Non-key plain item.
  EXPECT_FALSE(ParseInferenceQuery(
                   "SELECT age, COUNT(*) FROM patient_info GROUP BY pregnant",
                   catalog_, model_builder_)
                   .ok());
  // SELECT * with GROUP BY.
  EXPECT_FALSE(ParseInferenceQuery(
                   "SELECT * FROM patient_info GROUP BY pregnant", catalog_,
                   model_builder_)
                   .ok());
  // HAVING without GROUP BY.
  EXPECT_FALSE(ParseInferenceQuery(
                   "SELECT COUNT(*) FROM patient_info HAVING COUNT(*) > 1",
                   catalog_, model_builder_)
                   .ok());
  // ORDER BY ordinal out of range / over SELECT *.
  EXPECT_FALSE(ParseInferenceQuery(
                   "SELECT id FROM patient_info ORDER BY 2", catalog_,
                   model_builder_)
                   .ok());
  EXPECT_FALSE(ParseInferenceQuery(
                   "SELECT * FROM patient_info ORDER BY 1", catalog_,
                   model_builder_)
                   .ok());
  // Unknown group key surfaces through Validate.
  auto plan = ParseInferenceQuery(
      "SELECT no_such, COUNT(*) FROM patient_info GROUP BY no_such", catalog_,
      model_builder_);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->Validate(catalog_).ok());
}

TEST_F(SqlParserTest, ParseErrorsReportTokenAndByteOffset) {
  // "WHRE" is a stray identifier where end-of-query (or a clause) should
  // be: the error must name the token and its byte offset.
  const std::string sql = "SELECT id FROM patient_info WHRE age > 40";
  auto result = ParseInferenceQuery(sql, catalog_, model_builder_);
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().message();
  EXPECT_NE(message.find("'WHRE'"), std::string::npos) << message;
  EXPECT_NE(message.find("byte offset " +
                         std::to_string(sql.find("WHRE"))),
            std::string::npos)
      << message;

  // Missing closing parenthesis: the failure point is end-of-input.
  auto eof = ParseInferenceQuery("SELECT id FROM (SELECT id FROM patient_info",
                                 catalog_, model_builder_);
  ASSERT_FALSE(eof.ok());
  EXPECT_NE(eof.status().message().find("<end of input>"), std::string::npos)
      << eof.status().message();
  EXPECT_NE(eof.status().message().find("byte offset"), std::string::npos);

  // Lexer-level error carries an offset too.
  auto lex = ParseInferenceQuery("SELECT id FROM patient_info WHERE age > #",
                                 catalog_, model_builder_);
  ASSERT_FALSE(lex.ok());
  EXPECT_NE(lex.status().message().find("byte offset 40"), std::string::npos)
      << lex.status().message();

  // A numeric literal past DBL_MAX is a ParseError, not a crash.
  auto huge = ParseInferenceQuery(
      "SELECT id FROM patient_info WHERE age > 1" + std::string(320, '0'),
      catalog_, model_builder_);
  ASSERT_FALSE(huge.ok());
  EXPECT_NE(huge.status().message().find("out of range"), std::string::npos)
      << huge.status().message();
  EXPECT_NE(huge.status().message().find("byte offset 40"), std::string::npos)
      << huge.status().message();
}

TEST_F(SqlParserTest, ParameterPlaceholdersNumberedLexically) {
  auto plan = ParseInferenceQuery(
      "SELECT id FROM patient_info WHERE age > ? AND weight < ? + 10",
      catalog_, model_builder_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(ir::PlanParamCount(*plan->root()), 2);
  // Binding replaces every placeholder with its literal; the bound plan
  // carries none.
  auto bound = ir::BindPlanParameters(*plan->root(), {40.0, 90.0});
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(ir::PlanParamCount(**bound), 0);
  bool saw_forty = false;
  ir::VisitIr(bound->get(), [&saw_forty](const ir::IrNode* node) {
    if (node->kind == ir::IrOpKind::kFilter &&
        node->predicate->ToString().find("40") != std::string::npos) {
      saw_forty = true;
    }
  });
  EXPECT_TRUE(saw_forty);
  // Too few values fails fast instead of executing with unbound params.
  EXPECT_FALSE(ir::BindPlanParameters(*plan->root(), {40.0}).ok());
  // Fingerprints: the parameterized template and a bound instance differ.
  EXPECT_NE(ir::PlanFingerprint(*plan->root()),
            ir::PlanFingerprint(**bound));
}

TEST_F(SqlParserTest, StatementLengthCapIsACleanParseError) {
  std::string sql = "SELECT id FROM patient_info --";
  sql.append(kMaxSqlLength, 'x');
  auto result = ParseInferenceQuery(sql, catalog_, model_builder_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("exceeds"), std::string::npos)
      << result.status().message();
  // One byte under the cap parses (the comment is ignored).
  std::string under = "SELECT id FROM patient_info --";
  under.append(kMaxSqlLength - under.size(), 'x');
  EXPECT_TRUE(ParseInferenceQuery(under, catalog_, model_builder_).ok());
}

TEST_F(SqlParserTest, NestingDepthCapIsACleanParseError) {
  // An attacker-controlled paren tower must not turn recursive descent
  // into a stack overflow: 5000 levels fail with a diagnosable error.
  std::string deep = "SELECT id FROM patient_info WHERE ";
  deep.append(5000, '(');
  deep += "age > 1";
  deep.append(5000, ')');
  auto result = ParseInferenceQuery(deep, catalog_, model_builder_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("nesting depth"),
            std::string::npos)
      << result.status().message();

  // NOT chains recurse through a different path; guard them too.
  std::string nots = "SELECT id FROM patient_info WHERE ";
  for (int i = 0; i < 5000; ++i) nots += "NOT ";
  nots += "age > 1";
  auto not_result = ParseInferenceQuery(nots, catalog_, model_builder_);
  ASSERT_FALSE(not_result.ok());
  EXPECT_EQ(not_result.status().code(), StatusCode::kParseError);

  // Comfortable nesting still parses.
  std::string fine = "SELECT id FROM patient_info WHERE ";
  fine.append(20, '(');
  fine += "age > 1";
  fine.append(20, ')');
  EXPECT_TRUE(ParseInferenceQuery(fine, catalog_, model_builder_).ok());
}

TEST_F(SqlParserTest, NormalizeSqlCanonicalizesSpacingOnly) {
  auto a = NormalizeSql(
      "SELECT   id,age FROM patient_info -- trailing comment\n WHERE age>40");
  auto b = NormalizeSql(
      "SELECT id, age\nFROM patient_info WHERE age > 40");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  // Identifier case is preserved: `age` and `AGE` are different columns,
  // so conflating them would alias distinct plans in the cache.
  auto lower = NormalizeSql("SELECT age FROM t");
  auto upper = NormalizeSql("SELECT AGE FROM t");
  ASSERT_TRUE(lower.ok());
  ASSERT_TRUE(upper.ok());
  EXPECT_NE(lower.value(), upper.value());
  // String literals keep their quotes (and their case).
  auto quoted = NormalizeSql("SELECT * FROM PREDICT(MODEL='los', DATA=t)");
  ASSERT_TRUE(quoted.ok());
  EXPECT_NE(quoted->find("'los'"), std::string::npos);
  // Text that does not lex does not normalize.
  EXPECT_FALSE(NormalizeSql("SELECT # FROM t").ok());
}

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = data::MakeHospitalDataset(800, 6);
    ASSERT_TRUE(catalog_.RegisterTable("patients", data_.joined).ok());
    pipeline_ = *data::TrainHospitalTree(data_, 5);
  }

  data::HospitalDataset data_;
  relational::Catalog catalog_;
  ml::ModelPipeline pipeline_;
};

TEST_F(AnalyzerTest, AnalyzableScriptYieldsModelPipelineNode) {
  ASSERT_TRUE(catalog_.InsertModel("los", data::HospitalTreeScript(),
                                   pipeline_.ToBytes()).ok());
  StaticAnalyzer analyzer(&catalog_);
  AnalysisStats stats;
  auto plan = std::move(analyzer.Analyze(
      "SELECT * FROM PREDICT(MODEL='los', DATA=patients) WITH(pred float)",
      &stats)).value();
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kModelPipeline), 1u);
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kOpaquePipeline), 0u);
  EXPECT_FALSE(stats.used_udf_fallback);
}

TEST_F(AnalyzerTest, UnanalyzableScriptFallsBackToUdf) {
  const std::string script =
      "import custom_lib\n"
      "model_pipeline = Pipeline([('clf', custom_lib.MagicModel())])\n";
  ASSERT_TRUE(catalog_.InsertModel("magic", script, pipeline_.ToBytes()).ok());
  StaticAnalyzer analyzer(&catalog_);
  AnalysisStats stats;
  auto plan = std::move(analyzer.Analyze(
      "SELECT * FROM PREDICT(MODEL='magic', DATA=patients)", &stats)).value();
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kOpaquePipeline), 1u);
  EXPECT_TRUE(stats.used_udf_fallback);
  EXPECT_FALSE(stats.fallback_reason.empty());
}

TEST_F(AnalyzerTest, ScriptModelMismatchFallsBack) {
  // Script claims a logistic regression; stored pipeline is a tree.
  ASSERT_TRUE(catalog_.InsertModel("mismatch", data::FlightLogregScript(),
                                   pipeline_.ToBytes()).ok());
  StaticAnalyzer analyzer(&catalog_);
  AnalysisStats stats;
  auto plan = std::move(analyzer.Analyze(
      "SELECT * FROM PREDICT(MODEL='mismatch', DATA=patients)", &stats)).value();
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kOpaquePipeline), 1u);
  EXPECT_TRUE(stats.used_udf_fallback);
}

TEST_F(AnalyzerTest, MissingModelIsHardError) {
  StaticAnalyzer analyzer(&catalog_);
  EXPECT_FALSE(
      analyzer.Analyze("SELECT * FROM PREDICT(MODEL='nope', DATA=patients)")
          .ok());
}

TEST_F(AnalyzerTest, AnalysisIsFast) {
  // The paper reports <10 ms static analysis; allow generous slack for CI.
  ASSERT_TRUE(catalog_.InsertModel("los", data::HospitalTreeScript(),
                                   pipeline_.ToBytes()).ok());
  StaticAnalyzer analyzer(&catalog_);
  AnalysisStats stats;
  (void)*analyzer.Analyze(
      "SELECT * FROM PREDICT(MODEL='los', DATA=patients)", &stats);
  EXPECT_LT(stats.script_analysis_micros + stats.sql_parse_micros, 100000.0);
}

TEST(SpecMatchTest, ChecksBranchKindsAndColumns) {
  auto data = data::MakeHospitalDataset(300, 7);
  auto pipeline = *data::TrainHospitalTree(data, 4);
  PyScript parsed = *ParsePipelineScript(data::HospitalTreeScript());
  PipelineSpec spec = *ExtractPipelineSpec(parsed);
  EXPECT_TRUE(
      StaticAnalyzer::CheckSpecMatchesPipeline(spec, pipeline).ok());
  // Swap branch callables -> kind mismatch.
  std::swap(spec.branches[0].callable, spec.branches[1].callable);
  EXPECT_FALSE(
      StaticAnalyzer::CheckSpecMatchesPipeline(spec, pipeline).ok());
}

}  // namespace
}  // namespace raven::frontend
