#include "ml/featurizer.h"

#include <cmath>

namespace raven::ml {

Status StandardScaler::Fit(const Tensor& x) {
  if (x.rank() != 2) {
    return Status::InvalidArgument("StandardScaler::Fit expects [n, d]");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  if (n == 0) return Status::InvalidArgument("cannot fit scaler on 0 rows");
  mean_.assign(static_cast<std::size_t>(d), 0.0);
  scale_.assign(static_cast<std::size_t>(d), 1.0);
  for (std::int64_t c = 0; c < d; ++c) {
    double sum = 0.0;
    for (std::int64_t r = 0; r < n; ++r) sum += x.At(r, c);
    const double mean = sum / static_cast<double>(n);
    double var = 0.0;
    for (std::int64_t r = 0; r < n; ++r) {
      const double diff = x.At(r, c) - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(n);
    mean_[static_cast<std::size_t>(c)] = mean;
    scale_[static_cast<std::size_t>(c)] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
  }
  return Status::OK();
}

Result<Tensor> StandardScaler::Transform(const Tensor& x) const {
  if (x.rank() != 2 ||
      x.dim(1) != static_cast<std::int64_t>(mean_.size())) {
    return Status::InvalidArgument("StandardScaler::Transform shape mismatch");
  }
  Tensor out = Tensor::Zeros(x.shape());
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  // Float32 arithmetic, bit-identical to the NNRT Scaler kernel: tree
  // thresholds learned on these features sit exactly on feature values, so
  // the interpreted and translated paths must round identically.
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = 0; c < d; ++c) {
      out.At(r, c) =
          (x.At(r, c) - static_cast<float>(mean_[static_cast<std::size_t>(c)])) *
          static_cast<float>(scale_[static_cast<std::size_t>(c)]);
    }
  }
  return out;
}

void StandardScaler::Serialize(BinaryWriter* writer) const {
  writer->WriteF64Vector(mean_);
  writer->WriteF64Vector(scale_);
}

Result<StandardScaler> StandardScaler::Deserialize(BinaryReader* reader) {
  StandardScaler s;
  RAVEN_ASSIGN_OR_RETURN(s.mean_, reader->ReadF64Vector());
  RAVEN_ASSIGN_OR_RETURN(s.scale_, reader->ReadF64Vector());
  if (s.mean_.size() != s.scale_.size()) {
    return Status::ParseError("scaler mean/scale length mismatch");
  }
  return s;
}

Status OneHotEncoder::Fit(const Tensor& x) {
  if (x.rank() != 2) {
    return Status::InvalidArgument("OneHotEncoder::Fit expects [n, d]");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  cardinalities_.assign(static_cast<std::size_t>(d), 1);
  kept_codes_.assign(static_cast<std::size_t>(d), {});
  for (std::int64_t c = 0; c < d; ++c) {
    std::int64_t max_code = 0;
    for (std::int64_t r = 0; r < n; ++r) {
      max_code = std::max(
          max_code, static_cast<std::int64_t>(std::llround(x.At(r, c))));
    }
    cardinalities_[static_cast<std::size_t>(c)] = max_code + 1;
  }
  return Status::OK();
}

std::int64_t OneHotEncoder::ColumnWidth(std::size_t col) const {
  if (col < kept_codes_.size() && !kept_codes_[col].empty()) {
    return static_cast<std::int64_t>(kept_codes_[col].size());
  }
  return cardinalities_[col];
}

std::vector<std::int64_t> OneHotEncoder::EmittedCodes(std::size_t col) const {
  if (col < kept_codes_.size() && !kept_codes_[col].empty()) {
    return kept_codes_[col];
  }
  std::vector<std::int64_t> codes(
      static_cast<std::size_t>(cardinalities_[col]));
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<std::int64_t>(i);
  }
  return codes;
}

Status OneHotEncoder::RestrictColumn(std::size_t col,
                                     std::vector<std::int64_t> codes) {
  if (col >= cardinalities_.size()) {
    return Status::OutOfRange("OneHotEncoder column out of range");
  }
  if (kept_codes_.size() != cardinalities_.size()) {
    kept_codes_.assign(cardinalities_.size(), {});
  }
  for (std::int64_t code : codes) {
    if (code < 0 || code >= cardinalities_[col]) {
      return Status::OutOfRange("kept code out of range");
    }
  }
  if (static_cast<std::int64_t>(codes.size()) == cardinalities_[col]) {
    kept_codes_[col].clear();  // full set: no restriction
  } else {
    kept_codes_[col] = std::move(codes);
  }
  return Status::OK();
}

std::int64_t OneHotEncoder::TotalOutputFeatures() const {
  std::int64_t total = 0;
  for (std::size_t c = 0; c < cardinalities_.size(); ++c) {
    total += ColumnWidth(c);
  }
  return total;
}

Result<Tensor> OneHotEncoder::Transform(const Tensor& x) const {
  if (x.rank() != 2 ||
      x.dim(1) != static_cast<std::int64_t>(cardinalities_.size())) {
    return Status::InvalidArgument("OneHotEncoder::Transform shape mismatch");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  const std::int64_t width = TotalOutputFeatures();
  Tensor out = Tensor::Zeros({n, width});
  for (std::int64_t r = 0; r < n; ++r) {
    std::int64_t offset = 0;
    for (std::int64_t c = 0; c < d; ++c) {
      const std::size_t cs = static_cast<std::size_t>(c);
      const std::int64_t code =
          static_cast<std::int64_t>(std::llround(x.At(r, c)));
      const std::int64_t w = ColumnWidth(cs);
      if (kept_codes_.size() > cs && !kept_codes_[cs].empty()) {
        const auto& kept = kept_codes_[cs];
        for (std::size_t i = 0; i < kept.size(); ++i) {
          if (kept[i] == code) {
            out.raw()[r * width + offset + static_cast<std::int64_t>(i)] =
                1.0f;
            break;
          }
        }
      } else if (code >= 0 && code < cardinalities_[cs]) {
        out.raw()[r * width + offset + code] = 1.0f;
      }
      offset += w;
    }
  }
  return out;
}

void OneHotEncoder::Serialize(BinaryWriter* writer) const {
  writer->WriteI64Vector(cardinalities_);
  writer->WriteU64(kept_codes_.size());
  for (const auto& kept : kept_codes_) writer->WriteI64Vector(kept);
}

Result<OneHotEncoder> OneHotEncoder::Deserialize(BinaryReader* reader) {
  OneHotEncoder e;
  RAVEN_ASSIGN_OR_RETURN(e.cardinalities_, reader->ReadI64Vector());
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t n, reader->ReadU64());
  for (std::uint64_t i = 0; i < n; ++i) {
    RAVEN_ASSIGN_OR_RETURN(auto kept, reader->ReadI64Vector());
    e.kept_codes_.push_back(std::move(kept));
  }
  if (e.kept_codes_.size() != e.cardinalities_.size()) {
    e.kept_codes_.assign(e.cardinalities_.size(), {});
  }
  return e;
}

const char* TransformKindToString(TransformKind kind) {
  switch (kind) {
    case TransformKind::kIdentity:
      return "identity";
    case TransformKind::kScaler:
      return "scaler";
    case TransformKind::kOneHot:
      return "onehot";
  }
  return "?";
}

std::int64_t FeatureBranch::OutputWidth() const {
  switch (kind) {
    case TransformKind::kIdentity:
    case TransformKind::kScaler:
      return static_cast<std::int64_t>(input_columns.size());
    case TransformKind::kOneHot:
      return onehot.TotalOutputFeatures();
  }
  return 0;
}

Result<Tensor> SelectColumns(const Tensor& x,
                             const std::vector<std::int64_t>& columns) {
  if (x.rank() != 2) {
    return Status::InvalidArgument("SelectColumns expects [n, d]");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  for (std::int64_t c : columns) {
    if (c < 0 || c >= d) {
      return Status::OutOfRange("column index " + std::to_string(c) +
                                " out of range (d=" + std::to_string(d) + ")");
    }
  }
  const std::int64_t m = static_cast<std::int64_t>(columns.size());
  Tensor out = Tensor::Zeros({n, m});
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t j = 0; j < m; ++j) {
      out.At(r, j) = x.At(r, columns[static_cast<std::size_t>(j)]);
    }
  }
  return out;
}

Status Featurizer::Fit(const Tensor& x) {
  for (auto& branch : branches_) {
    RAVEN_ASSIGN_OR_RETURN(Tensor sub, SelectColumns(x, branch.input_columns));
    switch (branch.kind) {
      case TransformKind::kIdentity:
        break;
      case TransformKind::kScaler:
        RAVEN_RETURN_IF_ERROR(branch.scaler.Fit(sub));
        break;
      case TransformKind::kOneHot:
        RAVEN_RETURN_IF_ERROR(branch.onehot.Fit(sub));
        break;
    }
  }
  return Status::OK();
}

Result<Tensor> Featurizer::Transform(const Tensor& x) const {
  const std::int64_t n = x.dim(0);
  const std::int64_t width = OutputWidth();
  Tensor out = Tensor::Zeros({n, width});
  std::int64_t offset = 0;
  for (const auto& branch : branches_) {
    RAVEN_ASSIGN_OR_RETURN(Tensor sub, SelectColumns(x, branch.input_columns));
    Tensor transformed;
    switch (branch.kind) {
      case TransformKind::kIdentity:
        transformed = std::move(sub);
        break;
      case TransformKind::kScaler: {
        RAVEN_ASSIGN_OR_RETURN(transformed, branch.scaler.Transform(sub));
        break;
      }
      case TransformKind::kOneHot: {
        RAVEN_ASSIGN_OR_RETURN(transformed, branch.onehot.Transform(sub));
        break;
      }
    }
    const std::int64_t w = transformed.dim(1);
    for (std::int64_t r = 0; r < n; ++r) {
      std::copy(transformed.raw() + r * w, transformed.raw() + (r + 1) * w,
                out.raw() + r * width + offset);
    }
    offset += w;
  }
  return out;
}

std::int64_t Featurizer::OutputWidth() const {
  std::int64_t total = 0;
  for (const auto& branch : branches_) total += branch.OutputWidth();
  return total;
}

std::vector<FeatureProvenance> Featurizer::Provenance() const {
  std::vector<FeatureProvenance> out;
  for (std::size_t b = 0; b < branches_.size(); ++b) {
    const FeatureBranch& branch = branches_[b];
    switch (branch.kind) {
      case TransformKind::kIdentity:
      case TransformKind::kScaler:
        for (std::int64_t col : branch.input_columns) {
          out.push_back(FeatureProvenance{col, static_cast<std::int64_t>(b),
                                          branch.kind, -1});
        }
        break;
      case TransformKind::kOneHot:
        for (std::size_t c = 0; c < branch.input_columns.size(); ++c) {
          for (std::int64_t code : branch.onehot.EmittedCodes(c)) {
            out.push_back(FeatureProvenance{branch.input_columns[c],
                                            static_cast<std::int64_t>(b),
                                            branch.kind, code});
          }
        }
        break;
    }
  }
  return out;
}

void Featurizer::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(branches_.size());
  for (const auto& branch : branches_) {
    writer->WriteString(branch.name);
    writer->WriteI64Vector(branch.input_columns);
    writer->WriteU8(static_cast<std::uint8_t>(branch.kind));
    switch (branch.kind) {
      case TransformKind::kIdentity:
        break;
      case TransformKind::kScaler:
        branch.scaler.Serialize(writer);
        break;
      case TransformKind::kOneHot:
        branch.onehot.Serialize(writer);
        break;
    }
  }
}

Result<Featurizer> Featurizer::Deserialize(BinaryReader* reader) {
  Featurizer f;
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t n, reader->ReadU64());
  for (std::uint64_t i = 0; i < n; ++i) {
    FeatureBranch branch;
    RAVEN_ASSIGN_OR_RETURN(branch.name, reader->ReadString());
    RAVEN_ASSIGN_OR_RETURN(branch.input_columns, reader->ReadI64Vector());
    RAVEN_ASSIGN_OR_RETURN(std::uint8_t kind, reader->ReadU8());
    if (kind > 2) return Status::ParseError("bad transform kind");
    branch.kind = static_cast<TransformKind>(kind);
    switch (branch.kind) {
      case TransformKind::kIdentity:
        break;
      case TransformKind::kScaler: {
        RAVEN_ASSIGN_OR_RETURN(branch.scaler,
                               StandardScaler::Deserialize(reader));
        break;
      }
      case TransformKind::kOneHot: {
        RAVEN_ASSIGN_OR_RETURN(branch.onehot,
                               OneHotEncoder::Deserialize(reader));
        break;
      }
    }
    f.branches_.push_back(std::move(branch));
  }
  return f;
}

}  // namespace raven::ml
