// Flight-delay scenario (paper §4.1): a heavily categorical dataset scored
// by an L1-regularized logistic regression. Demonstrates
//   - model-projection pushdown: zero-weight one-hot features drop out;
//   - predicate-based pruning on a categorical filter (dest = 'AP7'):
//     the whole destination one-hot block folds into the bias;
//   - model clustering: per-cluster precompiled models.
//
//   ./build/examples/flight_delay

#include <cstdio>

#include "data/flight.h"
#include "ml/linear_model.h"
#include "optimizer/specialize.h"
#include "raven/raven.h"

int main() {
  using namespace raven;
  RavenContext ctx;

  auto data = data::MakeFlightDataset(100000, /*seed=*/13);
  (void)ctx.RegisterTable("flights", data.flights);

  // Sparse model: L1 zeroes out weights of uninformative categories.
  auto pipeline = data::TrainFlightLogreg(data, /*l1=*/0.02);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  const auto& linear = std::get<ml::LinearModel>(pipeline->predictor);
  std::printf("trained logistic regression: %lld features, %.1f%% sparse\n",
              static_cast<long long>(pipeline->NumFeatures()),
              100.0 * linear.Sparsity());

  auto projected = optimizer::ProjectUnusedFeatures(*pipeline);
  if (projected.ok()) {
    std::printf(
        "model-projection pushdown: %lld -> %lld features "
        "(%zu raw columns still needed)\n",
        static_cast<long long>(projected->features_before),
        static_cast<long long>(projected->features_after),
        projected->kept_inputs.size());
  }

  (void)ctx.InsertModel("delay", data::FlightLogregScript(), *pipeline);

  // Categorical predicate: the optimizer prunes the dest one-hot block.
  const char* sql =
      "SELECT id, p FROM PREDICT(MODEL='delay', DATA=flights) "
      "WITH(p float) WHERE dest = 'AP7' AND p > 0.4";
  auto explain = ctx.Explain(sql);
  if (explain.ok()) std::printf("\n%s\n", explain->c_str());

  auto result = ctx.Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("flights to AP7 predicted delayed (p > 0.4): %lld rows, "
              "%.2f ms\n",
              static_cast<long long>(result->table.num_rows()),
              result->total_millis);

  // Model clustering: offline k-means + per-cluster precompiled models.
  optimizer::ClusteringOptions cluster_options;
  cluster_options.k = 8;
  if (auto s = ctx.BuildClusteredModel("delay", "flights", cluster_options);
      s.ok()) {
    auto clustered = ctx.Query(
        "SELECT id, p FROM PREDICT(MODEL='delay', DATA=flights) "
        "WITH(p float) WHERE p > 0.4");
    if (clustered.ok()) {
      std::printf("clustered (k=8) full-table scoring: %lld rows, %.2f ms\n",
                  static_cast<long long>(clustered->table.num_rows()),
                  clustered->total_millis);
    }
  }
  return 0;
}
