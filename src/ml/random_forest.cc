#include "ml/random_forest.h"

#include "common/rng.h"

namespace raven::ml {

Status RandomForest::Fit(const Tensor& x, const std::vector<float>& y,
                         const ForestTrainOptions& options) {
  if (x.rank() != 2 || x.dim(0) != static_cast<std::int64_t>(y.size())) {
    return Status::InvalidArgument("RandomForest::Fit shape mismatch");
  }
  trees_.clear();
  Rng rng(options.seed);
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  const std::int64_t sample_n = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(options.subsample * static_cast<double>(n)));
  for (std::int64_t t = 0; t < options.num_trees; ++t) {
    // Bootstrap sample.
    Tensor sx = Tensor::Zeros({sample_n, d});
    std::vector<float> sy(static_cast<std::size_t>(sample_n));
    for (std::int64_t i = 0; i < sample_n; ++i) {
      const std::int64_t row = static_cast<std::int64_t>(
          rng.NextUint(static_cast<std::uint64_t>(n)));
      std::copy(x.raw() + row * d, x.raw() + (row + 1) * d, sx.raw() + i * d);
      sy[static_cast<std::size_t>(i)] = y[static_cast<std::size_t>(row)];
    }
    TreeTrainOptions tree_options = options.tree;
    tree_options.seed = options.seed * 1315423911ULL + static_cast<std::uint64_t>(t);
    if (tree_options.max_features <= 0) {
      // Forest default: sqrt(d) features per split.
      std::int64_t mf = 1;
      while (mf * mf < d) ++mf;
      tree_options.max_features = mf;
    }
    DecisionTree tree;
    RAVEN_RETURN_IF_ERROR(tree.Fit(sx, sy, tree_options));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

float RandomForest::PredictRow(const float* row,
                               std::int64_t num_features) const {
  if (trees_.empty()) return 0.0f;
  float sum = 0.0f;
  for (const auto& tree : trees_) sum += tree.PredictRow(row, num_features);
  return sum / static_cast<float>(trees_.size());
}

Result<Tensor> RandomForest::Predict(const Tensor& x) const {
  if (x.rank() != 2) {
    return Status::InvalidArgument("RandomForest::Predict expects [n, d]");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  Tensor out = Tensor::Zeros({n, 1});
  for (std::int64_t r = 0; r < n; ++r) {
    out.raw()[r] = PredictRow(x.raw() + r * d, d);
  }
  return out;
}

RandomForest RandomForest::PruneWithIntervals(
    const std::vector<FeatureInterval>& intervals) const {
  RandomForest pruned;
  for (const auto& tree : trees_) {
    pruned.trees_.push_back(tree.PruneWithIntervals(intervals));
  }
  return pruned;
}

std::vector<std::int64_t> RandomForest::UsedFeatures() const {
  std::vector<bool> used(static_cast<std::size_t>(num_features()), false);
  for (const auto& tree : trees_) {
    for (std::int64_t f : tree.UsedFeatures()) {
      used[static_cast<std::size_t>(f)] = true;
    }
  }
  std::vector<std::int64_t> out;
  for (std::size_t f = 0; f < used.size(); ++f) {
    if (used[f]) out.push_back(static_cast<std::int64_t>(f));
  }
  return out;
}

Status RandomForest::RemapFeatures(
    const std::vector<std::int64_t>& old_to_new) {
  for (auto& tree : trees_) {
    RAVEN_RETURN_IF_ERROR(tree.RemapFeatures(old_to_new));
  }
  return Status::OK();
}

std::int64_t RandomForest::num_features() const {
  std::int64_t d = 0;
  for (const auto& tree : trees_) d = std::max(d, tree.num_features());
  return d;
}

std::int64_t RandomForest::total_nodes() const {
  std::int64_t n = 0;
  for (const auto& tree : trees_) n += tree.num_nodes();
  return n;
}

void RandomForest::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(trees_.size());
  for (const auto& tree : trees_) tree.Serialize(writer);
}

Result<RandomForest> RandomForest::Deserialize(BinaryReader* reader) {
  RandomForest forest;
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t n, reader->ReadU64());
  for (std::uint64_t i = 0; i < n; ++i) {
    RAVEN_ASSIGN_OR_RETURN(DecisionTree tree, DecisionTree::Deserialize(reader));
    forest.trees_.push_back(std::move(tree));
  }
  return forest;
}

}  // namespace raven::ml
