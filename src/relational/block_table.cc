#include "relational/block_table.h"

#include <algorithm>
#include <cmath>

namespace raven::relational {

bool BlockMayMatch(const ColumnStats& stats, const SimplePredicate& pred) {
  // Non-finite rows are invisible to the finite min/max range, so no range
  // argument over it can exclude them (the NaN regression: a block of
  // {1, 2, NaN} must survive `col >= 100` because downstream semantics —
  // e.g. `<>` predicates or later pipeline stages — may keep NaN rows).
  if (stats.has_non_finite) return true;
  if (!stats.has_finite()) return true;  // empty/unknown: never skip
  if (!std::isfinite(pred.constant)) return true;
  switch (pred.op) {
    case CompareOp::kEq:
      return pred.constant >= stats.min && pred.constant <= stats.max;
    case CompareOp::kNe:
      // Skippable only when the whole block is one finite value equal to
      // the constant.
      return !(stats.constant.has_value() && *stats.constant == pred.constant);
    case CompareOp::kLt:
      return stats.min < pred.constant;
    case CompareOp::kLe:
      return stats.min <= pred.constant;
    case CompareOp::kGt:
      return stats.max > pred.constant;
    case CompareOp::kGe:
      return stats.max >= pred.constant;
  }
  return true;
}

bool BlockMayMatch(const BlockTable& table, std::int64_t block,
                   const std::vector<SimplePredicate>& preds) {
  for (const auto& pred : preds) {
    const ColumnStats* stats = table.BlockStats(block, pred.column);
    if (stats == nullptr) continue;  // unknown column: cannot justify a skip
    if (!BlockMayMatch(*stats, pred)) return false;
  }
  return true;
}

std::map<std::string, ColumnStats> MergedStats(const BlockTable& table) {
  std::map<std::string, ColumnStats> out;
  for (const auto& name : table.ColumnNames()) {
    ColumnStats merged;
    bool any = false;
    bool constant_ok = true;
    for (std::int64_t b = 0; b < table.num_blocks(); ++b) {
      const ColumnStats* s = table.BlockStats(b, name);
      if (s == nullptr) {
        constant_ok = false;
        merged.distinct_exact = false;
        continue;
      }
      merged.num_rows += s->num_rows;
      merged.nan_count += s->nan_count;
      merged.non_finite_count += s->non_finite_count;
      merged.has_non_finite = merged.has_non_finite || s->has_non_finite;
      if (s->has_finite()) {
        if (!any || s->min < merged.min) merged.min = s->min;
        if (!any || s->max > merged.max) merged.max = s->max;
        any = true;
      }
      if (!s->constant.has_value() ||
          (merged.constant.has_value() && *merged.constant != *s->constant)) {
        constant_ok = false;
      } else if (!merged.constant.has_value()) {
        merged.constant = s->constant;
      }
      merged.distinct = std::max(merged.distinct, s->distinct);
      merged.distinct_exact = merged.distinct_exact && s->distinct_exact;
    }
    if (constant_ok && merged.constant.has_value() && !merged.has_non_finite) {
      merged.distinct = 1;
    } else {
      merged.constant.reset();
      // Distinct values may differ across blocks; the per-block maximum is
      // only a lower bound, so the count is no longer exact (unless there
      // is a single block).
      if (table.num_blocks() > 1) merged.distinct_exact = false;
    }
    out[name] = merged;
  }
  return out;
}

DiskScanOperator::DiskScanOperator(std::shared_ptr<const BlockTable> table,
                                   std::int64_t begin, std::int64_t end)
    : table_(std::move(table)), begin_(begin),
      end_(end < 0 ? table_->num_rows() : end) {}

DiskScanOperator::DiskScanOperator(std::shared_ptr<const BlockTable> table,
                                   std::shared_ptr<MorselQueue> morsels,
                                   std::int64_t order_source)
    : table_(std::move(table)), begin_(0), end_(table_->num_rows()),
      morsels_(std::move(morsels)), order_source_(order_source) {}

Status DiskScanOperator::Open() {
  if (begin_ < 0 || end_ > table_->num_rows() || begin_ > end_) {
    return Status::OutOfRange("disk scan range invalid");
  }
  if (morsels_ != nullptr) {
    if (morsels_->total_rows() != table_->num_rows()) {
      return Status::InvalidArgument("morsel queue sized for different table");
    }
    if (morsels_->morsel_rows() != table_->block_rows()) {
      return Status::InvalidArgument(
          "disk scan needs a block-aligned morsel queue (morsel " +
          std::to_string(morsels_->morsel_rows()) + " rows, block " +
          std::to_string(table_->block_rows()) + ")");
    }
  }
  next_block_ = begin_ / std::max<std::int64_t>(table_->block_rows(), 1);
  return Status::OK();
}

std::int64_t DiskScanOperator::NextRangeBlock() {
  while (next_block_ < table_->num_blocks()) {
    const std::int64_t block = next_block_++;
    const std::int64_t block_begin = block * table_->block_rows();
    if (block_begin >= end_) return -1;
    if (block_begin + table_->BlockRowCount(block) <= begin_) continue;
    return block;
  }
  return -1;
}

Result<bool> DiskScanOperator::EmitBlock(std::int64_t block, DataChunk* out) {
  if (!zone_predicates_.empty() &&
      !BlockMayMatch(*table_, block, zone_predicates_)) {
    if (blocks_skipped_ != nullptr) {
      blocks_skipped_->fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  if (blocks_scanned_ != nullptr) {
    blocks_scanned_->fetch_add(1, std::memory_order_relaxed);
  }
  RAVEN_RETURN_IF_ERROR(table_->ReadBlock(block, out));
  // Range mode may cover a block only partially; trim to [begin_, end_).
  const std::int64_t block_begin = block * table_->block_rows();
  const std::int64_t lo = std::max(begin_ - block_begin, std::int64_t{0});
  const std::int64_t hi =
      std::min(end_ - block_begin, table_->BlockRowCount(block));
  if (lo > 0 || hi < table_->BlockRowCount(block)) {
    for (auto& col : out->cols) {
      col.assign(col.begin() + lo, col.begin() + hi);
    }
  }
  out->order_source = order_source_;
  out->order_morsel = block;
  return true;
}

Result<bool> DiskScanOperator::Next(DataChunk* out) {
  if (morsels_ != nullptr) {
    Morsel m;
    while (morsels_->Pop(&m)) {
      RAVEN_ASSIGN_OR_RETURN(bool emitted, EmitBlock(m.index, out));
      if (emitted) return true;
    }
    return false;
  }
  for (std::int64_t block = NextRangeBlock(); block >= 0;
       block = NextRangeBlock()) {
    RAVEN_ASSIGN_OR_RETURN(bool emitted, EmitBlock(block, out));
    if (emitted) return true;
  }
  return false;
}

}  // namespace raven::relational
