#ifndef RAVEN_RELATIONAL_OPERATORS_H_
#define RAVEN_RELATIONAL_OPERATORS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/chunk.h"
#include "relational/expression.h"
#include "relational/table.h"
#include "tensor/tensor.h"

namespace raven::relational {

/// Pull-based (volcano-style) physical operator producing columnar chunks.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  /// Prepares state; called once before Next.
  virtual Status Open() { return Status::OK(); }
  /// Produces the next chunk; returns false at end of stream.
  virtual Result<bool> Next(DataChunk* out) = 0;
  virtual std::string Name() const = 0;
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

/// Sequential scan over a row range of an in-memory table. Ranged scans are
/// how the parallel scan+PREDICT mode partitions work without copying.
class ScanOperator final : public PhysicalOperator {
 public:
  /// Scans rows [begin, end) of `table` (end < 0 means all rows). The table
  /// must outlive the operator.
  explicit ScanOperator(const Table* table, std::int64_t begin = 0,
                        std::int64_t end = -1);

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Scan"; }

 private:
  const Table* table_;
  std::int64_t begin_;
  std::int64_t end_;
  std::int64_t cursor_ = 0;
};

/// Filters rows by a boolean expression.
class FilterOperator final : public PhysicalOperator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Filter"; }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

/// Computes named expressions per row (projection).
class ProjectOperator final : public PhysicalOperator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                  std::vector<std::string> names)
      : child_(std::move(child)), exprs_(std::move(exprs)),
        names_(std::move(names)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Project"; }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
};

/// In-memory hash join (inner, single equi-key). The right child is the
/// build side and is fully materialized at Open.
class HashJoinOperator final : public PhysicalOperator {
 public:
  HashJoinOperator(OperatorPtr left, OperatorPtr right, std::string left_key,
                   std::string right_key)
      : left_(std::move(left)), right_(std::move(right)),
        left_key_(std::move(left_key)), right_key_(std::move(right_key)) {}

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "HashJoin"; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::string left_key_;
  std::string right_key_;

  // Build-side storage: column-major values plus key -> row ids.
  std::vector<std::string> build_names_;
  std::vector<std::vector<double>> build_cols_;
  std::unordered_map<double, std::vector<std::int64_t>> hash_;
  std::vector<std::size_t> build_emit_cols_;  // columns not shadowing left
};

/// Concatenation of multiple children with identical schemas.
class UnionAllOperator final : public PhysicalOperator {
 public:
  explicit UnionAllOperator(std::vector<OperatorPtr> children)
      : children_(std::move(children)) {}

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "UnionAll"; }

 private:
  std::vector<OperatorPtr> children_;
  std::size_t current_ = 0;
};

/// Emits at most `limit` rows.
class LimitOperator final : public PhysicalOperator {
 public:
  LimitOperator(OperatorPtr child, std::int64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Limit"; }

 private:
  OperatorPtr child_;
  std::int64_t limit_;
  std::int64_t emitted_ = 0;
};

/// Batch scoring callback: maps a [n, k] feature tensor to n predictions.
/// The runtime layer binds this to an in-process NNRT session, an
/// interpreted ML model, an out-of-process worker, or a container client.
using BatchScorer =
    std::function<Result<std::vector<double>>(const Tensor& input)>;

/// The PREDICT physical operator (paper §5): evaluates a model over the
/// child's rows, appending the prediction as a new column. Pass-through of
/// the child's columns preserves downstream predicate access.
class PredictOperator final : public PhysicalOperator {
 public:
  PredictOperator(OperatorPtr child, std::vector<std::string> input_columns,
                  std::string output_name, BatchScorer scorer)
      : child_(std::move(child)), input_columns_(std::move(input_columns)),
        output_name_(std::move(output_name)), scorer_(std::move(scorer)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Predict"; }

 private:
  OperatorPtr child_;
  std::vector<std::string> input_columns_;
  std::string output_name_;
  BatchScorer scorer_;
};

/// Scalar aggregates over the entire input (one output row).
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

struct AggregateSpec {
  AggKind kind = AggKind::kCount;
  std::string column;  // ignored for kCount
  std::string output_name;
};

class AggregateOperator final : public PhysicalOperator {
 public:
  AggregateOperator(OperatorPtr child, std::vector<AggregateSpec> aggs)
      : child_(std::move(child)), aggs_(std::move(aggs)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Aggregate"; }

 private:
  OperatorPtr child_;
  std::vector<AggregateSpec> aggs_;
  bool done_ = false;
};

/// Drains an operator tree into a materialized table.
Result<Table> MaterializeAll(PhysicalOperator* root);

/// Builds a plan per row-partition of `base` and executes the partitions on
/// the global thread pool, concatenating results. This is the engine's
/// automatic scan+PREDICT parallelization (paper §5, Fig 3 observation iii).
using PartitionPlanFactory =
    std::function<OperatorPtr(std::int64_t begin_row, std::int64_t end_row)>;

Result<Table> ExecutePartitionedParallel(const Table& base,
                                         std::int64_t num_partitions,
                                         const PartitionPlanFactory& factory);

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_OPERATORS_H_
