#ifndef RAVEN_NNRT_GRAPH_H_
#define RAVEN_NNRT_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace raven::nnrt {

/// Node attribute: scalar, list, or tensor payload. Tree ensembles store
/// their flattened node arrays as tensor attributes, mirroring how
/// ai.onnx.ml.TreeEnsemble* carries its trees.
using AttrValue = std::variant<std::int64_t, double, std::string,
                               std::vector<std::int64_t>, std::vector<double>,
                               Tensor>;

/// A single operator invocation in an NNRT dataflow graph. Inputs/outputs
/// are value names; the executor binds them to tensors at run time.
struct Node {
  std::string op_type;
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::map<std::string, AttrValue> attrs;

  bool HasAttr(const std::string& key) const { return attrs.count(key) > 0; }

  Result<std::int64_t> GetIntAttr(const std::string& key) const;
  Result<double> GetFloatAttr(const std::string& key) const;
  Result<std::string> GetStringAttr(const std::string& key) const;
  Result<std::vector<std::int64_t>> GetIntsAttr(const std::string& key) const;
  Result<std::vector<double>> GetFloatsAttr(const std::string& key) const;
  Result<Tensor> GetTensorAttr(const std::string& key) const;

  /// Attribute accessors with defaults for optional attributes.
  std::int64_t GetIntAttrOr(const std::string& key, std::int64_t dflt) const;
  double GetFloatAttrOr(const std::string& key, double dflt) const;
  std::string GetStringAttrOr(const std::string& key,
                              const std::string& dflt) const;
};

/// An NNRT model graph: named inputs/outputs, constant initializers, and a
/// list of nodes. Graphs are stored topologically unsorted; the executor and
/// optimizer sort on demand.
class Graph {
 public:
  Graph() = default;

  /// Declares a runtime-provided input value.
  void AddInput(const std::string& name) { inputs_.push_back(name); }
  /// Declares a graph output value.
  void AddOutput(const std::string& name) { outputs_.push_back(name); }
  /// Binds a constant tensor to a value name.
  void AddInitializer(const std::string& name, Tensor tensor) {
    initializers_[name] = std::move(tensor);
  }
  /// Appends a node; returns its index.
  std::size_t AddNode(Node node) {
    nodes_.push_back(std::move(node));
    return nodes_.size() - 1;
  }

  const std::vector<std::string>& inputs() const { return inputs_; }
  const std::vector<std::string>& outputs() const { return outputs_; }
  const std::unordered_map<std::string, Tensor>& initializers() const {
    return initializers_;
  }
  std::unordered_map<std::string, Tensor>& mutable_initializers() {
    return initializers_;
  }
  const std::vector<Node>& nodes() const { return nodes_; }
  std::vector<Node>& mutable_nodes() { return nodes_; }
  std::vector<std::string>& mutable_inputs() { return inputs_; }
  std::vector<std::string>& mutable_outputs() { return outputs_; }

  /// Structural checks: every node input must be produced by an initializer,
  /// a graph input, or another node; no duplicate value producers; every
  /// graph output must be produced.
  Status Validate() const;

  /// Returns node indices in topological (dataflow) order, or an error if
  /// the graph has a cycle.
  Result<std::vector<std::size_t>> TopologicalOrder() const;

  /// Total number of nodes with the given op type.
  std::size_t CountOps(const std::string& op_type) const;

  /// Fresh value name with the given prefix, unique within the graph.
  std::string FreshValueName(const std::string& prefix);

  /// Multi-line structural dump for debugging and EXPLAIN output.
  std::string ToString() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<Graph> Deserialize(BinaryReader* reader);

 private:
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::unordered_map<std::string, Tensor> initializers_;
  std::vector<Node> nodes_;
  std::uint64_t name_counter_ = 0;
};

}  // namespace raven::nnrt

#endif  // RAVEN_NNRT_GRAPH_H_
