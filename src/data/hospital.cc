#include "data/hospital.h"

#include <cmath>

#include "common/rng.h"

namespace raven::data {
namespace {

// Model feature set. Note fetal_hr is deliberately NOT a model input (it
// is only measured for pregnant patients, so it would be a perfect proxy
// for pregnancy); the trained tree therefore tests the pregnant one-hot
// indicator directly, matching the paper's Fig 1 tree.
constexpr const char* kFeatureColumns[] = {
    "age",       "weight", "bp",       "hematocrit", "glucose",
    "platelets", "gender", "pregnant", "amnio"};

}  // namespace

std::vector<std::string> HospitalFeatureColumns() {
  return std::vector<std::string>(std::begin(kFeatureColumns),
                                  std::end(kFeatureColumns));
}

double HospitalLengthOfStay(double age, double pregnant, double bp,
                            double fetal_hr, double noise) {
  // Piecewise signal shaped like the paper's example tree (Fig 1): blood
  // pressure dominates, with pregnancy/age interactions (the paper's tree
  // splits on pregnant, then age <= 35 vs > 35).
  (void)fetal_hr;
  double days;
  if (bp > 140.0) {
    days = 7.0 + (age > 60 ? 2.0 : 0.0);
  } else if (bp > 120.0) {
    days = 4.0;
  } else {
    days = 2.0;
  }
  if (pregnant > 0.5) {
    days += age <= 35.0 ? 2.0 : 4.0;
  }
  return days + noise;
}

HospitalDataset MakeHospitalDataset(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> id(static_cast<std::size_t>(n));
  std::vector<double> age(static_cast<std::size_t>(n));
  std::vector<double> gender(static_cast<std::size_t>(n));
  std::vector<double> pregnant(static_cast<std::size_t>(n));
  std::vector<double> weight(static_cast<std::size_t>(n));
  std::vector<double> bp(static_cast<std::size_t>(n));
  std::vector<double> hematocrit(static_cast<std::size_t>(n));
  std::vector<double> glucose(static_cast<std::size_t>(n));
  std::vector<double> platelets(static_cast<std::size_t>(n));
  std::vector<double> fetal_hr(static_cast<std::size_t>(n));
  std::vector<double> amnio(static_cast<std::size_t>(n));
  std::vector<double> los(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    id[s] = static_cast<double>(i);
    age[s] = std::floor(rng.Uniform(18.0, 90.0));
    gender[s] = rng.NextBool(0.5) ? 1.0 : 0.0;  // 0 = F, 1 = M
    const bool can_be_pregnant = gender[s] == 0.0 && age[s] < 50.0;
    pregnant[s] = can_be_pregnant && rng.NextBool(0.35) ? 1.0 : 0.0;
    weight[s] = 55.0 + 25.0 * rng.NextDouble() + 0.2 * age[s];
    bp[s] = 95.0 + 0.6 * age[s] + 12.0 * rng.NextGaussian();
    hematocrit[s] = 40.0 + 5.0 * rng.NextGaussian();
    glucose[s] = 95.0 + 20.0 * rng.NextGaussian();
    platelets[s] = 250.0 + 60.0 * rng.NextGaussian();
    fetal_hr[s] = pregnant[s] > 0.5 ? 110.0 + 40.0 * rng.NextDouble() : 0.0;
    amnio[s] = pregnant[s] > 0.5 && rng.NextBool(0.2) ? 1.0 : 0.0;
    los[s] = HospitalLengthOfStay(age[s], pregnant[s], bp[s], fetal_hr[s],
                                  0.3 * rng.NextGaussian());
  }

  const std::vector<std::string> sex_dict = {"F", "M"};
  HospitalDataset data;
  (void)data.patient_info.AddNumericColumn("id", id);
  (void)data.patient_info.AddNumericColumn("age", age);
  (void)data.patient_info.AddCategoricalColumn("gender", gender, sex_dict);
  (void)data.patient_info.AddNumericColumn("pregnant", pregnant);
  (void)data.patient_info.AddNumericColumn("weight", weight);

  (void)data.blood_tests.AddNumericColumn("id", id);
  (void)data.blood_tests.AddNumericColumn("bp", bp);
  (void)data.blood_tests.AddNumericColumn("hematocrit", hematocrit);
  (void)data.blood_tests.AddNumericColumn("glucose", glucose);
  (void)data.blood_tests.AddNumericColumn("platelets", platelets);

  (void)data.prenatal_tests.AddNumericColumn("id", id);
  (void)data.prenatal_tests.AddNumericColumn("fetal_hr", fetal_hr);
  (void)data.prenatal_tests.AddNumericColumn("amnio", amnio);

  (void)data.joined.AddNumericColumn("id", std::move(id));
  (void)data.joined.AddNumericColumn("age", std::move(age));
  (void)data.joined.AddNumericColumn("weight", std::move(weight));
  (void)data.joined.AddNumericColumn("bp", std::move(bp));
  (void)data.joined.AddNumericColumn("hematocrit", std::move(hematocrit));
  (void)data.joined.AddNumericColumn("glucose", std::move(glucose));
  (void)data.joined.AddNumericColumn("platelets", std::move(platelets));
  (void)data.joined.AddNumericColumn("fetal_hr", std::move(fetal_hr));
  (void)data.joined.AddCategoricalColumn("gender", std::move(gender),
                                         sex_dict);
  (void)data.joined.AddNumericColumn("pregnant", std::move(pregnant));
  (void)data.joined.AddNumericColumn("amnio", std::move(amnio));
  (void)data.joined.AddNumericColumn("length_of_stay", std::move(los));
  return data;
}

namespace {

/// Builds the shared featurizer (scaler over vitals, one-hot over the
/// binary categoricals) and the featurized training matrix.
Result<std::pair<ml::ModelPipeline, Tensor>> PrepareHospital(
    const HospitalDataset& data) {
  ml::ModelPipeline pipeline;
  pipeline.input_columns = HospitalFeatureColumns();
  ml::FeatureBranch scaler;
  scaler.name = "scaler";
  scaler.kind = ml::TransformKind::kScaler;
  scaler.input_columns = {0, 1, 2, 3, 4, 5};  // numeric vitals
  ml::FeatureBranch onehot;
  onehot.name = "onehot";
  onehot.kind = ml::TransformKind::kOneHot;
  onehot.input_columns = {6, 7, 8};  // gender, pregnant, amnio
  pipeline.featurizer.AddBranch(std::move(scaler));
  pipeline.featurizer.AddBranch(std::move(onehot));

  RAVEN_ASSIGN_OR_RETURN(Tensor x,
                         data.joined.ToTensor(pipeline.input_columns));
  RAVEN_RETURN_IF_ERROR(pipeline.featurizer.Fit(x));
  RAVEN_ASSIGN_OR_RETURN(Tensor features, pipeline.featurizer.Transform(x));
  return std::make_pair(std::move(pipeline), std::move(features));
}

std::vector<float> HospitalLabels(const HospitalDataset& data) {
  const auto col = data.joined.GetColumn("length_of_stay");
  std::vector<float> y;
  y.reserve((*col)->data.size());
  for (double v : (*col)->data) y.push_back(static_cast<float>(v));
  return y;
}

}  // namespace

Result<ml::ModelPipeline> TrainHospitalTree(const HospitalDataset& data,
                                            std::int64_t max_depth) {
  RAVEN_ASSIGN_OR_RETURN(auto prepared, PrepareHospital(data));
  auto& [pipeline, features] = prepared;
  ml::TreeTrainOptions options;
  options.max_depth = max_depth;
  ml::DecisionTree tree;
  RAVEN_RETURN_IF_ERROR(tree.Fit(features, HospitalLabels(data), options));
  pipeline.predictor = std::move(tree);
  return std::move(pipeline);
}

Result<ml::ModelPipeline> TrainHospitalForest(const HospitalDataset& data,
                                              std::int64_t num_trees,
                                              std::int64_t max_depth) {
  RAVEN_ASSIGN_OR_RETURN(auto prepared, PrepareHospital(data));
  auto& [pipeline, features] = prepared;
  ml::ForestTrainOptions options;
  options.num_trees = num_trees;
  options.tree.max_depth = max_depth;
  ml::RandomForest forest;
  RAVEN_RETURN_IF_ERROR(forest.Fit(features, HospitalLabels(data), options));
  pipeline.predictor = std::move(forest);
  return std::move(pipeline);
}

Result<ml::ModelPipeline> TrainHospitalMlp(const HospitalDataset& data) {
  RAVEN_ASSIGN_OR_RETURN(auto prepared, PrepareHospital(data));
  auto& [pipeline, features] = prepared;
  ml::MlpTrainOptions options;
  options.hidden = {32, 16};
  options.epochs = 8;
  options.output_activation = ml::Activation::kNone;  // regression head
  ml::Mlp mlp;
  RAVEN_RETURN_IF_ERROR(mlp.Fit(features, HospitalLabels(data), options));
  pipeline.predictor = std::move(mlp);
  return std::move(pipeline);
}

namespace {

std::string HospitalScript(const char* estimator) {
  std::string script =
      "from sklearn.pipeline import Pipeline, FeatureUnion\n"
      "from sklearn.preprocessing import StandardScaler, OneHotEncoder\n"
      "from sklearn.tree import DecisionTreeRegressor\n"
      "from sklearn.ensemble import RandomForestRegressor\n"
      "from sklearn.neural_network import MLPRegressor\n"
      "\n"
      "model_pipeline = Pipeline([\n"
      "    ('union', FeatureUnion([\n"
      "        ('scaler', StandardScaler(columns=['age', 'weight', 'bp',\n"
      "            'hematocrit', 'glucose', 'platelets'])),\n"
      "        ('onehot', OneHotEncoder(columns=['gender', 'pregnant',\n"
      "            'amnio']))\n"
      "    ])),\n"
      "    ('clf', ";
  script += estimator;
  script += ")\n])\n";
  return script;
}

}  // namespace

std::string HospitalTreeScript() {
  return HospitalScript("DecisionTreeRegressor(max_depth=8)");
}

std::string HospitalForestScript() {
  return HospitalScript("RandomForestRegressor(n_estimators=10)");
}

std::string HospitalMlpScript() {
  return HospitalScript("MLPRegressor(max_iter=8)");
}

}  // namespace raven::data
