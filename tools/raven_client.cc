// raven_client: minimal CLI for the raven_serve frame protocol. Sends each
// --query statement (or each line read from stdin) as one request and
// prints the response — result tables via Table::ToString, SHOW STATS as
// key/value lines, errors to stderr.
//
// Usage:
//   raven_client --socket=/tmp/raven.sock --query "SHOW STATS"
//   echo "SELECT COUNT(*) AS n FROM flights" | raven_client --port=4242
//
// `--json` switches every response to one JSON object per statement on
// stdout (scripting mode — SHOW STATS / SHOW METRICS / TRACE pipe into jq):
//   tables  {"columns":[...],"rows":[[...],...],"total_millis":N}
//   stats   {"stats":{"key":N,...}}
//   acks    {"ok":true,"message":"..."}
//   errors  {"error":"..."} (still exit 1; nothing goes to stderr)
//
// Exit status: 0 when every statement succeeded, 1 otherwise.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "obs/trace.h"
#include "server/client.h"
#include "tool_flags.h"

namespace {

using raven::obs::JsonEscape;
using raven::tools::ParseFlag;

/// One table cell as a JSON value: the dictionary string for categorical
/// columns, a bare number otherwise (NaN/inf have no JSON spelling — null).
std::string CellJson(const raven::relational::Column& column,
                     std::int64_t row) {
  const double value = column.data[static_cast<std::size_t>(row)];
  if (column.is_categorical()) {
    const auto& dict = *column.dictionary;
    const auto code = static_cast<std::size_t>(value);
    if (value >= 0 && code < dict.size()) {
      return "\"" + JsonEscape(dict[code]) + "\"";
    }
  }
  if (!std::isfinite(value)) return "null";
  char buf[32];
  if (value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

/// Prints one response as a single JSON line; returns false for
/// error/busy responses.
bool PrintResponseJson(const raven::server::ServerResponse& response) {
  using raven::server::ServerResponseKind;
  std::string out;
  bool ok = true;
  switch (response.kind) {
    case ServerResponseKind::kAck:
      out = "{\"ok\":true,\"message\":\"" + JsonEscape(response.message) +
            "\"}";
      break;
    case ServerResponseKind::kTable: {
      out = "{\"columns\":[";
      const auto& columns = response.table.columns();
      for (std::size_t c = 0; c < columns.size(); ++c) {
        if (c > 0) out += ",";
        out += "\"" + JsonEscape(columns[c].name) + "\"";
      }
      out += "],\"rows\":[";
      for (std::int64_t r = 0; r < response.table.num_rows(); ++r) {
        if (r > 0) out += ",";
        out += "[";
        for (std::size_t c = 0; c < columns.size(); ++c) {
          if (c > 0) out += ",";
          out += CellJson(columns[c], r);
        }
        out += "]";
      }
      char millis[32];
      std::snprintf(millis, sizeof(millis), "%.3f", response.total_millis);
      out += "],\"total_millis\":";
      out += millis;
      out += response.plan_cache_hit ? ",\"plan_cache_hit\":true}"
                                     : ",\"plan_cache_hit\":false}";
      break;
    }
    case ServerResponseKind::kStats: {
      out = "{\"stats\":{";
      bool first = true;
      for (const auto& [key, value] : response.stats) {
        if (!first) out += ",";
        first = false;
        out += "\"" + JsonEscape(key) +
               "\":" + std::to_string(static_cast<long long>(value));
      }
      out += "}}";
      break;
    }
    case ServerResponseKind::kBusy:
    case ServerResponseKind::kError:
      out = "{\"error\":\"" + JsonEscape(response.message) + "\"}";
      ok = false;
      break;
  }
  std::printf("%s\n", out.c_str());
  return ok;
}

/// Prints one response; returns false for error/busy responses.
bool PrintResponse(const raven::server::ServerResponse& response) {
  using raven::server::ServerResponseKind;
  switch (response.kind) {
    case ServerResponseKind::kAck:
      std::printf("ok%s%s\n", response.message.empty() ? "" : ": ",
                  response.message.c_str());
      return true;
    case ServerResponseKind::kTable:
      std::printf("%s(%lld rows, %.2f ms%s%s)\n",
                  response.table.ToString(20).c_str(),
                  static_cast<long long>(response.table.num_rows()),
                  response.total_millis,
                  response.plan_cache_hit ? ", plan cache hit" : "",
                  response.queue_wait_micros > 0 ? ", queued" : "");
      return true;
    case ServerResponseKind::kStats:
      for (const auto& [key, value] : response.stats) {
        std::printf("%-28s %lld\n", key.c_str(),
                    static_cast<long long>(value));
      }
      return true;
    case ServerResponseKind::kBusy:
      std::fprintf(stderr, "busy: %s\n", response.message.c_str());
      return false;
    case ServerResponseKind::kError:
      std::fprintf(stderr, "error: %s\n", response.message.c_str());
      return false;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string host = "127.0.0.1";
  int port = -1;
  bool json = false;
  std::vector<std::string> queries;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--socket=", &value)) {
      socket_path = value;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (ParseFlag(argv[i], "--host=", &value)) {
      host = value;
    } else if (ParseFlag(argv[i], "--port=", &value)) {
      port = static_cast<int>(
          raven::tools::FlagInt(value, "--port", "raven_client"));
    } else if (ParseFlag(argv[i], "--query=", &value)) {
      queries.push_back(value);
    } else if (std::strcmp(argv[i], "--query") == 0 && i + 1 < argc) {
      queries.push_back(argv[++i]);
    } else {
      std::fprintf(stderr, "raven_client: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (socket_path.empty() && port < 0) {
    std::fprintf(stderr, "raven_client: pass --socket=PATH or --port=N\n");
    return 2;
  }

  raven::server::ServerClient client;
  raven::Status connected = socket_path.empty()
                                ? client.ConnectTcp(host, port)
                                : client.ConnectUnix(socket_path);
  if (!connected.ok()) {
    std::fprintf(stderr, "raven_client: %s\n", connected.ToString().c_str());
    return 1;
  }

  if (queries.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!raven::TrimString(line).empty()) queries.push_back(line);
    }
  }

  bool all_ok = true;
  for (const std::string& sql : queries) {
    auto response = client.Query(sql);
    if (!response.ok()) {
      std::fprintf(stderr, "raven_client: %s\n",
                   response.status().ToString().c_str());
      return 1;  // transport failure: stop, the connection is gone
    }
    all_ok = (json ? PrintResponseJson(response.value())
                   : PrintResponse(response.value())) &&
             all_ok;
  }
  return all_ok ? 0 : 1;
}
