// Server serving-path benchmark: QPS and latency percentiles of the
// concurrent query server under 1 / 4 / 16 clients, cold vs warm plan
// cache. Each benchmark iteration runs a fixed batch of statements split
// across N client threads over real unix-socket connections, measures
// every statement's round-trip latency, and reports:
//
//   qps      statements completed per wall second of the batch
//   p50_us / p95_us / p99_us
//            round-trip latency percentiles (client-side, exact sort)
//   srv_p50_us / srv_p95_us / srv_p99_us
//            server-side percentiles estimated from the metrics
//            registry's raven_query_latency_seconds histogram — the same
//            series /metrics exports, so bench numbers and production
//            dashboards read from one source
//   hit_pct  plan-cache hit rate over the batch
//
// Cold runs clear the plan cache before every batch (every statement pays
// parse + optimize); warm runs pre-warm it once, so the serving path is
// cache-lookup + execute — the difference is the compilation tax the
// cache removes from the hot path. Wired into tools/bench.sh (--smoke
// keeps the row count small).
//
// BM_BatchedPredict then sweeps 64 / 256 clients issuing single-row
// PREDICT statements (a prepared point lookup under the model, so the
// pushed-down filter leaves exactly one row to score) against two
// otherwise-identical servers: one with the cross-query inference
// micro-batcher enabled, one with it off. Extra counters:
//
//   batch_pct   share of scored rows that rode a coalesced NNRT call
//   occup_x100  rows per flushed batch x100 (100 = no coalescing)

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "data/flight.h"
#include "data/hospital.h"
#include "ml/mlp.h"
#include "obs/metrics.h"
#include "raven/raven.h"
#include "server/client.h"
#include "server/query_server.h"

namespace {

using raven::bench::Must;
using raven::bench::MustOk;

constexpr std::int64_t kRows = 20000;

/// The served statement mix: hot PREDICT + aggregation shapes a serving
/// tier would see, all of them cacheable.
const std::vector<std::string>& StatementMix() {
  static auto* mix = new std::vector<std::string>{
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE p > 7 LIMIT 50",
      "SELECT gender, COUNT(*) AS n, MIN(age) AS youngest FROM patients "
      "GROUP BY gender",
      "SELECT airline, COUNT(*) AS flights FROM flights WHERE distance > "
      "400 GROUP BY airline",
      "SELECT id, age, bp FROM patients WHERE bp > 100 ORDER BY id LIMIT "
      "25",
  };
  return *mix;
}

struct ServerHarness {
  raven::RavenContext ctx;
  /// Two listeners over one engine: `warm` has a normal plan cache,
  /// `cold` has capacity 0 so EVERY statement pays parse + optimize.
  /// (Clearing a shared cache per batch would not do: a batch replays the
  /// same 4-statement mix, so all but the first 4 statements would hit —
  /// "cold" would silently measure the warm path.)
  std::unique_ptr<raven::server::QueryServer> warm;
  std::unique_ptr<raven::server::QueryServer> cold;

  ServerHarness() {
    const auto& hospital = raven::bench::Hospital(kRows);
    MustOk(ctx.RegisterTable("patients", hospital.joined), "patients");
    MustOk(ctx.InsertModel(
               "los", raven::data::HospitalTreeScript(),
               Must(raven::data::TrainHospitalTree(hospital, 5), "train")),
           "los");
    const auto& flight = raven::bench::Flight(kRows);
    MustOk(ctx.RegisterTable("flights", flight.flights), "flights");
    raven::server::QueryServerOptions options;
    options.unix_socket_path =
        "/tmp/raven_bench_server_warm_" + std::to_string(::getpid()) +
        ".sock";
    options.plan_cache_capacity = 64;
    options.admission.max_concurrent = 8;
    options.admission.max_queue = 64;
    options.default_execution.parallelism = 2;
    warm = std::make_unique<raven::server::QueryServer>(&ctx, options);
    MustOk(warm->Start(), "warm server start");
    options.unix_socket_path =
        "/tmp/raven_bench_server_cold_" + std::to_string(::getpid()) +
        ".sock";
    options.plan_cache_capacity = 0;
    cold = std::make_unique<raven::server::QueryServer>(&ctx, options);
    MustOk(cold->Start(), "cold server start");
  }

  ~ServerHarness() {
    warm->Stop();
    cold->Stop();
  }
};

ServerHarness& Harness() {
  static auto* harness = new ServerHarness();
  return *harness;
}

void BM_ServerThroughput(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const bool warm = state.range(1) != 0;
  ServerHarness& harness = Harness();
  raven::server::QueryServer& server =
      warm ? *harness.warm : *harness.cold;
  const auto& mix = StatementMix();
  // Fixed statements-per-batch so QPS is comparable across client counts.
  const int total_statements = clients * 24;

  if (warm) {
    // One pass primes every mix entry; the measured batches then hit.
    raven::server::ServerClient primer;
    MustOk(primer.ConnectUnix(server.unix_socket_path()), "connect");
    for (const auto& sql : mix) {
      auto response = primer.Query(sql);
      if (!response.ok() ||
          response->kind != raven::server::ServerResponseKind::kTable) {
        state.SkipWithError("warmup statement failed");
        return;
      }
    }
  }

  std::vector<double> latencies;
  std::int64_t hits = 0;
  std::int64_t served = 0;
  double batch_seconds = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::vector<double>> per_client(
        static_cast<std::size_t>(clients));
    std::atomic<std::int64_t> batch_hits{0};
    std::atomic<bool> failed{false};
    state.ResumeTiming();

    raven::Timer batch_timer;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int tid = 0; tid < clients; ++tid) {
      threads.emplace_back([&, tid] {
        raven::server::ServerClient client;
        if (!client.ConnectUnix(server.unix_socket_path()).ok()) {
          failed.store(true);
          return;
        }
        auto& mine = per_client[static_cast<std::size_t>(tid)];
        const int per_thread = total_statements / clients;
        for (int i = 0; i < per_thread; ++i) {
          const std::string& sql = mix[static_cast<std::size_t>(
              (tid + i) % static_cast<int>(mix.size()))];
          raven::Timer timer;
          auto response = client.Query(sql);
          if (!response.ok() ||
              response->kind !=
                  raven::server::ServerResponseKind::kTable) {
            failed.store(true);
            return;
          }
          mine.push_back(timer.ElapsedMicros());
          if (response->plan_cache_hit) batch_hits.fetch_add(1);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    batch_seconds += batch_timer.ElapsedSeconds();

    if (failed.load()) {
      state.SkipWithError("client statement failed");
      return;
    }
    for (const auto& mine : per_client) {
      latencies.insert(latencies.end(), mine.begin(), mine.end());
      served += static_cast<std::int64_t>(mine.size());
    }
    hits += batch_hits.load();
  }

  if (!latencies.empty() && batch_seconds > 0) {
    std::sort(latencies.begin(), latencies.end());
    auto percentile = [&latencies](double p) {
      const auto index = static_cast<std::size_t>(
          p * static_cast<double>(latencies.size() - 1));
      return latencies[index];
    };
    state.counters["qps"] = static_cast<double>(served) / batch_seconds;
    state.counters["p50_us"] = percentile(0.50);
    state.counters["p95_us"] = percentile(0.95);
    state.counters["p99_us"] = percentile(0.99);
    state.counters["hit_pct"] =
        100.0 * static_cast<double>(hits) / static_cast<double>(served);
    // Server-side percentiles from the metrics registry's latency histogram
    // (obs::Histogram::Quantile — the same series /metrics exports), so a
    // BENCH_<sha>.json diff can distinguish server time from the connection
    // round-trip the client-side percentiles include.
    const raven::obs::Histogram& h = server.query_latency_histogram();
    state.counters["srv_p50_us"] = h.Quantile(0.50) * 1e6;
    state.counters["srv_p95_us"] = h.Quantile(0.95) * 1e6;
    state.counters["srv_p99_us"] = h.Quantile(0.99) * 1e6;
  }
}

BENCHMARK(BM_ServerThroughput)
    ->ArgNames({"clients", "warm"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// ---------------------------------------------------------------------------
// Cross-query inference micro-batching sweep.

/// Small table: the point lookup under PREDICT leaves one row to score, so
/// per-statement cost is dominated by the per-call NNRT invocation the
/// batcher exists to amortize, not by the scan.
constexpr std::int64_t kPredictRows = 2048;

/// Flight featurizer + MLP head, declared so static analysis categorizes
/// the stored pipeline as a neural model (and NN translation fires) rather
/// than falling back to the opaque-UDF path.
std::string FlightMlpScript() {
  return "from sklearn.pipeline import Pipeline, FeatureUnion\n"
         "from sklearn.preprocessing import StandardScaler, OneHotEncoder\n"
         "from sklearn.neural_network import MLPRegressor\n"
         "\n"
         "model_pipeline = Pipeline([\n"
         "    ('union', FeatureUnion([\n"
         "        ('scaler', StandardScaler(columns=['dep_hour', 'distance',\n"
         "            'day_of_week'])),\n"
         "        ('onehot', OneHotEncoder(columns=['airline', 'origin',\n"
         "            'dest']))\n"
         "    ])),\n"
         "    ('clf', MLPRegressor(max_iter=8))\n"
         "])\n";
}

struct BatchedHarness {
  raven::RavenContext ctx;
  /// Identical servers except for the micro-batch window: `batched`
  /// coalesces concurrent PREDICT rows into shared NNRT calls, `solo`
  /// runs every row's inference by itself.
  std::unique_ptr<raven::server::QueryServer> batched;
  std::unique_ptr<raven::server::QueryServer> solo;

  BatchedHarness() {
    const auto& flight = raven::bench::Flight(kPredictRows);
    MustOk(ctx.RegisterTable("flights", flight.flights), "flights");
    // The served model is a deep, narrow MLP over the flight featurizer:
    // single-row inference on it is dominated by per-call graph execution
    // overhead rather than FLOPs — the Fig 2(d) regime where batching the
    // invocation across queries pays. (A linear model would be a single
    // cheap Gemm; batching it mostly measures the batch window.)
    auto pipeline =
        Must(raven::data::TrainFlightLogreg(flight, 0.01), "train");
    {
      const std::int64_t features = pipeline.NumFeatures();
      constexpr std::int64_t kWidth = 16;
      constexpr int kDepth = 128;
      raven::ml::Mlp mlp;
      std::int64_t in = features;
      for (int l = 0; l <= kDepth; ++l) {
        const bool last = l == kDepth;
        raven::ml::DenseLayer layer;
        layer.in = in;
        layer.out = last ? 1 : kWidth;
        layer.activation = last ? raven::ml::Activation::kSigmoid
                                : raven::ml::Activation::kRelu;
        layer.weights.resize(
            static_cast<std::size_t>(layer.in * layer.out));
        layer.bias.assign(static_cast<std::size_t>(layer.out), 0.01f);
        for (std::size_t i = 0; i < layer.weights.size(); ++i) {
          layer.weights[i] =
              0.2f * std::sin(0.37f * static_cast<float>(i + 1));
        }
        mlp.AddLayer(std::move(layer));
        in = kWidth;
      }
      pipeline.predictor = std::move(mlp);
    }
    MustOk(ctx.InsertModel("delay", FlightMlpScript(), pipeline), "delay");
    raven::server::QueryServerOptions options;
    options.unix_socket_path = "/tmp/raven_bench_server_batched_" +
                               std::to_string(::getpid()) + ".sock";
    options.plan_cache_capacity = 64;
    // Every client gets an execution slot: coalescing only happens among
    // queries that are concurrently inside the scorer, and slots are cheap
    // here because batched queries spend their time waiting, not running.
    options.admission.max_concurrent = 256;
    options.admission.max_queue = 64;
    options.admission.queue_timeout_millis = 120000;
    options.default_execution.parallelism = 1;
    options.default_execution.predict_batch_window_micros = 2000;
    options.default_execution.predict_max_batch_rows = 256;
    batched = std::make_unique<raven::server::QueryServer>(&ctx, options);
    MustOk(batched->Start(), "batched server start");
    options.unix_socket_path = "/tmp/raven_bench_server_solo_" +
                               std::to_string(::getpid()) + ".sock";
    options.default_execution.predict_batch_window_micros = 0;
    solo = std::make_unique<raven::server::QueryServer>(&ctx, options);
    MustOk(solo->Start(), "solo server start");
  }

  ~BatchedHarness() {
    batched->Stop();
    solo->Stop();
  }
};

BatchedHarness& Batched() {
  static auto* harness = new BatchedHarness();
  return *harness;
}

void BM_BatchedPredict(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const bool batching = state.range(1) != 0;
  BatchedHarness& harness = Batched();
  raven::server::QueryServer& server =
      batching ? *harness.batched : *harness.solo;
  const int total_statements = clients * 16;

  const auto before = server.batcher().stats();
  std::vector<double> latencies;
  std::int64_t served = 0;
  double batch_seconds = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::vector<double>> per_client(
        static_cast<std::size_t>(clients));
    std::atomic<bool> failed{false};
    state.ResumeTiming();

    raven::Timer batch_timer;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int tid = 0; tid < clients; ++tid) {
      threads.emplace_back([&, tid] {
        raven::server::ServerClient client;
        if (!client.ConnectUnix(server.unix_socket_path()).ok()) {
          failed.store(true);
          return;
        }
        auto prep = client.Query(
            "PREPARE point AS SELECT id, p FROM "
            "PREDICT(MODEL='delay', DATA=flights) WITH(p float) "
            "WHERE id = ?");
        if (!prep.ok() ||
            prep->kind == raven::server::ServerResponseKind::kError) {
          failed.store(true);
          return;
        }
        auto& mine = per_client[static_cast<std::size_t>(tid)];
        const int per_thread = total_statements / clients;
        for (int i = 0; i < per_thread; ++i) {
          const double id = static_cast<double>(
              (tid * 131 + i * 17) % static_cast<int>(kPredictRows));
          raven::Timer timer;
          auto response = client.ExecutePrepared("point", {id});
          if (!response.ok() ||
              response->kind !=
                  raven::server::ServerResponseKind::kTable) {
            failed.store(true);
            return;
          }
          mine.push_back(timer.ElapsedMicros());
        }
      });
    }
    for (auto& thread : threads) thread.join();
    batch_seconds += batch_timer.ElapsedSeconds();

    if (failed.load()) {
      state.SkipWithError("client statement failed");
      return;
    }
    for (const auto& mine : per_client) {
      latencies.insert(latencies.end(), mine.begin(), mine.end());
      served += static_cast<std::int64_t>(mine.size());
    }
  }

  if (!latencies.empty() && batch_seconds > 0) {
    std::sort(latencies.begin(), latencies.end());
    auto percentile = [&latencies](double p) {
      const auto index = static_cast<std::size_t>(
          p * static_cast<double>(latencies.size() - 1));
      return latencies[index];
    };
    const auto after = server.batcher().stats();
    state.counters["qps"] = static_cast<double>(served) / batch_seconds;
    state.counters["p50_us"] = percentile(0.50);
    state.counters["p95_us"] = percentile(0.95);
    state.counters["p99_us"] = percentile(0.99);
    const raven::obs::Histogram& h = server.query_latency_histogram();
    state.counters["srv_p50_us"] = h.Quantile(0.50) * 1e6;
    state.counters["srv_p95_us"] = h.Quantile(0.95) * 1e6;
    state.counters["srv_p99_us"] = h.Quantile(0.99) * 1e6;
    state.counters["batch_pct"] =
        100.0 * static_cast<double>(after.rows_coalesced -
                                    before.rows_coalesced) /
        static_cast<double>(served);
    const std::int64_t batches = after.batches_flushed - before.batches_flushed;
    state.counters["occup_x100"] =
        batches > 0 ? 100.0 *
                          static_cast<double>(after.rows_flushed -
                                              before.rows_flushed) /
                          static_cast<double>(batches)
                    : 100.0;
  }
}

BENCHMARK(BM_BatchedPredict)
    ->ArgNames({"clients", "batching"})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
