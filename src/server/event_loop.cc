#include "server/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace raven::server {
namespace {

/// epoll_wait timeout: the idle-sweep cadence. Connections are reaped
/// within one tick of their deadline; the tick is coarse because idle
/// reaping is a hygiene bound, not a latency path.
constexpr int kSweepMillis = 200;

Status WriteAllNonblocking(int fd, const char* data, std::size_t size,
                           int timeout_millis) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_millis);
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) {
        return Status::IoError("response write timed out");
      }
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (ready < 0 && errno != EINTR) {
        return Status::IoError("poll(POLLOUT) failed: " +
                               std::string(std::strerror(errno)));
      }
      continue;
    }
    return Status::IoError("socket write failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

Status WriteFrameNonblocking(int fd, const std::string& payload,
                             int timeout_millis) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string framed(4, '\0');
  std::memcpy(framed.data(), &len, 4);
  framed += payload;
  return WriteAllNonblocking(fd, framed.data(), framed.size(),
                             timeout_millis);
}

EventLoop::EventLoop(EventLoopOptions options, OpenHandler on_open,
                     RequestHandler on_request, CloseHandler on_close)
    : options_(std::move(options)),
      on_open_(std::move(on_open)),
      on_request_(std::move(on_request)),
      on_close_(std::move(on_close)) {}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start(int listen_fd) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("event loop is already running");
  }
  listen_fd_ = listen_fd;
  // The listener must not block the loop: accept until EAGAIN.
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IoError("fcntl(listen, O_NONBLOCK) failed: " +
                           std::string(std::strerror(errno)));
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IoError("epoll_create1 failed: " +
                           std::string(std::strerror(errno)));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::IoError("eventfd failed: " +
                           std::string(std::strerror(errno)));
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.ptr = &listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Status::IoError("epoll_ctl(listen) failed: " +
                           std::string(std::strerror(errno)));
  }
  ev.data.ptr = &wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::IoError("epoll_ctl(wake) failed: " +
                           std::string(std::strerror(errno)));
  }
  running_.store(true, std::memory_order_release);
  dispatch_stopping_ = false;
  const int threads = options_.dispatch_threads > 0
                          ? options_.dispatch_threads
                          : 8;
  dispatch_threads_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    dispatch_threads_.emplace_back(&EventLoop::DispatchThread, this);
  }
  loop_thread_ = std::thread(&EventLoop::LoopThread, this);
  return Status::OK();
}

void EventLoop::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop is gone: this thread is now the sole owner of conns_. Sever
  // every socket first so in-flight handlers fail their response writes
  // fast (EPIPE) instead of blocking on full client buffers, and clients
  // see EOF.
  for (auto& entry : conns_) {
    ::shutdown(entry.second->fd, SHUT_RDWR);
  }
  {
    // Requests read but not yet started are dropped — to the client this
    // is the same as the connection being severed before the request was
    // read, which Stop is doing to everyone anyway. In-flight handlers
    // run to completion (execution is not interruptible); the server shut
    // its PredictBatcher down before stopping the loop, so none of them
    // can be parked on a batch window.
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    dispatch_stopping_ = true;
    jobs_.clear();
    dispatch_cv_.notify_all();
  }
  for (std::thread& thread : dispatch_threads_) {
    if (thread.joinable()) thread.join();
  }
  dispatch_threads_.clear();
  // No handler can touch a connection or its context anymore: close and
  // tear down the sessions.
  for (auto& entry : conns_) {
    ::close(entry.second->fd);
    if (on_close_) on_close_(entry.second->context);
  }
  conns_.clear();
  connections_open_.store(0, std::memory_order_relaxed);
  completions_.clear();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  listen_fd_ = -1;
}

void EventLoop::WakeLoop() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  ssize_t n;
  do {
    n = ::write(wake_fd_, &one, sizeof(one));
  } while (n < 0 && errno == EINTR);
}

void EventLoop::LoopThread() {
  std::vector<struct epoll_event> events(64);
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               kSweepMillis);
    if (!running_.load(std::memory_order_acquire)) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n > 0) epoll_wakeups_.fetch_add(1, std::memory_order_relaxed);
    // Socket events first, completions after: a completion may close a
    // connection, and a stale event for it in this same batch would then
    // dereference a freed Conn.
    for (int i = 0; i < n; ++i) {
      void* tag = events[static_cast<std::size_t>(i)].data.ptr;
      if (tag == &listen_fd_) {
        AcceptReady();
        continue;
      }
      if (tag == &wake_fd_) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      Conn* conn = static_cast<Conn*>(tag);
      if (conn->phase == Phase::kBusy) {
        // EPOLLHUP/EPOLLERR are delivered even with no subscribed events.
        // The handler owns this connection; remember the hangup and let
        // its (failing) response write surface it at completion.
        conn->peer_gone = true;
        continue;
      }
      ReadReady(conn);
    }
    HandleCompletions();
    SweepIdle();
  }
}

void EventLoop::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN, or the listener was shut down
    }
    if (static_cast<std::int64_t>(conns_.size()) >=
        options_.max_connections) {
      // Turn the connection away at the door with the canned busy frame
      // rather than silently dropping it. Best-effort: the arrival may
      // already be gone.
      if (!options_.busy_payload.empty()) {
        (void)WriteFrameNonblocking(fd, options_.busy_payload, 1000);
      }
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->last_activity = std::chrono::steady_clock::now();
    conn->context = on_open_ ? on_open_() : nullptr;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      if (on_close_) on_close_(conn->context);
      ::close(fd);
      continue;
    }
    conns_[fd] = std::move(conn);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EventLoop::ReadReady(Conn* conn) {
  if (options_.http_mode) {
    // HTTP framing: accumulate until the blank line ending the request
    // head. No header/payload phases — the terminator is in-band.
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n == 0) {
        CloseConn(conn);
        return;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        CloseConn(conn);
        return;
      }
      conn->payload.append(buf, static_cast<std::size_t>(n));
      if (conn->payload.size() > options_.max_request_frame_bytes) {
        CloseConn(conn);
        return;
      }
      if (conn->payload.find("\r\n\r\n") != std::string::npos ||
          conn->payload.find("\n\n") != std::string::npos) {
        DispatchRequest(conn);
        return;
      }
    }
  }
  for (;;) {
    if (conn->phase == Phase::kHeader) {
      const ssize_t n =
          ::read(conn->fd, conn->header + conn->header_filled,
                 4 - conn->header_filled);
      if (n == 0) {
        CloseConn(conn);
        return;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        CloseConn(conn);
        return;
      }
      conn->header_filled += static_cast<std::size_t>(n);
      if (conn->header_filled < 4) continue;
      std::memcpy(&conn->payload_size, conn->header, 4);
      if (conn->payload_size > options_.max_request_frame_bytes) {
        // Refuse BEFORE allocating the claimed buffer — a hostile header
        // cannot cost the server the allocation — then hang up: the
        // unread payload desyncs the stream.
        if (!options_.oversize_payload.empty()) {
          (void)WriteFrameNonblocking(conn->fd, options_.oversize_payload,
                                      1000);
        }
        CloseConn(conn);
        return;
      }
      conn->phase = Phase::kPayload;
      conn->payload.assign(conn->payload_size, '\0');
      conn->payload_filled = 0;
      if (conn->payload_size == 0) {
        DispatchRequest(conn);
        return;
      }
      continue;
    }
    // Phase::kPayload
    const ssize_t n = ::read(
        conn->fd, conn->payload.data() + conn->payload_filled,
        static_cast<std::size_t>(conn->payload_size) - conn->payload_filled);
    if (n == 0) {
      CloseConn(conn);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConn(conn);
      return;
    }
    conn->payload_filled += static_cast<std::size_t>(n);
    if (conn->payload_filled >= conn->payload_size) {
      // Strict request/response: stop reading until the response is out
      // (any pipelined bytes wait in the kernel buffer).
      DispatchRequest(conn);
      return;
    }
  }
}

void EventLoop::DispatchRequest(Conn* conn) {
  conn->phase = Phase::kBusy;
  // Unsubscribe from readiness while the request is in flight; HUP/ERR
  // still arrive and are remembered via peer_gone.
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = 0;
  ev.data.ptr = conn;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  Job job;
  job.conn = conn;
  job.payload = std::move(conn->payload);
  conn->payload.clear();
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    jobs_.push_back(std::move(job));
  }
  dispatch_cv_.notify_one();
}

void EventLoop::DispatchThread() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.wait(lock, [this] {
        return dispatch_stopping_ || !jobs_.empty();
      });
      if (dispatch_stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    const std::string response =
        on_request_(job.conn->context, std::move(job.payload));
    // The response goes out from this thread (the loop never buffers
    // result tables); a stalled or vanished client fails the write and
    // the completion closes the connection. HTTP mode writes the handler's
    // bytes verbatim — the response is a complete HTTP message, and the
    // completion below closes the connection either way.
    const Status written =
        options_.http_mode
            ? WriteAllNonblocking(job.conn->fd, response.data(),
                                  response.size(), 120000)
            : WriteFrameNonblocking(job.conn->fd, response, 120000);
    Completion completion;
    completion.conn = job.conn;
    completion.ok = written.ok();
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(completion);
    }
    WakeLoop();
  }
}

void EventLoop::HandleCompletions() {
  std::vector<Completion> ready;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    ready.swap(completions_);
  }
  for (const Completion& completion : ready) {
    Conn* conn = completion.conn;
    if (!completion.ok || conn->peer_gone || options_.http_mode) {
      // HTTP mode is connection-per-request (close-delimited responses),
      // so a successful completion closes too.
      CloseConn(conn);
      continue;
    }
    // Response delivered: this is the completed activity that re-arms the
    // idle deadline (partial frame bytes never do).
    conn->phase = Phase::kHeader;
    conn->header_filled = 0;
    conn->payload.clear();
    conn->payload_filled = 0;
    conn->last_activity = std::chrono::steady_clock::now();
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.ptr = conn;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) != 0) {
      CloseConn(conn);
    }
  }
}

void EventLoop::SweepIdle() {
  if (options_.idle_timeout_millis <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_millis);
  std::vector<Conn*> victims;
  for (auto& [fd, conn] : conns_) {
    if (conn->phase == Phase::kBusy) continue;  // execution in flight
    if (now - conn->last_activity > limit) victims.push_back(conn.get());
  }
  for (Conn* conn : victims) {
    idle_drops_.fetch_add(1, std::memory_order_relaxed);
    CloseConn(conn);
  }
}

void EventLoop::CloseConn(Conn* conn) {
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  if (on_close_) on_close_(conn->context);
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  conns_.erase(conn->fd);  // frees the Conn
}

EventLoopStats EventLoop::stats() const {
  EventLoopStats stats;
  stats.epoll_wakeups = epoll_wakeups_.load(std::memory_order_relaxed);
  stats.connections_open =
      connections_open_.load(std::memory_order_relaxed);
  stats.idle_drops = idle_drops_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace raven::server
