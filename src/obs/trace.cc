#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/serialize.h"

namespace raven {
namespace obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

Trace::Trace() : start_(std::chrono::steady_clock::now()) {}

std::int64_t Trace::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

std::int64_t Trace::StartSpan(const std::string& name, std::int64_t parent) {
  const std::int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return 0;
  }
  TraceSpan span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = name;
  span.start_micros = now;
  span.duration_micros = -1;  // open
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Trace::EndSpan(std::int64_t id, const std::string& detail) {
  if (id <= 0) return;
  const std::int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  // Spans close shortly after they open; scan from the back.
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->id == id) {
      it->duration_micros = now - it->start_micros;
      if (!detail.empty()) it->detail = detail;
      return;
    }
  }
}

std::int64_t Trace::AddSpan(const std::string& name, std::int64_t parent,
                            std::int64_t start_micros,
                            std::int64_t duration_micros,
                            const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return 0;
  }
  TraceSpan span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = name;
  span.start_micros = start_micros;
  span.duration_micros = duration_micros;
  span.detail = detail;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Trace::Splice(std::int64_t parent, std::int64_t base_micros,
                   const std::vector<TraceSpan>& spans) {
  if (spans.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Offset worker-local ids past everything this arena has handed out.
  const std::int64_t offset = next_id_ - 1;
  std::int64_t max_id = next_id_ - 1;
  for (const TraceSpan& s : spans) {
    if (spans_.size() >= kMaxSpans) {
      ++dropped_;
      continue;
    }
    TraceSpan grafted = s;
    grafted.id += offset;
    grafted.parent = (s.parent == 0) ? parent : s.parent + offset;
    grafted.start_micros += base_micros;
    max_id = std::max(max_id, grafted.id);
    spans_.push_back(std::move(grafted));
  }
  next_id_ = max_id + 1;
}

std::vector<TraceSpan> Trace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

bool Trace::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.empty();
}

std::string Trace::RenderTree() const {
  const std::vector<TraceSpan> spans = Snapshot();
  std::map<std::int64_t, std::vector<const TraceSpan*>> children;
  for (const TraceSpan& s : spans) children[s.parent].push_back(&s);

  std::string out;
  // Recursive lambda via explicit self parameter (no std::function alloc).
  struct Renderer {
    const std::map<std::int64_t, std::vector<const TraceSpan*>>& children;
    std::string& out;
    void Walk(std::int64_t parent, int depth) {
      auto it = children.find(parent);
      if (it == children.end()) return;
      for (const TraceSpan* s : it->second) {
        out.append(static_cast<std::size_t>(depth) * 2, ' ');
        out += s->name;
        char buf[96];
        std::snprintf(buf, sizeof(buf), "  start=%lldus dur=%lldus",
                      static_cast<long long>(s->start_micros),
                      static_cast<long long>(s->duration_micros));
        out += buf;
        if (!s->detail.empty()) {
          out += "  ";
          out += s->detail;
        }
        out += '\n';
        Walk(s->id, depth + 1);
      }
    }
  };
  Renderer r{children, out};
  r.Walk(0, 0);
  return out;
}

std::string Trace::RenderJsonLine(const std::string& query,
                                  std::int64_t total_micros) const {
  std::vector<TraceSpan> spans;
  std::int64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    dropped = dropped_;
  }
  std::string out = "{\"query\":\"" + JsonEscape(query) + "\"";
  out += ",\"total_micros\":" + std::to_string(total_micros);
  if (dropped > 0) out += ",\"dropped_spans\":" + std::to_string(dropped);
  out += ",\"spans\":[";
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(s.id);
    out += ",\"parent\":" + std::to_string(s.parent);
    out += ",\"name\":\"" + JsonEscape(s.name) + "\"";
    out += ",\"start_micros\":" + std::to_string(s.start_micros);
    out += ",\"duration_micros\":" + std::to_string(s.duration_micros);
    if (!s.detail.empty()) {
      out += ",\"detail\":\"" + JsonEscape(s.detail) + "\"";
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string Trace::SerializeSpans(const std::vector<TraceSpan>& spans) {
  BinaryWriter writer;
  writer.WriteU32(static_cast<std::uint32_t>(spans.size()));
  for (const TraceSpan& s : spans) {
    writer.WriteI64(s.id);
    writer.WriteI64(s.parent);
    writer.WriteString(s.name);
    writer.WriteI64(s.start_micros);
    writer.WriteI64(s.duration_micros);
    writer.WriteString(s.detail);
  }
  return writer.Release();
}

Result<std::vector<TraceSpan>> Trace::DeserializeSpans(
    const std::string& bytes) {
  BinaryReader reader(bytes);
  RAVEN_ASSIGN_OR_RETURN(const std::uint32_t count, reader.ReadU32());
  if (count > 1u << 20) {
    return Status::InvalidArgument("span list implausibly large");
  }
  std::vector<TraceSpan> spans;
  spans.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TraceSpan s;
    RAVEN_ASSIGN_OR_RETURN(s.id, reader.ReadI64());
    RAVEN_ASSIGN_OR_RETURN(s.parent, reader.ReadI64());
    RAVEN_ASSIGN_OR_RETURN(s.name, reader.ReadString());
    RAVEN_ASSIGN_OR_RETURN(s.start_micros, reader.ReadI64());
    RAVEN_ASSIGN_OR_RETURN(s.duration_micros, reader.ReadI64());
    RAVEN_ASSIGN_OR_RETURN(s.detail, reader.ReadString());
    spans.push_back(std::move(s));
  }
  return spans;
}

}  // namespace obs
}  // namespace raven
