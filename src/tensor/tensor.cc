#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

namespace raven {

std::int64_t ShapeNumElements(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) n *= d;
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor Tensor::Zeros(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_.assign(static_cast<std::size_t>(ShapeNumElements(t.shape_)), 0.0f);
  return t;
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_.assign(static_cast<std::size_t>(ShapeNumElements(t.shape_)), value);
  return t;
}

Result<Tensor> Tensor::FromData(Shape shape, std::vector<float> data) {
  if (shape.empty() && data.empty()) {
    return Tensor();  // the default (empty) tensor round-trips as itself
  }
  if (ShapeNumElements(shape) != static_cast<std::int64_t>(data.size())) {
    return Status::InvalidArgument(
        "tensor data size " + std::to_string(data.size()) +
        " does not match shape " + ShapeToString(shape));
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::FromVector(std::vector<float> data) {
  Tensor t;
  t.shape_ = {static_cast<std::int64_t>(data.size())};
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t;
  t.shape_ = {};
  t.data_ = {value};
  return t;
}

Status Tensor::Reshape(Shape new_shape) {
  if (ShapeNumElements(new_shape) != num_elements()) {
    return Status::InvalidArgument("reshape to " + ShapeToString(new_shape) +
                                   " changes element count");
  }
  shape_ = std::move(new_shape);
  return Status::OK();
}

Result<Tensor> Tensor::SliceRows(std::int64_t begin, std::int64_t end) const {
  if (rank() != 2) {
    return Status::InvalidArgument("SliceRows requires a rank-2 tensor");
  }
  if (begin < 0 || end < begin || end > shape_[0]) {
    return Status::OutOfRange("row slice [" + std::to_string(begin) + ", " +
                              std::to_string(end) + ") out of bounds for " +
                              ShapeToString(shape_));
  }
  const std::int64_t cols = shape_[1];
  Tensor out = Zeros({end - begin, cols});
  std::copy(data_.begin() + static_cast<std::size_t>(begin * cols),
            data_.begin() + static_cast<std::size_t>(end * cols),
            out.data_.begin());
  return out;
}

bool Tensor::Equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::AllClose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

std::string Tensor::ToString(std::int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  const std::int64_t n =
      std::min<std::int64_t>(max_elements, num_elements());
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[static_cast<std::size_t>(i)];
  }
  if (n < num_elements()) os << ", ...";
  os << "}";
  return os.str();
}

void Tensor::Serialize(BinaryWriter* writer) const {
  writer->WriteI64Vector(
      std::vector<std::int64_t>(shape_.begin(), shape_.end()));
  writer->WriteF32Vector(data_);
}

Result<Tensor> Tensor::Deserialize(BinaryReader* reader) {
  RAVEN_ASSIGN_OR_RETURN(auto dims, reader->ReadI64Vector());
  RAVEN_ASSIGN_OR_RETURN(auto data, reader->ReadF32Vector());
  return FromData(Shape(dims.begin(), dims.end()), std::move(data));
}

}  // namespace raven
