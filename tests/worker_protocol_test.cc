// Dedicated round-trip coverage for the out-of-process wire protocol
// (runtime/worker_protocol): request/response encode->decode equality
// across commands, the kExecuteFragment payload and its chunk/done/error
// response stream, and truncated/corrupt/oversized payload error paths —
// the engine-side half of the protocol fault-injection story.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "ir/ir.h"
#include "relational/expression.h"
#include "runtime/worker_protocol.h"
#include "tensor/tensor.h"

namespace raven::runtime {
namespace {

ScoreRequest MakeRequest(WorkerCommand command) {
  ScoreRequest request;
  request.command = command;
  request.model_bytes = "stored-model-bytes";
  request.input = *Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  return request;
}

TEST(WorkerProtocolRoundTrip, RequestAllCommands) {
  for (WorkerCommand command :
       {WorkerCommand::kPing, WorkerCommand::kScorePipeline,
        WorkerCommand::kScoreGraph, WorkerCommand::kShutdown}) {
    ScoreRequest request = MakeRequest(command);
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->command, command);
    EXPECT_EQ(decoded->model_bytes, request.model_bytes);
    EXPECT_EQ(decoded->input.shape(), request.input.shape());
    EXPECT_TRUE(decoded->input.AllClose(request.input, 0.0f));
  }
}

TEST(WorkerProtocolRoundTrip, SuccessResponse) {
  ScoreResponse response;
  response.ok = true;
  response.output = *Tensor::FromData({3, 1}, {0.25f, -1.5f, 9.0f});
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->ok);
  EXPECT_TRUE(decoded->error.empty());
  EXPECT_EQ(decoded->output.shape(), response.output.shape());
  EXPECT_TRUE(decoded->output.AllClose(response.output, 0.0f));
}

TEST(WorkerProtocolRoundTrip, ErrorResponseCarriesMessage) {
  ScoreResponse response;
  response.ok = false;
  response.error = "model deserialization failed";
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->error, "model deserialization failed");
}

TEST(WorkerProtocolErrors, TruncatedRequestAtEveryPrefixFails) {
  const std::string full = EncodeRequest(MakeRequest(WorkerCommand::kScoreGraph));
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    auto decoded = DecodeRequest(full.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "decode succeeded at cut=" << cut;
  }
}

TEST(WorkerProtocolErrors, TruncatedResponseFails) {
  ScoreResponse response;
  response.ok = true;
  response.output = *Tensor::FromData({2, 2}, {1, 2, 3, 4});
  const std::string full = EncodeResponse(response);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    auto decoded = DecodeResponse(full.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "decode succeeded at cut=" << cut;
  }
}

TEST(WorkerProtocolErrors, BadCommandByteIsParseError) {
  std::string payload = EncodeRequest(MakeRequest(WorkerCommand::kPing));
  payload[0] = static_cast<char>(0x7F);  // command is the first byte
  auto decoded = DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(WorkerProtocolErrors, EmptyPayloadFails) {
  EXPECT_FALSE(DecodeRequest("").ok());
  EXPECT_FALSE(DecodeResponse("").ok());
}

FragmentRequest MakeFragmentRequest() {
  // A realistic fragment: Filter(TableScan) with a composite predicate,
  // serialized through the real IR encoder, plus a two-column table slice.
  auto fragment = ir::IrNode::Filter(
      ir::IrNode::TableScan("patients"),
      relational::And(
          relational::Gt(relational::Col("age"), relational::Lit(40.0)),
          relational::Le(relational::Col("bp"), relational::Lit(120.0))));
  BinaryWriter plan_writer;
  EXPECT_TRUE(ir::SerializeFragment(*fragment, &plan_writer).ok());
  relational::Table slice;
  EXPECT_TRUE(slice.AddNumericColumn("age", {41.0, 39.0, 77.0}).ok());
  EXPECT_TRUE(slice.AddNumericColumn("bp", {100.0, 118.0, 130.0}).ok());
  BinaryWriter table_writer;
  slice.Serialize(&table_writer);
  FragmentRequest request;
  request.plan_bytes = plan_writer.Release();
  request.table_name = "patients";
  request.range_begin = 2048;
  request.range_end = 2051;
  request.table_bytes = table_writer.Release();
  return request;
}

TEST(FragmentProtocolRoundTrip, RequestCarriesPlanRangeAndSlice) {
  const FragmentRequest request = MakeFragmentRequest();
  auto decoded = DecodeFragmentRequest(EncodeFragmentRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->plan_bytes, request.plan_bytes);
  EXPECT_EQ(decoded->table_name, "patients");
  EXPECT_EQ(decoded->range_begin, 2048);
  EXPECT_EQ(decoded->range_end, 2051);
  EXPECT_EQ(decoded->table_bytes, request.table_bytes);

  // The embedded artifacts decode back to equivalent objects.
  BinaryReader plan_reader(decoded->plan_bytes);
  auto fragment = ir::DeserializeFragment(&plan_reader);
  ASSERT_TRUE(fragment.ok()) << fragment.status().ToString();
  EXPECT_EQ((*fragment)->kind, ir::IrOpKind::kFilter);
  ASSERT_EQ((*fragment)->children.size(), 1u);
  EXPECT_EQ((*fragment)->children[0]->table_name, "patients");
  EXPECT_EQ((*fragment)->predicate->ToString(),
            "((age > 40) AND (bp <= 120))");
  BinaryReader table_reader(decoded->table_bytes);
  auto slice = relational::Table::Deserialize(&table_reader);
  ASSERT_TRUE(slice.ok()) << slice.status().ToString();
  EXPECT_EQ(slice->num_rows(), 3);
  EXPECT_EQ(slice->ColumnNames(),
            (std::vector<std::string>{"age", "bp"}));
}

TEST(FragmentProtocolRoundTrip, ScoreDecoderRejectsFragmentCommand) {
  // The one-shot scoring decoder must hand fragment payloads to the
  // dedicated decoder instead of misreading them as tensors.
  const std::string payload = EncodeFragmentRequest(MakeFragmentRequest());
  auto decoded = DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(FragmentProtocolRoundTrip, EventStream) {
  relational::DataChunk chunk;
  chunk.names = {"id", "p"};
  chunk.cols = {{1.0, 2.0}, {0.5, 0.75}};
  auto chunk_event = DecodeFragmentEvent(EncodeFragmentChunk(chunk));
  ASSERT_TRUE(chunk_event.ok()) << chunk_event.status().ToString();
  EXPECT_EQ(chunk_event->kind, FragmentEventKind::kChunk);
  EXPECT_EQ(chunk_event->chunk.names, chunk.names);
  EXPECT_EQ(chunk_event->chunk.cols, chunk.cols);

  auto done_event =
      DecodeFragmentEvent(EncodeFragmentDone({"id", "p"}, 7));
  ASSERT_TRUE(done_event.ok());
  EXPECT_EQ(done_event->kind, FragmentEventKind::kDone);
  EXPECT_EQ(done_event->result_names,
            (std::vector<std::string>{"id", "p"}));
  EXPECT_EQ(done_event->result_rows, 7);

  auto error_event =
      DecodeFragmentEvent(EncodeFragmentError("worker exploded"));
  ASSERT_TRUE(error_event.ok());
  EXPECT_EQ(error_event->kind, FragmentEventKind::kError);
  EXPECT_EQ(error_event->error, "worker exploded");
}

TEST(FragmentProtocolErrors, TruncatedFragmentRequestAtEveryPrefixFails) {
  const std::string full = EncodeFragmentRequest(MakeFragmentRequest());
  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    auto decoded = DecodeFragmentRequest(full.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "decode succeeded at cut=" << cut;
  }
}

TEST(FragmentProtocolErrors, CorruptEventKindAndNegativeRowsFail) {
  std::string done = EncodeFragmentDone({"id"}, 5);
  done[0] = '\x7f';
  EXPECT_FALSE(DecodeFragmentEvent(done).ok());
  EXPECT_FALSE(DecodeFragmentEvent("").ok());
  BinaryWriter writer;
  writer.WriteU8(1);  // kDone
  writer.WriteStringVector({"id"});
  writer.WriteI64(-3);
  EXPECT_FALSE(DecodeFragmentEvent(writer.Release()).ok());
}

TEST(FragmentProtocolErrors, BadPartitionRangeFails) {
  FragmentRequest request = MakeFragmentRequest();
  request.range_begin = 10;
  request.range_end = 4;  // end < begin
  EXPECT_FALSE(DecodeFragmentRequest(EncodeFragmentRequest(request)).ok());
}

TEST(WorkerProtocolFrames, PipeRoundTrip) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = EncodeRequest(MakeRequest(WorkerCommand::kScorePipeline));
  ASSERT_TRUE(WriteFrame(fds[1], payload).ok());
  auto read_back = ReadFrame(fds[0]);
  ASSERT_TRUE(read_back.ok()) << read_back.status().ToString();
  EXPECT_EQ(*read_back, payload);
  // Empty frames are legal (used for pings).
  ASSERT_TRUE(WriteFrame(fds[1], "").ok());
  auto empty = ReadFrame(fds[0]);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WorkerProtocolFrames, ClosedPipeIsIoError) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[1]);  // writer gone -> EOF on read
  auto result = ReadFrame(fds[0]);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  ::close(fds[0]);
}

TEST(WorkerProtocolFrames, OversizedLengthHeaderIsRejected) {
  // A worker claiming a 2 GiB frame must fail fast, not allocate and wait.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint32_t len = 1u << 31;
  char header[4];
  std::memcpy(header, &len, 4);
  ASSERT_EQ(::write(fds[1], header, 4), 4);
  auto result = ReadFrame(fds[0]);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WorkerProtocolFrames, TruncatedFrameTimesOutInsteadOfHanging) {
  // Header promises 100 bytes, only 10 arrive, and the writer stays open
  // (a wedged worker). The timeout turns the stall into a diagnosable
  // IoError.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint32_t len = 100;
  char header[4];
  std::memcpy(header, &len, 4);
  ASSERT_EQ(::write(fds[1], header, 4), 4);
  ASSERT_EQ(::write(fds[1], "0123456789", 10), 10);
  auto result = ReadFrame(fds[0], /*timeout_millis=*/50);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("timed out"), std::string::npos)
      << result.status().ToString();
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WorkerProtocolFrames, TimeoutDoesNotFireWhenDataArrives) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = EncodeFragmentError("boom");
  ASSERT_TRUE(WriteFrame(fds[1], payload).ok());
  auto result = ReadFrame(fds[0], /*timeout_millis=*/1000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace raven::runtime
