// Morsel-parallel hash GROUP BY: dop 1 vs 8 over low- and high-cardinality
// keys (ISSUE 3). Low cardinality (a handful of groups) stresses the
// striped-merge contention path — every worker's thread-local table
// collapses onto the same few global entries; high cardinality (~n/4
// distinct key tuples) stresses per-worker hash-table build and the
// sequential final render. The regression signal is the dop-8-vs-dop-1
// ratio on multi-core runners, per cardinality regime.

#include "bench_util.h"
#include "raven/raven.h"

namespace raven {
namespace {

/// Synthetic keyed table: `low_card` picks between an 8-value key and a
/// ~n/4-value key, plus one numeric value column to aggregate.
relational::Table MakeKeyedTable(std::int64_t rows, bool low_card) {
  Rng rng(low_card ? 91 : 92);
  const std::int64_t cardinality = low_card ? 8 : std::max<std::int64_t>(
                                                      1, rows / 4);
  std::vector<double> key(static_cast<std::size_t>(rows));
  std::vector<double> value(static_cast<std::size_t>(rows));
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<double>(
        rng.NextUint(static_cast<std::uint64_t>(cardinality)));
    value[i] = rng.Uniform(0.0, 1000.0);
  }
  relational::Table t;
  bench::MustOk(t.AddNumericColumn("k", std::move(key)), "key column");
  bench::MustOk(t.AddNumericColumn("v", std::move(value)), "value column");
  return t;
}

void RunGroupBy(benchmark::State& state, bool low_card) {
  const std::int64_t rows = state.range(0);
  const std::int64_t dop = state.range(1);
  RavenContext ctx;
  ctx.execution_options().parallelism = dop;
  bench::MustOk(ctx.RegisterTable("keyed", MakeKeyedTable(rows, low_card)),
                "register");
  const std::string sql =
      "SELECT k, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi "
      "FROM keyed GROUP BY k";
  ir::IrPlan plan = bench::Must(ctx.Prepare(sql), "prepare");
  // Warm-up + correctness guard outside the timed loop.
  auto warm = ctx.ExecutePlan(plan);
  bench::MustOk(warm.status(), "warm-up execute");
  for (auto _ : state) {
    auto result = ctx.ExecutePlan(plan);
    if (!result.ok()) {
      state.SkipWithError("execute failed");
      return;
    }
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["dop"] = static_cast<double>(dop);
  state.counters["groups"] = static_cast<double>(warm->num_rows());
}

void BM_GroupBy_LowCardinality(benchmark::State& state) {
  RunGroupBy(state, /*low_card=*/true);
}

void BM_GroupBy_HighCardinality(benchmark::State& state) {
  RunGroupBy(state, /*low_card=*/false);
}

// 50000-row points stay in the --smoke set; 500000 is filtered out there
// (see tools/bench.sh) and anchors the full sweep.
BENCHMARK(BM_GroupBy_LowCardinality)
    ->Args({50000, 1})->Args({50000, 8})
    ->Args({500000, 1})->Args({500000, 8})
    ->Iterations(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupBy_HighCardinality)
    ->Args({50000, 1})->Args({50000, 8})
    ->Args({500000, 1})->Args({500000, 8})
    ->Iterations(2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace raven
