#ifndef RAVEN_NNRT_EXECUTOR_H_
#define RAVEN_NNRT_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "nnrt/graph.h"
#include "tensor/tensor.h"

namespace raven::nnrt {

class Backend;

/// Per-op-type execution aggregate (the backend profiling hook, mirroring
/// ONNX Runtime's per-kernel profiler / QNN's ProfilingLevel).
struct OpProfile {
  std::string op_type;
  std::int64_t calls = 0;
  double wall_micros = 0.0;
  double flops = 0.0;
};

/// Execution statistics for one graph run. `simulated_micros` is the
/// device-model time used for the accelerator backend (launch overhead +
/// flops / throughput); for the CPU device it equals measured wall time.
struct RunStats {
  double wall_micros = 0.0;
  double simulated_micros = 0.0;
  double flops = 0.0;
  std::size_t nodes_executed = 0;
  /// Per-op-type breakdown of this run, sorted by op_type. Filled only when
  /// the caller requested profiling (ExecuteGraph's profile_ops /
  /// SessionOptions::profiler) — per-node timing isn't free.
  std::vector<OpProfile> per_op;
};

/// Cumulative, thread-safe per-op-type profile across many runs. The serving
/// path hangs one off SessionCache so every session sharing the cache feeds
/// the same SHOW STATS / EXPLAIN rows.
class OpProfiler {
 public:
  void Merge(const std::vector<OpProfile>& per_op);

  /// All op aggregates, most expensive (by wall_micros) first.
  std::vector<OpProfile> Snapshot() const;

  std::int64_t total_calls() const;
  double total_micros() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, OpProfile> ops_;
  std::int64_t total_calls_ = 0;
  double total_micros_ = 0.0;
};

using TensorMap = std::unordered_map<std::string, Tensor>;

/// Executes `graph` over the given named inputs, returning the map of graph
/// outputs. Initializers seed the environment; nodes run in topological
/// order on the calling thread. `backend` selects the kernel implementation
/// set (nullptr = reference); with `profile_ops` each node is timed and
/// `stats->per_op` is populated.
Result<TensorMap> ExecuteGraph(const Graph& graph, const TensorMap& inputs,
                               RunStats* stats = nullptr,
                               const Backend* backend = nullptr,
                               bool profile_ops = false);

}  // namespace raven::nnrt

#endif  // RAVEN_NNRT_EXECUTOR_H_
