#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace raven {
namespace obs {
namespace {

/// Prometheus renders floats without locale surprises. Shortest precision
/// that round-trips the double, so bucket bounds read "0.0005", not the
/// "0.00050000000000000001" a flat %.17g would print.
std::string FormatValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    return buf;
  }
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double parsed = 0.0;
    if (std::sscanf(buf, "%lf", &parsed) == 1 && parsed == v) break;
  }
  return buf;
}

}  // namespace

std::vector<double> LogBuckets(double start, double factor, int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::int64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx =
      static_cast<std::size_t>(it - bounds_.begin());  // size() == +Inf
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS loop: double has no fetch_add until C++20 on all
  // toolchains; contention here is per-query, not per-row.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  const std::int64_t total = Count();
  if (total <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::int64_t in_bucket = BucketCount(i);
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (i == bounds_.size()) {
        // +Inf bucket: no upper bound to interpolate toward; report the
        // last finite boundary (the conventional conservative answer).
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double lo = (i == 0) ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      if (in_bucket <= 0) return hi;
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& labels) {
  Metric m;
  m.kind = Kind::kCounter;
  m.name = name;
  m.help = help;
  m.labels = labels;
  m.counter.reset(new Counter());
  metrics_.push_back(std::move(m));
  return metrics_.back().counter.get();
}

Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels) {
  Metric m;
  m.kind = Kind::kGauge;
  m.name = name;
  m.help = help;
  m.labels = labels;
  m.gauge.reset(new Gauge());
  metrics_.push_back(std::move(m));
  return metrics_.back().gauge.get();
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  Metric m;
  m.kind = Kind::kHistogram;
  m.name = name;
  m.help = help;
  m.histogram.reset(new Histogram(std::move(bounds)));
  metrics_.push_back(std::move(m));
  return metrics_.back().histogram.get();
}

std::string MetricsRegistry::Render() const {
  std::string out;
  std::string last_family;
  for (const Metric& m : metrics_) {
    // One HELP/TYPE header per family; labeled series registered
    // back-to-back share it.
    if (m.name != last_family) {
      const char* type = m.kind == Kind::kCounter     ? "counter"
                         : m.kind == Kind::kGauge     ? "gauge"
                                                      : "histogram";
      out += "# HELP " + m.name + " " + m.help + "\n";
      out += "# TYPE " + m.name + " " + std::string(type) + "\n";
      last_family = m.name;
    }
    const std::string suffix =
        m.labels.empty() ? "" : "{" + m.labels + "}";
    switch (m.kind) {
      case Kind::kCounter:
        out += m.name + suffix + " " +
               FormatValue(static_cast<double>(m.counter->Value())) + "\n";
        break;
      case Kind::kGauge:
        out += m.name + suffix + " " + FormatValue(m.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *m.histogram;
        std::int64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          out += m.name + "_bucket{le=\"" + FormatValue(h.bounds()[i]) +
                 "\"} " + std::to_string(cumulative) + "\n";
        }
        cumulative += h.BucketCount(h.bounds().size());
        out += m.name + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative) + "\n";
        out += m.name + "_sum " + FormatValue(h.Sum()) + "\n";
        out += m.name + "_count " + std::to_string(h.Count()) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace raven
