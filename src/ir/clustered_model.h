#ifndef RAVEN_IR_CLUSTERED_MODEL_H_
#define RAVEN_IR_CLUSTERED_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/kmeans.h"
#include "ml/pipeline.h"
#include "tensor/tensor.h"

namespace raven::ir {

/// The model-clustering optimization's artifact (paper §4.1, Fig 2(b)):
/// a k-means router over a subset of the input columns plus one specialized
/// (feature-projected) model per cluster. Rows are routed to their
/// cluster's precompiled model; rows with no precompiled model fall back to
/// the original pipeline.
struct ClusteredModel {
  /// Router fitted on the routing columns (a subset of pipeline inputs).
  ml::KMeans router;
  /// Indices (into the pipeline's input columns) used for routing.
  std::vector<std::int64_t> routing_columns;
  /// One specialized pipeline per cluster, same input column list as the
  /// original (specialization drops *features*, not raw inputs, so routing
  /// stays uniform).
  std::vector<ml::ModelPipeline> cluster_models;
  /// Per-cluster value assumptions (input column index, fixed value) that
  /// the specialized model was compiled under. Rows violating them fall
  /// back to the original pipeline, preserving exact semantics (the paper's
  /// "fall back to the original model" rule).
  std::vector<std::vector<std::pair<std::int64_t, double>>> assumptions;
  /// Per-cluster allowed value sets (input column index -> values observed
  /// in the cluster sample). One-hot codes outside the set were projected
  /// out of the cluster's model ("only specific unique values appear in
  /// the data", paper §4.1); rows with unseen values fall back.
  std::vector<std::map<std::int64_t, std::vector<double>>> allowed_values;
  /// Original pipeline, used when a cluster has no precompiled model or an
  /// assumption fails.
  ml::ModelPipeline fallback;

  /// Scores a raw [n, d] batch by routing each row.
  Result<Tensor> Predict(const Tensor& x) const;
};

}  // namespace raven::ir

#endif  // RAVEN_IR_CLUSTERED_MODEL_H_
