#include "nnrt/artifact_cache.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <functional>

#include "common/serialize.h"

namespace raven::nnrt {
namespace {

constexpr char kMagic[] = "RAVEN_NNRT_ARTIFACT";

/// FNV-1a over 8-byte words (tail bytes one at a time). Word striding cuts
/// the dependency chain 8x versus the byte-serial variant — artifacts are
/// hundreds of KB and this runs on every cold-start Load — with the same
/// corruption-detection quality (it is a checksum, not a MAC). Part of the
/// pinned v1 format: changing it means bumping kFormatVersion.
std::uint64_t Fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, data + i, 8);
    h ^= word;
    h *= 1099511628211ull;
  }
  for (; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

std::string HexFingerprint(std::uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buf);
}

/// mkdir -p. EEXIST is success; other failures surface from the fopen that
/// follows, with better context.
void EnsureDir(const std::string& dir) {
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i == dir.size() || dir[i] == '/') {
      if (!partial.empty() && partial != "/") {
        ::mkdir(partial.c_str(), 0755);
      }
    }
    if (i < dir.size()) partial.push_back(dir[i]);
  }
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no artifact at " + path);
    }
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read " + path);
  return out;
}

Status WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flush_failed = std::fclose(f) != 0;
  if (written != bytes.size() || flush_failed) {
    ::unlink(path.c_str());
    return Status::IoError("write " + path);
  }
  return Status::OK();
}

}  // namespace

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir)) {}

std::string ArtifactCache::PathFor(std::uint64_t fingerprint) const {
  return dir_ + "/nn_" + HexFingerprint(fingerprint) + ".rnna";
}

Result<CompiledArtifact> ArtifactCache::Load(std::uint64_t fingerprint) const {
  RAVEN_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(PathFor(fingerprint)));
  // The trailing u64 is an FNV-1a checksum of everything before it.
  if (bytes.size() < sizeof(std::uint64_t)) {
    return Status::InvalidArgument("artifact truncated");
  }
  const std::size_t payload_size = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored_checksum;
  std::memcpy(&stored_checksum, bytes.data() + payload_size,
              sizeof(stored_checksum));
  if (Fnv1a(bytes.data(), payload_size) != stored_checksum) {
    return Status::InvalidArgument("artifact checksum mismatch");
  }
  BinaryReader reader(bytes.data(), payload_size);
  RAVEN_ASSIGN_OR_RETURN(std::string magic, reader.ReadString());
  if (magic != kMagic) {
    return Status::InvalidArgument("artifact bad magic");
  }
  RAVEN_ASSIGN_OR_RETURN(std::uint32_t version, reader.ReadU32());
  if (version != kFormatVersion) {
    return Status::InvalidArgument("artifact format version " +
                                   std::to_string(version) + ", expected " +
                                   std::to_string(kFormatVersion));
  }
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t stored_fp, reader.ReadU64());
  if (stored_fp != fingerprint) {
    return Status::InvalidArgument("artifact fingerprint mismatch");
  }
  CompiledArtifact artifact;
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t folded, reader.ReadU64());
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t identities, reader.ReadU64());
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t dead, reader.ReadU64());
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t fused, reader.ReadU64());
  artifact.opt_stats.constants_folded = static_cast<std::size_t>(folded);
  artifact.opt_stats.identities_removed = static_cast<std::size_t>(identities);
  artifact.opt_stats.dead_nodes_removed = static_cast<std::size_t>(dead);
  artifact.opt_stats.gemms_fused = static_cast<std::size_t>(fused);
  RAVEN_ASSIGN_OR_RETURN(std::string graph_bytes, reader.ReadString());
  BinaryReader graph_reader(graph_bytes);
  RAVEN_ASSIGN_OR_RETURN(artifact.graph, Graph::Deserialize(&graph_reader));
  return artifact;
}

Status ArtifactCache::Store(std::uint64_t fingerprint, const Graph& graph,
                            const GraphOptStats& opt_stats) const {
  BinaryWriter writer;
  writer.WriteString(kMagic);
  writer.WriteU32(kFormatVersion);
  writer.WriteU64(fingerprint);
  writer.WriteU64(static_cast<std::uint64_t>(opt_stats.constants_folded));
  writer.WriteU64(static_cast<std::uint64_t>(opt_stats.identities_removed));
  writer.WriteU64(static_cast<std::uint64_t>(opt_stats.dead_nodes_removed));
  writer.WriteU64(static_cast<std::uint64_t>(opt_stats.gemms_fused));
  BinaryWriter graph_writer;
  graph.Serialize(&graph_writer);
  writer.WriteString(graph_writer.buffer());
  writer.WriteU64(Fnv1a(writer.buffer().data(), writer.buffer().size()));

  EnsureDir(dir_);
  // Stage into a path unique per process AND per call, then rename: readers
  // only ever see complete files, and racing writers cannot clobber each
  // other's temp files.
  static std::atomic<std::uint64_t> temp_seq{0};
  const std::string final_path = PathFor(fingerprint);
  const std::string temp_path =
      final_path + ".tmp." + std::to_string(static_cast<long>(::getpid())) +
      "." + std::to_string(temp_seq.fetch_add(1, std::memory_order_relaxed));
  RAVEN_RETURN_IF_ERROR(WriteWholeFile(temp_path, writer.buffer()));
  if (::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    const Status status =
        Status::IoError("rename " + temp_path + ": " + std::strerror(errno));
    ::unlink(temp_path.c_str());
    return status;
  }
  return Status::OK();
}

std::uint64_t FingerprintGraphBytes(const std::string& bytes) {
  const std::uint64_t h = std::hash<std::string>{}(bytes);
  return h == 0 ? 1 : h;
}

}  // namespace raven::nnrt
