#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <random>

#include "relational/catalog.h"
#include "relational/csv.h"
#include "relational/expression.h"
#include "relational/operators.h"
#include "relational/statistics.h"
#include "relational/table.h"

namespace raven::relational {
namespace {

Table MakeTable(std::int64_t n) {
  Table t;
  std::vector<double> id(static_cast<std::size_t>(n));
  std::vector<double> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    id[static_cast<std::size_t>(i)] = static_cast<double>(i);
    v[static_cast<std::size_t>(i)] = static_cast<double>(i % 10);
  }
  (void)t.AddNumericColumn("id", std::move(id));
  (void)t.AddNumericColumn("v", std::move(v));
  return t;
}

TEST(TableTest, AddColumnValidations) {
  Table t;
  EXPECT_TRUE(t.AddNumericColumn("a", {1, 2}).ok());
  EXPECT_FALSE(t.AddNumericColumn("a", {3, 4}).ok());  // duplicate
  EXPECT_FALSE(t.AddNumericColumn("b", {1}).ok());     // length mismatch
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.num_columns(), 1);
}

TEST(TableTest, CategoricalDictionary) {
  Table t;
  ASSERT_TRUE(t.AddCategoricalColumn("c", {0, 1, 0}, {"x", "y"}).ok());
  const Column* col = *t.GetColumn("c");
  EXPECT_TRUE(col->is_categorical());
  EXPECT_EQ((*col->dictionary)[1], "y");
  EXPECT_NE(t.ToString().find("x"), std::string::npos);
}

TEST(TableTest, ToTensorAndBack) {
  Table t = MakeTable(5);
  Tensor x = *t.ToTensor({"v", "id"});
  EXPECT_EQ(x.dim(0), 5);
  EXPECT_EQ(x.At(3, 1), 3.0f);
  Table back = *Table::FromTensor(x, {"v", "id"});
  EXPECT_EQ(back.num_rows(), 5);
  EXPECT_FALSE(t.ToTensor({"missing"}).ok());
}

TEST(TableTest, SliceRows) {
  Table t = MakeTable(10);
  Table s = t.SliceRows(2, 5);
  EXPECT_EQ(s.num_rows(), 3);
  EXPECT_EQ((*s.GetColumn("id"))->data[0], 2.0);
  EXPECT_EQ(t.Head(3).num_rows(), 3);
}

DataChunk ChunkOf(const Table& t) {
  DataChunk chunk;
  for (const auto& c : t.columns()) {
    chunk.names.push_back(c.name);
    chunk.cols.push_back(c.data);
  }
  return chunk;
}

TEST(ExpressionTest, CompareAndLogical) {
  Table t = MakeTable(10);
  DataChunk chunk = ChunkOf(t);
  ExprPtr e = And(Gt(Col("v"), Lit(2)), Le(Col("id"), Lit(7)));
  std::vector<double> out;
  ASSERT_TRUE(e->Evaluate(chunk, &out).ok());
  for (std::int64_t i = 0; i < 10; ++i) {
    const bool expected = (i % 10) > 2 && i <= 7;
    EXPECT_EQ(out[static_cast<std::size_t>(i)], expected ? 1.0 : 0.0);
  }
}

TEST(ExpressionTest, ArithmeticAndCase) {
  Table t = MakeTable(4);
  DataChunk chunk = ChunkOf(t);
  std::vector<CaseWhenExpr::Arm> arms;
  arms.push_back(CaseWhenExpr::Arm{Lt(Col("v"), Lit(2)), Lit(100)});
  arms.push_back(CaseWhenExpr::Arm{Lt(Col("v"), Lit(3)), Lit(200)});
  ExprPtr c = std::make_unique<CaseWhenExpr>(
      std::move(arms),
      std::make_unique<ArithExpr>(ArithOp::kMul, Col("v"), Lit(10)));
  std::vector<double> out;
  ASSERT_TRUE(c->Evaluate(chunk, &out).ok());
  EXPECT_EQ(out, (std::vector<double>{100, 100, 200, 30}));
}

TEST(ExpressionTest, InAndNot) {
  Table t = MakeTable(5);
  DataChunk chunk = ChunkOf(t);
  ExprPtr e = Not(std::make_unique<InExpr>(Col("id"),
                                           std::vector<double>{1, 3}));
  std::vector<double> out;
  ASSERT_TRUE(e->Evaluate(chunk, &out).ok());
  EXPECT_EQ(out, (std::vector<double>{1, 0, 1, 0, 1}));
}

TEST(ExpressionTest, CloneIsDeep) {
  ExprPtr e = And(Gt(Col("v"), Lit(2)), Eq(Col("id"), Lit(3)));
  ExprPtr c = e->Clone();
  EXPECT_EQ(e->ToString(), c->ToString());
}

TEST(ExpressionTest, ConjunctExtractionAndSimpleMatch) {
  ExprPtr e = And(And(Gt(Col("a"), Lit(1)), Eq(Col("b"), Lit(2))),
                  Or(Lt(Col("c"), Lit(3)), Eq(Col("d"), Lit(4))));
  const auto conjuncts = ExtractConjuncts(*e);
  ASSERT_EQ(conjuncts.size(), 3u);
  auto simple = MatchSimplePredicate(*conjuncts[0]);
  ASSERT_TRUE(simple.has_value());
  EXPECT_EQ(simple->column, "a");
  EXPECT_EQ(simple->op, CompareOp::kGt);
  EXPECT_FALSE(MatchSimplePredicate(*conjuncts[2]).has_value());
  // Flipped form: const < col.
  ExprPtr flipped = Lt(Lit(5), Col("x"));
  auto fs = MatchSimplePredicate(*flipped);
  ASSERT_TRUE(fs.has_value());
  EXPECT_EQ(fs->op, CompareOp::kGt);
  EXPECT_EQ(fs->constant, 5.0);
}

TEST(OperatorTest, ScanChunksAndRange) {
  Table t = MakeTable(5000);
  ScanOperator scan(&t);
  ASSERT_TRUE(scan.Open().ok());
  DataChunk chunk;
  std::int64_t total = 0;
  std::int64_t chunks = 0;
  while (*scan.Next(&chunk)) {
    total += chunk.num_rows();
    ++chunks;
  }
  EXPECT_EQ(total, 5000);
  EXPECT_GE(chunks, 2);

  ScanOperator ranged(&t, 100, 150);
  ASSERT_TRUE(ranged.Open().ok());
  ASSERT_TRUE(*ranged.Next(&chunk));
  EXPECT_EQ(chunk.num_rows(), 50);
  EXPECT_EQ(chunk.cols[0][0], 100.0);
}

TEST(OperatorTest, FilterProjectLimit) {
  Table t = MakeTable(1000);
  auto scan = std::make_unique<ScanOperator>(&t);
  auto filter =
      std::make_unique<FilterOperator>(std::move(scan), Gt(Col("v"), Lit(7)));
  std::vector<ExprPtr> exprs;
  exprs.push_back(Col("id"));
  exprs.push_back(std::make_unique<ArithExpr>(ArithOp::kAdd, Col("v"),
                                              Lit(100)));
  auto project = std::make_unique<ProjectOperator>(
      std::move(filter), std::move(exprs),
      std::vector<std::string>{"id", "v100"});
  LimitOperator limit(std::move(project), 5);
  Table out = *MaterializeAll(&limit);
  EXPECT_EQ(out.num_rows(), 5);
  EXPECT_EQ(out.ColumnNames(), (std::vector<std::string>{"id", "v100"}));
  EXPECT_EQ((*out.GetColumn("v100"))->data[0], 108.0);  // first v>7 is 8
}

TEST(OperatorTest, HashJoin) {
  Table left;
  (void)left.AddNumericColumn("id", {0, 1, 2, 3});
  (void)left.AddNumericColumn("a", {10, 11, 12, 13});
  Table right;
  (void)right.AddNumericColumn("id", {1, 3, 5});
  (void)right.AddNumericColumn("b", {21, 23, 25});
  HashJoinOperator join(std::make_unique<ScanOperator>(&left),
                        std::make_unique<ScanOperator>(&right), "id", "id");
  Table out = *MaterializeAll(&join);
  EXPECT_EQ(out.num_rows(), 2);
  EXPECT_EQ(out.ColumnNames(), (std::vector<std::string>{"id", "a", "b"}));
  EXPECT_EQ((*out.GetColumn("b"))->data, (std::vector<double>{21, 23}));
}

TEST(OperatorTest, HashJoinDuplicateBuildKeys) {
  Table left;
  (void)left.AddNumericColumn("k", {1});
  Table right;
  (void)right.AddNumericColumn("k", {1, 1});
  (void)right.AddNumericColumn("b", {5, 6});
  HashJoinOperator join(std::make_unique<ScanOperator>(&left),
                        std::make_unique<ScanOperator>(&right), "k", "k");
  Table out = *MaterializeAll(&join);
  EXPECT_EQ(out.num_rows(), 2);
}

TEST(OperatorTest, UnionAll) {
  Table t = MakeTable(10);
  std::vector<OperatorPtr> children;
  children.push_back(std::make_unique<ScanOperator>(&t, 0, 4));
  children.push_back(std::make_unique<ScanOperator>(&t, 4, 10));
  UnionAllOperator u(std::move(children));
  Table out = *MaterializeAll(&u);
  EXPECT_EQ(out.num_rows(), 10);
}

TEST(OperatorTest, PredictAppendsColumn) {
  Table t = MakeTable(100);
  auto scorer = [](const Tensor& input) -> Result<std::vector<double>> {
    std::vector<double> out(static_cast<std::size_t>(input.dim(0)));
    for (std::int64_t i = 0; i < input.dim(0); ++i) {
      out[static_cast<std::size_t>(i)] = 2.0 * input.At(i, 0);
    }
    return out;
  };
  PredictOperator predict(std::make_unique<ScanOperator>(&t), {"v"}, "pred",
                          scorer);
  Table out = *MaterializeAll(&predict);
  EXPECT_EQ(out.num_columns(), 3);
  EXPECT_EQ((*out.GetColumn("pred"))->data[7], 14.0);
}

TEST(OperatorTest, PredictScorerRowMismatchIsError) {
  Table t = MakeTable(10);
  auto bad = [](const Tensor&) -> Result<std::vector<double>> {
    return std::vector<double>{1.0};
  };
  PredictOperator predict(std::make_unique<ScanOperator>(&t), {"v"}, "p",
                          bad);
  EXPECT_FALSE(MaterializeAll(&predict).ok());
}

TEST(OperatorTest, UnknownColumnFailsAtOpenWithColumnAndOperator) {
  // Kernel compilation happens once at Open, so a bad reference must fail
  // there — before any chunk flows — naming both the column and the
  // operator that tried to resolve it.
  Table t = MakeTable(10);
  FilterOperator filter(std::make_unique<ScanOperator>(&t),
                        Gt(Col("nope"), Lit(1)));
  Status open = filter.Open();
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.code(), StatusCode::kNotFound);
  EXPECT_NE(open.ToString().find("'nope'"), std::string::npos)
      << open.ToString();
  EXPECT_NE(open.ToString().find("Filter predicate"), std::string::npos)
      << open.ToString();

  std::vector<ExprPtr> exprs;
  exprs.push_back(Col("missing"));
  ProjectOperator project(std::make_unique<ScanOperator>(&t),
                          std::move(exprs),
                          std::vector<std::string>{"m"});
  open = project.Open();
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.code(), StatusCode::kNotFound);
  EXPECT_NE(open.ToString().find("'missing'"), std::string::npos)
      << open.ToString();
  EXPECT_NE(open.ToString().find("Project expression 'm'"),
            std::string::npos)
      << open.ToString();
}

TEST(OperatorTest, AmbiguousColumnFailsAtOpen) {
  // PREDICT whose output name collides with an input column makes any
  // downstream reference to that name ambiguous — diagnosed at Open, not
  // silently resolved to one of the two.
  Table t = MakeTable(10);
  auto scorer = [](const Tensor& input) -> Result<std::vector<double>> {
    return std::vector<double>(static_cast<std::size_t>(input.dim(0)), 1.0);
  };
  auto predict = std::make_unique<PredictOperator>(
      std::make_unique<ScanOperator>(&t), std::vector<std::string>{"id"},
      /*output_name=*/"v", scorer);  // collides with the existing v
  FilterOperator filter(std::move(predict), Gt(Col("v"), Lit(0)));
  Status open = filter.Open();
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(open.ToString().find("ambiguous"), std::string::npos)
      << open.ToString();
  EXPECT_NE(open.ToString().find("'v'"), std::string::npos)
      << open.ToString();
}

TEST(OperatorTest, Aggregate) {
  Table t = MakeTable(10);
  AggregateOperator agg(
      std::make_unique<ScanOperator>(&t),
      {AggregateSpec{AggKind::kCount, "", "n"},
       AggregateSpec{AggKind::kSum, "id", "sum_id"},
       AggregateSpec{AggKind::kAvg, "id", "avg_id"},
       AggregateSpec{AggKind::kMin, "v", "min_v"},
       AggregateSpec{AggKind::kMax, "v", "max_v"}});
  Table out = *MaterializeAll(&agg);
  EXPECT_EQ(out.num_rows(), 1);
  EXPECT_EQ((*out.GetColumn("n"))->data[0], 10.0);
  EXPECT_EQ((*out.GetColumn("sum_id"))->data[0], 45.0);
  EXPECT_EQ((*out.GetColumn("avg_id"))->data[0], 4.5);
  EXPECT_EQ((*out.GetColumn("min_v"))->data[0], 0.0);
  EXPECT_EQ((*out.GetColumn("max_v"))->data[0], 9.0);
}

TEST(OperatorTest, PartitionedParallelMatchesSequential) {
  Table t = MakeTable(10000);
  auto build = [&t](std::int64_t begin, std::int64_t end) -> OperatorPtr {
    auto scan = std::make_unique<ScanOperator>(&t, begin, end);
    return std::make_unique<FilterOperator>(std::move(scan),
                                            Gt(Col("v"), Lit(4)));
  };
  Table parallel = *ExecutePartitionedParallel(t, 4, build);
  auto seq_plan = build(0, t.num_rows());
  Table sequential = *MaterializeAll(seq_plan.get());
  ASSERT_EQ(parallel.num_rows(), sequential.num_rows());
  EXPECT_EQ((*parallel.GetColumn("id"))->data,
            (*sequential.GetColumn("id"))->data);
}

TEST(CatalogTest, TablesAndModels) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("t", MakeTable(3)).ok());
  EXPECT_FALSE(catalog.RegisterTable("t", MakeTable(3)).ok());
  EXPECT_TRUE(catalog.HasTable("t"));
  EXPECT_FALSE(catalog.GetTable("missing").ok());

  ASSERT_TRUE(catalog.InsertModel("m", "script", "bytes").ok());
  EXPECT_FALSE(catalog.InsertModel("m", "s", "b").ok());
  StoredModel model = *catalog.GetModel("m");
  EXPECT_EQ(model.version, 1);
  EXPECT_EQ(*catalog.ModelCacheKey("m"), "m@v1");

  std::vector<std::string> invalidated;
  catalog.AddInvalidationListener(
      [&](const std::string& name) { invalidated.push_back(name); });
  ASSERT_TRUE(catalog.UpdateModel("m", "script2", "bytes2").ok());
  EXPECT_EQ(*catalog.ModelCacheKey("m"), "m@v2");
  EXPECT_EQ(invalidated, (std::vector<std::string>{"m"}));
  EXPECT_EQ(catalog.AuditLog().size(), 2u);
  ASSERT_TRUE(catalog.DropModel("m").ok());
  EXPECT_FALSE(catalog.GetModel("m").ok());
  EXPECT_FALSE(catalog.UpdateModel("m", "s", "b").ok());
}

TEST(CsvTest, RoundTripWithCategoricals) {
  Table t;
  (void)t.AddNumericColumn("x", {1.5, 2.5});
  (void)t.AddCategoricalColumn("c", {0, 1}, {"red", "blue"});
  const std::string path = "/tmp/raven_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  Table back = *ReadCsv(path);
  EXPECT_EQ(back.num_rows(), 2);
  const Column* c = *back.GetColumn("c");
  EXPECT_TRUE(c->is_categorical());
  EXPECT_EQ((*c->dictionary)[0], "red");
  EXPECT_EQ((*back.GetColumn("x"))->data, (std::vector<double>{1.5, 2.5}));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsError) {
  EXPECT_FALSE(ReadCsv("/tmp/does_not_exist_raven.csv").ok());
}

namespace {

void ExpectCsvRoundTripExact(const Table& t, const std::string& path) {
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  ASSERT_EQ(back->num_columns(), t.num_columns());
  for (std::int64_t ci = 0; ci < t.num_columns(); ++ci) {
    const Column& a = t.columns()[ci];
    const Column& b = back->columns()[ci];
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.is_categorical(), b.is_categorical()) << a.name;
    for (std::int64_t i = 0; i < t.num_rows(); ++i) {
      if (a.is_categorical()) {
        // Compare the decoded strings: dictionaries may be re-ordered by
        // first appearance, but every cell must read back verbatim.
        const auto& da = *a.dictionary;
        const auto& db = *b.dictionary;
        ASSERT_EQ(da[static_cast<std::size_t>(a.data[i])],
                  db[static_cast<std::size_t>(b.data[i])])
            << a.name << " row " << i;
      } else {
        std::uint64_t ba, bb;
        std::memcpy(&ba, &a.data[i], 8);
        std::memcpy(&bb, &b.data[i], 8);
        ASSERT_EQ(ba, bb) << a.name << " row " << i;
      }
    }
  }
  std::remove(path.c_str());
}

}  // namespace

TEST(CsvTest, RoundTripHostileStringsAndFullPrecision) {
  Table t;
  (void)t.AddCategoricalColumn(
      "weird, name", {0, 1, 2, 3},
      {"plain", "comma, inside", "quote \" inside", "line\nbreak"});
  (void)t.AddNumericColumn(
      "x", {1.0 / 3.0, 0.1, -0.0, std::numeric_limits<double>::denorm_min()});
  (void)t.AddNumericColumn("n",
                           {std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity(),
                            1.7976931348623157e308});
  ExpectCsvRoundTripExact(t, "/tmp/raven_csv_hostile.csv");
}

TEST(CsvTest, RoundTripPropertyRandomTables) {
  std::mt19937_64 rng(0xC5F0BEEF);
  const std::vector<std::string> pool = {
      "a",    "b,c",   "d\"e", "f\ng", "",     " pad ",
      "-1.5", "nan",   "x,\"", "\r\n", "last", "0"};
  for (int iter = 0; iter < 20; ++iter) {
    Table t;
    const int cols = 1 + static_cast<int>(rng() % 4);
    const std::int64_t rows = 1 + static_cast<std::int64_t>(rng() % 23);
    for (int c = 0; c < cols; ++c) {
      const std::string name = "col" + std::to_string(c);
      if (rng() % 2 == 0) {
        std::vector<double> data;
        for (std::int64_t i = 0; i < rows; ++i) {
          std::uint64_t bits = rng();
          double v;
          std::memcpy(&v, &bits, 8);
          if (!std::isfinite(v)) v = static_cast<double>(bits % 1000);
          data.push_back(v);
        }
        (void)t.AddNumericColumn(name, data);
      } else {
        // Dictionary of hostile strings; ensure at least one non-empty,
        // non-numeric-looking value so the column sniffs categorical.
        std::vector<double> codes;
        std::vector<std::string> dict = {"anchor value"};
        for (std::int64_t i = 0; i < rows; ++i) {
          if (rng() % 3 == 0) {
            codes.push_back(0);
          } else {
            dict.push_back(pool[rng() % pool.size()] + "#" +
                           std::to_string(rng() % 7));
            codes.push_back(static_cast<double>(dict.size() - 1));
          }
        }
        (void)t.AddCategoricalColumn(name, codes, dict);
      }
    }
    ExpectCsvRoundTripExact(t, "/tmp/raven_csv_prop.csv");
  }
}

TEST(CsvTest, SniffingRulesArePinned) {
  const std::string path = "/tmp/raven_csv_sniff.csv";
  {
    std::ofstream out(path);
    out << "\"num\",\"padded\",\"quoted_num\",\"blank\",\"specials\"\n";
    out << "1.5,  2.5  ,\"3.5\",,nan\n";
    out << ",7,\"8\",,inf\n";
  }
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // Unquoted parseable fields (whitespace-trimmed) make a numeric column;
  // an empty unquoted field is a NaN null inside it.
  const Column* num = *back->GetColumn("num");
  EXPECT_FALSE(num->is_categorical());
  EXPECT_EQ(num->data[0], 1.5);
  EXPECT_TRUE(std::isnan(num->data[1]));
  EXPECT_EQ((*back->GetColumn("padded"))->data, (std::vector<double>{2.5, 7}));
  // Any quoted field pins the whole column categorical — even "3.5".
  const Column* quoted = *back->GetColumn("quoted_num");
  ASSERT_TRUE(quoted->is_categorical());
  EXPECT_EQ((*quoted->dictionary)[static_cast<std::size_t>(quoted->data[0])],
            "3.5");
  // All-empty columns have no evidence of being numeric: categorical.
  EXPECT_TRUE((*back->GetColumn("blank"))->is_categorical());
  // nan/inf literals are numeric.
  const Column* specials = *back->GetColumn("specials");
  ASSERT_FALSE(specials->is_categorical());
  EXPECT_TRUE(std::isnan(specials->data[0]));
  EXPECT_TRUE(std::isinf(specials->data[1]));
  std::remove(path.c_str());
}

TEST(CsvTest, OutOfRangeDictionaryCodeIsError) {
  Table t;
  (void)t.AddCategoricalColumn("c", {0, 5}, {"red", "blue"});
  Status s = WriteCsv(t, "/tmp/raven_csv_badcode.csv");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("c"), std::string::npos);
}

TEST(StatisticsTest, NonFiniteValuesDoNotPoisonMinMax) {
  Column col;
  col.name = "v";
  col.data = {1.0, std::numeric_limits<double>::quiet_NaN(), 2.0,
              std::numeric_limits<double>::infinity(),
              -std::numeric_limits<double>::infinity()};
  ColumnStats stats = ComputeColumnStats(col);
  EXPECT_EQ(stats.min, 1.0);
  EXPECT_EQ(stats.max, 2.0);
  EXPECT_EQ(stats.num_rows, 5);
  EXPECT_EQ(stats.nan_count, 1);
  EXPECT_EQ(stats.non_finite_count, 3);
  EXPECT_TRUE(stats.has_non_finite);
  EXPECT_TRUE(stats.has_finite());
  EXPECT_FALSE(stats.constant.has_value());
}

TEST(StatisticsTest, AllNanAndEmptyColumns) {
  Column all_nan;
  all_nan.name = "v";
  all_nan.data = {std::numeric_limits<double>::quiet_NaN(),
                  std::numeric_limits<double>::quiet_NaN()};
  ColumnStats stats = ComputeColumnStats(all_nan);
  EXPECT_EQ(stats.nan_count, 2);
  EXPECT_FALSE(stats.has_finite());
  // NaNs collapse to one distinct value; no finite constant is reported.
  EXPECT_EQ(stats.distinct, 1);
  EXPECT_FALSE(stats.constant.has_value());

  Column empty;
  empty.name = "e";
  ColumnStats estats = ComputeColumnStats(empty);
  EXPECT_EQ(estats.num_rows, 0);
  EXPECT_FALSE(estats.has_finite());
  EXPECT_FALSE(estats.constant.has_value());
}

TEST(StatisticsTest, FiniteConstantColumnsStillReportConstant) {
  Column col;
  col.name = "c";
  col.data = {7.0, 7.0, 7.0};
  ColumnStats stats = ComputeColumnStats(col);
  EXPECT_EQ(stats.constant, std::optional<double>(7.0));
  EXPECT_EQ(stats.distinct, 1);
  EXPECT_FALSE(stats.has_non_finite);
}

}  // namespace
}  // namespace raven::relational
