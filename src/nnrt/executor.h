#ifndef RAVEN_NNRT_EXECUTOR_H_
#define RAVEN_NNRT_EXECUTOR_H_

#include <string>
#include <unordered_map>

#include "common/status.h"
#include "nnrt/graph.h"
#include "tensor/tensor.h"

namespace raven::nnrt {

/// Execution statistics for one graph run. `simulated_micros` is the
/// device-model time used for the accelerator backend (launch overhead +
/// flops / throughput); for the CPU device it equals measured wall time.
struct RunStats {
  double wall_micros = 0.0;
  double simulated_micros = 0.0;
  double flops = 0.0;
  std::size_t nodes_executed = 0;
};

using TensorMap = std::unordered_map<std::string, Tensor>;

/// Executes `graph` over the given named inputs, returning the map of graph
/// outputs. Initializers seed the environment; nodes run in topological
/// order on the calling thread.
Result<TensorMap> ExecuteGraph(const Graph& graph, const TensorMap& inputs,
                               RunStats* stats = nullptr);

}  // namespace raven::nnrt

#endif  // RAVEN_NNRT_EXECUTOR_H_
