#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace raven::ml {

struct DecisionTree::BuildContext {
  const Tensor* x = nullptr;
  const std::vector<float>* y = nullptr;
  TreeTrainOptions options;
  Rng rng{0};
};

namespace {

/// Mean of y over indices[begin, end).
double MeanOf(const std::vector<float>& y,
              const std::vector<std::int64_t>& indices, std::int64_t begin,
              std::int64_t end) {
  double sum = 0.0;
  for (std::int64_t i = begin; i < end; ++i) {
    sum += y[static_cast<std::size_t>(indices[static_cast<std::size_t>(i)])];
  }
  return sum / static_cast<double>(end - begin);
}

}  // namespace

Status DecisionTree::Fit(const Tensor& x, const std::vector<float>& y,
                         const TreeTrainOptions& options) {
  if (x.rank() != 2) {
    return Status::InvalidArgument("DecisionTree::Fit expects X of rank 2");
  }
  if (x.dim(0) != static_cast<std::int64_t>(y.size())) {
    return Status::InvalidArgument("X rows != y size");
  }
  if (x.dim(0) == 0) {
    return Status::InvalidArgument("cannot fit a tree on 0 rows");
  }
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  value_.clear();
  num_features_ = x.dim(1);

  BuildContext ctx;
  ctx.x = &x;
  ctx.y = &y;
  ctx.options = options;
  ctx.rng = Rng(options.seed);
  std::vector<std::int64_t> indices(static_cast<std::size_t>(x.dim(0)));
  std::iota(indices.begin(), indices.end(), 0);
  root_ = BuildNode(&ctx, &indices, 0, x.dim(0), 0);
  return Status::OK();
}

std::int32_t DecisionTree::BuildNode(BuildContext* ctx,
                                     std::vector<std::int64_t>* indices,
                                     std::int64_t begin, std::int64_t end,
                                     std::int64_t depth) {
  const Tensor& x = *ctx->x;
  const std::vector<float>& y = *ctx->y;
  const std::int64_t n = end - begin;
  const double mean = MeanOf(y, *indices, begin, end);

  auto make_leaf = [&]() {
    const std::int32_t id = static_cast<std::int32_t>(feature_.size());
    feature_.push_back(-1);
    threshold_.push_back(0.0f);
    left_.push_back(-1);
    right_.push_back(-1);
    value_.push_back(static_cast<float>(mean));
    return id;
  };

  if (depth >= ctx->options.max_depth ||
      n < 2 * ctx->options.min_samples_leaf) {
    return make_leaf();
  }

  // Pick the (feature, threshold) pair minimizing weighted child variance,
  // evaluating a quantile grid of candidate thresholds per feature.
  double parent_sse = 0.0;
  for (std::int64_t i = begin; i < end; ++i) {
    const double d =
        y[static_cast<std::size_t>((*indices)[static_cast<std::size_t>(i)])] -
        mean;
    parent_sse += d * d;
  }
  if (parent_sse <= 1e-9) return make_leaf();

  std::vector<std::int64_t> feature_pool(
      static_cast<std::size_t>(num_features_));
  std::iota(feature_pool.begin(), feature_pool.end(), 0);
  std::int64_t pool_size = num_features_;
  if (ctx->options.max_features > 0 &&
      ctx->options.max_features < num_features_) {
    // Fisher-Yates prefix shuffle to sample features without replacement.
    for (std::int64_t i = 0; i < ctx->options.max_features; ++i) {
      const std::int64_t j =
          i + static_cast<std::int64_t>(
                  ctx->rng.NextUint(static_cast<std::uint64_t>(
                      num_features_ - i)));
      std::swap(feature_pool[static_cast<std::size_t>(i)],
                feature_pool[static_cast<std::size_t>(j)]);
    }
    pool_size = ctx->options.max_features;
  }

  double best_score = parent_sse;
  std::int64_t best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<float, float>> pairs;  // (x value, y value)
  pairs.reserve(static_cast<std::size_t>(n));
  for (std::int64_t p = 0; p < pool_size; ++p) {
    const std::int64_t f = feature_pool[static_cast<std::size_t>(p)];
    pairs.clear();
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t row = (*indices)[static_cast<std::size_t>(i)];
      pairs.emplace_back(x.At(row, f), y[static_cast<std::size_t>(row)]);
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (pairs.front().first == pairs.back().first) continue;  // constant

    // Prefix sums over the sorted order allow O(1) split evaluation.
    const std::int64_t candidates =
        std::min<std::int64_t>(ctx->options.candidate_splits, n - 1);
    std::vector<double> prefix_sum(static_cast<std::size_t>(n) + 1, 0.0);
    std::vector<double> prefix_sq(static_cast<std::size_t>(n) + 1, 0.0);
    for (std::int64_t i = 0; i < n; ++i) {
      prefix_sum[static_cast<std::size_t>(i + 1)] =
          prefix_sum[static_cast<std::size_t>(i)] +
          pairs[static_cast<std::size_t>(i)].second;
      prefix_sq[static_cast<std::size_t>(i + 1)] =
          prefix_sq[static_cast<std::size_t>(i)] +
          static_cast<double>(pairs[static_cast<std::size_t>(i)].second) *
              pairs[static_cast<std::size_t>(i)].second;
    }
    for (std::int64_t c = 1; c <= candidates; ++c) {
      // Quantile position; split between k-1 and k.
      std::int64_t k = n * c / (candidates + 1);
      k = std::clamp<std::int64_t>(k, ctx->options.min_samples_leaf,
                                   n - ctx->options.min_samples_leaf);
      if (k <= 0 || k >= n) continue;
      const float xv_lo = pairs[static_cast<std::size_t>(k - 1)].first;
      const float xv_hi = pairs[static_cast<std::size_t>(k)].first;
      if (xv_lo == xv_hi) continue;  // split would not separate values
      const double sum_l = prefix_sum[static_cast<std::size_t>(k)];
      const double sq_l = prefix_sq[static_cast<std::size_t>(k)];
      const double sum_r = prefix_sum[static_cast<std::size_t>(n)] - sum_l;
      const double sq_r = prefix_sq[static_cast<std::size_t>(n)] - sq_l;
      const double sse_l = sq_l - sum_l * sum_l / static_cast<double>(k);
      const double sse_r = sq_r - sum_r * sum_r / static_cast<double>(n - k);
      const double score = sse_l + sse_r;
      if (score < best_score - 1e-12) {
        best_score = score;
        best_feature = f;
        best_threshold = 0.5 * (static_cast<double>(xv_lo) + xv_hi);
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition indices in place.
  auto mid_it = std::partition(
      indices->begin() + begin, indices->begin() + end,
      [&](std::int64_t row) {
        return x.At(row, best_feature) <= best_threshold;
      });
  const std::int64_t mid = mid_it - indices->begin();
  if (mid == begin || mid == end) return make_leaf();

  const std::int32_t id = static_cast<std::int32_t>(feature_.size());
  feature_.push_back(static_cast<std::int32_t>(best_feature));
  threshold_.push_back(static_cast<float>(best_threshold));
  left_.push_back(-1);
  right_.push_back(-1);
  value_.push_back(0.0f);
  const std::int32_t left_id = BuildNode(ctx, indices, begin, mid, depth + 1);
  const std::int32_t right_id = BuildNode(ctx, indices, mid, end, depth + 1);
  left_[static_cast<std::size_t>(id)] = left_id;
  right_[static_cast<std::size_t>(id)] = right_id;
  return id;
}

float DecisionTree::PredictRow(const float* row,
                               std::int64_t num_features) const {
  std::int32_t node = root_;
  while (feature_[static_cast<std::size_t>(node)] >= 0) {
    const std::int32_t f = feature_[static_cast<std::size_t>(node)];
    // Out-of-range features read as 0 (pruned models never hit this).
    const float v = f < num_features ? row[f] : 0.0f;
    node = v <= threshold_[static_cast<std::size_t>(node)]
               ? left_[static_cast<std::size_t>(node)]
               : right_[static_cast<std::size_t>(node)];
  }
  return value_[static_cast<std::size_t>(node)];
}

Result<Tensor> DecisionTree::Predict(const Tensor& x) const {
  if (x.rank() != 2) {
    return Status::InvalidArgument("DecisionTree::Predict expects [n, d]");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  Tensor out = Tensor::Zeros({n, 1});
  for (std::int64_t r = 0; r < n; ++r) {
    out.raw()[r] = PredictRow(x.raw() + r * d, d);
  }
  return out;
}

namespace {

/// Recursively copies the reachable subtree under interval constraints.
std::int32_t CopyPruned(const DecisionTree& src,
                        const std::vector<double>& lo,
                        const std::vector<double>& hi, std::int32_t node,
                        std::vector<std::int32_t>* feature,
                        std::vector<float>* threshold,
                        std::vector<std::int32_t>* left,
                        std::vector<std::int32_t>* right,
                        std::vector<float>* value) {
  const std::size_t i = static_cast<std::size_t>(node);
  const std::int32_t f = src.feature()[i];
  if (f < 0) {
    const std::int32_t id = static_cast<std::int32_t>(feature->size());
    feature->push_back(-1);
    threshold->push_back(0.0f);
    left->push_back(-1);
    right->push_back(-1);
    value->push_back(src.value()[i]);
    return id;
  }
  const double t = src.threshold()[i];
  const double flo = lo[static_cast<std::size_t>(f)];
  const double fhi = hi[static_cast<std::size_t>(f)];
  if (fhi <= t) {
    // All admissible values go left.
    return CopyPruned(src, lo, hi, src.left()[i], feature, threshold, left,
                      right, value);
  }
  if (flo > t) {
    return CopyPruned(src, lo, hi, src.right()[i], feature, threshold, left,
                      right, value);
  }
  const std::int32_t id = static_cast<std::int32_t>(feature->size());
  feature->push_back(f);
  threshold->push_back(src.threshold()[i]);
  left->push_back(-1);
  right->push_back(-1);
  value->push_back(0.0f);
  const std::int32_t l = CopyPruned(src, lo, hi, src.left()[i], feature,
                                    threshold, left, right, value);
  const std::int32_t r = CopyPruned(src, lo, hi, src.right()[i], feature,
                                    threshold, left, right, value);
  (*left)[static_cast<std::size_t>(id)] = l;
  (*right)[static_cast<std::size_t>(id)] = r;
  return id;
}

}  // namespace

DecisionTree DecisionTree::PruneWithIntervals(
    const std::vector<FeatureInterval>& intervals) const {
  std::vector<double> lo(static_cast<std::size_t>(num_features_),
                         -std::numeric_limits<double>::infinity());
  std::vector<double> hi(static_cast<std::size_t>(num_features_),
                         std::numeric_limits<double>::infinity());
  for (const auto& iv : intervals) {
    if (iv.feature < 0 || iv.feature >= num_features_) continue;
    lo[static_cast<std::size_t>(iv.feature)] =
        std::max(lo[static_cast<std::size_t>(iv.feature)], iv.lo);
    hi[static_cast<std::size_t>(iv.feature)] =
        std::min(hi[static_cast<std::size_t>(iv.feature)], iv.hi);
  }
  DecisionTree pruned;
  pruned.num_features_ = num_features_;
  if (feature_.empty()) return pruned;
  pruned.root_ =
      CopyPruned(*this, lo, hi, root_, &pruned.feature_, &pruned.threshold_,
                 &pruned.left_, &pruned.right_, &pruned.value_);
  return pruned;
}

std::vector<std::int64_t> DecisionTree::UsedFeatures() const {
  std::vector<bool> used(static_cast<std::size_t>(num_features_), false);
  for (std::int32_t f : feature_) {
    if (f >= 0) used[static_cast<std::size_t>(f)] = true;
  }
  std::vector<std::int64_t> out;
  for (std::int64_t f = 0; f < num_features_; ++f) {
    if (used[static_cast<std::size_t>(f)]) out.push_back(f);
  }
  return out;
}

std::int64_t DecisionTree::num_leaves() const {
  std::int64_t n = 0;
  for (std::int32_t f : feature_) {
    if (f < 0) ++n;
  }
  return n;
}

namespace {

std::int64_t DepthOf(const DecisionTree& t, std::int32_t node) {
  const std::size_t i = static_cast<std::size_t>(node);
  if (t.feature()[i] < 0) return 0;
  return 1 + std::max(DepthOf(t, t.left()[i]), DepthOf(t, t.right()[i]));
}

}  // namespace

std::int64_t DecisionTree::depth() const {
  if (feature_.empty()) return 0;
  return DepthOf(*this, root_);
}

Result<DecisionTree> DecisionTree::FromArrays(
    std::int64_t num_features, std::vector<std::int32_t> feature,
    std::vector<float> threshold, std::vector<std::int32_t> left,
    std::vector<std::int32_t> right, std::vector<float> value,
    std::int32_t root) {
  const std::size_t n = feature.size();
  if (threshold.size() != n || left.size() != n || right.size() != n ||
      value.size() != n) {
    return Status::InvalidArgument("tree array length mismatch");
  }
  if (n == 0) return Status::InvalidArgument("tree must have >= 1 node");
  if (root < 0 || static_cast<std::size_t>(root) >= n) {
    return Status::OutOfRange("tree root out of range");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (feature[i] >= 0) {
      if (feature[i] >= num_features) {
        return Status::OutOfRange("tree feature index out of range");
      }
      if (left[i] < 0 || static_cast<std::size_t>(left[i]) >= n || right[i] < 0 ||
          static_cast<std::size_t>(right[i]) >= n) {
        return Status::OutOfRange("tree child index out of range");
      }
    }
  }
  DecisionTree t;
  t.num_features_ = num_features;
  t.root_ = root;
  t.feature_ = std::move(feature);
  t.threshold_ = std::move(threshold);
  t.left_ = std::move(left);
  t.right_ = std::move(right);
  t.value_ = std::move(value);
  return t;
}

void DecisionTree::Serialize(BinaryWriter* writer) const {
  writer->WriteI64(num_features_);
  writer->WriteI32(root_);
  writer->WriteI32Vector(feature_);
  writer->WriteF32Vector(threshold_);
  writer->WriteI32Vector(left_);
  writer->WriteI32Vector(right_);
  writer->WriteF32Vector(value_);
}

Result<DecisionTree> DecisionTree::Deserialize(BinaryReader* reader) {
  RAVEN_ASSIGN_OR_RETURN(std::int64_t num_features, reader->ReadI64());
  RAVEN_ASSIGN_OR_RETURN(std::int32_t root, reader->ReadI32());
  RAVEN_ASSIGN_OR_RETURN(auto feature, reader->ReadI32Vector());
  RAVEN_ASSIGN_OR_RETURN(auto threshold, reader->ReadF32Vector());
  RAVEN_ASSIGN_OR_RETURN(auto left, reader->ReadI32Vector());
  RAVEN_ASSIGN_OR_RETURN(auto right, reader->ReadI32Vector());
  RAVEN_ASSIGN_OR_RETURN(auto value, reader->ReadF32Vector());
  return FromArrays(num_features, std::move(feature), std::move(threshold),
                    std::move(left), std::move(right), std::move(value),
                    root);
}

Status DecisionTree::RemapFeatures(
    const std::vector<std::int64_t>& old_to_new) {
  if (static_cast<std::int64_t>(old_to_new.size()) != num_features_) {
    return Status::InvalidArgument("feature remap size mismatch");
  }
  std::int64_t new_count = 0;
  for (std::int64_t v : old_to_new) new_count = std::max(new_count, v + 1);
  for (auto& f : feature_) {
    if (f < 0) continue;
    const std::int64_t nf = old_to_new[static_cast<std::size_t>(f)];
    if (nf < 0) {
      return Status::InvalidArgument(
          "tree still references dropped feature " + std::to_string(f));
    }
    f = static_cast<std::int32_t>(nf);
  }
  num_features_ = new_count;
  return Status::OK();
}

}  // namespace raven::ml
