#include "common/thread_pool.h"

#include <algorithm>

namespace raven {
namespace {

thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::InPoolWorker() { return t_in_pool_worker; }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

namespace {

// Shared between ParallelFor and its worker tasks; kept alive by
// shared_ptr so a late-dequeued task never touches a dead stack frame.
struct ParallelForState {
  explicit ParallelForState(std::size_t n_in,
                            std::function<void(std::size_t)> fn_in)
      : n(n_in), fn(std::move(fn_in)) {}
  const std::size_t n;
  const std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
};

}  // namespace

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Nested use: a pool worker must not enqueue sub-tasks and block on them
  // (see the class comment). Run inline instead.
  if (n == 1 || threads_.size() == 1 || InPoolWorker()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ParallelForState>(n, fn);
  // The calling thread participates below, so spawn one fewer pool worker
  // than the target parallelism to avoid oversubscribing the cores.
  const std::size_t workers =
      std::min(n - 1, threads_.size() > 1 ? threads_.size() - 1
                                          : threads_.size());
  for (std::size_t w = 0; w < workers; ++w) {
    Submit([state] {
      for (;;) {
        const std::size_t i = state->next.fetch_add(1);
        if (i >= state->n) break;
        state->fn(i);
        if (state->done.fetch_add(1) + 1 == state->n) {
          std::lock_guard<std::mutex> lock(state->mu);
          state->cv.notify_one();
        }
      }
    });
  }
  // The calling thread also participates, so ParallelFor makes progress even
  // when all pool workers are busy with unrelated tasks.
  for (;;) {
    const std::size_t i = state->next.fetch_add(1);
    if (i >= state->n) break;
    state->fn(i);
    if (state->done.fetch_add(1) + 1 == state->n) break;
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == state->n; });
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool =
      new ThreadPool(std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::RunOne(const std::shared_ptr<State>& state,
                       std::function<void()> task) {
  task();
  bool last;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    last = --state->outstanding == 0;
  }
  if (last) state->cv.notify_all();
}

void TaskGroup::Spawn(std::function<void()> fn) {
  if (ThreadPool::InPoolWorker()) {
    // Nested in a pool worker: run inline (see class comment).
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->pending.push_back(std::move(fn));
    ++state_->outstanding;
  }
  pool_->Submit([state = state_] {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->pending.empty()) return;  // claimed by Wait() already
      task = std::move(state->pending.front());
      state->pending.pop_front();
    }
    RunOne(state, std::move(task));
  });
}

void TaskGroup::Wait() {
  // Claim still-queued tasks so the group finishes even if every pool
  // worker is occupied elsewhere.
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->pending.empty()) break;
      task = std::move(state_->pending.front());
      state_->pending.pop_front();
    }
    RunOne(state_, std::move(task));
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->outstanding == 0; });
}

// ---------------------------------------------------------------------------
// MorselQueue
// ---------------------------------------------------------------------------

MorselQueue::MorselQueue(std::int64_t total_rows, std::int64_t morsel_rows)
    : total_(std::max<std::int64_t>(0, total_rows)),
      morsel_(std::max<std::int64_t>(1, morsel_rows)) {}

bool MorselQueue::Pop(Morsel* out) {
  const std::int64_t begin = next_.fetch_add(morsel_);
  if (begin >= total_) return false;
  out->begin = begin;
  out->end = std::min(total_, begin + morsel_);
  out->index = begin / morsel_;
  return true;
}

std::int64_t MorselQueue::num_morsels() const {
  return (total_ + morsel_ - 1) / morsel_;
}

}  // namespace raven
