#ifndef RAVEN_STORAGE_COLUMNAR_H_
#define RAVEN_STORAGE_COLUMNAR_H_

// Block-based columnar on-disk format (.rvc) — the storage layer behind
// relational::BlockTable. Layout:
//
//   [magic "RVC1" | u32 version | u64 meta_len | u64 meta_checksum]
//   [meta blob (BinaryWriter format, meta_len bytes)]
//   [data region: per-block per-column payloads, back to back]
//
// The meta blob carries the schema (with categorical dictionaries), the
// block geometry, and for every (block, column): its zone map
// (relational::ColumnStats), encoding tag, and payload offset/length/
// FNV-1a checksum within the data region. Payloads are either plain
// little-endian doubles or RLE runs of {value, count}; RLE compares bit
// patterns so NaN runs compress and decode bit-exactly.
//
// Hardening mirrors the NNRT artifact cache: magic/version/meta-checksum
// and full bounds validation at Open (truncated or stale files are
// rejected with a clean error before any query runs), plus per-payload
// checksums verified at block-read time so a corrupted block degrades to
// an execution error — never a wrong answer.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/block_table.h"
#include "relational/statistics.h"
#include "relational/table.h"

namespace raven::storage {

inline constexpr std::uint32_t kRvcVersion = 1;

struct RvcWriteOptions {
  /// Rows per block. The morsel executor uses the block as its morsel
  /// unit, so this is also the parallel work granule.
  std::int64_t block_rows = 4096;
  /// When set, payloads whose run-length encoding is smaller than plain
  /// storage are written RLE; otherwise everything is plain.
  bool enable_rle = true;
};

/// Writes `table` (codes, dictionaries, and per-block zone maps) to `path`.
Status WriteRvc(const relational::Table& table, const std::string& path,
                const RvcWriteOptions& options = {});

/// Memory-mapped .rvc reader. Open validates the header, meta checksum and
/// every payload's bounds up front; block payloads are decoded lazily (and
/// checksum-verified) on each ReadBlock, so scanning never materializes
/// the whole table. Concurrent reads are safe: the mapping is read-only
/// and all mutable state is per-call.
class DiskTable final : public relational::BlockTable {
 public:
  static Result<std::shared_ptr<DiskTable>> Open(const std::string& path);
  ~DiskTable() override;

  DiskTable(const DiskTable&) = delete;
  DiskTable& operator=(const DiskTable&) = delete;

  std::vector<std::string> ColumnNames() const override;
  std::int64_t num_rows() const override { return num_rows_; }
  std::int64_t num_columns() const override {
    return static_cast<std::int64_t>(columns_.size());
  }
  std::int64_t num_blocks() const override {
    return static_cast<std::int64_t>(blocks_.size());
  }
  std::int64_t block_rows() const override { return block_rows_; }
  std::int64_t BlockRowCount(std::int64_t block) const override;
  const relational::ColumnStats* BlockStats(
      std::int64_t block, const std::string& column) const override;
  const std::vector<std::string>* Dictionary(
      const std::string& column) const override;
  Status ReadBlock(std::int64_t block, relational::DataChunk* out) const
      override;
  Result<relational::Table> ReadRows(std::int64_t begin,
                                     std::int64_t end) const override;
  std::string Describe() const override;

  const std::string& path() const { return path_; }

 private:
  enum class Encoding : std::uint8_t { kPlain = 0, kRle = 1 };

  struct ColumnMeta {
    std::string name;
    std::optional<std::vector<std::string>> dictionary;
  };
  struct PayloadMeta {
    relational::ColumnStats stats;
    Encoding encoding = Encoding::kPlain;
    std::uint64_t offset = 0;  // into the data region
    std::uint64_t length = 0;
    std::uint64_t checksum = 0;
  };
  struct BlockMeta {
    std::int64_t row_count = 0;
    std::vector<PayloadMeta> payloads;  // one per column
  };

  DiskTable() = default;

  Status DecodePayload(const PayloadMeta& payload, std::int64_t row_count,
                       std::vector<double>* out) const;

  std::string path_;
  int fd_ = -1;
  const char* mapping_ = nullptr;
  std::size_t file_size_ = 0;
  const char* data_ = nullptr;  // data region start
  std::size_t data_size_ = 0;

  std::int64_t num_rows_ = 0;
  std::int64_t block_rows_ = 0;
  std::vector<ColumnMeta> columns_;
  std::vector<BlockMeta> blocks_;
  std::int64_t rle_payloads_ = 0;
};

}  // namespace raven::storage

#endif  // RAVEN_STORAGE_COLUMNAR_H_
