#!/usr/bin/env bash
# CI entry point: tier-1 verify (configure, build, full ctest) plus the
# sanitizer jobs.
#
#   tools/ci.sh            # tier-1: build + all tests (and build the benches)
#   tools/ci.sh asan       # tier-1 under -fsanitize=address,undefined
#   tools/ci.sh tsan       # runtime/integration suites under ThreadSanitizer
#                          # (the morsel-parallel executor's race gate)
#   tools/ci.sh docs       # docs-consistency gate alone (links, knob/stats
#                          # coverage in docs/OPERATIONS.md)
#   tools/ci.sh all        # every job back to back + a bench smoke run
#
# ccache is picked up automatically when installed (RAVEN_NO_CCACHE=1
# disables). Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MODE="${1:-tier1}"

CMAKE_EXTRA=()
if [[ -z "${RAVEN_NO_CCACHE:-}" ]] && command -v ccache >/dev/null 2>&1; then
  CMAKE_EXTRA+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

docs_check() {
  # Docs-consistency gate: broken intra-repo markdown links, and SET
  # knobs / SHOW STATS keys present in the code but missing from
  # docs/OPERATIONS.md (tools/check_docs.py parses both lists out of the
  # server sources, so the docs cannot silently lag the implementation).
  python3 tools/check_docs.py
}

run_suite() {
  local build_dir="$1"; shift
  # ${arr[@]+...} keeps empty arrays safe under set -u on bash < 4.4.
  cmake -B "${build_dir}" -S . \
    ${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"} \
    ${CONFIG_ARGS[@]+"${CONFIG_ARGS[@]}"}
  cmake --build "${build_dir}" -j "${JOBS}"
  # Benches are EXCLUDE_FROM_ALL; build (never run) them so the perf tooling
  # keeps compiling in every CI run. The target exists even without
  # Google Benchmark (no-op).
  cmake --build "${build_dir}" --target bench -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

tier1() {
  # The full ctest in run_suite includes the `fuzz`-labeled randomized
  # differential harness (tests/query_fuzz_test.cc — in-process dop {1,8},
  # distributed {2,4}-worker, AND 4-concurrent-client query-server legs),
  # the `distributed`-labeled worker-pool / protocol-fault-injection suite
  # (tests/worker_pool_test.cc: SIGKILLed workers, truncated/oversized
  # frames, dead worker binaries), and the `server`-labeled concurrent
  # query-server suite (tests/server_test.cc: protocol + plan cache +
  # admission units, hostile clients, and the 8-client mixed-traffic soak).
  # Re-run any alone with `ctest --test-dir build -L fuzz|distributed|server`.
  # All spawn real raven_worker children or socket servers; their timeouts
  # (tests/CMakeLists.txt) are sized for that.
  CONFIG_ARGS=()
  docs_check
  run_suite build
}

asan() {
  CONFIG_ARGS=(-DRAVEN_SANITIZE=address,undefined)
  run_suite build-asan
}

tsan() {
  # ThreadSanitizer gate for the morsel-driven parallel executor: the whole
  # suite runs (it is fast), which covers the runtime + integration suites
  # the parallel operators live under. Races fail the job via
  # -fno-sanitize-recover.
  # The full suite includes the `fuzz`-labeled harness — 200 random plans x
  # parallelism {1, 2, 8}, the distributed {2, 4}-worker differential leg,
  # and the 4-concurrent-client server leg — the `distributed`-labeled
  # fault-injection suite, and the `server`-labeled query-server suite
  # whose 8-client soak (shared plan cache, admission queue, concurrent
  # PlanExecutor use, disconnect-mid-query) is the newest concurrent code.
  # A TSan hit names the offending query via the printed seed. Timeouts are
  # sized for TSan's ~10x slowdown (see tests/CMakeLists.txt).
  CONFIG_ARGS=(-DRAVEN_SANITIZE=thread)
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" run_suite build-tsan
}

case "${MODE}" in
  tier1)
    tier1
    ;;
  asan)
    docs_check
    asan
    ;;
  tsan)
    docs_check
    tsan
    ;;
  docs)
    docs_check
    ;;
  all)
    tier1
    asan
    tsan
    # Perf trajectory data point: smoke-run the figure benches and leave
    # BENCH_<sha>.json at the repo root. The compare gate fails the job
    # when a scan/filter/predict microbenchmark regressed >10% vs the
    # committed baseline (benches absent from the baseline report as
    # "new" and never gate).
    tools/bench.sh --smoke --compare BENCH_289e1c6.json --fail-over 10
    ;;
  *)
    echo "usage: tools/ci.sh [tier1|asan|tsan|docs|all]" >&2
    exit 2
    ;;
esac
