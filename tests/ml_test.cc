#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/featurizer.h"
#include "ml/kmeans.h"
#include "ml/linear_model.h"
#include "ml/mlp.h"
#include "ml/pipeline.h"
#include "ml/random_forest.h"

namespace raven::ml {
namespace {

/// y = 2*x0 - x1 + noise-free offset; simple learnable regression target.
std::pair<Tensor, std::vector<float>> LinearToy(std::int64_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  Tensor x = Tensor::Zeros({n, 2});
  std::vector<float> y(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    x.At(i, 0) = static_cast<float>(rng.Uniform(-1, 1));
    x.At(i, 1) = static_cast<float>(rng.Uniform(-1, 1));
    y[static_cast<std::size_t>(i)] = 2.0f * x.At(i, 0) - x.At(i, 1) + 0.5f;
  }
  return {std::move(x), std::move(y)};
}

/// Step-function target ideal for trees: y depends on x0 and x1 regions.
std::pair<Tensor, std::vector<float>> TreeToy(std::int64_t n,
                                              std::uint64_t seed) {
  Rng rng(seed);
  Tensor x = Tensor::Zeros({n, 3});
  std::vector<float> y(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    x.At(i, 0) = static_cast<float>(rng.Uniform(0, 10));
    x.At(i, 1) = static_cast<float>(rng.Uniform(0, 10));
    x.At(i, 2) = static_cast<float>(rng.Uniform(0, 10));  // irrelevant
    y[static_cast<std::size_t>(i)] =
        x.At(i, 0) <= 5.0f ? (x.At(i, 1) <= 3.0f ? 1.0f : 2.0f) : 7.0f;
  }
  return {std::move(x), std::move(y)};
}

TEST(StandardScalerTest, FitTransform) {
  Tensor x = *Tensor::FromData({4, 1}, {0, 2, 4, 6});
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(x).ok());
  EXPECT_NEAR(scaler.mean()[0], 3.0, 1e-9);
  Tensor out = *scaler.Transform(x);
  // Mean 0, unit variance.
  float sum = 0;
  for (float v : out.data()) sum += v;
  EXPECT_NEAR(sum, 0.0f, 1e-5f);
}

TEST(StandardScalerTest, ConstantColumnSafe) {
  Tensor x = *Tensor::FromData({3, 1}, {5, 5, 5});
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(x).ok());
  Tensor out = *scaler.Transform(x);
  for (float v : out.data()) EXPECT_EQ(v, 0.0f);
}

TEST(OneHotEncoderTest, FitTransform) {
  Tensor x = *Tensor::FromData({3, 2}, {0, 1, 2, 0, 1, 1});
  OneHotEncoder enc;
  ASSERT_TRUE(enc.Fit(x).ok());
  EXPECT_EQ(enc.cardinalities(), (std::vector<std::int64_t>{3, 2}));
  EXPECT_EQ(enc.TotalOutputFeatures(), 5);
  Tensor out = *enc.Transform(x);
  EXPECT_TRUE(out.Equals(*Tensor::FromData(
      {3, 5}, {1, 0, 0, 0, 1, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1})));
}

TEST(OneHotEncoderTest, RestrictColumnDropsCodes) {
  OneHotEncoder enc;
  enc.SetCardinalities({4});
  ASSERT_TRUE(enc.RestrictColumn(0, {1, 3}).ok());
  EXPECT_EQ(enc.TotalOutputFeatures(), 2);
  Tensor x = *Tensor::FromData({4, 1}, {0, 1, 2, 3});
  Tensor out = *enc.Transform(x);
  EXPECT_TRUE(out.Equals(
      *Tensor::FromData({4, 2}, {0, 0, 1, 0, 0, 0, 0, 1})));
  EXPECT_EQ(enc.EmittedCodes(0), (std::vector<std::int64_t>{1, 3}));
}

TEST(OneHotEncoderTest, RestrictValidation) {
  OneHotEncoder enc;
  enc.SetCardinalities({3});
  EXPECT_FALSE(enc.RestrictColumn(1, {0}).ok());
  EXPECT_FALSE(enc.RestrictColumn(0, {5}).ok());
  // Full set clears the restriction.
  ASSERT_TRUE(enc.RestrictColumn(0, {0, 1, 2}).ok());
  EXPECT_EQ(enc.TotalOutputFeatures(), 3);
}

TEST(FeaturizerTest, BranchesConcatInOrder) {
  Featurizer featurizer;
  FeatureBranch identity;
  identity.kind = TransformKind::kIdentity;
  identity.input_columns = {0};
  FeatureBranch onehot;
  onehot.kind = TransformKind::kOneHot;
  onehot.input_columns = {1};
  featurizer.AddBranch(std::move(identity));
  featurizer.AddBranch(std::move(onehot));
  Tensor x = *Tensor::FromData({2, 2}, {3.5f, 0, 4.5f, 1});
  ASSERT_TRUE(featurizer.Fit(x).ok());
  Tensor out = *featurizer.Transform(x);
  EXPECT_TRUE(out.Equals(
      *Tensor::FromData({2, 3}, {3.5f, 1, 0, 4.5f, 0, 1})));
  const auto prov = featurizer.Provenance();
  ASSERT_EQ(prov.size(), 3u);
  EXPECT_EQ(prov[0].input_column, 0);
  EXPECT_EQ(prov[1].input_column, 1);
  EXPECT_EQ(prov[1].category, 0);
  EXPECT_EQ(prov[2].category, 1);
}

TEST(FeaturizerTest, SerializeRoundTrip) {
  Featurizer featurizer;
  FeatureBranch scaler;
  scaler.kind = TransformKind::kScaler;
  scaler.input_columns = {0, 1};
  featurizer.AddBranch(std::move(scaler));
  Tensor x = *Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(featurizer.Fit(x).ok());
  BinaryWriter w;
  featurizer.Serialize(&w);
  const std::string buf = w.Release();
  BinaryReader r(buf);
  Featurizer back = *Featurizer::Deserialize(&r);
  EXPECT_TRUE((*featurizer.Transform(x)).Equals(*back.Transform(x)));
}

TEST(DecisionTreeTest, LearnsStepFunction) {
  auto [x, y] = TreeToy(2000, 3);
  DecisionTree tree;
  TreeTrainOptions options;
  options.max_depth = 6;
  ASSERT_TRUE(tree.Fit(x, y, options).ok());
  Tensor preds = *tree.Predict(x);
  double mse = 0;
  for (std::int64_t i = 0; i < x.dim(0); ++i) {
    const double d = preds.raw()[i] - y[static_cast<std::size_t>(i)];
    mse += d * d;
  }
  mse /= static_cast<double>(x.dim(0));
  EXPECT_LT(mse, 0.05);
  EXPECT_GT(tree.num_nodes(), 3);
  EXPECT_GE(tree.depth(), 2);
}

TEST(DecisionTreeTest, IgnoresIrrelevantFeature) {
  auto [x, y] = TreeToy(2000, 4);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  // Feature 2 is pure noise; a healthy CART should rarely split on it at
  // shallow depth. Verify features 0 and 1 are used.
  const auto used = tree.UsedFeatures();
  EXPECT_NE(std::find(used.begin(), used.end(), 0), used.end());
  EXPECT_NE(std::find(used.begin(), used.end(), 1), used.end());
}

TEST(DecisionTreeTest, PruneWithIntervalsPreservesSemantics) {
  auto [x, y] = TreeToy(3000, 5);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  // Constraint: x0 <= 5. Pruned tree must agree on all satisfying rows.
  DecisionTree pruned =
      tree.PruneWithIntervals({FeatureInterval{0, -1e30, 5.0}});
  EXPECT_LT(pruned.num_nodes(), tree.num_nodes());
  for (std::int64_t i = 0; i < x.dim(0); ++i) {
    if (x.At(i, 0) <= 5.0f) {
      EXPECT_EQ(tree.PredictRow(x.raw() + i * 3, 3),
                pruned.PredictRow(x.raw() + i * 3, 3));
    }
  }
}

TEST(DecisionTreeTest, PruneToSingleLeaf) {
  auto [x, y] = TreeToy(1000, 6);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  DecisionTree pruned = tree.PruneWithIntervals(
      {FeatureInterval{0, 7.0, 8.0}});  // only the x0>5 region
  // All rows with x0 in [7,8] predict ~7.
  EXPECT_LE(pruned.depth(), tree.depth());
  float row[3] = {7.5f, 1.0f, 0.0f};
  EXPECT_NEAR(pruned.PredictRow(row, 3), 7.0f, 0.2f);
}

TEST(DecisionTreeTest, SerializeRoundTrip) {
  auto [x, y] = TreeToy(500, 7);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  BinaryWriter w;
  tree.Serialize(&w);
  const std::string buf = w.Release();
  BinaryReader r(buf);
  DecisionTree back = *DecisionTree::Deserialize(&r);
  EXPECT_TRUE((*tree.Predict(x)).Equals(*back.Predict(x)));
}

TEST(DecisionTreeTest, FromArraysValidates) {
  EXPECT_FALSE(DecisionTree::FromArrays(2, {0}, {1.f}, {5}, {1}, {0.f}).ok());
  EXPECT_FALSE(DecisionTree::FromArrays(2, {7}, {1.f}, {0}, {0}, {0.f}).ok());
  EXPECT_TRUE(
      DecisionTree::FromArrays(2, {-1}, {0.f}, {-1}, {-1}, {3.f}).ok());
}

TEST(DecisionTreeTest, RemapFeatures) {
  DecisionTree tree = *DecisionTree::FromArrays(
      3, {2, -1, -1}, {1.f, 0.f, 0.f}, {1, -1, -1}, {2, -1, -1},
      {0.f, 10.f, 20.f});
  ASSERT_TRUE(tree.RemapFeatures({-1, -1, 0}).ok());
  EXPECT_EQ(tree.num_features(), 1);
  float row[1] = {0.5f};
  EXPECT_EQ(tree.PredictRow(row, 1), 10.0f);
}

TEST(RandomForestTest, BeatsSingleNoise) {
  auto [x, y] = TreeToy(2000, 8);
  RandomForest forest;
  ForestTrainOptions options;
  options.num_trees = 8;
  ASSERT_TRUE(forest.Fit(x, y, options).ok());
  EXPECT_EQ(forest.trees().size(), 8u);
  Tensor preds = *forest.Predict(x);
  double mse = 0;
  for (std::int64_t i = 0; i < x.dim(0); ++i) {
    const double d = preds.raw()[i] - y[static_cast<std::size_t>(i)];
    mse += d * d;
  }
  EXPECT_LT(mse / static_cast<double>(x.dim(0)), 0.8);
}

TEST(RandomForestTest, PruneAndSerialize) {
  auto [x, y] = TreeToy(1500, 9);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  RandomForest pruned =
      forest.PruneWithIntervals({FeatureInterval{0, -1e30, 5.0}});
  EXPECT_LE(pruned.total_nodes(), forest.total_nodes());
  BinaryWriter w;
  forest.Serialize(&w);
  const std::string buf = w.Release();
  BinaryReader r(buf);
  RandomForest back = *RandomForest::Deserialize(&r);
  EXPECT_TRUE((*forest.Predict(x)).Equals(*back.Predict(x)));
}

TEST(LinearModelTest, FitsLinearTarget) {
  auto [x, y] = LinearToy(2000, 10);
  LinearModel model(LinearKind::kRegression);
  LinearTrainOptions options;
  options.epochs = 200;
  options.learning_rate = 0.5;
  ASSERT_TRUE(model.Fit(x, y, options).ok());
  EXPECT_NEAR(model.weights()[0], 2.0, 0.1);
  EXPECT_NEAR(model.weights()[1], -1.0, 0.1);
  EXPECT_NEAR(model.bias(), 0.5, 0.1);
}

TEST(LinearModelTest, L1ProducesSparsity) {
  Rng rng(11);
  const std::int64_t n = 1500;
  const std::int64_t d = 30;
  Tensor x = Tensor::Zeros({n, d});
  std::vector<float> y(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      x.At(i, j) = static_cast<float>(rng.Uniform(-1, 1));
    }
    // Only features 0 and 1 matter.
    const double logit = 3.0 * x.At(i, 0) - 2.0 * x.At(i, 1);
    y[static_cast<std::size_t>(i)] = rng.NextBool(1 / (1 + std::exp(-logit)));
  }
  LinearModel dense(LinearKind::kLogistic);
  LinearTrainOptions dense_options;
  dense_options.epochs = 80;
  ASSERT_TRUE(dense.Fit(x, y, dense_options).ok());
  LinearModel sparse(LinearKind::kLogistic);
  LinearTrainOptions sparse_options;
  sparse_options.epochs = 80;
  sparse_options.l1 = 0.02;
  ASSERT_TRUE(sparse.Fit(x, y, sparse_options).ok());
  EXPECT_GT(sparse.Sparsity(), dense.Sparsity());
  EXPECT_GT(sparse.Sparsity(), 0.4);
  // The true signal features survive.
  const auto nonzero = sparse.NonZeroFeatures();
  EXPECT_NE(std::find(nonzero.begin(), nonzero.end(), 0), nonzero.end());
  EXPECT_NE(std::find(nonzero.begin(), nonzero.end(), 1), nonzero.end());
}

TEST(LinearModelTest, ProjectFeaturesFoldsBias) {
  LinearModel model(LinearKind::kRegression);
  model.SetParams({1.0, 2.0, 3.0}, 0.5);
  // Keep features 0 and 2; feature 1 fixed at value 10.
  ASSERT_TRUE(model.ProjectFeatures({0, 2}, {0.0, 10.0, 0.0}).ok());
  EXPECT_EQ(model.num_features(), 2);
  EXPECT_NEAR(model.bias(), 0.5 + 2.0 * 10.0, 1e-9);
  float row[2] = {1.0f, 1.0f};
  EXPECT_NEAR(model.PredictRow(row, 2), 1.0 + 3.0 + 20.5, 1e-5);
}

TEST(LinearModelTest, ThresholdWeights) {
  LinearModel model(LinearKind::kRegression);
  model.SetParams({0.001, 0.5, -0.0005, 2.0}, 0.0);
  EXPECT_EQ(model.ThresholdWeights(0.01), 2);
  EXPECT_NEAR(model.Sparsity(), 0.5, 1e-9);
}

TEST(LinearModelTest, SerializeRoundTrip) {
  LinearModel model(LinearKind::kLogistic);
  model.SetParams({0.1, -0.2, 0.0}, 1.5);
  BinaryWriter w;
  model.Serialize(&w);
  const std::string buf = w.Release();
  BinaryReader r(buf);
  LinearModel back = *LinearModel::Deserialize(&r);
  EXPECT_EQ(back.kind(), LinearKind::kLogistic);
  EXPECT_EQ(back.weights(), model.weights());
  EXPECT_EQ(back.bias(), model.bias());
}

TEST(MlpTest, LearnsXorishTarget) {
  Rng rng(12);
  const std::int64_t n = 1200;
  Tensor x = Tensor::Zeros({n, 2});
  std::vector<float> y(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    x.At(i, 0) = static_cast<float>(rng.Uniform(-1, 1));
    x.At(i, 1) = static_cast<float>(rng.Uniform(-1, 1));
    y[static_cast<std::size_t>(i)] =
        (x.At(i, 0) * x.At(i, 1) > 0) ? 1.0f : 0.0f;
  }
  Mlp mlp;
  MlpTrainOptions options;
  options.hidden = {16};
  options.epochs = 60;
  options.learning_rate = 0.1;
  ASSERT_TRUE(mlp.Fit(x, y, options).ok());
  Tensor preds = *mlp.Predict(x);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if ((preds.raw()[i] > 0.5f) == (y[static_cast<std::size_t>(i)] > 0.5f)) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(n), 0.85);
}

TEST(MlpTest, SerializeRoundTrip) {
  auto [x, y] = LinearToy(200, 13);
  Mlp mlp;
  MlpTrainOptions options;
  options.hidden = {4};
  options.epochs = 3;
  options.output_activation = Activation::kNone;
  ASSERT_TRUE(mlp.Fit(x, y, options).ok());
  BinaryWriter w;
  mlp.Serialize(&w);
  const std::string buf = w.Release();
  BinaryReader r(buf);
  Mlp back = *Mlp::Deserialize(&r);
  EXPECT_TRUE((*mlp.Predict(x)).Equals(*back.Predict(x)));
}

TEST(KMeansTest, SeparatesClusters) {
  Rng rng(14);
  const std::int64_t n = 600;
  Tensor x = Tensor::Zeros({n, 2});
  for (std::int64_t i = 0; i < n; ++i) {
    const double cx = (i % 3) * 10.0;
    x.At(i, 0) = static_cast<float>(cx + rng.NextGaussian() * 0.5);
    x.At(i, 1) = static_cast<float>(cx + rng.NextGaussian() * 0.5);
  }
  KMeans km;
  KMeansOptions options;
  options.k = 3;
  ASSERT_TRUE(km.Fit(x, options).ok());
  auto assign = *km.Assign(x);
  // Points in the same generated cluster share an assignment.
  for (std::int64_t i = 3; i < n; i += 3) {
    EXPECT_EQ(assign[static_cast<std::size_t>(i)], assign[0]);
  }
  EXPECT_NE(assign[0], assign[1]);
}

TEST(KMeansTest, KLargerThanNClamps) {
  Tensor x = *Tensor::FromData({2, 1}, {0, 10});
  KMeans km;
  KMeansOptions options;
  options.k = 8;
  ASSERT_TRUE(km.Fit(x, options).ok());
  EXPECT_EQ(km.k(), 2);
}

TEST(PipelineTest, FeaturizeThenPredict) {
  auto [x, y] = TreeToy(1000, 15);
  ModelPipeline pipeline;
  pipeline.input_columns = {"a", "b", "c"};
  FeatureBranch identity;
  identity.kind = TransformKind::kIdentity;
  identity.input_columns = {0, 1, 2};
  pipeline.featurizer.AddBranch(std::move(identity));
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  pipeline.predictor = std::move(tree);
  Tensor preds = *pipeline.Predict(x);
  EXPECT_EQ(preds.dim(0), 1000);
  // Row path equals batch path.
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(*pipeline.PredictRow(x.raw() + i * 3, 3), preds.raw()[i]);
  }
}

TEST(PipelineTest, SerializeRoundTripAllPredictors) {
  auto [x, y] = TreeToy(300, 16);
  for (int kind = 0; kind < 4; ++kind) {
    ModelPipeline pipeline;
    pipeline.input_columns = {"a", "b", "c"};
    switch (kind) {
      case 0: {
        DecisionTree m;
        ASSERT_TRUE(m.Fit(x, y).ok());
        pipeline.predictor = std::move(m);
        break;
      }
      case 1: {
        RandomForest m;
        ForestTrainOptions fo;
        fo.num_trees = 3;
        ASSERT_TRUE(m.Fit(x, y, fo).ok());
        pipeline.predictor = std::move(m);
        break;
      }
      case 2: {
        LinearModel m(LinearKind::kRegression);
        ASSERT_TRUE(m.Fit(x, y).ok());
        pipeline.predictor = std::move(m);
        break;
      }
      case 3: {
        Mlp m;
        MlpTrainOptions mo;
        mo.hidden = {4};
        mo.epochs = 2;
        mo.output_activation = Activation::kNone;
        ASSERT_TRUE(m.Fit(x, y, mo).ok());
        pipeline.predictor = std::move(m);
        break;
      }
    }
    ModelPipeline back = *ModelPipeline::FromBytes(pipeline.ToBytes());
    EXPECT_TRUE((*pipeline.Predict(x)).AllClose(*back.Predict(x)))
        << "predictor kind " << kind;
    EXPECT_EQ(back.input_columns, pipeline.input_columns);
  }
}

TEST(PipelineTest, FromBytesRejectsGarbage) {
  EXPECT_FALSE(ModelPipeline::FromBytes("not a pipeline").ok());
}

}  // namespace
}  // namespace raven::ml
