#!/usr/bin/env bash
# Runs the paper-figure benchmarks (bench_fig2* + bench_fig3) plus the
# operator-regression benches (bench_groupby_parallelism,
# bench_distributed_scan_predict — in-process vs 4-worker-pool scan+PREDICT,
# bench_server_throughput — QPS + p50/p95/p99 of the query server under
# 1/4/16 concurrent clients (client-side exact percentiles AND server-side
# percentiles from the raven_query_latency_seconds metrics histogram),
# cold vs warm plan cache) with
# --benchmark_format=json and writes one combined JSON document to
# BENCH_<short-sha>.json at the repo root — the perf-trajectory data point
# CI uploads as an artifact.
#
#   tools/bench.sh            # full figure sweep (slow; minutes)
#   tools/bench.sh --smoke    # minimal benchtime + large sizes filtered
#                             # out; wired into `tools/ci.sh all`
#   tools/bench.sh --compare BASELINE.json
#                             # after the run, print per-benchmark
#                             # real_time deltas vs the baseline document
#                             # (tools/bench_compare.py); combinable with
#                             # --smoke and --fail-over PCT (exit non-zero
#                             # when a scan/filter/predict microbenchmark
#                             # regressed by more than PCT percent)
#
# The output document maps each bench binary name to Google Benchmark's
# native JSON (context + benchmarks array), so downstream tooling can diff
# runs across commits:  { "bench_fig3_integration": {...}, ... }
#
# Env: BUILD_DIR (default: build), BENCH_OUT (default: BENCH_<sha>.json).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

SMOKE=0
COMPARE=""
FAIL_OVER=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke)
      SMOKE=1; shift ;;
    --compare)
      COMPARE="${2:?--compare needs a baseline JSON path}"; shift 2 ;;
    --fail-over)
      FAIL_OVER="${2:?--fail-over needs a percentage}"; shift 2 ;;
    *)
      echo "usage: tools/bench.sh [--smoke] [--compare BASELINE.json]" \
           "[--fail-over PCT]" >&2
      exit 2 ;;
  esac
done
if [[ -n "${COMPARE}" && ! -f "${COMPARE}" ]]; then
  echo "bench.sh: baseline '${COMPARE}' not found" >&2
  exit 2
fi

# Make sure the bench binaries exist and are fresh.
if [[ ! -d "${BUILD_DIR}" ]]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" --target bench -j "${JOBS}"

BENCH_ARGS=(--benchmark_format=json)
if [[ "${SMOKE}" == 1 ]]; then
  # Minimal benchtime, and skip the large row counts (their Iterations(2)
  # overrides min_time, so filtering is what keeps smoke fast).
  # Bare-double min_time (the "0.01s" spelling needs benchmark >= 1.8).
  BENCH_ARGS+=(--benchmark_min_time=0.01
               "--benchmark_filter=-/(100000|200000|500000)(/|$)")
fi

shopt -s nullglob
BINARIES=("${BUILD_DIR}"/bench/bench_fig2* "${BUILD_DIR}"/bench/bench_fig3*
          "${BUILD_DIR}"/bench/bench_groupby*
          "${BUILD_DIR}"/bench/bench_distributed*
          "${BUILD_DIR}"/bench/bench_server*
          "${BUILD_DIR}"/bench/bench_artifact*
          "${BUILD_DIR}"/bench/bench_columnar*)
if [[ ${#BINARIES[@]} -eq 0 ]]; then
  echo "bench.sh: no bench_fig2*/bench_fig3*/bench_groupby*/bench_distributed*/bench_server*/bench_artifact*/bench_columnar* binaries under ${BUILD_DIR}/bench" >&2
  echo "bench.sh: is Google Benchmark installed?" >&2
  exit 1
fi

SHA="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
OUT="${BENCH_OUT:-BENCH_${SHA}.json}"

{
  echo '{'
  first=1
  for bin in "${BINARIES[@]}"; do
    [[ -x "${bin}" ]] || continue
    name="$(basename "${bin}")"
    [[ "${first}" == 1 ]] || echo ','
    first=0
    printf '"%s":\n' "${name}"
    echo "bench.sh: running ${name}" >&2
    "${bin}" "${BENCH_ARGS[@]}"
  done
  echo '}'
} > "${OUT}"

if [[ ! -s "${OUT}" ]]; then
  echo "bench.sh: ${OUT} is empty" >&2
  exit 1
fi
echo "bench.sh: wrote ${OUT}"

if [[ -n "${COMPARE}" ]]; then
  COMPARE_ARGS=("${COMPARE}" "${OUT}")
  if [[ -n "${FAIL_OVER}" ]]; then
    COMPARE_ARGS+=(--fail-over "${FAIL_OVER}")
  fi
  python3 tools/bench_compare.py "${COMPARE_ARGS[@]}"
fi
