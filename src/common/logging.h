#ifndef RAVEN_COMMON_LOGGING_H_
#define RAVEN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace raven {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level below which log statements are discarded.
/// Defaults to kWarning so tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace raven

#define RAVEN_LOG(level)                                            \
  ::raven::internal::LogMessage(::raven::LogLevel::k##level, __FILE__, \
                                __LINE__)

/// Invariant check that aborts (with location) when violated. Used for
/// programmer errors, never for user-input validation (which returns
/// Status).
#define RAVEN_DCHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::raven::internal::LogMessage(::raven::LogLevel::kError, __FILE__, \
                                    __LINE__)                           \
          << "DCHECK failed: " #cond;                                   \
      ::abort();                                                        \
    }                                                                   \
  } while (false)

#endif  // RAVEN_COMMON_LOGGING_H_
