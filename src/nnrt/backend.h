#ifndef RAVEN_NNRT_BACKEND_H_
#define RAVEN_NNRT_BACKEND_H_

#include <string>

#include "common/status.h"
#include "nnrt/kernels.h"

namespace raven::nnrt {

/// Which kernel implementation set an inference session executes with.
/// Orthogonal to DeviceSpec (device.h): the device decides how time is
/// *accounted* (measured wall time vs the simulated-accelerator cost
/// model), the backend decides which code actually computes each op.
enum class BackendKind {
  /// Scalar CPU kernels (kernels.cc). The semantic ground truth every
  /// other backend is differentially tested against.
  kReference,
  /// SIMD-vectorized CPU kernels for the hot dense ops (Gemm/MatMul,
  /// elementwise, Scaler), falling back to the reference registry per op.
  /// Bit-identical to the reference backend: lanes apply the same
  /// mul-then-add rounding per element the scalar loops do, and
  /// order-sensitive reductions are left on the reference kernels.
  kSimd,
  /// The SIMD kernels with every kernel's outputs rounded to IEEE half
  /// precision (storage rounding) — the accuracy-vs-throughput knob of
  /// fp16 inference without carrying a second dtype through the engine.
  /// Approximate by design; see docs/OPERATIONS.md for the tolerance.
  kFp16,
};

/// A pluggable kernel implementation set (the rwkv-qualcomm-style backend
/// seam: sessions bind one at creation, per-session selectable over the
/// wire via `SET nn_backend`). Stateless and immortal — GetBackend returns
/// process-lifetime singletons, so sessions hold plain pointers.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual const char* name() const = 0;

  /// Kernel for `op_type`, or nullptr when neither this backend nor the
  /// reference registry it falls back to implements the op.
  virtual const Kernel* FindKernel(const std::string& op_type) const = 0;

  /// True when kernel outputs are rounded to half precision (results are
  /// approximate relative to the reference backend).
  virtual bool fp16() const { return false; }
};

/// The process-lifetime backend singleton for `kind`.
const Backend* GetBackend(BackendKind kind);

const char* BackendKindToString(BackendKind kind);

/// Parses a backend name as accepted by `SET nn_backend` (lowercase:
/// reference | simd | fp16).
Result<BackendKind> ParseBackendKind(const std::string& name);

/// Rounds a float to the nearest IEEE binary16 value (round-to-nearest-
/// even) and back. The fp16 backend applies this to every kernel output;
/// exposed for tests and tolerance documentation.
float RoundToFp16(float x);

}  // namespace raven::nnrt

#endif  // RAVEN_NNRT_BACKEND_H_
