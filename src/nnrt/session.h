#ifndef RAVEN_NNRT_SESSION_H_
#define RAVEN_NNRT_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "nnrt/artifact_cache.h"
#include "nnrt/backend.h"
#include "nnrt/device.h"
#include "nnrt/executor.h"
#include "nnrt/graph.h"
#include "nnrt/graph_optimizer.h"

namespace raven::nnrt {

/// Options controlling session construction.
struct SessionOptions {
  /// Run the NNRT graph optimizer (constant folding, fusion, DCE) once at
  /// session-creation time, like ONNX Runtime's graph optimization level.
  bool enable_graph_optimizations = true;
  DeviceSpec device = DeviceSpec::Cpu();
  /// Kernel implementation set every Run() uses (see backend.h).
  BackendKind backend = BackendKind::kReference;
  /// When set, every Run() is per-op profiled and merged into this sink.
  /// Must outlive the session; the serving path points it at
  /// SessionCache::profiler().
  OpProfiler* profiler = nullptr;
};

/// An inference session: an optimized, immutable graph plus the device it
/// runs on. Mirrors ONNX Runtime's InferenceSession: construction does the
/// expensive work (deserialize + optimize) once; Run() is then called many
/// times. Thread-compatible: concurrent Run() calls are safe because
/// execution state is per-call.
class InferenceSession {
 public:
  /// Builds a session from an in-memory graph.
  static Result<std::unique_ptr<InferenceSession>> Create(
      Graph graph, const SessionOptions& options = SessionOptions());

  /// Builds a session from a serialized model (the model-store format).
  static Result<std::unique_ptr<InferenceSession>> FromBytes(
      const std::string& bytes, const SessionOptions& options = SessionOptions());

  /// Builds a session from an already-optimized artifact-cache graph:
  /// validates, skips the optimizer, and reports the stored compile's
  /// optimizer stats. The warm path of the createFromBinary idiom.
  static Result<std::unique_ptr<InferenceSession>> FromArtifact(
      CompiledArtifact artifact, const SessionOptions& options = SessionOptions());

  /// Runs the graph. On the accelerator device, stats->simulated_micros
  /// follows the device cost model; on CPU it equals wall time.
  Result<TensorMap> Run(const TensorMap& inputs, RunStats* stats = nullptr) const;

  /// Convenience for single-input/single-output models.
  Result<Tensor> RunSingle(const Tensor& input, RunStats* stats = nullptr) const;

  const Graph& graph() const { return graph_; }
  const DeviceSpec& device() const { return device_; }
  BackendKind backend() const { return backend_; }
  const GraphOptStats& optimization_stats() const { return opt_stats_; }

  /// Serializes the (optimized) graph back to model bytes.
  std::string ToBytes() const;

 private:
  InferenceSession(Graph graph, const SessionOptions& options,
                   GraphOptStats opt_stats)
      : graph_(std::move(graph)),
        device_(options.device),
        backend_(options.backend),
        profiler_(options.profiler),
        opt_stats_(opt_stats) {}

  Graph graph_;
  DeviceSpec device_;
  BackendKind backend_;
  OpProfiler* profiler_;
  GraphOptStats opt_stats_;
};

/// Counter snapshot for SHOW STATS. All monotonic except `entries`.
struct SessionCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Fresh builds from model bytes (artifact misses/rejects end up here).
  std::uint64_t compiles = 0;
  /// Compiles that ran the graph optimizer — the expensive step the
  /// artifact cache exists to skip; zero on a warm-artifact cold start.
  std::uint64_t graph_optimizations = 0;
  std::uint64_t artifact_hits = 0;
  std::uint64_t artifact_writes = 0;
  /// Artifacts present but unusable (corrupt/truncated/version mismatch),
  /// recompiled and rewritten.
  std::uint64_t artifact_rejects = 0;
  std::uint64_t entries = 0;
};

/// LRU cache of inference sessions keyed by model name/version. This is the
/// SQL Server-side "model and inference-session caching" that makes Raven
/// beat standalone ONNX Runtime on small requests (paper §5 observation ii):
/// repeated inference queries reuse the session instead of re-deserializing
/// and re-optimizing the model. Thread-safe.
///
/// Builds are single-flight: concurrent GetOrCreate calls for the same key
/// elect one builder, everyone else blocks for its result — so a thundering
/// herd on a cold model compiles (and writes its artifact) exactly once.
/// With an ArtifactCache attached, a miss checks disk before compiling:
/// memory → artifact file → compile.
class SessionCache {
 public:
  explicit SessionCache(std::size_t capacity = 32,
                        std::shared_ptr<ArtifactCache> artifacts = nullptr)
      : capacity_(capacity), artifacts_(std::move(artifacts)) {}

  /// Returns the cached session for `key`, or builds one from `bytes` via
  /// the provided options, inserting it (and evicting the least recently
  /// used entry if at capacity).
  Result<std::shared_ptr<InferenceSession>> GetOrCreate(
      const std::string& key, const std::string& bytes,
      const SessionOptions& options = SessionOptions());

  /// Same, but the model bytes are produced on demand — a cache hit never
  /// pays the serialization. The serving path keys sessions by the plan's
  /// precomputed graph fingerprint, so re-serializing the whole model per
  /// query just to build a key it already has would dominate small-request
  /// latency (the overhead Fig 3's session caching exists to remove).
  Result<std::shared_ptr<InferenceSession>> GetOrCreate(
      const std::string& key, const std::function<std::string()>& bytes_fn,
      const SessionOptions& options = SessionOptions());

  /// Artifact-aware variant: on a memory miss, tries the attached
  /// ArtifactCache at `fingerprint` before compiling, and persists the
  /// optimized graph there after a fresh compile. `fingerprint` 0 means
  /// "unknown" and skips the artifact path entirely.
  Result<std::shared_ptr<InferenceSession>> GetOrCreate(
      const std::string& key, std::uint64_t fingerprint,
      const std::function<std::string()>& bytes_fn,
      const SessionOptions& options = SessionOptions());

  /// Removes a cached session (e.g. when a model is updated
  /// transactionally).
  void Invalidate(const std::string& key);

  /// Attaches (or replaces) the on-disk artifact tier.
  void AttachArtifacts(std::shared_ptr<ArtifactCache> artifacts);
  std::shared_ptr<ArtifactCache> artifacts() const;

  /// Resizes the in-memory tier, evicting LRU entries if shrinking below
  /// the current size. Capacity 0 = pass-through (build every miss, cache
  /// nothing) — used to disable session reuse without disabling serving.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  std::size_t size() const;
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  SessionCacheStats stats() const;

  /// Shared per-op profiling sink for sessions built through this cache
  /// (wired up by the serving path via SessionOptions::profiler).
  OpProfiler& profiler() { return profiler_; }
  const OpProfiler& profiler() const { return profiler_; }

 private:
  struct BuildState {
    bool done = false;
    Status status;  // OK + null session means "builder failed, retry".
    std::shared_ptr<InferenceSession> session;
  };

  /// The miss path: artifact load (when attached and fingerprinted) or
  /// fresh compile + artifact store. Runs outside mu_.
  Result<std::shared_ptr<InferenceSession>> Build(
      ArtifactCache* artifacts, std::uint64_t fingerprint,
      const std::function<std::string()>& bytes_fn,
      const SessionOptions& options);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t capacity_;
  std::shared_ptr<ArtifactCache> artifacts_;
  // MRU-first list of keys plus index into it.
  std::list<std::string> lru_;
  std::unordered_map<std::string,
                     std::pair<std::shared_ptr<InferenceSession>,
                               std::list<std::string>::iterator>>
      entries_;
  // In-flight builds, single-flight per key.
  std::unordered_map<std::string, std::shared_ptr<BuildState>> building_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> compiles_{0};
  std::atomic<std::uint64_t> graph_optimizations_{0};
  std::atomic<std::uint64_t> artifact_hits_{0};
  std::atomic<std::uint64_t> artifact_writes_{0};
  std::atomic<std::uint64_t> artifact_rejects_{0};
  OpProfiler profiler_;
};

}  // namespace raven::nnrt

#endif  // RAVEN_NNRT_SESSION_H_
