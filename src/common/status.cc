#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace raven {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kServerBusy:
      return "ServerBusy";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadAccess(const Status& status) {
  std::fprintf(stderr, "Result<T> accessed with error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace raven
