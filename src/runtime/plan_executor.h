#ifndef RAVEN_RUNTIME_PLAN_EXECUTOR_H_
#define RAVEN_RUNTIME_PLAN_EXECUTOR_H_

#include "common/status.h"
#include "ir/ir.h"
#include "nnrt/session.h"
#include "relational/catalog.h"
#include "relational/table.h"
#include "runtime/codegen.h"

namespace raven::runtime {

/// Executes optimized IR plans against the relational engine.
///
/// With options.parallelism > 1 every in-process plan shape executes
/// morsel-driven (paper §5: "SQL Server automatically parallelizes both the
/// scan and PREDICT operators" — here extended to joins, aggregates,
/// grouped aggregates, sorts and unions): the plan is decomposed into
/// pipelines at its breakers (hash join builds, aggregates, GROUP BY,
/// ORDER BY), each pipeline runs as N symmetric worker operator trees
/// pulling kChunkSize-row morsels from shared atomic cursors, and the final
/// merge restores sequential row order from morsel provenance. Join builds
/// populate a lock-striped shared hash table; aggregates merge thread-local
/// partials; GROUP BY pre-aggregates thread-locally and merges into a
/// lock-striped global table; ORDER BY gathers its parallel child pipeline
/// and stable-sorts once; PREDICT workers share cached NNRT sessions. Plans
/// containing LIMIT (an inherently ordered early-out) and the
/// out-of-process/container modes run sequentially, as does anything with
/// an opaque-pipeline UDF (one external worker per query).
class PlanExecutor {
 public:
  PlanExecutor(const relational::Catalog* catalog,
               nnrt::SessionCache* session_cache)
      : catalog_(catalog), session_cache_(session_cache) {}

  Result<relational::Table> Execute(const ir::IrPlan& plan,
                                    const ExecutionOptions& options,
                                    ExecutionStats* stats = nullptr);

 private:
  const relational::Catalog* catalog_;
  nnrt::SessionCache* session_cache_;
};

}  // namespace raven::runtime

#endif  // RAVEN_RUNTIME_PLAN_EXECUTOR_H_
