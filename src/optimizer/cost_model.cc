#include "optimizer/cost_model.h"

#include <cmath>

namespace raven::optimizer {
namespace {

constexpr double kFilterSelectivity = 0.4;

double PredictorRowCost(const ml::Predictor& predictor) {
  if (const auto* tree = std::get_if<ml::DecisionTree>(&predictor)) {
    return 2.0 * static_cast<double>(tree->depth());
  }
  if (const auto* forest = std::get_if<ml::RandomForest>(&predictor)) {
    double cost = 0.0;
    for (const auto& tree : forest->trees()) {
      cost += 2.0 * static_cast<double>(tree.depth());
    }
    return cost;
  }
  if (const auto* linear = std::get_if<ml::LinearModel>(&predictor)) {
    return 2.0 * static_cast<double>(linear->num_features()) +
           (linear->kind() == ml::LinearKind::kLogistic ? 4.0 : 0.0);
  }
  const auto& mlp = std::get<ml::Mlp>(predictor);
  double cost = 0.0;
  for (const auto& layer : mlp.layers()) {
    cost += 2.0 * static_cast<double>(layer.in) * static_cast<double>(layer.out);
  }
  return cost;
}

}  // namespace

double PipelineRowCost(const ml::ModelPipeline& pipeline) {
  double featurize = 0.0;
  for (const auto& branch : pipeline.featurizer.branches()) {
    switch (branch.kind) {
      case ml::TransformKind::kIdentity:
        featurize += static_cast<double>(branch.input_columns.size());
        break;
      case ml::TransformKind::kScaler:
        featurize += 2.0 * static_cast<double>(branch.input_columns.size());
        break;
      case ml::TransformKind::kOneHot:
        featurize += static_cast<double>(branch.OutputWidth());
        break;
    }
  }
  return featurize + PredictorRowCost(pipeline.predictor);
}

double NnGraphRowCost(const nnrt::Graph& graph) {
  // Static estimate: Gemm/MatMul dominate; use initializer shapes.
  double cost = 0.0;
  for (const auto& node : graph.nodes()) {
    if (node.op_type == "Gemm" || node.op_type == "MatMul") {
      // Weight is the second input; look it up among initializers.
      if (node.inputs.size() >= 2) {
        auto it = graph.initializers().find(node.inputs[1]);
        if (it != graph.initializers().end() && it->second.rank() == 2) {
          cost += 2.0 * static_cast<double>(it->second.dim(0)) *
                  static_cast<double>(it->second.dim(1));
          continue;
        }
      }
      cost += 16.0;  // unknown operand: nominal
    } else {
      cost += 4.0;  // element-wise ops, per feature (nominal)
    }
  }
  return cost;
}

Result<PlanCost> EstimateCost(const ir::IrNode& node,
                              const relational::Catalog& catalog) {
  using ir::IrOpKind;
  switch (node.kind) {
    case IrOpKind::kTableScan: {
      RAVEN_ASSIGN_OR_RETURN(const relational::Table* table,
                             catalog.GetTable(node.table_name));
      const double rows = static_cast<double>(table->num_rows());
      const double cols = static_cast<double>(table->num_columns());
      return PlanCost{rows, rows * cols};
    }
    case IrOpKind::kFilter: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCost(*node.children[0], catalog));
      const std::size_t conjuncts =
          relational::ExtractConjuncts(*node.predicate).size();
      const double selectivity =
          std::pow(kFilterSelectivity, static_cast<double>(conjuncts));
      return PlanCost{child.output_rows * selectivity,
                      child.total_cost + child.output_rows *
                                             static_cast<double>(conjuncts)};
    }
    case IrOpKind::kProject: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCost(*node.children[0], catalog));
      return PlanCost{child.output_rows,
                      child.total_cost +
                          child.output_rows *
                              static_cast<double>(node.proj_exprs.size())};
    }
    case IrOpKind::kJoin: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost left,
                             EstimateCost(*node.children[0], catalog));
      RAVEN_ASSIGN_OR_RETURN(PlanCost right,
                             EstimateCost(*node.children[1], catalog));
      return PlanCost{left.output_rows,
                      left.total_cost + right.total_cost +
                          2.0 * (left.output_rows + right.output_rows)};
    }
    case IrOpKind::kUnionAll: {
      PlanCost total{0.0, 0.0};
      for (const auto& child : node.children) {
        RAVEN_ASSIGN_OR_RETURN(PlanCost c, EstimateCost(*child, catalog));
        total.output_rows += c.output_rows;
        total.total_cost += c.total_cost;
      }
      return total;
    }
    case IrOpKind::kLimit: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCost(*node.children[0], catalog));
      return PlanCost{
          std::min(child.output_rows, static_cast<double>(node.limit)),
          child.total_cost};
    }
    case IrOpKind::kModelPipeline: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCost(*node.children[0], catalog));
      return PlanCost{child.output_rows,
                      child.total_cost +
                          child.output_rows * PipelineRowCost(*node.pipeline)};
    }
    case IrOpKind::kClusteredPredict: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCost(*node.children[0], catalog));
      double avg_cost = 0.0;
      if (!node.clustered->cluster_models.empty()) {
        for (const auto& model : node.clustered->cluster_models) {
          avg_cost += PipelineRowCost(model);
        }
        avg_cost /= static_cast<double>(node.clustered->cluster_models.size());
      } else {
        avg_cost = PipelineRowCost(node.clustered->fallback);
      }
      const double routing =
          2.0 * static_cast<double>(node.clustered->routing_columns.size()) *
          static_cast<double>(node.clustered->router.k());
      return PlanCost{child.output_rows,
                      child.total_cost +
                          child.output_rows * (avg_cost + routing)};
    }
    case IrOpKind::kNnGraph: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCost(*node.children[0], catalog));
      return PlanCost{child.output_rows,
                      child.total_cost +
                          child.output_rows * NnGraphRowCost(*node.nn_graph)};
    }
    case IrOpKind::kOpaquePipeline: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCost(*node.children[0], catalog));
      // Opaque pipelines run out of process; charge a serialization tax.
      return PlanCost{child.output_rows,
                      child.total_cost + child.output_rows * 64.0};
    }
  }
  return Status::Internal("unreachable IR kind in EstimateCost");
}

}  // namespace raven::optimizer
