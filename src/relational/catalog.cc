#include "relational/catalog.h"

#include "relational/block_table.h"

namespace raven::relational {

Status Catalog::RegisterTable(const std::string& name, Table table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) > 0 || disk_tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  tables_.emplace(name, std::move(table));
  BumpVersion();
  return Status::OK();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not found");
  }
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(name) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, table] : tables_) {
    (void)table;
    out.push_back(name);
  }
  return out;
}

Status Catalog::RegisterDiskTable(const std::string& name,
                                  std::shared_ptr<const BlockTable> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("disk table '" + name + "' is null");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) > 0 || disk_tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  disk_tables_.emplace(name, std::move(table));
  BumpVersion();
  return Status::OK();
}

Result<std::shared_ptr<const BlockTable>> Catalog::GetDiskTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = disk_tables_.find(name);
  if (it == disk_tables_.end()) {
    return Status::NotFound("disk table '" + name + "' not found");
  }
  return it->second;
}

bool Catalog::HasDiskTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_tables_.count(name) > 0;
}

std::vector<std::string> Catalog::DiskTableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, table] : disk_tables_) {
    (void)table;
    out.push_back(name);
  }
  return out;
}

bool Catalog::HasAnyTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(name) > 0 || disk_tables_.count(name) > 0;
}

Result<std::vector<std::string>> Catalog::TableSchema(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second.ColumnNames();
  auto dit = disk_tables_.find(name);
  if (dit != disk_tables_.end()) return dit->second->ColumnNames();
  return Status::NotFound("table '" + name + "' not found");
}

Result<std::pair<std::int64_t, std::int64_t>> Catalog::TableShape(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it != tables_.end()) {
    return std::make_pair(it->second.num_rows(), it->second.num_columns());
  }
  auto dit = disk_tables_.find(name);
  if (dit != disk_tables_.end()) {
    return std::make_pair(dit->second->num_rows(),
                          dit->second->num_columns());
  }
  return Status::NotFound("table '" + name + "' not found");
}

Status Catalog::InsertModel(const std::string& name, const std::string& script,
                            const std::string& pipeline_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.count(name) > 0) {
    return Status::AlreadyExists("model '" + name +
                                 "' already exists; use UpdateModel");
  }
  models_[name] = StoredModel{name, script, pipeline_bytes, 1};
  audit_log_.push_back("INSERT model '" + name + "' v1");
  BumpVersion();
  return Status::OK();
}

Status Catalog::UpdateModel(const std::string& name, const std::string& script,
                            const std::string& pipeline_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(name);
    if (it == models_.end()) {
      return Status::NotFound("model '" + name + "' not found");
    }
    it->second.script = script;
    it->second.pipeline_bytes = pipeline_bytes;
    it->second.version += 1;
    audit_log_.push_back("UPDATE model '" + name + "' v" +
                         std::to_string(it->second.version));
  }
  BumpVersion();
  Notify(name);
  return Status::OK();
}

Status Catalog::DropModel(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(name);
    if (it == models_.end()) {
      return Status::NotFound("model '" + name + "' not found");
    }
    models_.erase(it);
    audit_log_.push_back("DROP model '" + name + "'");
  }
  BumpVersion();
  Notify(name);
  return Status::OK();
}

Result<StoredModel> Catalog::GetModel(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' not found");
  }
  return it->second;
}

bool Catalog::HasModel(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.count(name) > 0;
}

std::vector<std::string> Catalog::ModelNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, model] : models_) {
    (void)model;
    out.push_back(name);
  }
  return out;
}

Result<std::string> Catalog::ModelCacheKey(const std::string& name) const {
  RAVEN_ASSIGN_OR_RETURN(StoredModel model, GetModel(name));
  return model.name + "@v" + std::to_string(model.version);
}

void Catalog::Notify(const std::string& name) {
  for (const auto& fn : listeners_) fn(name);
}

}  // namespace raven::relational
