// raven_serve: the standalone query-server daemon. Boots a RavenContext
// with the demo hospital + flight datasets and their stored models, then
// serves the frame protocol of src/server until SIGINT/SIGTERM.
//
// Usage:
//   raven_serve --socket=/tmp/raven.sock               # unix listener
//   raven_serve --port=0                               # TCP on 127.0.0.1
// Knobs:
//   --rows=N                  dataset size per table (default 5000)
//   --parallelism=N           default session dop (default 4)
//   --max-concurrent=N        admission execution slots (default 4)
//   --max-queue=N             admission queue depth (default 16)
//   --queue-timeout-ms=N      queue wait bound (default 30000)
//   --max-result-rows=N       per-query result cap (default 0 = unlimited)
//   --plan-cache=N            plan cache capacity (default 128)
//   --batch-window-us=N       cross-query PREDICT micro-batch window in
//                             microseconds (default 0 = off)
//   --max-batch-rows=N        rows per coalesced NNRT call (default 256)
//   --artifact-dir=PATH       persist compiled NNRT graphs here; a restart
//                             (or raven_worker child) warm-starts from them
//   --session-cache=N         NNRT session cache capacity (default 32)
//   --nn-backend=NAME         default NNRT backend: reference|simd|fp16
//   --attach=NAME=PATH        register the `.rvc` columnar file at PATH as
//                             on-disk table NAME (repeatable; scans read it
//                             block-by-block with zone-map skipping)
//   --metrics-port=N          serve Prometheus text metrics over plaintext
//                             HTTP on 127.0.0.1:N (0 = pick a free port;
//                             scrape GET /metrics)
//   --slow-query-log=PATH     append one JSON span-tree line per statement
//                             at or over a session's SET slow_query_millis
//                             threshold
//
// Try it:
//   raven_client --socket=/tmp/raven.sock
//     --query "SELECT airline, COUNT(*) AS n FROM flights GROUP BY airline"

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "data/flight.h"
#include "data/hospital.h"
#include "raven/raven.h"
#include "server/query_server.h"
#include "storage/columnar.h"
#include "tool_flags.h"

namespace {

using raven::tools::ParseFlag;

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

long FlagInt(const std::string& value, const char* name) {
  return raven::tools::FlagInt(value, name, "raven_serve");
}

}  // namespace

int main(int argc, char** argv) {
  raven::server::QueryServerOptions options;
  raven::RavenOptions raven_options;
  long rows = 5000;
  long parallelism = 4;
  std::vector<std::pair<std::string, std::string>> attachments;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--socket=", &value)) {
      options.unix_socket_path = value;
    } else if (ParseFlag(argv[i], "--port=", &value)) {
      options.tcp_port = static_cast<int>(FlagInt(value, "--port"));
    } else if (ParseFlag(argv[i], "--rows=", &value)) {
      rows = FlagInt(value, "--rows");
    } else if (ParseFlag(argv[i], "--parallelism=", &value)) {
      parallelism = FlagInt(value, "--parallelism");
    } else if (ParseFlag(argv[i], "--max-concurrent=", &value)) {
      options.admission.max_concurrent = FlagInt(value, "--max-concurrent");
    } else if (ParseFlag(argv[i], "--max-queue=", &value)) {
      options.admission.max_queue = FlagInt(value, "--max-queue");
    } else if (ParseFlag(argv[i], "--queue-timeout-ms=", &value)) {
      options.admission.queue_timeout_millis =
          FlagInt(value, "--queue-timeout-ms");
    } else if (ParseFlag(argv[i], "--max-result-rows=", &value)) {
      options.admission.max_result_rows = FlagInt(value, "--max-result-rows");
    } else if (ParseFlag(argv[i], "--plan-cache=", &value)) {
      options.plan_cache_capacity =
          static_cast<std::size_t>(FlagInt(value, "--plan-cache"));
    } else if (ParseFlag(argv[i], "--batch-window-us=", &value)) {
      options.default_execution.predict_batch_window_micros =
          FlagInt(value, "--batch-window-us");
    } else if (ParseFlag(argv[i], "--max-batch-rows=", &value)) {
      options.default_execution.predict_max_batch_rows =
          FlagInt(value, "--max-batch-rows");
    } else if (ParseFlag(argv[i], "--artifact-dir=", &value)) {
      raven_options.artifact_dir = value;
    } else if (ParseFlag(argv[i], "--session-cache=", &value)) {
      raven_options.session_cache_capacity =
          static_cast<std::size_t>(FlagInt(value, "--session-cache"));
    } else if (ParseFlag(argv[i], "--nn-backend=", &value)) {
      auto kind = raven::nnrt::ParseBackendKind(value);
      if (!kind.ok()) {
        std::fprintf(stderr, "raven_serve: %s\n",
                     kind.status().ToString().c_str());
        return 2;
      }
      options.default_execution.nn_backend = kind.value();
    } else if (ParseFlag(argv[i], "--metrics-port=", &value)) {
      options.metrics_port = static_cast<int>(FlagInt(value, "--metrics-port"));
    } else if (ParseFlag(argv[i], "--slow-query-log=", &value)) {
      options.slow_query_log_path = value;
    } else if (ParseFlag(argv[i], "--attach=", &value)) {
      const std::size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
        std::fprintf(stderr,
                     "raven_serve: --attach expects NAME=PATH, got '%s'\n",
                     value.c_str());
        return 2;
      }
      attachments.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else {
      std::fprintf(stderr, "raven_serve: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (options.unix_socket_path.empty() && options.tcp_port < 0) {
    std::fprintf(stderr,
                 "raven_serve: pass --socket=PATH or --port=N (0 = pick)\n");
    return 2;
  }
  options.default_execution.parallelism = parallelism;

  raven::RavenContext ctx(raven_options);
  {
    auto hospital = raven::data::MakeHospitalDataset(rows, 11);
    if (!ctx.RegisterTable("patient_info", hospital.patient_info).ok() ||
        !ctx.RegisterTable("blood_tests", hospital.blood_tests).ok() ||
        !ctx.RegisterTable("prenatal_tests", hospital.prenatal_tests).ok() ||
        !ctx.RegisterTable("patients", hospital.joined).ok()) {
      std::fprintf(stderr, "raven_serve: failed to register hospital data\n");
      return 1;
    }
    auto tree = raven::data::TrainHospitalTree(hospital, 5);
    if (!tree.ok() ||
        !ctx.InsertModel("los", raven::data::HospitalTreeScript(),
                         tree.value())
             .ok()) {
      std::fprintf(stderr, "raven_serve: failed to store model 'los'\n");
      return 1;
    }
    auto flight = raven::data::MakeFlightDataset(rows, 7);
    if (!ctx.RegisterTable("flights", flight.flights).ok()) {
      std::fprintf(stderr, "raven_serve: failed to register flight data\n");
      return 1;
    }
    auto logreg = raven::data::TrainFlightLogreg(flight, 0.01);
    if (!logreg.ok() ||
        !ctx.InsertModel("delay", raven::data::FlightLogregScript(),
                         logreg.value())
             .ok()) {
      std::fprintf(stderr, "raven_serve: failed to store model 'delay'\n");
      return 1;
    }
  }
  for (const auto& [name, path] : attachments) {
    auto disk = raven::storage::DiskTable::Open(path);
    if (!disk.ok()) {
      std::fprintf(stderr, "raven_serve: --attach %s: %s\n", name.c_str(),
                   disk.status().ToString().c_str());
      return 1;
    }
    raven::Status attached = ctx.RegisterDiskTable(name, disk.value());
    if (!attached.ok()) {
      std::fprintf(stderr, "raven_serve: --attach %s: %s\n", name.c_str(),
                   attached.ToString().c_str());
      return 1;
    }
    std::printf("raven_serve: attached %s -> %s\n", name.c_str(),
                disk.value()->Describe().c_str());
  }

  raven::server::QueryServer server(&ctx, options);
  raven::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "raven_serve: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!options.unix_socket_path.empty()) {
    std::printf("raven_serve: listening on %s\n",
                options.unix_socket_path.c_str());
  } else {
    std::printf("raven_serve: listening on 127.0.0.1:%d\n",
                server.tcp_port());
  }
  if (server.metrics_tcp_port() >= 0) {
    std::printf("raven_serve: metrics on http://127.0.0.1:%d/metrics\n",
                server.metrics_tcp_port());
  }
  std::printf("raven_serve: tables patients/patient_info/blood_tests/"
              "prenatal_tests/flights, models los/delay (%ld rows)\n",
              rows);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    ::usleep(100 * 1000);
  }
  std::printf("raven_serve: shutting down\n");
  server.Stop();
  return 0;
}
