#ifndef RAVEN_SERVER_SERVER_PROTOCOL_H_
#define RAVEN_SERVER_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "relational/table.h"

namespace raven::server {

/// Wire protocol between raven_client (or any embedded ServerClient) and
/// the QueryServer. Frames are the worker protocol's [u32 length][payload]
/// (runtime::WriteFrame / ReadFrame — same framing, same 1 GiB cap, same
/// timeout handling); payloads use the common BinaryWriter encoding with a
/// leading command/kind byte, mirroring runtime/worker_protocol.h.
///
/// The conversation is strictly request/response: the client sends one
/// request frame and reads exactly one response frame. Statement-level
/// verbs (PREPARE / EXECUTE / SET / CREATE VIEW / DROP VIEW / SHOW STATS)
/// travel as ordinary kQuery text; kExecute is the binary fast path for
/// prepared statements (no SQL text, just the name and the parameter
/// values).

enum class ClientCommand : std::uint8_t {
  kQuery = 0,    ///< one SQL statement (SELECT/WITH or a server verb)
  kExecute = 1,  ///< prepared statement: name + positional `?` values
  kPing = 2,     ///< liveness probe, answered with kAck
};

struct ClientRequest {
  ClientCommand command = ClientCommand::kPing;
  std::string sql;             ///< kQuery
  std::string statement_name;  ///< kExecute
  std::vector<double> params;  ///< kExecute: `?` values by index
};

std::string EncodeClientRequest(const ClientRequest& request);
Result<ClientRequest> DecodeClientRequest(const std::string& payload);

enum class ServerResponseKind : std::uint8_t {
  kAck = 0,    ///< statement succeeded without a result set
  kTable = 1,  ///< result set plus per-query serving stats
  kError = 2,  ///< statement failed; the connection stays usable
  kBusy = 3,   ///< admission controller shed the query — back off and retry
  kStats = 4,  ///< SHOW STATS snapshot (ordered key/value counters)
};

struct ServerResponse {
  ServerResponseKind kind = ServerResponseKind::kError;
  /// kTable: the result set.
  relational::Table table;
  /// kAck: optional info text. kError/kBusy: the error message.
  std::string message;
  /// kError: the originating StatusCode (kBusy implies kServerBusy).
  StatusCode code = StatusCode::kOk;
  /// kTable: true when the plan came from the shared plan cache or a
  /// prepared statement (parse + optimize were skipped).
  bool plan_cache_hit = false;
  /// kTable: wall time spent queued in admission before execution.
  double queue_wait_micros = 0.0;
  /// kTable: total server-side statement time.
  double total_millis = 0.0;
  /// kStats: counters in render order.
  std::vector<std::pair<std::string, std::int64_t>> stats;
};

std::string EncodeServerResponse(const ServerResponse& response);
Result<ServerResponse> DecodeServerResponse(const std::string& payload);

/// Folds an error/busy response back into a Status (OK for the other
/// kinds) so client-side code can use the usual RAVEN_* macros.
Status ResponseStatus(const ServerResponse& response);

}  // namespace raven::server

#endif  // RAVEN_SERVER_SERVER_PROTOCOL_H_
