#ifndef RAVEN_RELATIONAL_CATALOG_H_
#define RAVEN_RELATIONAL_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace raven::relational {

class BlockTable;

/// A stored model: the pipeline script (the paper's Python source), the
/// serialized trained pipeline bytes, and a version stamp. Storing models
/// alongside data is the paper's central governance argument (§1): models
/// inherit transactional updates, versioning, and auditability.
struct StoredModel {
  std::string name;
  std::string script;
  std::string pipeline_bytes;
  std::int64_t version = 1;
};

/// Database catalog: named tables plus a model store with transactional
/// (atomic, versioned, audited) model updates. Thread-safe.
class Catalog {
 public:
  Catalog() = default;

  // -- Tables -------------------------------------------------------------
  Status RegisterTable(const std::string& name, Table table);
  Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // -- On-disk tables -------------------------------------------------------
  // Block-based (.rvc) tables registered alongside in-memory ones. The two
  // registries share one namespace: a name resolves to exactly one kind,
  // and registration in either checks both. Planning code that only needs
  // shape/schema goes through TableSchema/TableShape so it stays agnostic
  // to where the rows live.
  Status RegisterDiskTable(const std::string& name,
                           std::shared_ptr<const BlockTable> table);
  Result<std::shared_ptr<const BlockTable>> GetDiskTable(
      const std::string& name) const;
  bool HasDiskTable(const std::string& name) const;
  std::vector<std::string> DiskTableNames() const;

  /// True when `name` resolves as either table kind (FROM-clause check).
  bool HasAnyTable(const std::string& name) const;
  /// Column names of either table kind.
  Result<std::vector<std::string>> TableSchema(const std::string& name) const;
  /// (num_rows, num_columns) of either table kind.
  Result<std::pair<std::int64_t, std::int64_t>> TableShape(
      const std::string& name) const;

  // -- Model store ----------------------------------------------------------
  /// INSERT INTO scoring_models: fails if the name exists (use UpdateModel).
  Status InsertModel(const std::string& name, const std::string& script,
                     const std::string& pipeline_bytes);
  /// Atomically replaces a model, bumping its version and notifying
  /// invalidation listeners (e.g. the inference-session cache).
  Status UpdateModel(const std::string& name, const std::string& script,
                     const std::string& pipeline_bytes);
  Status DropModel(const std::string& name);
  Result<StoredModel> GetModel(const std::string& name) const;
  bool HasModel(const std::string& name) const;
  std::vector<std::string> ModelNames() const;

  /// Versioned cache key "<name>@v<version>" for the session cache.
  Result<std::string> ModelCacheKey(const std::string& name) const;

  /// Audit log of model-store mutations ("INSERT name v1", ...).
  const std::vector<std::string>& AuditLog() const { return audit_log_; }

  /// Registers a callback fired (with the model name) on update/drop.
  void AddInvalidationListener(std::function<void(const std::string&)> fn) {
    listeners_.push_back(std::move(fn));
  }

  /// Monotonic catalog version, bumped by every table or model mutation.
  /// Plan caches key on it so any catalog change makes previously optimized
  /// plans unreachable (they were planned against stale schemas/models).
  std::int64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  void Notify(const std::string& name);
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  std::atomic<std::int64_t> version_{1};
  mutable std::mutex mu_;
  std::map<std::string, Table> tables_;
  std::map<std::string, std::shared_ptr<const BlockTable>> disk_tables_;
  std::map<std::string, StoredModel> models_;
  std::vector<std::string> audit_log_;
  std::vector<std::function<void(const std::string&)>> listeners_;
};

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_CATALOG_H_
