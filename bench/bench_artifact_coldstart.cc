// Cold-start cost of NNRT session construction, the path the compiled-model
// artifact cache exists to shorten: a server restart (or raven_worker
// spawn) that finds a warm artifact directory skips deserialize-validate +
// graph optimization and reloads the already-optimized graph instead.
//
// Series:
//   FreshCompile    = InferenceSession::FromBytes — deserialize, validate,
//                     run the graph optimizer (the cold path).
//   ArtifactReload  = ArtifactCache::Load + FromArtifact — read + checksum
//                     the artifact file, validate, skip the optimizer (the
//                     warm path, including the disk read).
//   Backend_*       = steady-state inference throughput of the pluggable
//                     kernel backends on the GEMM-lowered hospital forest,
//                     the numbers docs/OPERATIONS.md's backend guidance
//                     quotes.

#include <unistd.h>

#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "nnrt/artifact_cache.h"
#include "nnrt/backend.h"
#include "nnrt/session.h"
#include "optimizer/converters.h"

namespace raven {
namespace {

const ml::ModelPipeline& Forest() {
  static auto* model = new ml::ModelPipeline(bench::Must(
      data::TrainHospitalForest(bench::Hospital(20000), 10, 8), "train rf"));
  return *model;
}

/// Serialized GEMM-lowered forest — the model bytes a cold server compiles.
const std::string& ModelBytes() {
  static auto* bytes = new std::string([] {
    nnrt::Graph graph =
        bench::Must(optimizer::PipelineToNnGraph(Forest()), "translate");
    BinaryWriter writer;
    graph.Serialize(&writer);
    return writer.Release();
  }());
  return *bytes;
}

/// A shared artifact directory holding the compiled model, written once.
const nnrt::ArtifactCache& Artifacts() {
  static auto* cache = new nnrt::ArtifactCache([] {
    char tmpl[] = "/tmp/raven_bench_artifact_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    return std::string(dir == nullptr ? "/tmp" : dir);
  }());
  static bool stored = [] {
    auto session = bench::Must(
        nnrt::InferenceSession::FromBytes(ModelBytes()), "compile");
    return cache
        ->Store(nnrt::FingerprintGraphBytes(ModelBytes()), session->graph(),
                session->optimization_stats())
        .ok();
  }();
  if (!stored) std::abort();
  return *cache;
}

void BM_ColdStart_FreshCompile(benchmark::State& state) {
  const std::string& bytes = ModelBytes();
  for (auto _ : state) {
    auto session = nnrt::InferenceSession::FromBytes(bytes);
    if (!session.ok()) state.SkipWithError("compile failed");
    benchmark::DoNotOptimize(session);
  }
  state.counters["model_bytes"] = static_cast<double>(bytes.size());
}

void BM_ColdStart_DeserializeOnly(benchmark::State& state) {
  // The optimizer-free floor of a fresh compile — the gap between this and
  // FreshCompile is what the artifact cache saves (minus the file read +
  // checksum ArtifactReload pays instead).
  const std::string& bytes = ModelBytes();
  nnrt::SessionOptions options;
  options.enable_graph_optimizations = false;
  for (auto _ : state) {
    auto session = nnrt::InferenceSession::FromBytes(bytes, options);
    if (!session.ok()) state.SkipWithError("compile failed");
    benchmark::DoNotOptimize(session);
  }
}

void BM_ColdStart_ArtifactReload(benchmark::State& state) {
  const nnrt::ArtifactCache& artifacts = Artifacts();
  const std::uint64_t fp = nnrt::FingerprintGraphBytes(ModelBytes());
  for (auto _ : state) {
    auto artifact = artifacts.Load(fp);
    if (!artifact.ok()) state.SkipWithError("load failed");
    auto session =
        nnrt::InferenceSession::FromArtifact(std::move(artifact).value());
    if (!session.ok()) state.SkipWithError("session failed");
    benchmark::DoNotOptimize(session);
  }
}

void RunBackend(benchmark::State& state, nnrt::BackendKind backend) {
  nnrt::SessionOptions options;
  options.backend = backend;
  auto session = bench::Must(
      nnrt::InferenceSession::FromBytes(ModelBytes(), options), "session");
  Tensor x = bench::Must(
      bench::Hospital(state.range(0)).joined.ToTensor(Forest().input_columns),
      "tensor");
  for (auto _ : state) {
    auto preds = session->RunSingle(x);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

void BM_Backend_Reference(benchmark::State& state) {
  RunBackend(state, nnrt::BackendKind::kReference);
}

void BM_Backend_Simd(benchmark::State& state) {
  RunBackend(state, nnrt::BackendKind::kSimd);
}

void BM_Backend_Fp16(benchmark::State& state) {
  RunBackend(state, nnrt::BackendKind::kFp16);
}

BENCHMARK(BM_ColdStart_FreshCompile)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ColdStart_DeserializeOnly)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ColdStart_ArtifactReload)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Backend_Reference)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Backend_Simd)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_Backend_Fp16)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMicrosecond);

}  // namespace
}  // namespace raven
