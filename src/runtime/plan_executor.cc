#include "runtime/plan_executor.h"

#include <set>

#include "relational/operators.h"

namespace raven::runtime {
namespace {

/// Returns the table name if the plan's only base relation is exactly one
/// TableScan (the parallelizable shape), empty otherwise.
std::string SingleScanTable(const ir::IrNode* root) {
  std::vector<std::string> scans;
  ir::VisitIr(root, [&](const ir::IrNode* node) {
    if (node->kind == ir::IrOpKind::kTableScan) {
      scans.push_back(node->table_name);
    }
  });
  return scans.size() == 1 ? scans[0] : std::string();
}

}  // namespace

Result<relational::Table> PlanExecutor::Execute(const ir::IrPlan& plan,
                                                const ExecutionOptions& options,
                                                ExecutionStats* stats) {
  if (plan.root() == nullptr) {
    return Status::InvalidArgument("cannot execute an empty plan");
  }
  std::mutex stats_mu;
  RuntimeContext ctx;
  ctx.catalog = catalog_;
  ctx.session_cache = session_cache_;
  ctx.options = options;
  ctx.stats = stats;
  ctx.stats_mu = &stats_mu;

  const std::string base_table =
      options.parallelism > 1 && options.mode == ExecutionMode::kInProcess
          ? SingleScanTable(plan.root())
          : std::string();
  if (!base_table.empty()) {
    RAVEN_ASSIGN_OR_RETURN(const relational::Table* table,
                           catalog_->GetTable(base_table));
    // Partitioned execution: each partition gets its own operator tree
    // scanning a disjoint row range; scorers share cached sessions.
    Status build_error = Status::OK();
    std::mutex build_mu;
    auto factory = [&](std::int64_t begin,
                       std::int64_t end) -> relational::OperatorPtr {
      RuntimeContext part_ctx = ctx;
      part_ctx.partition_table = base_table;
      part_ctx.partition_begin = begin;
      part_ctx.partition_end = end;
      auto op = BuildPhysicalPlan(*plan.root(), part_ctx);
      if (!op.ok()) {
        std::lock_guard<std::mutex> lock(build_mu);
        if (build_error.ok()) build_error = op.status();
        return nullptr;
      }
      return std::move(op).value();
    };
    // Wrap the factory so a failed build yields an empty operator that the
    // partition runner reports as an error.
    auto result = relational::ExecutePartitionedParallel(
        *table, options.parallelism,
        [&](std::int64_t begin, std::int64_t end) -> relational::OperatorPtr {
          auto op = factory(begin, end);
          return op;
        });
    if (!build_error.ok()) return build_error;
    return result;
  }

  RAVEN_ASSIGN_OR_RETURN(auto root_op, BuildPhysicalPlan(*plan.root(), ctx));
  return relational::MaterializeAll(root_op.get());
}

}  // namespace raven::runtime
