#include "frontend/pipeline_parser.h"

#include <cctype>
#include <set>

#include "common/string_util.h"

namespace raven::frontend {
namespace {

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

enum class TokKind {
  kName,
  kNumber,
  kString,
  kPunct,  // one of ( ) [ ] , = .
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0.0;
  int line = 0;
};

Result<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();
  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_')) {
        ++j;
      }
      tokens.push_back(Token{TokKind::kName, source.substr(i, j - i), 0.0,
                             line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      std::size_t j = i + 1;
      while (j < n && (std::isdigit(static_cast<unsigned char>(source[j])) ||
                       source[j] == '.' || source[j] == 'e' ||
                       source[j] == 'E' ||
                       ((source[j] == '+' || source[j] == '-') &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E')))) {
        ++j;
      }
      const std::string text = source.substr(i, j - i);
      tokens.push_back(Token{TokKind::kNumber, text, std::stod(text), line});
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      std::size_t j = i + 1;
      std::string value;
      while (j < n && source[j] != c) {
        value.push_back(source[j]);
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string at line " +
                                  std::to_string(line));
      }
      tokens.push_back(Token{TokKind::kString, value, 0.0, line});
      i = j + 1;
      continue;
    }
    if (std::string("()[],=.:").find(c) != std::string::npos) {
      tokens.push_back(Token{TokKind::kPunct, std::string(1, c), 0.0, line});
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at line " + std::to_string(line));
  }
  tokens.push_back(Token{TokKind::kEnd, "", 0.0, line});
  return tokens;
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<PyScript> ParseScript();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool IsPunct(const char* p) const {
    return Peek().kind == TokKind::kPunct && Peek().text == p;
  }
  Status Expect(const char* p) {
    if (!IsPunct(p)) {
      return Status::ParseError("expected '" + std::string(p) + "' at line " +
                                std::to_string(Peek().line) + ", got '" +
                                Peek().text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Result<PyExpr> ParseExpr();
  Result<PyExpr> ParseCallOrName(std::string name);

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

Result<PyExpr> Parser::ParseExpr() {
  const Token& tok = Peek();
  switch (tok.kind) {
    case TokKind::kNumber: {
      PyExpr e;
      e.kind = PyExpr::Kind::kNumber;
      e.number = Advance().number;
      return e;
    }
    case TokKind::kString: {
      PyExpr e;
      e.kind = PyExpr::Kind::kString;
      e.str = Advance().text;
      return e;
    }
    case TokKind::kName: {
      // Dotted name; keep the final segment (module paths are metadata).
      std::string name = Advance().text;
      while (IsPunct(".")) {
        ++pos_;
        if (Peek().kind != TokKind::kName) {
          return Status::ParseError("expected name after '.'");
        }
        name = Advance().text;
      }
      return ParseCallOrName(std::move(name));
    }
    case TokKind::kPunct:
      if (tok.text == "[" || tok.text == "(") {
        const bool is_list = tok.text == "[";
        const char* close = is_list ? "]" : ")";
        ++pos_;
        PyExpr e;
        e.kind = is_list ? PyExpr::Kind::kList : PyExpr::Kind::kTuple;
        while (!IsPunct(close)) {
          RAVEN_ASSIGN_OR_RETURN(PyExpr item, ParseExpr());
          e.items.push_back(std::move(item));
          if (IsPunct(",")) {
            ++pos_;
          } else {
            break;
          }
        }
        RAVEN_RETURN_IF_ERROR(Expect(close));
        // A 1-element parenthesised expression is just the expression.
        if (!is_list && e.items.size() == 1 && e.kwargs.empty()) {
          return std::move(e.items[0]);
        }
        return e;
      }
      break;
    default:
      break;
  }
  return Status::ParseError("unexpected token '" + tok.text + "' at line " +
                            std::to_string(tok.line));
}

Result<PyExpr> Parser::ParseCallOrName(std::string name) {
  if (!IsPunct("(")) {
    PyExpr e;
    e.kind = PyExpr::Kind::kName;
    e.name = std::move(name);
    return e;
  }
  ++pos_;  // consume '('
  PyExpr call;
  call.kind = PyExpr::Kind::kCall;
  call.name = std::move(name);
  while (!IsPunct(")")) {
    // kwarg?
    if (Peek().kind == TokKind::kName &&
        tokens_[pos_ + 1].kind == TokKind::kPunct &&
        tokens_[pos_ + 1].text == "=") {
      const std::string key = Advance().text;
      ++pos_;  // '='
      RAVEN_ASSIGN_OR_RETURN(PyExpr value, ParseExpr());
      call.kwargs.emplace_back(key, std::move(value));
    } else {
      RAVEN_ASSIGN_OR_RETURN(PyExpr arg, ParseExpr());
      call.items.push_back(std::move(arg));
    }
    if (IsPunct(",")) {
      ++pos_;
    } else {
      break;
    }
  }
  RAVEN_RETURN_IF_ERROR(Expect(")"));
  return call;
}

Result<PyScript> Parser::ParseScript() {
  PyScript script;
  static const std::set<std::string>* kControlFlow = new std::set<std::string>{
      "for", "while", "if", "def", "class", "with", "try", "lambda"};
  while (Peek().kind != TokKind::kEnd) {
    if (Peek().kind != TokKind::kName) {
      return Status::ParseError("expected statement at line " +
                                std::to_string(Peek().line));
    }
    const std::string head = Peek().text;
    if (kControlFlow->count(head) > 0) {
      // §3.2: loops/conditionals are out of scope for straight-line
      // analysis; the caller falls back to a UDF.
      return Status::ParseError("control-flow construct '" + head +
                                "' is not analyzable (line " +
                                std::to_string(Peek().line) + ")");
    }
    if (head == "from" || head == "import") {
      // Skip the rest of the logical line: imports carry dependency
      // metadata only.
      const int line = Peek().line;
      while (Peek().kind != TokKind::kEnd && Peek().line == line) ++pos_;
      continue;
    }
    // Assignment: NAME = expr.
    PyAssignment assignment;
    assignment.target = Advance().text;
    RAVEN_RETURN_IF_ERROR(Expect("="));
    RAVEN_ASSIGN_OR_RETURN(assignment.value, ParseExpr());
    script.assignments.push_back(std::move(assignment));
  }
  return script;
}

}  // namespace

const PyExpr* PyExpr::FindKwarg(const std::string& key) const {
  for (const auto& [k, v] : kwargs) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<const PyExpr*> PyScript::FindPipelineRoot() const {
  const PyExpr* root = nullptr;
  for (const auto& assignment : assignments) {
    const PyExpr* value = &assignment.value;
    // Resolve one level of variable alias.
    if (value->kind == PyExpr::Kind::kName) {
      for (const auto& prior : assignments) {
        if (prior.target == value->name) value = &prior.value;
      }
    }
    if (value->kind == PyExpr::Kind::kCall && value->name == "Pipeline") {
      root = value;
    }
  }
  if (root == nullptr) {
    return Status::NotFound("no Pipeline(...) assignment found in script");
  }
  return root;
}

Result<PyScript> ParsePipelineScript(const std::string& source) {
  RAVEN_ASSIGN_OR_RETURN(auto tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.ParseScript();
}

namespace {

const std::set<std::string>& TransformKb() {
  static const std::set<std::string>* kb = new std::set<std::string>{
      "StandardScaler", "OneHotEncoder", "ColumnSelector", "passthrough"};
  return *kb;
}

const std::set<std::string>& EstimatorKb() {
  static const std::set<std::string>* kb = new std::set<std::string>{
      "DecisionTreeClassifier", "DecisionTreeRegressor",
      "RandomForestClassifier", "RandomForestRegressor",
      "LogisticRegression", "LinearRegression", "Lasso",
      "MLPClassifier", "MLPRegressor"};
  return *kb;
}

Result<std::vector<std::string>> ColumnsKwarg(const PyExpr& call) {
  std::vector<std::string> columns;
  const PyExpr* arg = call.FindKwarg("columns");
  if (arg == nullptr) return columns;  // empty = "all remaining"
  if (arg->kind != PyExpr::Kind::kList) {
    return Status::ParseError("columns= must be a list of strings");
  }
  for (const auto& item : arg->items) {
    if (item.kind != PyExpr::Kind::kString) {
      return Status::ParseError("columns= entries must be strings");
    }
    columns.push_back(item.str);
  }
  return columns;
}

/// Parses a ('name', Step(...)) tuple.
Result<std::pair<std::string, const PyExpr*>> ParseStepTuple(
    const PyExpr& tuple) {
  if (tuple.kind != PyExpr::Kind::kTuple || tuple.items.size() != 2 ||
      tuple.items[0].kind != PyExpr::Kind::kString) {
    return Status::ParseError(
        "pipeline steps must be ('name', Step(...)) tuples");
  }
  return std::make_pair(tuple.items[0].str, &tuple.items[1]);
}

}  // namespace

bool KnowledgeBaseContains(const std::string& callable) {
  return TransformKb().count(callable) > 0 ||
         EstimatorKb().count(callable) > 0 || callable == "Pipeline" ||
         callable == "FeatureUnion";
}

Result<PipelineSpec> ExtractPipelineSpec(const PyScript& script) {
  RAVEN_ASSIGN_OR_RETURN(const PyExpr* root, script.FindPipelineRoot());
  if (root->items.size() != 1 ||
      root->items[0].kind != PyExpr::Kind::kList) {
    return Status::ParseError("Pipeline(...) expects a list of steps");
  }
  PipelineSpec spec;
  const auto& steps = root->items[0].items;
  for (std::size_t s = 0; s < steps.size(); ++s) {
    RAVEN_ASSIGN_OR_RETURN(auto named_step, ParseStepTuple(steps[s]));
    const auto& [step_name, step] = named_step;
    const bool is_last = s + 1 == steps.size();
    if (step->kind == PyExpr::Kind::kString && step->str == "passthrough") {
      spec.branches.push_back(BranchSpec{step_name, "passthrough", {}});
      continue;
    }
    if (step->kind != PyExpr::Kind::kCall) {
      return Status::ParseError("pipeline step '" + step_name +
                                "' is not a call");
    }
    if (step->name == "FeatureUnion") {
      if (step->items.size() != 1 ||
          step->items[0].kind != PyExpr::Kind::kList) {
        return Status::ParseError("FeatureUnion expects a list of branches");
      }
      for (const auto& branch_tuple : step->items[0].items) {
        RAVEN_ASSIGN_OR_RETURN(auto named_branch,
                               ParseStepTuple(branch_tuple));
        const auto& [branch_name, branch] = named_branch;
        std::string callable;
        std::vector<std::string> columns;
        if (branch->kind == PyExpr::Kind::kString &&
            branch->str == "passthrough") {
          callable = "passthrough";
        } else if (branch->kind == PyExpr::Kind::kCall) {
          callable = branch->name;
          if (TransformKb().count(callable) == 0) {
            return Status::InvalidArgument(
                "unknown transform '" + callable +
                "' (not in the API knowledge base)");
          }
          RAVEN_ASSIGN_OR_RETURN(columns, ColumnsKwarg(*branch));
        } else {
          return Status::ParseError("FeatureUnion branch '" + branch_name +
                                    "' is not a call");
        }
        spec.branches.push_back(
            BranchSpec{branch_name, callable, std::move(columns)});
      }
      continue;
    }
    if (TransformKb().count(step->name) > 0) {
      RAVEN_ASSIGN_OR_RETURN(auto columns, ColumnsKwarg(*step));
      spec.branches.push_back(
          BranchSpec{step_name, step->name, std::move(columns)});
      continue;
    }
    if (EstimatorKb().count(step->name) > 0) {
      if (!is_last) {
        return Status::ParseError("estimator '" + step->name +
                                  "' must be the final pipeline step");
      }
      spec.predictor_callable = step->name;
      for (const auto& [key, value] : step->kwargs) {
        if (value.kind == PyExpr::Kind::kNumber) {
          spec.predictor_params[key] = value.number;
        }
      }
      continue;
    }
    return Status::InvalidArgument("unknown pipeline step '" + step->name +
                                   "' (not in the API knowledge base)");
  }
  if (spec.predictor_callable.empty()) {
    return Status::ParseError("pipeline has no final estimator step");
  }
  return spec;
}

}  // namespace raven::frontend
