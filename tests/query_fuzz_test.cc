// Randomized differential test harness for the morsel-parallel AND
// distributed executors: a seeded random query generator over the hospital
// and flight catalogs composes scan / filter / project / join / aggregate /
// GROUP BY / HAVING / ORDER BY / LIMIT / PREDICT shapes, runs every
// generated query through the full CrossOptimizer chain, and differentially
// compares
//   - in-process parallelism 1 against {2, 8} (ISSUE 3),
//   - in-process dop {1, 8} against distributed execution over warm worker
//     pools of {2, 4} processes (ISSUE 4) — real raven_worker children,
//     real fragment serialization, real pipes, and
//   - in-process dop 1 against the same 200 queries served over a real
//     socket by a QueryServer to 4 concurrent clients, twice each for
//     plan-cache coverage (ISSUE 5),
// order-insensitive multiset comparison by default, order-sensitive when
// the query has an ORDER BY.
//
// The suite is deterministic: the seed defaults to kDefaultFuzzSeed and is
// printed (with the query text) on every failure. Reproduce a failing run
// with  RAVEN_FUZZ_SEED=<seed> ./query_fuzz_test.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "obs/trace.h"
#include "data/flight.h"
#include "data/hospital.h"
#include "frontend/analyzer.h"
#include "optimizer/cross_optimizer.h"
#include "raven/raven.h"
#include "runtime/plan_executor.h"
#include "server/client.h"
#include "server/query_server.h"
#include "storage/columnar.h"
#include "test_util.h"

namespace raven::runtime {
namespace {

constexpr std::uint64_t kDefaultFuzzSeed = 0xC1DB2020ULL;
constexpr int kNumQueries = 200;

std::uint64_t FuzzSeed() {
  if (const char* env = std::getenv("RAVEN_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return kDefaultFuzzSeed;
}

/// Value range of a column, for generating predicates/HAVING thresholds
/// that are neither vacuous nor empty.
struct ColumnRange {
  double lo = 0.0;
  double hi = 1.0;
};

/// One FROM-clause the generator can build on.
struct SourceSpec {
  std::string from;                       // SQL text after FROM
  std::vector<std::string> columns;       // full output schema
  std::vector<std::string> group_cols;    // low-cardinality key candidates
  std::vector<std::string> numeric_cols;  // aggregation/predicate targets
};

/// Exact scalar equality (with NaN == NaN). Aggregates accumulate through
/// the order-independent ExactFloatSum, so SUM/AVG are bit-identical at
/// every dop and under distributed execution — no tolerance is needed, and
/// reintroducing one would mask exactly the regressions this harness is
/// meant to catch.
bool ExactEqual(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

std::vector<std::vector<double>> Rows(const relational::Table& t) {
  std::vector<std::vector<double>> rows(
      static_cast<std::size_t>(t.num_rows()));
  for (auto& row : rows) {
    row.reserve(static_cast<std::size_t>(t.num_columns()));
  }
  for (const auto& col : t.columns()) {
    for (std::int64_t r = 0; r < t.num_rows(); ++r) {
      rows[static_cast<std::size_t>(r)].push_back(
          col.data[static_cast<std::size_t>(r)]);
    }
  }
  return rows;
}

void ExpectRowsMatch(const std::vector<std::vector<double>>& expected,
                     const std::vector<std::vector<double>>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t r = 0; r < expected.size(); ++r) {
    ASSERT_EQ(expected[r].size(), actual[r].size());
    for (std::size_t c = 0; c < expected[r].size(); ++c) {
      ASSERT_PRED2(ExactEqual, expected[r][c], actual[r][c])
          << "row " << r << " col " << c;
    }
  }
}

/// Differential comparator: schema + row multiset (sorted rows) by default,
/// exact row order when `ordered`.
void ExpectTablesMatch(const relational::Table& expected,
                       const relational::Table& actual, bool ordered) {
  ASSERT_EQ(expected.ColumnNames(), actual.ColumnNames());
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  auto lhs = Rows(expected);
  auto rhs = Rows(actual);
  if (!ordered) {
    std::sort(lhs.begin(), lhs.end());
    std::sort(rhs.begin(), rhs.end());
  }
  ExpectRowsMatch(lhs, rhs);
}

class QueryFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hospital_ = data::MakeHospitalDataset(3000, 11);
    ASSERT_NO_FATAL_FAILURE(
        test_util::RegisterHospitalTables(&catalog_, hospital_));
    test_util::InsertHospitalTreeModel(&catalog_, hospital_, 5);
    flight_ = data::MakeFlightDataset(2000, 7);
    ASSERT_NO_FATAL_FAILURE(
        test_util::RegisterFlightTable(&catalog_, flight_));
    auto logreg = data::TrainFlightLogreg(flight_, 0.01);
    ASSERT_TRUE(logreg.ok()) << logreg.status().ToString();
    ASSERT_TRUE(catalog_
                    .InsertModel("delay", data::FlightLogregScript(),
                                 logreg->ToBytes())
                    .ok());
    BuildSources();
    ASSERT_FALSE(HasFailure()) << "fixture setup failed";
  }

  void BuildSources() {
    auto add = [&](std::string from, std::vector<std::string> columns,
                   std::vector<std::string> group_cols,
                   std::vector<std::string> numeric_cols) {
      sources_.push_back(SourceSpec{std::move(from), std::move(columns),
                                    std::move(group_cols),
                                    std::move(numeric_cols)});
    };
    const std::vector<std::string> patients_cols = {
        "id",        "age",      "weight",   "bp",     "hematocrit",
        "glucose",   "platelets", "fetal_hr", "gender", "pregnant",
        "amnio",     "length_of_stay"};
    add("patients", patients_cols, {"gender", "pregnant", "amnio"},
        {"id", "age", "weight", "bp", "glucose", "fetal_hr"});
    add("patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id",
        {"id", "age", "gender", "pregnant", "weight", "bp", "hematocrit",
         "glucose", "platelets"},
        {"gender", "pregnant"}, {"id", "age", "weight", "bp", "glucose"});
    add("flights",
        {"id", "dep_hour", "distance", "day_of_week", "airline", "origin",
         "dest", "delayed"},
        {"airline", "day_of_week", "delayed"},
        {"id", "dep_hour", "distance"});
    {
      auto columns = patients_cols;
      columns.push_back("p");
      add("PREDICT(MODEL='los', DATA=patients) WITH(p float)", columns,
          {"gender", "pregnant", "amnio"},
          {"age", "bp", "fetal_hr", "p"});
    }
    add("PREDICT(MODEL='delay', DATA=flights) WITH(p float)",
        {"id", "dep_hour", "distance", "day_of_week", "airline", "origin",
         "dest", "delayed", "p"},
        {"airline", "day_of_week", "delayed"}, {"distance", "dep_hour", "p"});

    // Data-driven literal ranges, so predicates/HAVING thresholds land in
    // the populated part of each column's domain.
    for (const auto& name : {"patients", "patient_info", "blood_tests",
                             "prenatal_tests", "flights"}) {
      auto table = catalog_.GetTable(name);
      ASSERT_TRUE(table.ok());
      for (const auto& col : (*table)->columns()) {
        const auto [lo, hi] =
            std::minmax_element(col.data.begin(), col.data.end());
        if (lo != col.data.end()) {
          ranges_[col.name] = ColumnRange{*lo, *hi};
        }
      }
    }
    ranges_["p"] = ColumnRange{0.0, 10.0};  // prediction outputs
  }

  ColumnRange RangeOf(const std::string& column) const {
    auto it = ranges_.find(column);
    return it == ranges_.end() ? ColumnRange{0.0, 100.0} : it->second;
  }

  template <typename T>
  const T& PickFrom(Rng& rng, const std::vector<T>& options) {
    return options[static_cast<std::size_t>(rng.NextUint(options.size()))];
  }

  std::string Literal(double v) {
    // Round to keep the SQL text short and the lexer happy.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
  }

  std::string RandomPredicate(Rng& rng, const SourceSpec& source) {
    static const std::vector<std::string> kOps = {"<", "<=", ">", ">=", "<>"};
    const int conjuncts = static_cast<int>(rng.UniformInt(1, 2));
    std::string out;
    for (int i = 0; i < conjuncts; ++i) {
      if (i > 0) out += " AND ";
      const std::string& col = PickFrom(rng, source.numeric_cols);
      const ColumnRange range = RangeOf(col);
      out += col + " " + PickFrom(rng, kOps) + " " +
             Literal(rng.Uniform(range.lo, range.hi));
    }
    return out;
  }

  struct AggChoice {
    std::string sql;  // e.g. "AVG(bp) AS a1"
    std::string name;
  };

  AggChoice RandomAggregate(Rng& rng, const SourceSpec& source, int index) {
    static const std::vector<std::string> kFuncs = {"COUNT", "SUM", "AVG",
                                                    "MIN", "MAX"};
    const std::string& func = PickFrom(rng, kFuncs);
    AggChoice choice;
    choice.name = "a" + std::to_string(index);
    if (func == "COUNT" && rng.NextBool()) {
      choice.sql = "COUNT(*) AS " + choice.name;
    } else {
      choice.sql = func + "(" + PickFrom(rng, source.numeric_cols) + ") AS " +
                   choice.name;
    }
    return choice;
  }

  /// One random query; `ordered` reports whether it carries an ORDER BY.
  std::string GenerateQuery(Rng& rng, bool* ordered) {
    const SourceSpec& source = PickFrom(rng, sources_);
    *ordered = false;
    std::string select;
    std::vector<std::string> output_names;
    bool grouped = false;
    std::string tail;

    const double shape = rng.NextDouble();
    if (shape < 0.15) {
      select = "*";
      output_names = source.columns;
    } else if (shape < 0.35) {
      // Plain projection, possibly with an arithmetic expression item.
      // Columns are picked without replacement: duplicate output names
      // cannot materialize into a table.
      const int n = static_cast<int>(rng.UniformInt(1, 3));
      std::vector<std::string> chosen;
      while (static_cast<int>(chosen.size()) < n &&
             chosen.size() < source.columns.size()) {
        const std::string& col = PickFrom(rng, source.columns);
        if (std::find(chosen.begin(), chosen.end(), col) == chosen.end()) {
          chosen.push_back(col);
        }
      }
      for (std::size_t i = 0; i < chosen.size(); ++i) {
        if (i > 0) select += ", ";
        if (rng.NextBool(0.2)) {
          select += chosen[i] + " * 2 + 1 AS e" + std::to_string(i);
          output_names.push_back("e" + std::to_string(i));
        } else {
          select += chosen[i];
          output_names.push_back(chosen[i]);
        }
      }
    } else if (shape < 0.55) {
      // Scalar aggregates.
      const int n = static_cast<int>(rng.UniformInt(1, 3));
      for (int i = 0; i < n; ++i) {
        if (i > 0) select += ", ";
        AggChoice agg = RandomAggregate(rng, source, i);
        select += agg.sql;
        output_names.push_back(agg.name);
      }
    } else {
      // GROUP BY (the tentpole shape).
      grouped = true;
      const int keys = static_cast<int>(
          rng.UniformInt(1, std::min<std::int64_t>(
                                2, static_cast<std::int64_t>(
                                       source.group_cols.size()))));
      std::vector<std::string> chosen;
      while (static_cast<int>(chosen.size()) < keys) {
        const std::string& key = PickFrom(rng, source.group_cols);
        if (std::find(chosen.begin(), chosen.end(), key) == chosen.end()) {
          chosen.push_back(key);
        }
      }
      for (const auto& key : chosen) {
        if (!select.empty()) select += ", ";
        select += key;
        output_names.push_back(key);
      }
      // 0 aggregates = SELECT DISTINCT over the keys.
      const int n = static_cast<int>(rng.UniformInt(0, 3));
      for (int i = 0; i < n; ++i) {
        select += ", ";
        AggChoice agg = RandomAggregate(rng, source, i);
        select += agg.sql;
        output_names.push_back(agg.name);
      }
      tail = " GROUP BY ";
      for (std::size_t i = 0; i < chosen.size(); ++i) {
        if (i > 0) tail += ", ";
        tail += chosen[i];
      }
      if (rng.NextBool(0.4)) {
        tail += " HAVING ";
        if (rng.NextBool()) {
          tail += "COUNT(*) > " + std::to_string(rng.UniformInt(1, 30));
        } else {
          const std::string& col = PickFrom(rng, source.numeric_cols);
          const ColumnRange range = RangeOf(col);
          tail += "AVG(" + col + ") " +
                  std::string(rng.NextBool() ? ">" : "<=") + " " +
                  Literal(rng.Uniform(range.lo, range.hi));
        }
      }
    }

    std::string sql = "SELECT " + select + " FROM " + source.from;
    if (rng.NextBool(0.5)) {
      sql += " WHERE " + RandomPredicate(rng, source);
    }
    sql += tail;

    if (rng.NextBool(grouped ? 0.5 : 0.35)) {
      *ordered = true;
      sql += " ORDER BY ";
      const int n = static_cast<int>(rng.UniformInt(1, 2));
      for (int i = 0; i < n; ++i) {
        if (i > 0) sql += ", ";
        if (select != "*" && rng.NextBool(0.4)) {
          sql += std::to_string(
              rng.UniformInt(1,
                             static_cast<std::int64_t>(output_names.size())));
        } else {
          sql += PickFrom(rng, output_names);
        }
        sql += rng.NextBool() ? " DESC" : " ASC";
      }
      if (rng.NextBool(0.2)) {
        sql += " LIMIT " + std::to_string(rng.UniformInt(1, 50));
      }
    }
    return sql;
  }

  Result<relational::Table> Run(const ir::IrPlan& plan,
                                std::int64_t parallelism) {
    PlanExecutor executor(&catalog_, &cache_);
    ExecutionOptions options;
    options.parallelism = parallelism;
    options.morsel_rows = 256;  // many morsels even on these small tables
    return executor.Execute(plan, options);
  }

  /// Single-threaded run with an explicit NNRT kernel backend (the
  /// session-cache key includes the backend, so runs never share sessions
  /// across backends).
  Result<relational::Table> RunWithBackend(const ir::IrPlan& plan,
                                           nnrt::BackendKind backend) {
    PlanExecutor executor(&catalog_, &cache_);
    ExecutionOptions options;
    options.parallelism = 1;
    options.morsel_rows = 256;
    options.nn_backend = backend;
    return executor.Execute(plan, options);
  }

  /// Distributed run against `executor`'s warm worker pool.
  Result<relational::Table> RunDistributed(PlanExecutor* executor,
                                           const ir::IrPlan& plan,
                                           std::int64_t workers,
                                           ExecutionStats* stats) {
    ExecutionOptions options;
    options.mode = ExecutionMode::kDistributed;
    options.distributed_workers = workers;
    options.distributed_frame_timeout_millis = 60000;  // TSan headroom
    return executor->Execute(plan, options, stats);
  }

  /// Writes every fixture table to a temp `.rvc` file and registers the
  /// opened DiskTables under the SAME names in `disk_catalog` (with the
  /// same deterministically-trained models), so the identical SQL corpus
  /// runs against on-disk storage. block_rows=512 gives the 3000/2000-row
  /// tables several blocks each — real block boundaries, real zone maps.
  void BuildDiskCatalog(relational::Catalog* disk_catalog,
                        std::vector<std::string>* cleanup) {
    storage::RvcWriteOptions opts;
    opts.block_rows = 512;
    for (const char* name : {"patients", "patient_info", "blood_tests",
                             "prenatal_tests", "flights"}) {
      auto table = catalog_.GetTable(name);
      ASSERT_TRUE(table.ok()) << name;
      const std::string path = "/tmp/raven_fuzz_" +
                               std::to_string(::getpid()) + "_" + name +
                               ".rvc";
      ASSERT_TRUE(storage::WriteRvc(**table, path, opts).ok()) << name;
      cleanup->push_back(path);
      auto disk = storage::DiskTable::Open(path);
      ASSERT_TRUE(disk.ok()) << disk.status().ToString();
      ASSERT_TRUE(disk_catalog->RegisterDiskTable(name, disk.value()).ok());
    }
    test_util::InsertHospitalTreeModel(disk_catalog, hospital_, 5);
    auto logreg = data::TrainFlightLogreg(flight_, 0.01);
    ASSERT_TRUE(logreg.ok());
    ASSERT_TRUE(disk_catalog
                    ->InsertModel("delay", data::FlightLogregScript(),
                                  logreg->ToBytes())
                    .ok());
  }

  Result<relational::Table> RunOn(relational::Catalog* catalog,
                                  const ir::IrPlan& plan,
                                  std::int64_t parallelism,
                                  ExecutionStats* stats) {
    PlanExecutor executor(catalog, &cache_);
    ExecutionOptions options;
    options.parallelism = parallelism;
    options.morsel_rows = 256;  // disk scans use block-aligned queues anyway
    return executor.Execute(plan, options, stats);
  }

  data::HospitalDataset hospital_;
  data::FlightDataset flight_;
  relational::Catalog catalog_;
  nnrt::SessionCache cache_{8};
  std::vector<SourceSpec> sources_;
  std::map<std::string, ColumnRange> ranges_;
};

TEST_F(QueryFuzzTest, DifferentialParallelism200Queries) {
  const std::uint64_t seed = FuzzSeed();
  Rng rng(seed);
  frontend::StaticAnalyzer analyzer(&catalog_);
  optimizer::CrossOptimizer optimizer(&catalog_,
                                      optimizer::OptimizerOptions());
  int executed = 0;
  for (int q = 0; q < kNumQueries; ++q) {
    bool ordered = false;
    const std::string sql = GenerateQuery(rng, &ordered);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" +
                 std::to_string(q) + (ordered ? " [ordered] " : " ") + sql);
    auto plan = analyzer.Analyze(sql);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(optimizer.Optimize(&plan.value()).ok());
    auto sequential = Run(*plan, 1);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    for (std::int64_t dop : {2, 8}) {
      SCOPED_TRACE("parallelism=" + std::to_string(dop));
      auto parallel = Run(*plan, dop);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ASSERT_NO_FATAL_FAILURE(
          ExpectTablesMatch(*sequential, *parallel, ordered));
    }
    ++executed;
  }
  EXPECT_EQ(executed, kNumQueries);
}

TEST_F(QueryFuzzTest, SimdBackendDifferential200Queries) {
  // The SIMD backend promises the scalar kernels' exact per-element
  // rounding, so the whole fuzz corpus — PREDICT shapes included — must be
  // byte-identical to the reference backend, not approximately equal.
  const std::uint64_t seed = FuzzSeed();
  Rng rng(seed);
  frontend::StaticAnalyzer analyzer(&catalog_);
  optimizer::CrossOptimizer optimizer(&catalog_,
                                      optimizer::OptimizerOptions());
  int executed = 0;
  for (int q = 0; q < kNumQueries; ++q) {
    bool ordered = false;
    const std::string sql = GenerateQuery(rng, &ordered);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" +
                 std::to_string(q) + (ordered ? " [ordered] " : " ") + sql);
    auto plan = analyzer.Analyze(sql);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(optimizer.Optimize(&plan.value()).ok());
    auto reference = RunWithBackend(*plan, nnrt::BackendKind::kReference);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    auto simd = RunWithBackend(*plan, nnrt::BackendKind::kSimd);
    ASSERT_TRUE(simd.ok()) << simd.status().ToString();
    ASSERT_NO_FATAL_FAILURE(ExpectTablesMatch(*reference, *simd, ordered));
    ++executed;
  }
  EXPECT_EQ(executed, kNumQueries);
}

TEST_F(QueryFuzzTest, DifferentialDistributed200Queries) {
  // Same generator, same seed, so the same 200 queries as the in-process
  // differential leg — now compared against distributed execution. One
  // executor per pool size keeps each pool warm across all 200 queries,
  // which is exactly the production shape (and what makes this leg fast
  // enough to run in tier 1).
  const std::uint64_t seed = FuzzSeed();
  Rng rng(seed);
  frontend::StaticAnalyzer analyzer(&catalog_);
  optimizer::CrossOptimizer optimizer(&catalog_,
                                      optimizer::OptimizerOptions());
  PlanExecutor dist2(&catalog_, &cache_);
  PlanExecutor dist4(&catalog_, &cache_);
  const std::vector<std::pair<std::int64_t, PlanExecutor*>> pools = {
      {2, &dist2}, {4, &dist4}};
  int executed = 0;
  for (int q = 0; q < kNumQueries; ++q) {
    bool ordered = false;
    const std::string sql = GenerateQuery(rng, &ordered);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" +
                 std::to_string(q) + (ordered ? " [ordered] " : " ") + sql);
    auto plan = analyzer.Analyze(sql);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(optimizer.Optimize(&plan.value()).ok());
    auto sequential = Run(*plan, 1);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    auto parallel8 = Run(*plan, 8);
    ASSERT_TRUE(parallel8.ok()) << parallel8.status().ToString();
    for (const auto& [workers, executor] : pools) {
      SCOPED_TRACE("distributed workers=" + std::to_string(workers));
      ExecutionStats stats;
      auto distributed = RunDistributed(executor, *plan, workers, &stats);
      ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();
      // A silently missing pool would make this leg vacuous: every plan
      // the generator emits contains at least one distributable fragment
      // (its leaf scans), so frames must actually have shipped.
      ASSERT_NE(executor->worker_pool(), nullptr)
          << "worker pool failed to start";
      ASSERT_GT(stats.frames_sent, 0) << "nothing was distributed";
      ASSERT_EQ(stats.worker_restarts, 0);
      ASSERT_NO_FATAL_FAILURE(
          ExpectTablesMatch(*sequential, *distributed, ordered));
      ASSERT_NO_FATAL_FAILURE(
          ExpectTablesMatch(*parallel8, *distributed, ordered));
    }
    ++executed;
  }
  EXPECT_EQ(executed, kNumQueries);
}

TEST_F(QueryFuzzTest, DiskTableDifferential200Queries) {
  // The same 200 seeded queries, this time with every table served from
  // `.rvc` files: a twin catalog holds DiskTables under the fixture names,
  // and each query's on-disk result — at dop 1 AND dop 8 (block-aligned
  // morsel queues) — must be byte-identical to the in-memory dop-1 run.
  relational::Catalog disk_catalog;
  std::vector<std::string> cleanup;
  ASSERT_NO_FATAL_FAILURE(BuildDiskCatalog(&disk_catalog, &cleanup));
  const std::uint64_t seed = FuzzSeed();
  Rng rng(seed);
  frontend::StaticAnalyzer analyzer(&catalog_);
  optimizer::CrossOptimizer optimizer(&catalog_,
                                      optimizer::OptimizerOptions());
  frontend::StaticAnalyzer disk_analyzer(&disk_catalog);
  optimizer::CrossOptimizer disk_optimizer(&disk_catalog,
                                           optimizer::OptimizerOptions());
  std::int64_t blocks_scanned_total = 0;
  std::int64_t blocks_skipped_total = 0;
  int executed = 0;
  for (int q = 0; q < kNumQueries; ++q) {
    bool ordered = false;
    const std::string sql = GenerateQuery(rng, &ordered);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" +
                 std::to_string(q) + (ordered ? " [ordered] " : " ") + sql);
    auto plan = analyzer.Analyze(sql);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(optimizer.Optimize(&plan.value()).ok());
    auto sequential = Run(*plan, 1);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    auto disk_plan = disk_analyzer.Analyze(sql);
    ASSERT_TRUE(disk_plan.ok()) << disk_plan.status().ToString();
    ASSERT_TRUE(disk_optimizer.Optimize(&disk_plan.value()).ok());
    for (std::int64_t dop : {1, 8}) {
      SCOPED_TRACE("disk parallelism=" + std::to_string(dop));
      ExecutionStats stats;
      auto disk_result = RunOn(&disk_catalog, *disk_plan, dop, &stats);
      ASSERT_TRUE(disk_result.ok()) << disk_result.status().ToString();
      ASSERT_NO_FATAL_FAILURE(
          ExpectTablesMatch(*sequential, *disk_result, ordered));
      blocks_scanned_total += stats.blocks_scanned;
      blocks_skipped_total += stats.blocks_skipped;
    }
    ++executed;
  }
  EXPECT_EQ(executed, kNumQueries);
  // Both counters must move across the corpus, or this leg silently fell
  // back to something other than zone-mapped disk scans.
  EXPECT_GT(blocks_scanned_total, 0);
  EXPECT_GT(blocks_skipped_total, 0);
  for (const auto& path : cleanup) std::remove(path.c_str());
}

TEST_F(QueryFuzzTest, DiskSelectiveScanSkipsBlocksAndExplains) {
  // End-to-end through the RavenContext facade: a selective predicate over
  // the sequential id column must actually skip blocks (non-vacuous zone
  // maps), EXPLAIN must surface the storage section, and SET
  // zone_map_skipping-style disabling via execution options must not
  // change the answer.
  RavenContext ctx;
  std::vector<std::string> cleanup;
  {
    storage::RvcWriteOptions opts;
    opts.block_rows = 512;
    auto patients = catalog_.GetTable("patients");
    ASSERT_TRUE(patients.ok());
    const std::string path = "/tmp/raven_fuzz_" +
                             std::to_string(::getpid()) + "_ctx.rvc";
    ASSERT_TRUE(storage::WriteRvc(**patients, path, opts).ok());
    cleanup.push_back(path);
    auto disk = storage::DiskTable::Open(path);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    ASSERT_TRUE(ctx.RegisterDiskTable("patients", disk.value()).ok());
  }
  test_util::InsertHospitalTreeModel(&ctx.catalog(), hospital_, 5);

  const std::string sql = "SELECT id, age FROM patients WHERE id < 5";
  auto explain = ctx.Explain(sql);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("=== Storage ==="), std::string::npos) << *explain;
  EXPECT_NE(explain->find("DiskScan(patients)"), std::string::npos);
  EXPECT_NE(explain->find("zone-map conjuncts"), std::string::npos);

  // Ground truth from the in-memory fixture catalog.
  frontend::StaticAnalyzer analyzer(&catalog_);
  optimizer::CrossOptimizer optimizer(&catalog_,
                                      optimizer::OptimizerOptions());
  auto plan = analyzer.Analyze(sql);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(optimizer.Optimize(&plan.value()).ok());
  auto expected = Run(*plan, 1);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(expected->num_rows(), 5);

  auto result = ctx.Query(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 3000 rows in 6 blocks of 512; only block 0 can hold id < 5.
  EXPECT_GT(result->execution.blocks_skipped, 0);
  EXPECT_GT(result->execution.blocks_scanned, 0);
  ASSERT_NO_FATAL_FAILURE(
      ExpectTablesMatch(*expected, result->table, /*ordered=*/false));

  // Skipping off: same rows, nothing skipped (the filter still runs).
  ctx.execution_options().zone_map_skipping = false;
  auto unskipped = ctx.Query(sql);
  ASSERT_TRUE(unskipped.ok()) << unskipped.status().ToString();
  EXPECT_EQ(unskipped->execution.blocks_skipped, 0);
  ASSERT_NO_FATAL_FAILURE(
      ExpectTablesMatch(*expected, unskipped->table, /*ordered=*/false));
  for (const auto& path : cleanup) std::remove(path.c_str());
}

TEST_F(QueryFuzzTest, CorruptedDiskTableFailsCleanlyNeverWrongAnswer) {
  // Bit-flip inside the data region of a valid `.rvc`: Open still succeeds
  // (the meta checksum is intact), but any query touching the poisoned
  // block must fail its payload checksum — a clean error, never rows.
  const std::string path = "/tmp/raven_fuzz_" + std::to_string(::getpid()) +
                           "_corrupt.rvc";
  {
    storage::RvcWriteOptions opts;
    opts.block_rows = 512;
    auto patients = catalog_.GetTable("patients");
    ASSERT_TRUE(patients.ok());
    ASSERT_TRUE(storage::WriteRvc(**patients, path, opts).ok());
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() - 9] = static_cast<char>(bytes[bytes.size() - 9] ^ 0x55);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  relational::Catalog disk_catalog;
  auto disk = storage::DiskTable::Open(path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_TRUE(disk_catalog.RegisterDiskTable("patients", disk.value()).ok());

  frontend::StaticAnalyzer analyzer(&disk_catalog);
  optimizer::CrossOptimizer optimizer(&disk_catalog,
                                      optimizer::OptimizerOptions());
  // No WHERE clause: nothing can be zone-map skipped, so the poisoned
  // block is guaranteed to be read.
  auto plan = analyzer.Analyze("SELECT SUM(id) AS s FROM patients");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(optimizer.Optimize(&plan.value()).ok());
  for (std::int64_t dop : {1, 8}) {
    ExecutionStats stats;
    auto result = RunOn(&disk_catalog, *plan, dop, &stats);
    ASSERT_FALSE(result.ok()) << "dop " << dop;
    EXPECT_NE(result.status().ToString().find("checksum"), std::string::npos)
        << result.status().ToString();
  }
  std::remove(path.c_str());
}

TEST_F(QueryFuzzTest, ServerDifferential200QueriesBy4ConcurrentClients) {
  // The same 200 seeded queries, this time served over a real socket: one
  // QueryServer (sessions default to dop 4) takes 4 concurrent clients,
  // which split the queries round-robin and run TWO passes — the second
  // pass must be all plan-cache hits. Every result is compared against the
  // in-process dop-1 ground truth computed up front.
  const std::uint64_t seed = FuzzSeed();
  Rng rng(seed);
  frontend::StaticAnalyzer analyzer(&catalog_);
  optimizer::CrossOptimizer optimizer(&catalog_,
                                      optimizer::OptimizerOptions());
  struct Case {
    std::string sql;
    bool ordered = false;
    relational::Table expected;
  };
  std::vector<Case> cases(kNumQueries);
  for (int q = 0; q < kNumQueries; ++q) {
    Case& c = cases[static_cast<std::size_t>(q)];
    c.sql = GenerateQuery(rng, &c.ordered);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" +
                 std::to_string(q) + " " + c.sql);
    auto plan = analyzer.Analyze(c.sql);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(optimizer.Optimize(&plan.value()).ok());
    auto sequential = Run(*plan, 1);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    c.expected = std::move(sequential).value();
  }

  // A second context backs the server, loaded with the same deterministic
  // datasets and models as the fixture catalog.
  RavenContext server_ctx;
  ASSERT_NO_FATAL_FAILURE(
      test_util::RegisterHospitalTables(&server_ctx.catalog(), hospital_));
  test_util::InsertHospitalTreeModel(&server_ctx.catalog(), hospital_, 5);
  ASSERT_NO_FATAL_FAILURE(
      test_util::RegisterFlightTable(&server_ctx.catalog(), flight_));
  {
    auto logreg = data::TrainFlightLogreg(flight_, 0.01);
    ASSERT_TRUE(logreg.ok());
    ASSERT_TRUE(server_ctx.catalog()
                    .InsertModel("delay", data::FlightLogregScript(),
                                 logreg->ToBytes())
                    .ok());
  }
  ASSERT_FALSE(HasFailure());

  server::QueryServerOptions options;
  options.unix_socket_path = "/tmp/raven_fuzz_server_" +
                             std::to_string(::getpid()) + ".sock";
  options.plan_cache_capacity = 512;  // all 200 shapes stay resident
  options.admission.max_concurrent = 4;
  options.default_execution.parallelism = 4;
  // Cross-query micro-batching ON: the fuzzed shapes' PREDICT rows may
  // coalesce across the 4 clients, and every differential comparison below
  // still demands the in-process (unbatched, dop=1) result bit-for-bit.
  options.default_execution.predict_batch_window_micros = 1000;
  options.default_execution.predict_max_batch_rows = 256;
  options.default_execution.morsel_rows = 128;
  server::QueryServer server(&server_ctx, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  std::atomic<std::int64_t> second_pass_hits{0};
  std::atomic<int> pass_barrier{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int tid = 0; tid < kClients; ++tid) {
    clients.emplace_back([&, tid] {
      // Arrival is owed even when an ASSERT bails out of this lambda
      // early — otherwise the surviving threads would spin at the barrier
      // until the ctest timeout instead of reporting the real failure.
      struct BarrierArrival {
        std::atomic<int>* barrier;
        bool arrived = false;
        void Arrive() {
          if (!arrived) {
            arrived = true;
            barrier->fetch_add(1);
          }
        }
        ~BarrierArrival() { Arrive(); }
      } arrival{&pass_barrier};
      server::ServerClient client;
      Status connected = client.ConnectUnix(server.unix_socket_path());
      ASSERT_TRUE(connected.ok()) << connected.ToString();
      for (int pass = 0; pass < 2; ++pass) {
        if (pass == 1) {
          // Barrier: pass 2 reads entries OTHER clients planted in pass 1,
          // so nobody starts it until every client finished planting.
          arrival.Arrive();
          while (pass_barrier.load() < kClients) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        // Rotate the assignment between passes so the cache-hit pass reads
        // entries another client planted.
        for (int q = (tid + pass) % kClients; q < kNumQueries;
             q += kClients) {
          const Case& c = cases[static_cast<std::size_t>(q)];
          SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" +
                       std::to_string(q) + " pass=" + std::to_string(pass) +
                       (c.ordered ? " [ordered] " : " ") + c.sql);
          auto response = client.Query(c.sql);
          ASSERT_TRUE(response.ok()) << response.status().ToString();
          ASSERT_EQ(response->kind, server::ServerResponseKind::kTable)
              << response->message;
          if (pass == 1) {
            second_pass_hits.fetch_add(response->plan_cache_hit ? 1 : 0);
          }
          ASSERT_NO_FATAL_FAILURE(
              ExpectTablesMatch(c.expected, response->table, c.ordered));
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  // Pass 2 re-issued all 200 queries against a warm cache.
  EXPECT_EQ(second_pass_hits.load(), kNumQueries);
  const server::PlanCacheStats stats = server.plan_cache().stats();
  EXPECT_GE(stats.hits, kNumQueries);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.invalidations, 0);
  server.Stop();
}

TEST_F(QueryFuzzTest, TraceOnOffDifferential200Queries) {
  // Observation must never change results: the same 200 seeded queries run
  // untraced (dop 1 ground truth) and with a live obs::Trace arena at dop
  // {1, 8} and under distributed execution — every traced result must be
  // byte-identical, and every trace must actually have recorded the run
  // (an empty arena would make this leg vacuous).
  const std::uint64_t seed = FuzzSeed();
  Rng rng(seed);
  frontend::StaticAnalyzer analyzer(&catalog_);
  optimizer::CrossOptimizer optimizer(&catalog_,
                                      optimizer::OptimizerOptions());
  PlanExecutor dist(&catalog_, &cache_);  // warm pool across all queries
  int executed = 0;
  for (int q = 0; q < kNumQueries; ++q) {
    bool ordered = false;
    const std::string sql = GenerateQuery(rng, &ordered);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" +
                 std::to_string(q) + (ordered ? " [ordered] " : " ") + sql);
    auto plan = analyzer.Analyze(sql);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(optimizer.Optimize(&plan.value()).ok());
    auto untraced = Run(*plan, 1);
    ASSERT_TRUE(untraced.ok()) << untraced.status().ToString();
    for (std::int64_t dop : {1, 8}) {
      SCOPED_TRACE("traced parallelism=" + std::to_string(dop));
      obs::Trace trace;
      PlanExecutor executor(&catalog_, &cache_);
      ExecutionOptions options;
      options.parallelism = dop;
      options.morsel_rows = 256;
      options.trace = &trace;
      auto traced = executor.Execute(plan.value(), options);
      ASSERT_TRUE(traced.ok()) << traced.status().ToString();
      ASSERT_NO_FATAL_FAILURE(
          ExpectTablesMatch(*untraced, *traced, ordered));
      ASSERT_FALSE(trace.empty()) << "trace recorded nothing";
    }
    {
      SCOPED_TRACE("traced distributed workers=2");
      obs::Trace trace;
      ExecutionOptions options;
      options.mode = ExecutionMode::kDistributed;
      options.distributed_workers = 2;
      options.distributed_frame_timeout_millis = 60000;
      options.trace = &trace;
      auto traced = dist.Execute(plan.value(), options);
      ASSERT_TRUE(traced.ok()) << traced.status().ToString();
      ASSERT_NO_FATAL_FAILURE(
          ExpectTablesMatch(*untraced, *traced, ordered));
      bool saw_exchange = false;
      for (const auto& span : trace.Snapshot()) {
        if (span.name == "exchange") saw_exchange = true;
      }
      ASSERT_TRUE(saw_exchange) << "no exchange span in distributed trace";
    }
    ++executed;
  }
  EXPECT_EQ(executed, kNumQueries);
}

TEST_F(QueryFuzzTest, ExplainAnalyzeDifferential200Queries) {
  // EXPLAIN ANALYZE really executes the statement, and its result table —
  // not just its report — must be byte-identical to the plain run at every
  // execution mode: dop 1, dop 8, distributed over a warm pool, and with
  // every table served from on-disk `.rvc` storage.
  RavenContext ctx;
  ASSERT_NO_FATAL_FAILURE(
      test_util::RegisterHospitalTables(&ctx.catalog(), hospital_));
  test_util::InsertHospitalTreeModel(&ctx.catalog(), hospital_, 5);
  ASSERT_NO_FATAL_FAILURE(
      test_util::RegisterFlightTable(&ctx.catalog(), flight_));
  {
    auto logreg = data::TrainFlightLogreg(flight_, 0.01);
    ASSERT_TRUE(logreg.ok());
    ASSERT_TRUE(ctx.catalog()
                    .InsertModel("delay", data::FlightLogregScript(),
                                 logreg->ToBytes())
                    .ok());
  }
  RavenContext disk_ctx;
  std::vector<std::string> cleanup;
  ASSERT_NO_FATAL_FAILURE(BuildDiskCatalog(&disk_ctx.catalog(), &cleanup));

  ExecutionOptions exec1;
  exec1.parallelism = 1;
  exec1.morsel_rows = 256;
  ExecutionOptions exec8 = exec1;
  exec8.parallelism = 8;
  ExecutionOptions execd;
  execd.mode = ExecutionMode::kDistributed;
  execd.distributed_workers = 2;
  execd.distributed_frame_timeout_millis = 60000;

  const std::uint64_t seed = FuzzSeed();
  Rng rng(seed);
  frontend::StaticAnalyzer analyzer(&catalog_);
  optimizer::CrossOptimizer optimizer(&catalog_,
                                      optimizer::OptimizerOptions());
  int executed = 0;
  for (int q = 0; q < kNumQueries; ++q) {
    bool ordered = false;
    const std::string sql = GenerateQuery(rng, &ordered);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" +
                 std::to_string(q) + (ordered ? " [ordered] " : " ") + sql);
    auto plan = analyzer.Analyze(sql);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(optimizer.Optimize(&plan.value()).ok());
    auto expected = Run(*plan, 1);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    auto ctx_plan = ctx.Prepare(sql);
    ASSERT_TRUE(ctx_plan.ok()) << ctx_plan.status().ToString();
    for (const auto& [label, exec] :
         std::vector<std::pair<const char*, const ExecutionOptions*>>{
             {"dop=1", &exec1}, {"dop=8", &exec8}, {"distributed", &execd}}) {
      SCOPED_TRACE(label);
      auto analyzed = ctx.ExplainAnalyzePlan(*ctx_plan, *exec);
      ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
      ASSERT_NE(analyzed->text.find("=== EXPLAIN ANALYZE ==="),
                std::string::npos);
      ASSERT_NO_FATAL_FAILURE(
          ExpectTablesMatch(*expected, analyzed->table, ordered));
    }
    {
      SCOPED_TRACE("disk dop=8");
      auto disk_plan = disk_ctx.Prepare(sql);
      ASSERT_TRUE(disk_plan.ok()) << disk_plan.status().ToString();
      auto analyzed = disk_ctx.ExplainAnalyzePlan(*disk_plan, exec8);
      ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
      ASSERT_NO_FATAL_FAILURE(
          ExpectTablesMatch(*expected, analyzed->table, ordered));
    }
    ++executed;
  }
  EXPECT_EQ(executed, kNumQueries);
  for (const auto& path : cleanup) std::remove(path.c_str());
}

TEST_F(QueryFuzzTest, TruncatedQueriesFailWithDiagnosableErrors) {
  // Chopping a valid query at a random byte either still parses (a valid
  // prefix) or fails; parse failures must carry a byte offset so fuzz
  // findings are diagnosable.
  const std::uint64_t seed = FuzzSeed() ^ 0x5EEDULL;
  Rng rng(seed);
  frontend::StaticAnalyzer analyzer(&catalog_);
  for (int q = 0; q < 50; ++q) {
    bool ordered = false;
    const std::string sql = GenerateQuery(rng, &ordered);
    const std::size_t cut =
        static_cast<std::size_t>(rng.UniformInt(1,
                                                static_cast<std::int64_t>(
                                                    sql.size() - 1)));
    const std::string truncated = sql.substr(0, cut);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" +
                 std::to_string(q) + " cut=" + std::to_string(cut) + " " +
                 truncated);
    auto plan = analyzer.Analyze(truncated);
    if (plan.ok()) continue;
    if (plan.status().code() == StatusCode::kParseError) {
      EXPECT_NE(plan.status().message().find("byte offset"),
                std::string::npos)
          << plan.status().ToString();
    }
  }
}

// A WHERE clause no row satisfies (the logreg score p is in [0, 1]) leaves
// the GROUP BY with zero groups, so the HAVING filter above it opens over
// an empty intermediate. Open-time kernel compilation still needs that
// intermediate to carry the grouped schema — the old per-chunk interpreter
// never resolved columns it never saw, which masked the empty-schema bug
// this test pins down. All execution modes must succeed and agree.
TEST_F(QueryFuzzTest, HavingOverFullyFilteredGroupByResolvesAtOpen) {
  frontend::StaticAnalyzer analyzer(&catalog_);
  optimizer::CrossOptimizer optimizer(&catalog_,
                                      optimizer::OptimizerOptions());
  const std::string sql =
      "SELECT delayed, day_of_week FROM PREDICT(MODEL='delay', "
      "DATA=flights) WITH(p float) WHERE p > 7.5184 AND p <> 5.9465 "
      "GROUP BY delayed, day_of_week HAVING COUNT(*) > 6";
  auto plan = analyzer.Analyze(sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(optimizer.Optimize(&plan.value()).ok());
  auto seq = Run(*plan, 1);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(seq->num_rows(), 0);
  for (std::int64_t dop : {2, 8}) {
    auto par = Run(*plan, dop);
    ASSERT_TRUE(par.ok()) << "dop " << dop << ": "
                          << par.status().ToString();
    ASSERT_NO_FATAL_FAILURE(
        ExpectTablesMatch(*seq, *par, /*ordered=*/false))
        << "dop " << dop;
  }
  PlanExecutor executor(&catalog_, &cache_);
  ExecutionStats stats;
  auto dist = RunDistributed(&executor, *plan, 2, &stats);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  ASSERT_NO_FATAL_FAILURE(
      ExpectTablesMatch(*seq, *dist, /*ordered=*/false));
}

}  // namespace
}  // namespace raven::runtime
