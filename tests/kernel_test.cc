#include "relational/kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "relational/chunk.h"
#include "relational/expression.h"

namespace raven::relational {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectBitEqual(const std::vector<double>& expected,
                    const std::vector<double>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_PRED2(BitEqual, expected[i], actual[i]) << "row " << i;
  }
}

/// A chunk whose values exercise every IEEE corner the kernels can hit:
/// signed zeros, infinities, NaN, denormal-adjacent magnitudes, exact ties.
DataChunk AdversarialChunk() {
  DataChunk chunk;
  chunk.names = {"a", "b", "c"};
  chunk.cols = {
      {1.0, -1.0, 0.0, -0.0, kInf, -kInf, kNan, 1e308, 1e-308, 2.5, 7.0,
       -3.25},
      {2.0, -1.0, 0.5, 0.0, 1.0, kInf, 2.0, -1e308, 1e-308, 2.5, 0.0, 3.0},
      {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0},
  };
  return chunk;
}

/// Compiles `expr` and checks Run against the tree-walking interpreter,
/// bit-for-bit, on the adversarial chunk.
void ExpectParity(const Expr& expr) {
  DataChunk chunk = AdversarialChunk();
  std::vector<double> interpreted;
  ASSERT_TRUE(expr.Evaluate(chunk, &interpreted).ok()) << expr.ToString();
  auto program = KernelProgram::Compile(expr, chunk.names, "test");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  std::vector<double> compiled;
  ASSERT_TRUE(program->RunInto(chunk, &compiled).ok());
  ExpectBitEqual(interpreted, compiled);
}

TEST(KernelProgramTest, CompareParity) {
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    ExpectParity(*Cmp(op, Col("a"), Col("b")));
    ExpectParity(*Cmp(op, Col("a"), Lit(0.5)));
    ExpectParity(*Cmp(op, Lit(0.5), Col("b")));
  }
}

TEST(KernelProgramTest, ArithParity) {
  for (ArithOp op :
       {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul, ArithOp::kDiv}) {
    ExpectParity(*std::make_unique<ArithExpr>(op, Col("a"), Col("b")));
    ExpectParity(*std::make_unique<ArithExpr>(op, Col("a"), Lit(2.0)));
    ExpectParity(*std::make_unique<ArithExpr>(op, Lit(2.0), Col("b")));
  }
}

TEST(KernelProgramTest, DivisionByZeroMatchesIeee) {
  // x / 0 must flow through as +/-inf (or NaN for 0/0), identically in
  // both engines — this feeds the NaN-aware ORDER BY / GROUP BY paths.
  DataChunk chunk;
  chunk.names = {"x"};
  chunk.cols = {{1.0, -1.0, 0.0, -0.0, kNan}};
  auto expr = std::make_unique<ArithExpr>(ArithOp::kDiv, Col("x"), Lit(0.0));
  auto program = KernelProgram::Compile(*expr, chunk.names, "test");
  ASSERT_TRUE(program.ok());
  std::vector<double> out;
  ASSERT_TRUE(program->RunInto(chunk, &out).ok());
  EXPECT_EQ(out[0], kInf);
  EXPECT_EQ(out[1], -kInf);
  EXPECT_TRUE(std::isnan(out[2]));  // 0/0
  EXPECT_TRUE(std::isnan(out[3]));
  EXPECT_TRUE(std::isnan(out[4]));
}

TEST(KernelProgramTest, LogicalCaseInParity) {
  ExpectParity(*And(Gt(Col("a"), Lit(0.0)), Lt(Col("b"), Col("c"))));
  ExpectParity(*Or(Eq(Col("a"), Col("b")), Not(Gt(Col("c"), Lit(5.0)))));
  ExpectParity(*Not(Not(Gt(Col("a"), Col("b")))));

  std::vector<CaseWhenExpr::Arm> arms;
  arms.push_back({Gt(Col("a"), Lit(0.0)), Lit(1.0)});
  arms.push_back({Gt(Col("b"), Lit(0.0)),
                  std::make_unique<ArithExpr>(ArithOp::kMul, Col("c"),
                                              Lit(10.0))});
  ExpectParity(*std::make_unique<CaseWhenExpr>(std::move(arms), Lit(-1.0)));

  ExpectParity(*std::make_unique<InExpr>(
      Col("c"), std::vector<double>{0.0, 5.0, 11.0}));
  ExpectParity(*std::make_unique<InExpr>(Col("a"), std::vector<double>{}));
}

TEST(KernelProgramTest, CaseFirstMatchWins) {
  // Overlapping arms: row values satisfying both must take the first.
  DataChunk chunk;
  chunk.names = {"x"};
  chunk.cols = {{5.0, 15.0, 25.0}};
  std::vector<CaseWhenExpr::Arm> arms;
  arms.push_back({Gt(Col("x"), Lit(10.0)), Lit(100.0)});
  arms.push_back({Gt(Col("x"), Lit(20.0)), Lit(200.0)});
  CaseWhenExpr expr(std::move(arms), Lit(0.0));
  auto program = KernelProgram::Compile(expr, chunk.names, "test");
  ASSERT_TRUE(program.ok());
  std::vector<double> out;
  ASSERT_TRUE(program->RunInto(chunk, &out).ok());
  EXPECT_EQ(out, (std::vector<double>{0.0, 100.0, 100.0}));
}

TEST(KernelProgramTest, RandomizedParityAgainstInterpreter) {
  // Depth-bounded random expression trees over the adversarial chunk; every
  // tree must evaluate bit-identically in both engines.
  std::mt19937_64 rng(20260807);
  std::uniform_real_distribution<double> lit(-10.0, 10.0);
  const std::vector<std::string> cols = {"a", "b", "c"};
  std::function<ExprPtr(int)> gen = [&](int depth) -> ExprPtr {
    if (depth <= 0 || rng() % 4 == 0) {
      if (rng() % 2 == 0) return Col(cols[rng() % cols.size()]);
      return Lit(lit(rng));
    }
    switch (rng() % 6) {
      case 0:
        return Cmp(static_cast<CompareOp>(rng() % 6), gen(depth - 1),
                   gen(depth - 1));
      case 1:
        return std::make_unique<ArithExpr>(static_cast<ArithOp>(rng() % 4),
                                           gen(depth - 1), gen(depth - 1));
      case 2:
        return And(gen(depth - 1), gen(depth - 1));
      case 3:
        return Or(gen(depth - 1), gen(depth - 1));
      case 4:
        return Not(gen(depth - 1));
      default: {
        std::vector<CaseWhenExpr::Arm> arms;
        const std::size_t n = 1 + rng() % 3;
        for (std::size_t i = 0; i < n; ++i) {
          arms.push_back({gen(depth - 1), gen(depth - 1)});
        }
        return std::make_unique<CaseWhenExpr>(std::move(arms),
                                              gen(depth - 1));
      }
    }
  };
  for (int i = 0; i < 200; ++i) {
    ExprPtr expr = gen(4);
    ASSERT_NO_FATAL_FAILURE(ExpectParity(*expr)) << expr->ToString();
  }
}

TEST(KernelProgramTest, ConstantSubtreesFoldToImmediates) {
  // An all-literal tree compiles to zero instructions and splats.
  auto expr = std::make_unique<ArithExpr>(
      ArithOp::kAdd, Lit(2.0),
      std::make_unique<ArithExpr>(ArithOp::kMul, Lit(3.0), Lit(4.0)));
  auto program = KernelProgram::Compile(*expr, {"x"}, "test");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->num_instructions(), 0u);
  DataChunk chunk;
  chunk.names = {"x"};
  chunk.cols = {{1.0, 2.0, 3.0}};
  std::vector<double> out;
  ASSERT_TRUE(program->RunInto(chunk, &out).ok());
  EXPECT_EQ(out, (std::vector<double>{14.0, 14.0, 14.0}));

  // A constant subtree inside a live tree folds too: one compare, not two.
  auto mixed = Gt(Col("x"), std::make_unique<ArithExpr>(ArithOp::kAdd,
                                                        Lit(1.0), Lit(1.0)));
  auto mixed_program = KernelProgram::Compile(*mixed, {"x"}, "test");
  ASSERT_TRUE(mixed_program.ok());
  EXPECT_EQ(mixed_program->num_instructions(), 1u);
}

TEST(KernelProgramTest, UnknownColumnFailsAtCompileTime) {
  auto expr = Gt(Col("nope"), Lit(1.0));
  auto program = KernelProgram::Compile(*expr, {"a", "b"}, "Filter predicate");
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kNotFound);
  EXPECT_NE(program.status().ToString().find("'nope'"), std::string::npos);
  EXPECT_NE(program.status().ToString().find("Filter predicate"),
            std::string::npos);
}

TEST(KernelProgramTest, AmbiguousColumnFailsAtCompileTime) {
  auto expr = Gt(Col("dup"), Lit(1.0));
  auto program =
      KernelProgram::Compile(*expr, {"dup", "x", "dup"}, "Filter predicate");
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(program.status().ToString().find("ambiguous"), std::string::npos);
  EXPECT_NE(program.status().ToString().find("'dup'"), std::string::npos);
}

TEST(KernelProgramTest, UnboundParamFailsAtCompileTime) {
  auto expr = Gt(Col("a"), std::make_unique<ParamExpr>(0));
  auto program = KernelProgram::Compile(*expr, {"a"}, "Filter predicate");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().ToString().find("?1"), std::string::npos);
}

TEST(ResolveOrdinalTest, ErrorsNameColumnAndOperator) {
  auto ok = KernelProgram::ResolveOrdinal({"x", "y"}, "y", "HashJoin probe");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 1);
  auto missing =
      KernelProgram::ResolveOrdinal({"x", "y"}, "z", "HashJoin probe key");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().ToString().find("'z'"), std::string::npos);
  EXPECT_NE(missing.status().ToString().find("HashJoin probe key"),
            std::string::npos);
  auto dup = KernelProgram::ResolveOrdinal({"k", "k"}, "k", "GROUP BY key");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup.status().ToString().find("2 matches"), std::string::npos);
}

TEST(GatherSelectedTest, PlainCopyAndGather) {
  std::vector<double> out;
  GatherSelected({1, 2, 3}, {}, &out);
  EXPECT_EQ(out, (std::vector<double>{1, 2, 3}));
  GatherSelected({1, 2, 3, 4}, {0, 2}, &out);
  EXPECT_EQ(out, (std::vector<double>{1, 3}));
  GatherSelected({1, 2}, std::vector<std::int32_t>{}, &out);
  EXPECT_EQ(out, (std::vector<double>{1, 2}));
}

// ---------------------------------------------------------------------------
// ExactFloatSum
// ---------------------------------------------------------------------------

double SumOf(const std::vector<double>& values) {
  ExactFloatSum sum;
  for (double v : values) sum.Add(v);
  return sum.Round();
}

TEST(ExactFloatSumTest, CancellingMagnitudesAreExact) {
  // Naive and Kahan summation both lose the 1.0 here in some orders; the
  // expansion keeps it regardless of order.
  EXPECT_EQ(SumOf({1e16, 1.0, -1e16}), 1.0);
  EXPECT_EQ(SumOf({1.0, 1e16, -1e16}), 1.0);
  EXPECT_EQ(SumOf({-1e16, 1e16, 1.0}), 1.0);
  EXPECT_EQ(SumOf({1e100, 1.0, -1e100, 1e50, -1e50}), 1.0);
}

TEST(ExactFloatSumTest, OrderIndependentBitIdentical) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> mag(-1e15, 1e15);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    double v = mag(rng);
    // Mix in wildly different exponents.
    if (i % 7 == 0) v *= 1e-200;
    if (i % 11 == 0) v *= 1e200;
    values.push_back(v);
  }
  const double reference = SumOf(values);
  for (int shuffle = 0; shuffle < 10; ++shuffle) {
    std::shuffle(values.begin(), values.end(), rng);
    EXPECT_PRED2(BitEqual, reference, SumOf(values)) << "shuffle " << shuffle;
  }
}

TEST(ExactFloatSumTest, MergeOrderIrrelevant) {
  // Random splits into partials merged in random order reproduce the
  // straight-line sum bit-for-bit — the property the parallel aggregate
  // sinks and distributed fragments rely on.
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> mag(-1e10, 1e10);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(mag(rng));
  const double reference = SumOf(values);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t parts = 1 + rng() % 8;
    std::vector<ExactFloatSum> partials(parts);
    for (double v : values) partials[rng() % parts].Add(v);
    std::shuffle(partials.begin(), partials.end(),
                 rng);  // merge in arbitrary order
    ExactFloatSum total;
    for (const auto& p : partials) total.MergeFrom(p);
    EXPECT_PRED2(BitEqual, reference, total.Round()) << "trial " << trial;
  }
}

TEST(ExactFloatSumTest, CorrectlyRoundedHalfwayCases) {
  // 1.0 + 2^-53 rounds to 1.0 (ties-to-even on the halfway bit), but
  // adding another sliver must tip it to the next representable double.
  const double ulp_half = std::ldexp(1.0, -53);
  EXPECT_EQ(SumOf({1.0, ulp_half}), 1.0);
  EXPECT_EQ(SumOf({1.0, ulp_half, std::ldexp(1.0, -100)}),
            std::nextafter(1.0, 2.0));
  EXPECT_EQ(SumOf({1.0, ulp_half, -std::ldexp(1.0, -100)}), 1.0);
}

TEST(ExactFloatSumTest, NonFiniteInputs) {
  EXPECT_EQ(SumOf({}), 0.0);
  EXPECT_FALSE(std::signbit(SumOf({})));
  EXPECT_TRUE(std::signbit(SumOf({-0.0, -0.0})));
  EXPECT_EQ(SumOf({1.0, kInf}), kInf);
  EXPECT_EQ(SumOf({-kInf, -1.0}), -kInf);
  EXPECT_TRUE(std::isnan(SumOf({kInf, -kInf})));
  EXPECT_TRUE(std::isnan(SumOf({1.0, kNan, 2.0})));
  // Finite inputs whose exact sum overflows saturate deterministically.
  EXPECT_EQ(SumOf({1e308, 1e308}), kInf);
  EXPECT_EQ(SumOf({-1e308, -1e308, 5.0}), -kInf);
}

}  // namespace
}  // namespace raven::relational
