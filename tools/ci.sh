#!/usr/bin/env bash
# CI entry point: tier-1 verify (configure, build, full ctest) plus the
# sanitizer jobs.
#
#   tools/ci.sh            # tier-1: build + all tests (and build the benches)
#   tools/ci.sh asan       # tier-1 under -fsanitize=address,undefined
#   tools/ci.sh tsan       # runtime/integration suites under ThreadSanitizer
#                          # (the morsel-parallel executor's race gate)
#   tools/ci.sh docs       # docs-consistency gate alone (links, knob/stats
#                          # coverage in docs/OPERATIONS.md)
#   tools/ci.sh metrics_smoke  # live-server Prometheus scrape gate alone
#                          # (syntax, core series, monotonicity, slow log)
#   tools/ci.sh all        # every job back to back + a bench smoke run
#
# ccache is picked up automatically when installed (RAVEN_NO_CCACHE=1
# disables). Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MODE="${1:-tier1}"

CMAKE_EXTRA=()
if [[ -z "${RAVEN_NO_CCACHE:-}" ]] && command -v ccache >/dev/null 2>&1; then
  CMAKE_EXTRA+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

docs_check() {
  # Docs-consistency gate: broken intra-repo markdown links, and SET
  # knobs / SHOW STATS keys present in the code but missing from
  # docs/OPERATIONS.md (tools/check_docs.py parses both lists out of the
  # server sources, so the docs cannot silently lag the implementation).
  python3 tools/check_docs.py
}

run_suite() {
  local build_dir="$1"; shift
  # ${arr[@]+...} keeps empty arrays safe under set -u on bash < 4.4.
  cmake -B "${build_dir}" -S . \
    ${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"} \
    ${CONFIG_ARGS[@]+"${CONFIG_ARGS[@]}"}
  cmake --build "${build_dir}" -j "${JOBS}"
  # Benches are EXCLUDE_FROM_ALL; build (never run) them so the perf tooling
  # keeps compiling in every CI run. The target exists even without
  # Google Benchmark (no-op).
  cmake --build "${build_dir}" --target bench -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

artifact_smoke() {
  # End-to-end proof of the compiled-model artifact cache across real
  # process restarts: server #1 compiles and persists artifacts, server #2
  # on the same --artifact-dir must report ZERO graph optimizations while
  # serving identical PREDICT results, and server #3 — after every artifact
  # is corrupted in place — must fall back to a fresh compile without a
  # single serving error (and rewrite the artifacts).
  local build_dir="$1"
  local serve="${build_dir}/tools/raven_serve"
  local client="${build_dir}/tools/raven_client"
  local dir sock pid
  dir="$(mktemp -d /tmp/raven_ci_artifact_XXXXXX)"
  local sql="SELECT id, p FROM PREDICT(MODEL='delay', DATA=flights) WITH(p float) WHERE p > 0.5"

  start_server() {
    sock="${dir}/raven_$1.sock"
    "${serve}" --socket="${sock}" --rows=500 --artifact-dir="${dir}/cache" &
    pid=$!
    for _ in $(seq 1 100); do
      [[ -S "${sock}" ]] && break
      sleep 0.1
    done
    [[ -S "${sock}" ]] || { echo "artifact_smoke: server $1 never came up" >&2; exit 1; }
  }
  stop_server() {
    kill "${pid}" 2>/dev/null || true
    wait "${pid}" 2>/dev/null || true
  }
  stat_of() {  # stat_of <key>: value from SHOW STATS over the live socket
    "${client}" --socket="${sock}" --query "SHOW STATS" \
      | awk -v k="$1" '$1 == k { print $2 }'
  }

  start_server 1
  "${client}" --socket="${sock}" --query "${sql}" | grep -v " ms" > "${dir}/run1.out"
  local writes
  writes="$(stat_of nn_artifact_writes)"
  stop_server
  [[ "${writes}" -ge 1 ]] || { echo "artifact_smoke: server 1 wrote no artifacts" >&2; exit 1; }

  start_server 2
  "${client}" --socket="${sock}" --query "${sql}" | grep -v " ms" > "${dir}/run2.out"
  local opts hits
  opts="$(stat_of nn_graph_optimizations)"
  hits="$(stat_of nn_artifact_hits)"
  stop_server
  [[ "${opts}" -eq 0 ]] || { echo "artifact_smoke: warm cold-start ran ${opts} graph optimization(s), expected 0" >&2; exit 1; }
  [[ "${hits}" -ge 1 ]] || { echo "artifact_smoke: warm cold-start loaded no artifacts" >&2; exit 1; }
  cmp -s "${dir}/run1.out" "${dir}/run2.out" || { echo "artifact_smoke: warm results differ from cold" >&2; exit 1; }

  # Corrupt every artifact in place; serving must survive via recompile.
  local f
  for f in "${dir}/cache"/*; do
    echo garbage > "${f}"
  done
  start_server 3
  "${client}" --socket="${sock}" --query "${sql}" | grep -v " ms" > "${dir}/run3.out"
  local rejects
  rejects="$(stat_of nn_artifact_rejects)"
  stop_server
  [[ "${rejects}" -ge 1 ]] || { echo "artifact_smoke: corrupt artifacts were not rejected" >&2; exit 1; }
  cmp -s "${dir}/run1.out" "${dir}/run3.out" || { echo "artifact_smoke: corrupted-cache results differ" >&2; exit 1; }

  rm -rf "${dir}"
  echo "artifact_smoke: ok (writes=${writes} warm_hits=${hits} rejects=${rejects})"
}

metrics_smoke() {
  # End-to-end proof of the observability surface against a LIVE server:
  # scrape the plaintext-HTTP /metrics endpoint twice with real queries in
  # between, validate Prometheus text syntax (tools/check_metrics.py),
  # assert the core serving series are present, and assert every counter
  # and histogram count is monotone across the two scrapes. Also covers
  # the slow-query log (a SET slow_query_millis=0-threshold query must
  # land exactly one JSON span-tree line per statement).
  local build_dir="$1"
  local serve="${build_dir}/tools/raven_serve"
  local client="${build_dir}/tools/raven_client"
  local dir sock pid port
  dir="$(mktemp -d /tmp/raven_ci_metrics_XXXXXX)"
  sock="${dir}/raven.sock"

  "${serve}" --socket="${sock}" --rows=2000 --metrics-port=0 \
    --slow-query-log="${dir}/slow.jsonl" > "${dir}/serve.log" &
  pid=$!
  trap 'kill "${pid}" 2>/dev/null || true' RETURN
  for _ in $(seq 1 100); do
    [[ -S "${sock}" ]] && break
    sleep 0.1
  done
  [[ -S "${sock}" ]] || { echo "metrics_smoke: server never came up" >&2; exit 1; }
  port="$(sed -n 's#.*metrics on http://127.0.0.1:\([0-9]*\)/metrics#\1#p' "${dir}/serve.log")"
  [[ -n "${port}" ]] || { echo "metrics_smoke: no metrics port in serve log" >&2; exit 1; }

  "${client}" --socket="${sock}" \
    --query "SELECT airline, COUNT(*) AS n FROM flights GROUP BY airline" \
    > /dev/null
  python3 tools/check_metrics.py --fetch "http://127.0.0.1:${port}/metrics" "${dir}/scrape1.txt"
  # Real traffic between the scrapes: a repeat (plan-cache hit) and one
  # slow-logged statement — the many-to-many self-join runs ~10ms at 2000
  # rows, an order of magnitude over the 1ms threshold, so the log line is
  # deterministic.
  "${client}" --socket="${sock}" \
    --query "SELECT airline, COUNT(*) AS n FROM flights GROUP BY airline" \
    --query "SET slow_query_millis = 1" \
    --query "SELECT f.airline, COUNT(*) AS n FROM flights AS f JOIN flights AS g ON f.airline = g.airline GROUP BY f.airline" \
    > /dev/null
  python3 tools/check_metrics.py --fetch "http://127.0.0.1:${port}/metrics" "${dir}/scrape2.txt"

  python3 tools/check_metrics.py "${dir}/scrape1.txt" "${dir}/scrape2.txt" \
    --require raven_queries_served_total \
    --require raven_plan_cache_hits_total \
    --require raven_plan_cache_misses_total \
    --require raven_sessions_active \
    --require raven_queries_active \
    --require raven_query_latency_seconds \
    --require raven_queue_wait_seconds \
    --require raven_query_rows

  # The second scrape must show forward progress, not just syntax: at least
  # one statement was served between the scrapes.
  local served1 served2
  served1="$(awk '$1 == "raven_queries_served_total" { print int($2) }' "${dir}/scrape1.txt")"
  served2="$(awk '$1 == "raven_queries_served_total" { print int($2) }' "${dir}/scrape2.txt")"
  [[ "${served2}" -gt "${served1}" ]] || { echo "metrics_smoke: raven_queries_served_total did not advance (${served1} -> ${served2})" >&2; exit 1; }

  local slow_lines
  slow_lines="$(wc -l < "${dir}/slow.jsonl" 2>/dev/null || echo 0)"
  [[ "${slow_lines}" -ge 1 ]] || { echo "metrics_smoke: slow-query log is empty" >&2; exit 1; }
  grep -q '"spans":\[' "${dir}/slow.jsonl" || { echo "metrics_smoke: slow-query log lines carry no span tree" >&2; exit 1; }

  kill "${pid}" 2>/dev/null || true
  wait "${pid}" 2>/dev/null || true
  rm -rf "${dir}"
  echo "metrics_smoke: ok (served ${served1} -> ${served2}, ${slow_lines} slow-log line(s))"
}

tier1() {
  # The full ctest in run_suite includes the `fuzz`-labeled randomized
  # differential harness (tests/query_fuzz_test.cc — in-process dop {1,8},
  # distributed {2,4}-worker, AND 4-concurrent-client query-server legs),
  # the `distributed`-labeled worker-pool / protocol-fault-injection suite
  # (tests/worker_pool_test.cc: SIGKILLed workers, truncated/oversized
  # frames, dead worker binaries), and the `server`-labeled concurrent
  # query-server suite (tests/server_test.cc: protocol + plan cache +
  # admission units, hostile clients, and the 8-client mixed-traffic soak).
  # The `storage`-labeled suite (tests/storage_test.cc) covers the on-disk
  # .rvc columnar format: round trips, corruption rejection, zone-map
  # skipping; the fuzz harness adds its on-disk differential legs on top.
  # Re-run any alone with
  # `ctest --test-dir build -L fuzz|distributed|server|storage`.
  # All spawn real raven_worker children or socket servers; their timeouts
  # (tests/CMakeLists.txt) are sized for that.
  CONFIG_ARGS=()
  docs_check
  run_suite build
  artifact_smoke build
  metrics_smoke build
}

asan() {
  CONFIG_ARGS=(-DRAVEN_SANITIZE=address,undefined)
  run_suite build-asan
}

tsan() {
  # ThreadSanitizer gate for the morsel-driven parallel executor: the whole
  # suite runs (it is fast), which covers the runtime + integration suites
  # the parallel operators live under. Races fail the job via
  # -fno-sanitize-recover.
  # The full suite includes the `fuzz`-labeled harness — 200 random plans x
  # parallelism {1, 2, 8}, the distributed {2, 4}-worker differential leg,
  # and the 4-concurrent-client server leg — the `distributed`-labeled
  # fault-injection suite, and the `server`-labeled query-server suite
  # whose 8-client soak (shared plan cache, admission queue, concurrent
  # PlanExecutor use, disconnect-mid-query) is the newest concurrent code,
  # plus the `storage`-labeled suite (concurrent workers decoding shared
  # mmap'd blocks and racing the shared block counters).
  # A TSan hit names the offending query via the printed seed. Timeouts are
  # sized for TSan's ~10x slowdown (see tests/CMakeLists.txt).
  CONFIG_ARGS=(-DRAVEN_SANITIZE=thread)
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" run_suite build-tsan
}

case "${MODE}" in
  tier1)
    tier1
    ;;
  asan)
    docs_check
    asan
    ;;
  tsan)
    docs_check
    tsan
    ;;
  docs)
    docs_check
    ;;
  metrics_smoke)
    # Assumes an existing tier-1 build/ (run `tools/ci.sh` first).
    metrics_smoke build
    ;;
  all)
    tier1
    asan
    tsan
    # Perf trajectory data point: smoke-run the figure benches and leave
    # BENCH_<sha>.json at the repo root. The compare gate fails the job
    # when a scan/filter/predict microbenchmark regressed >10% vs the
    # committed baseline (benches absent from the baseline report as
    # "new" and never gate).
    tools/bench.sh --smoke --compare BENCH_289e1c6.json --fail-over 10
    ;;
  *)
    echo "usage: tools/ci.sh [tier1|asan|tsan|docs|metrics_smoke|all]" >&2
    exit 2
    ;;
esac
