#ifndef RAVEN_ML_RANDOM_FOREST_H_
#define RAVEN_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "ml/decision_tree.h"
#include "tensor/tensor.h"

namespace raven::ml {

/// Training options for bagged tree ensembles.
struct ForestTrainOptions {
  std::int64_t num_trees = 10;
  TreeTrainOptions tree;
  /// Fraction of rows bootstrapped per tree.
  double subsample = 0.8;
  std::uint64_t seed = 23;
};

/// Random forest regressor: average of independently bagged CART trees.
/// Like DecisionTree, predictions use the interpreted walk — NN translation
/// (optimizer rule) converts the ensemble to GEMM layers for batch scoring.
class RandomForest {
 public:
  RandomForest() = default;

  Status Fit(const Tensor& x, const std::vector<float>& y,
             const ForestTrainOptions& options = ForestTrainOptions());

  float PredictRow(const float* row, std::int64_t num_features) const;
  Result<Tensor> Predict(const Tensor& x) const;

  /// Prunes every member tree under the interval constraints.
  RandomForest PruneWithIntervals(
      const std::vector<FeatureInterval>& intervals) const;

  /// Union of features used across member trees.
  std::vector<std::int64_t> UsedFeatures() const;
  Status RemapFeatures(const std::vector<std::int64_t>& old_to_new);

  const std::vector<DecisionTree>& trees() const { return trees_; }
  std::vector<DecisionTree>& mutable_trees() { return trees_; }
  void AddTree(DecisionTree tree) { trees_.push_back(std::move(tree)); }
  std::int64_t num_features() const;
  std::int64_t total_nodes() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<RandomForest> Deserialize(BinaryReader* reader);

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace raven::ml

#endif  // RAVEN_ML_RANDOM_FOREST_H_
