#ifndef RAVEN_TOOLS_TOOL_FLAGS_H_
#define RAVEN_TOOLS_TOOL_FLAGS_H_

// Minimal shared flag parsing for the tools/ binaries (raven_serve,
// raven_client). One convention, one strictness level: `--name=value`,
// and integer values reject trailing garbage in every tool.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace raven::tools {

/// Matches `--name=value` (name includes the trailing '='); on match
/// stores the value text and returns true.
inline bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

/// Strict integer flag value: the whole text must parse, or the process
/// exits with a usage error naming the flag.
inline long FlagInt(const std::string& value, const char* flag,
                    const char* tool) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    std::fprintf(stderr, "%s: %s expects an integer, got '%s'\n", tool, flag,
                 value.c_str());
    std::exit(2);
  }
  return parsed;
}

}  // namespace raven::tools

#endif  // RAVEN_TOOLS_TOOL_FLAGS_H_
