#ifndef RAVEN_FRONTEND_SQL_PARSER_H_
#define RAVEN_FRONTEND_SQL_PARSER_H_

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "ir/ir.h"
#include "relational/catalog.h"

namespace raven::frontend {

/// Builds the model-scoring IR node for PREDICT(MODEL='name', DATA=...).
/// The static analyzer supplies this: it looks the model up in the catalog,
/// analyzes its script, and returns either a ModelPipeline IR node or an
/// OpaquePipeline fallback. `output_column` is the WITH(...) name.
using ModelNodeBuilder = std::function<Result<ir::IrNodePtr>(
    const std::string& model_name, ir::IrNodePtr data,
    const std::string& output_column)>;

/// Parses an inference query into the unified IR.
///
/// Supported grammar (a faithful subset of the paper's SQL Server dialect):
///
///   [WITH cte AS ( select )] select
///   select  := SELECT items FROM source [WHERE pred]
///              [GROUP BY col {, col} [HAVING pred]]
///              [ORDER BY key [ASC|DESC] {, key [ASC|DESC]}] [LIMIT n]
///   items   := * | item {, item}
///   item    := expr [AS name] | agg [AS name]
///   agg     := COUNT(* | col) | SUM(col) | AVG(col) | MIN(col) | MAX(col)
///   key     := col | ordinal            -- 1-based select-list position
///   source  := PREDICT(MODEL='name', DATA=ref) [WITH(col [type])] [AS a]
///            | table [AS a] {JOIN table [AS a] ON col = col}
///            | ( select ) [AS a]
///   ref     := cte-or-table name | ( select )
///   pred    := OR/AND/NOT tree over comparisons, IN lists, parentheses
///
/// Semantics and restrictions:
///  - Without GROUP BY, aggregates fold the whole input into one row and
///    cannot mix with plain select items; with GROUP BY, plain items must
///    be bare group-key columns (no aggregates at all is SELECT DISTINCT
///    over the keys). Grouped output is deterministic: one row per key
///    tuple in ascending key order (ORDER BY can re-sort it).
///  - HAVING requires GROUP BY; it may reference group keys, select-list
///    aggregate aliases, or fresh aggregate calls (which are computed but
///    not projected).
///  - ORDER BY sorts the final select-list schema (it can use aliases);
///    ordinals index that list, so `ORDER BY 2 DESC` sorts by the second
///    output column. LIMIT applies after ORDER BY.
///  - Parse errors report the offending token and its byte offset.
///
/// Alias qualifiers (`d.bp`) are accepted and stripped — Raven's flattened
/// schemas use globally unique column names. String literals compared to
/// dictionary-encoded categorical columns are resolved to their codes at
/// parse time via the catalog.
///
/// Prepared-statement placeholders: `?` is accepted wherever a numeric
/// literal is (WHERE/HAVING comparisons, arithmetic). Placeholders are
/// numbered by lexical position; EXECUTE binds them via
/// ir::BindPlanParameters before execution. They are not supported inside
/// IN lists or LIMIT.
///
/// Hostile-input guards (the query server feeds untrusted network text
/// into this parser): statements longer than kMaxSqlLength bytes and
/// expression/subquery nesting deeper than kMaxNestingDepth fail with a
/// clean parse error instead of exhausting memory or the stack.
Result<ir::IrPlan> ParseInferenceQuery(const std::string& sql,
                                       const relational::Catalog& catalog,
                                       const ModelNodeBuilder& model_builder);

/// Hard cap on statement text size (bytes).
inline constexpr std::size_t kMaxSqlLength = 1 << 20;
/// Hard cap on combined expression + subquery nesting depth.
inline constexpr int kMaxNestingDepth = 100;

/// Canonical statement text for plan-cache keys: comments dropped and every
/// token separated by exactly one space (string literals keep their
/// quotes). Deliberately conservative — identifier and keyword case are
/// preserved, because identifiers are case-sensitive and a key collision
/// would reuse the wrong plan; two spellings that differ only in case miss
/// the cache, which is merely slower. Fails on text that does not lex.
Result<std::string> NormalizeSql(const std::string& sql);

}  // namespace raven::frontend

#endif  // RAVEN_FRONTEND_SQL_PARSER_H_
