#ifndef RAVEN_DATA_FLIGHT_H_
#define RAVEN_DATA_FLIGHT_H_

#include <cstdint>

#include "common/status.h"
#include "ml/pipeline.h"
#include "relational/table.h"

namespace raven::data {

/// Synthetic flight-delay dataset mirroring the Kaggle us-dot/flight-delays
/// workload the paper evaluates on: heavily categorical (airline, origin,
/// destination one-hot encoded) plus a few numerics, and a binary delayed
/// label with signal in specific airline/airport combinations.
///
///   flights(id, airline, origin, dest, dep_hour, distance, day_of_week,
///           delayed)
struct FlightDataset {
  relational::Table flights;
  std::int64_t num_airlines = 0;
  std::int64_t num_airports = 0;
};

std::vector<std::string> FlightFeatureColumns();

/// Generates `n` flights with `num_airlines` airlines and `num_airports`
/// airports (origin/dest share the airport dictionary).
FlightDataset MakeFlightDataset(std::int64_t n, std::uint64_t seed = 2,
                                std::int64_t num_airlines = 14,
                                std::int64_t num_airports = 60);

/// Trains the paper's Fig 2(a) model: one-hot featurizer over the
/// categoricals + scaler over numerics -> L1 logistic regression. Larger
/// `l1` gives sparser weights (the paper picks models with 41.75% and
/// 80.96% sparsity).
Result<ml::ModelPipeline> TrainFlightLogreg(const FlightDataset& data,
                                            double l1,
                                            std::int64_t epochs = 40);

/// Pipeline script matching TrainFlightLogreg.
std::string FlightLogregScript();

}  // namespace raven::data

#endif  // RAVEN_DATA_FLIGHT_H_
