#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace raven {
namespace {

TEST(TensorTest, ZerosAndShape) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.num_elements(), 6);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(ShapeToString(t.shape()), "[2, 3]");
}

TEST(TensorTest, FromDataValidatesSize) {
  EXPECT_TRUE(Tensor::FromData({2, 2}, {1, 2, 3, 4}).ok());
  EXPECT_FALSE(Tensor::FromData({2, 2}, {1, 2, 3}).ok());
}

TEST(TensorTest, ScalarAndVector) {
  Tensor s = Tensor::Scalar(2.5f);
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.num_elements(), 1);
  Tensor v = Tensor::FromVector({1, 2, 3});
  EXPECT_EQ(v.rank(), 1);
  EXPECT_EQ(v.dim(0), 3);
}

TEST(TensorTest, At) {
  Tensor t = *Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.At(0, 0), 1.0f);
  EXPECT_EQ(t.At(1, 2), 6.0f);
  t.At(1, 0) = 9.0f;
  EXPECT_EQ(t.At(1, 0), 9.0f);
}

TEST(TensorTest, Reshape) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_TRUE(t.Reshape({3, 2}).ok());
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_FALSE(t.Reshape({4, 2}).ok());
}

TEST(TensorTest, SliceRows) {
  Tensor t = *Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = *t.SliceRows(1, 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.At(0, 0), 3.0f);
  EXPECT_EQ(s.At(1, 1), 6.0f);
  EXPECT_FALSE(t.SliceRows(2, 5).ok());
  EXPECT_FALSE(Tensor::FromVector({1}).SliceRows(0, 1).ok());
}

TEST(TensorTest, EqualsAndAllClose) {
  Tensor a = *Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = *Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_TRUE(a.Equals(b));
  b.At(0, 0) = 1.000001f;
  EXPECT_FALSE(a.Equals(b));
  EXPECT_TRUE(a.AllClose(b, 1e-4f));
  EXPECT_FALSE(a.AllClose(Tensor::Zeros({2, 2})));
  EXPECT_FALSE(a.AllClose(Tensor::Zeros({4})));
}

TEST(TensorTest, SerializeRoundTrip) {
  Tensor t = *Tensor::FromData({2, 3}, {1, -2, 3.5f, 0, 1e6f, -7});
  BinaryWriter w;
  t.Serialize(&w);
  const std::string buf = w.Release();
  BinaryReader r(buf);
  Tensor back = *Tensor::Deserialize(&r);
  EXPECT_TRUE(t.Equals(back));
}

TEST(TensorTest, DeserializeRejectsCorrupt) {
  BinaryWriter w;
  w.WriteI64Vector({2, 3});       // shape says 6 elements
  w.WriteF32Vector({1.0f, 2.0f});  // only 2 provided
  BinaryReader r(w.buffer());
  EXPECT_FALSE(Tensor::Deserialize(&r).ok());
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t = Tensor::Zeros({100});
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace raven
