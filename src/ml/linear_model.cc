#include "ml/linear_model.h"

#include <cmath>

#include "common/rng.h"

namespace raven::ml {
namespace {

double SoftThreshold(double w, double lambda) {
  if (w > lambda) return w - lambda;
  if (w < -lambda) return w + lambda;
  return 0.0;
}

}  // namespace

Status LinearModel::Fit(const Tensor& x, const std::vector<float>& y,
                        const LinearTrainOptions& options) {
  if (x.rank() != 2 || x.dim(0) != static_cast<std::int64_t>(y.size())) {
    return Status::InvalidArgument("LinearModel::Fit shape mismatch");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  if (n == 0) return Status::InvalidArgument("cannot fit on 0 rows");
  weights_.assign(static_cast<std::size_t>(d), 0.0);
  bias_ = 0.0;

  std::vector<double> grad(static_cast<std::size_t>(d), 0.0);
  for (std::int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    for (std::int64_t r = 0; r < n; ++r) {
      const float* row = x.raw() + r * d;
      double margin = bias_;
      for (std::int64_t c = 0; c < d; ++c) {
        margin += weights_[static_cast<std::size_t>(c)] * row[c];
      }
      double err;
      if (kind_ == LinearKind::kLogistic) {
        const double p = 1.0 / (1.0 + std::exp(-margin));
        err = p - y[static_cast<std::size_t>(r)];
      } else {
        err = margin - y[static_cast<std::size_t>(r)];
      }
      for (std::int64_t c = 0; c < d; ++c) {
        grad[static_cast<std::size_t>(c)] += err * row[c];
      }
      grad_bias += err;
    }
    const double lr = options.learning_rate / static_cast<double>(n);
    for (std::int64_t c = 0; c < d; ++c) {
      double w = weights_[static_cast<std::size_t>(c)] -
                 lr * grad[static_cast<std::size_t>(c)];
      if (options.l1 > 0.0) {
        w = SoftThreshold(w, options.learning_rate * options.l1);
      }
      weights_[static_cast<std::size_t>(c)] = w;
    }
    bias_ -= lr * grad_bias;
  }
  return Status::OK();
}

float LinearModel::PredictRow(const float* row,
                              std::int64_t num_features) const {
  // `num_features` is the caller's row width; the model reads its own
  // weight count, which callers must not under-provision.
  (void)num_features;
  double margin = bias_;
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    margin += weights_[c] * row[c];
  }
  if (kind_ == LinearKind::kLogistic) {
    return static_cast<float>(1.0 / (1.0 + std::exp(-margin)));
  }
  return static_cast<float>(margin);
}

Result<Tensor> LinearModel::Predict(const Tensor& x) const {
  if (x.rank() != 2 ||
      x.dim(1) != static_cast<std::int64_t>(weights_.size())) {
    return Status::InvalidArgument("LinearModel::Predict shape mismatch");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  Tensor out = Tensor::Zeros({n, 1});
  for (std::int64_t r = 0; r < n; ++r) {
    out.raw()[r] = PredictRow(x.raw() + r * d, d);
  }
  return out;
}

double LinearModel::Sparsity() const {
  if (weights_.empty()) return 0.0;
  std::int64_t zeros = 0;
  for (double w : weights_) {
    if (w == 0.0) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(weights_.size());
}

std::vector<std::int64_t> LinearModel::NonZeroFeatures() const {
  std::vector<std::int64_t> out;
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    if (weights_[c] != 0.0) out.push_back(static_cast<std::int64_t>(c));
  }
  return out;
}

std::int64_t LinearModel::ThresholdWeights(double threshold) {
  std::int64_t zeroed = 0;
  for (double& w : weights_) {
    if (w != 0.0 && std::fabs(w) < threshold) {
      w = 0.0;
      ++zeroed;
    }
  }
  return zeroed;
}

Status LinearModel::ProjectFeatures(const std::vector<std::int64_t>& keep,
                                    const std::vector<double>& fixed_values) {
  const std::int64_t d = num_features();
  if (static_cast<std::int64_t>(fixed_values.size()) != d) {
    return Status::InvalidArgument("fixed_values size mismatch");
  }
  std::vector<bool> kept(static_cast<std::size_t>(d), false);
  std::vector<double> new_weights;
  new_weights.reserve(keep.size());
  for (std::int64_t k : keep) {
    if (k < 0 || k >= d) {
      return Status::OutOfRange("ProjectFeatures index out of range");
    }
    kept[static_cast<std::size_t>(k)] = true;
    new_weights.push_back(weights_[static_cast<std::size_t>(k)]);
  }
  // Dropped features contribute their fixed value to the bias.
  for (std::int64_t c = 0; c < d; ++c) {
    if (!kept[static_cast<std::size_t>(c)]) {
      bias_ += weights_[static_cast<std::size_t>(c)] *
               fixed_values[static_cast<std::size_t>(c)];
    }
  }
  weights_ = std::move(new_weights);
  return Status::OK();
}

void LinearModel::Serialize(BinaryWriter* writer) const {
  writer->WriteU8(static_cast<std::uint8_t>(kind_));
  writer->WriteF64Vector(weights_);
  writer->WriteF64(bias_);
}

Result<LinearModel> LinearModel::Deserialize(BinaryReader* reader) {
  LinearModel m;
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t kind, reader->ReadU8());
  if (kind > 1) return Status::ParseError("bad linear kind");
  m.kind_ = static_cast<LinearKind>(kind);
  RAVEN_ASSIGN_OR_RETURN(m.weights_, reader->ReadF64Vector());
  RAVEN_ASSIGN_OR_RETURN(m.bias_, reader->ReadF64());
  return m;
}

}  // namespace raven::ml
