#ifndef RAVEN_RUNTIME_WORKER_POOL_H_
#define RAVEN_RUNTIME_WORKER_POOL_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "nnrt/session.h"
#include "obs/trace.h"
#include "relational/chunk.h"
#include "relational/table.h"
#include "runtime/external_runtime.h"
#include "runtime/worker_protocol.h"

namespace raven::runtime {

/// Configuration of one persistent worker pool.
struct WorkerPoolOptions {
  std::int64_t num_workers = 2;
  /// Worker binary resolution + simulated runtime boot cost. The boot cost
  /// is paid once per worker at pool start (that is the point of keeping
  /// the pool warm), not per query like the one-shot Raven Ext path.
  ExternalRuntimeOptions external;
  /// Per-frame read timeout guarding against wedged (not dead) workers;
  /// <= 0 disables. A timeout fails the exchange, and the caller's
  /// retry/fallback logic takes over.
  int frame_timeout_millis = 30000;

  bool SameSpawnConfig(const WorkerPoolOptions& other) const {
    return num_workers == other.num_workers &&
           external.worker_path == other.external.worker_path &&
           external.boot_millis == other.external.boot_millis &&
           external.worker_args == other.external.worker_args;
  }
};

/// Assembled response stream of one fragment partition.
struct FragmentResult {
  std::vector<relational::DataChunk> chunks;  ///< result row order
  std::vector<std::string> result_names;      ///< schema (even when 0 rows)
  std::int64_t result_rows = 0;
  std::int64_t bytes_received = 0;  ///< response payload bytes (stats)
  /// Worker-side span tree from the kDone frame (empty unless the request
  /// enabled tracing); obs::Trace::DeserializeSpans decodes it.
  std::string trace_spans;

  /// Concatenates the chunks into a Table (column-less when the worker
  /// reported no schema, matching the engine's empty convention).
  Result<relational::Table> ToTable() const;
};

/// A pool of N persistent raven_worker processes kept warm across queries —
/// the paper's out-of-process runtime (§5, Raven Ext) grown from a one-shot
/// scorer into a distributed plan-fragment executor. Workers are stateless
/// between frames: each kExecuteFragment carries the whole fragment plus
/// its scan partition, so any partition can be retried on any fresh worker.
///
/// Thread safety: distinct workers can execute fragments concurrently (the
/// distributed executor dispatches one partition per worker); access to a
/// single worker is serialized by a per-worker mutex.
class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns the workers; fails (with every already-spawned worker stopped)
  /// if any worker does not come up.
  Status Start(const WorkerPoolOptions& options);
  void Stop();

  bool running() const { return running_; }
  std::int64_t num_workers() const {
    return static_cast<std::int64_t>(workers_.size());
  }
  const WorkerPoolOptions& options() const { return options_; }
  /// Pid of worker `w` (fault-injection tests SIGKILL through this).
  pid_t worker_pid(std::int64_t w) const;

  /// Executes one encoded kExecuteFragment frame on worker `w`: sends the
  /// frame and drains the response stream until kDone. Any I/O error,
  /// decode error, kError event, or malformed stream fails the call; the
  /// worker's pipe state is then unknown, so callers must RestartWorker
  /// before reusing slot `w`.
  Result<FragmentResult> ExecuteFragment(std::int64_t w,
                                         const std::string& request_frame);

  /// Replaces worker `w` with a freshly spawned process (counted in
  /// restarts()).
  Status RestartWorker(std::int64_t w);

  /// Lifetime count of worker restarts (visible in ExecutionStats).
  std::int64_t restarts() const {
    return restarts_.load(std::memory_order_relaxed);
  }

  /// Re-arms the frame timeout on a warm pool: the timeout is a per-query
  /// execution option, not part of the spawn configuration, so changing it
  /// must not cost a pool respawn.
  void set_frame_timeout_millis(int timeout_millis) {
    frame_timeout_millis_.store(timeout_millis, std::memory_order_relaxed);
  }

 private:
  WorkerPoolOptions options_;
  std::atomic<int> frame_timeout_millis_{30000};
  std::vector<std::unique_ptr<WorkerClient>> workers_;
  /// Serializes frame exchanges per worker. unique_ptr: mutexes are neither
  /// movable nor copyable, and the vector is sized at Start.
  std::vector<std::unique_ptr<std::mutex>> worker_mus_;
  std::atomic<std::int64_t> restarts_{0};
  bool running_ = false;
};

/// Decodes and executes one fragment request in the current process:
/// deserializes the table slice into a scratch catalog, deserializes the
/// plan fragment, and runs it through the PlanExecutor sequentially. This
/// is the single implementation behind both sides of the protocol — the
/// worker's kExecuteFragment handler and the engine's in-process fallback
/// when a partition exhausts its retry — so the fallback exercises the same
/// decode path a worker would. A non-null `trace` records the fragment's
/// spans (decode, execute, per-operator) into it: the worker serializes
/// that tree into its kDone frame, the fallback stitches it directly.
Result<relational::Table> ExecuteFragmentLocally(
    const FragmentRequest& request, nnrt::SessionCache* session_cache,
    obs::Trace* trace = nullptr);

}  // namespace raven::runtime

#endif  // RAVEN_RUNTIME_WORKER_POOL_H_
