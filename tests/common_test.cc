#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace raven {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad x");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad x");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kExecutionError); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  RAVEN_ASSIGN_OR_RETURN(int half, HalveEven(x));
  RAVEN_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterViaMacro(8), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());
  EXPECT_FALSE(QuarterViaMacro(3).ok());
}

TEST(SerializeTest, RoundTripScalars) {
  BinaryWriter w;
  w.WriteU8(7);
  w.WriteI32(-42);
  w.WriteI64(1LL << 40);
  w.WriteF64(3.5);
  w.WriteF32(-1.25f);
  w.WriteBool(true);
  w.WriteString("hello");
  const std::string buf = w.Release();
  BinaryReader r(buf);
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_EQ(*r.ReadI32(), -42);
  EXPECT_EQ(*r.ReadI64(), 1LL << 40);
  EXPECT_EQ(*r.ReadF64(), 3.5);
  EXPECT_EQ(*r.ReadF32(), -1.25f);
  EXPECT_TRUE(*r.ReadBool());
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, RoundTripVectors) {
  BinaryWriter w;
  w.WriteF64Vector({1.0, 2.0, 3.0});
  w.WriteI64Vector({-1, 0, 1});
  w.WriteStringVector({"a", "", "long string here"});
  const std::string buf = w.Release();
  BinaryReader r(buf);
  EXPECT_EQ(*r.ReadF64Vector(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(*r.ReadI64Vector(), (std::vector<std::int64_t>{-1, 0, 1}));
  EXPECT_EQ(*r.ReadStringVector(),
            (std::vector<std::string>{"a", "", "long string here"}));
}

TEST(SerializeTest, TruncatedBufferIsError) {
  BinaryWriter w;
  w.WriteF64(1.0);
  std::string buf = w.Release();
  buf.resize(buf.size() - 1);
  BinaryReader r(buf);
  EXPECT_FALSE(r.ReadF64().ok());
}

TEST(SerializeTest, CorruptStringLengthIsError) {
  BinaryWriter w;
  w.WriteU32(1000000);  // claims a huge string, provides nothing
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, SeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingle) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
  int count = 0;
  pool.ParallelFor(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, NestedSubmissionsComplete) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](std::size_t) { total += 1; });
  pool.ParallelFor(8, [&](std::size_t) { total += 1; });
  EXPECT_EQ(total.load(), 16);
}

// Regression test for the nested-use hazard: ParallelFor from inside a pool
// worker must not enqueue-and-block on the (possibly saturated) pool. Every
// pool worker is pinned inside an outer task before any of them issues the
// nested call, so without the inline-execution guard the sub-iterations
// could only be claimed by already-blocked threads.
TEST(ThreadPoolTest, NestedParallelForFromWorkersCompletes) {
  const std::size_t workers = ThreadPool::Global().num_threads();
  std::atomic<std::size_t> arrived{0};
  std::atomic<std::size_t> done{0};
  std::atomic<int> inner_total{0};
  std::atomic<int> nested_on_worker{0};
  for (std::size_t t = 0; t < workers; ++t) {
    // Submit (not TaskGroup) so the tasks run on pool workers only.
    ThreadPool::Global().Submit([&] {
      // Saturate the pool: wait until every worker holds a task.
      arrived += 1;
      while (arrived.load() < workers) std::this_thread::yield();
      EXPECT_TRUE(ThreadPool::InPoolWorker());
      nested_on_worker += 1;
      ThreadPool::Global().ParallelFor(
          16, [&](std::size_t) { inner_total += 1; });
      done += 1;
    });
  }
  while (done.load() < workers) std::this_thread::yield();
  EXPECT_EQ(nested_on_worker.load(), static_cast<int>(workers));
  EXPECT_EQ(inner_total.load(), static_cast<int>(workers) * 16);
}

TEST(ThreadPoolTest, ParallelForInsideSubmitCompletes) {
  std::atomic<int> total{0};
  TaskGroup group;
  for (int t = 0; t < 4; ++t) {
    group.Spawn([&] {
      ThreadPool::Global().ParallelFor(32, [&](std::size_t) { total += 1; });
    });
  }
  group.Wait();
  EXPECT_EQ(total.load(), 4 * 32);
}

TEST(TaskGroupTest, RunsAllTasksAndWaits) {
  std::atomic<int> total{0};
  TaskGroup group;
  for (int t = 0; t < 64; ++t) {
    group.Spawn([&] { total += 1; });
  }
  group.Wait();
  EXPECT_EQ(total.load(), 64);
  // Wait on an empty/finished group is a no-op.
  group.Wait();
}

TEST(MorselQueueTest, DispensesDisjointExhaustiveMorsels) {
  MorselQueue queue(10000, 256);
  EXPECT_EQ(queue.num_morsels(), 40);  // ceil(10000/256)
  std::vector<std::atomic<int>> claimed(10000);
  std::atomic<int> morsels{0};
  ThreadPool::Global().ParallelFor(8, [&](std::size_t) {
    Morsel m;
    while (queue.Pop(&m)) {
      morsels += 1;
      EXPECT_EQ(m.index, m.begin / 256);
      for (std::int64_t r = m.begin; r < m.end; ++r) {
        claimed[static_cast<std::size_t>(r)] += 1;
      }
    }
  });
  EXPECT_EQ(morsels.load(), 40);
  for (const auto& c : claimed) EXPECT_EQ(c.load(), 1);
}

TEST(MorselQueueTest, EmptyAndOddSizes) {
  MorselQueue empty(0, 128);
  Morsel m;
  EXPECT_FALSE(empty.Pop(&m));
  EXPECT_EQ(empty.num_morsels(), 0);

  MorselQueue tiny(3, 128);
  ASSERT_TRUE(tiny.Pop(&m));
  EXPECT_EQ(m.begin, 0);
  EXPECT_EQ(m.end, 3);
  EXPECT_FALSE(tiny.Pop(&m));
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, TrimAndCase) {
  EXPECT_EQ(TrimString("  x y\t\n"), "x y");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
}

TEST(StringUtilTest, PrefixSuffixJoin) {
  EXPECT_TRUE(StartsWith("model_pipeline", "model"));
  EXPECT_FALSE(StartsWith("mo", "model"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_EQ(JoinStrings({"a", "b"}, ", "), "a, b");
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) {
    x = x + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(t.ElapsedMicros(), 0.0);
  EXPECT_GE(t.ElapsedMillis() * 1000.0, t.ElapsedMicros() * 0.5);
}

}  // namespace
}  // namespace raven
