#!/usr/bin/env bash
# CI entry point: tier-1 verify (configure, build, full ctest) plus an
# optional sanitizer job.
#
#   tools/ci.sh            # tier-1: build + all tests (and build the benches)
#   tools/ci.sh asan       # tier-1 under -fsanitize=address,undefined
#   tools/ci.sh all        # both jobs back to back
#
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MODE="${1:-tier1}"

run_suite() {
  local build_dir="$1"; shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  # Benches are EXCLUDE_FROM_ALL; build (never run) them so the perf tooling
  # keeps compiling in every CI run. The target exists even without
  # Google Benchmark (no-op).
  cmake --build "${build_dir}" --target bench -j "${JOBS}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

case "${MODE}" in
  tier1)
    run_suite build
    ;;
  asan)
    run_suite build-asan -DRAVEN_SANITIZE=address,undefined
    ;;
  all)
    run_suite build
    run_suite build-asan -DRAVEN_SANITIZE=address,undefined
    ;;
  *)
    echo "usage: tools/ci.sh [tier1|asan|all]" >&2
    exit 2
    ;;
esac
