#ifndef RAVEN_RUNTIME_INFERENCE_BATCHER_H_
#define RAVEN_RUNTIME_INFERENCE_BATCHER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "nnrt/executor.h"
#include "nnrt/session.h"
#include "tensor/tensor.h"

namespace raven::runtime {

/// Cross-query PREDICT micro-batching hook (paper §5: per-call overhead
/// dominates small-batch inference, so amortize it by sharing NNRT calls).
///
/// The runtime defines only this interface; the concrete scheduler lives in
/// the server layer (server::PredictBatcher), which owns the cross-session
/// coordination. NN scorers submit their morsel's input tensor here when
/// ExecutionOptions carries a batcher and a positive batch window; the
/// implementation may coalesce rows from concurrent submissions that share
/// `key` into one session Run and scatter the per-row results back.
///
/// Correctness contract: every registered NNRT kernel computes row i of its
/// output from row i of its input alone (MatMul/Gemm/Softmax/ReduceSum/
/// TreeEnsemble all loop per row), so concatenating submissions, running
/// once, and slicing the result is bit-identical to running each submission
/// by itself. Batching changes WHEN inference runs, never WHAT a query
/// sees; the byte-identity invariant holds with batching on or off.
class InferenceBatcher {
 public:
  /// One scorer submission: a rank-2 [rows, features] tensor plus the
  /// session to run it on. `key` identifies the model artifact (the session
  /// cache key: catalog model version + graph-bytes hash) — submissions
  /// only ever coalesce when their keys match, so rows never cross models.
  struct Request {
    std::string key;
    std::shared_ptr<nnrt::InferenceSession> session;
    const Tensor* input = nullptr;  ///< borrowed for the duration of Score
    /// How long the first submission of a batch waits for company before
    /// flushing alone.
    std::int64_t window_micros = 0;
    /// Pending rows that trigger an immediate flush before the deadline.
    std::int64_t max_batch_rows = 0;
  };

  virtual ~InferenceBatcher() = default;

  /// Scores exactly the submitted rows, in their submitted order. Blocks
  /// until the shared batch containing them has run (bounded by the window
  /// deadline). `stats` receives this submission's share of the shared
  /// run's cost, scaled by row fraction, so per-query stats stay additive.
  virtual Result<Tensor> Score(const Request& request,
                               nnrt::RunStats* stats) = 0;
};

}  // namespace raven::runtime

#endif  // RAVEN_RUNTIME_INFERENCE_BATCHER_H_
