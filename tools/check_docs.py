#!/usr/bin/env python3
"""Docs-consistency gate, run by every tools/ci.sh job.

Two classes of rot it catches:

  1. Broken intra-repo markdown links: every relative link target in a
     tracked *.md file must exist (anchors are stripped; external
     http(s)/mailto links are not checked).

  2. Operational surface drift: every `SET` knob the server accepts
     (parsed out of src/server/session.cc), every SHOW STATS key it
     renders (parsed out of ServerStats::ToPairs in
     src/server/query_server.cc), and every command-line flag
     raven_serve / raven_worker / raven_ingest dispatch on (ParseFlag /
     strncmp calls
     in tools/) must be mentioned in docs/OPERATIONS.md. Add a knob or
     flag without documenting it and this fails; the parse is from the
     code, so the doc can never silently lag the implementation.

  3. Metrics drift: every raven_* series registered on the server's
     MetricsRegistry (AddCounter / AddGauge / AddHistogram literals in
     src/server/query_server.cc) must be mentioned in
     docs/OBSERVABILITY.md — the dashboard reference can never silently
     miss a series the server exports.

Exits non-zero listing every problem found.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {".git", ".github"}
SKIP_PREFIXES = ("build",)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    for root, dirs, files in os.walk(REPO):
        rel_root = os.path.relpath(root, REPO)
        dirs[:] = [
            d
            for d in dirs
            if d not in SKIP_DIRS and not d.startswith(SKIP_PREFIXES)
        ]
        for name in files:
            if name.endswith(".md"):
                yield os.path.join(root, name)


def check_links(problems):
    for path in markdown_files():
        with open(path, encoding="utf-8") as f:
            text = f.read()
        # Fenced code blocks contain things like [u32 length][payload] and
        # example links; only prose links are contracts.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target.split("#")[0])
            )
            if not os.path.exists(resolved):
                problems.append(
                    f"{os.path.relpath(path, REPO)}: broken link '{target}'"
                )


def read_source(rel):
    with open(os.path.join(REPO, rel), encoding="utf-8") as f:
        return f.read()


def set_knobs():
    """Knob names session.cc's ApplySet dispatches on."""
    src = read_source("src/server/session.cc")
    body = src.split("Status Session::ApplySet", 1)[1]
    knobs = re.findall(r'k == "(\w+)"', body)
    if not knobs:
        raise AssertionError("no SET knobs parsed from session.cc")
    return knobs


def serve_flags():
    """Command-line flags raven_serve dispatches on (ParseFlag calls)."""
    src = read_source("tools/raven_serve.cc")
    flags = re.findall(r'ParseFlag\(argv\[i\],\s*"(--[\w-]+)=', src)
    if not flags:
        raise AssertionError("no flags parsed from raven_serve.cc")
    return flags


def ingest_flags():
    """Command-line flags raven_ingest dispatches on (ParseFlag calls)."""
    src = read_source("tools/raven_ingest.cc")
    flags = re.findall(r'ParseFlag\(argv\[i\],\s*"(--[\w-]+)=', src)
    flags += re.findall(r'std::string\(argv\[i\]\) == "(--[\w-]+)"', src)
    if not flags:
        raise AssertionError("no flags parsed from raven_ingest.cc")
    return flags


def worker_flags():
    """Command-line flags raven_worker dispatches on (strncmp prefixes)."""
    src = read_source("tools/raven_worker.cc")
    flags = re.findall(r'strncmp\(argv\[i\],\s*"(--[\w-]+)=', src)
    if not flags:
        raise AssertionError("no flags parsed from raven_worker.cc")
    return flags


def stats_keys():
    """SHOW STATS keys from ServerStats::ToPairs, in render order."""
    src = read_source("src/server/query_server.cc")
    body = src.split("ServerStats::ToPairs", 1)[1]
    body = body.split("};", 1)[0]
    keys = re.findall(r'\{"(\w+)",', body)
    if not keys:
        raise AssertionError("no stats keys parsed from query_server.cc")
    return keys


def metric_names():
    """raven_* series from AddCounter/AddGauge/AddHistogram literals.

    The name is the first string literal after the call — possibly on the
    next line, the registrations wrap — hence the dotall skip over
    whitespace only.
    """
    src = read_source("src/server/query_server.cc")
    names = re.findall(
        r'Add(?:Counter|Gauge|Histogram)\(\s*"(raven_\w+)"', src
    )
    if not names:
        raise AssertionError("no metric names parsed from query_server.cc")
    return names


def check_observability(problems):
    obs_path = os.path.join(REPO, "docs", "OBSERVABILITY.md")
    if not os.path.exists(obs_path):
        problems.append("docs/OBSERVABILITY.md is missing")
        return
    with open(obs_path, encoding="utf-8") as f:
        obs = f.read()
    for name in metric_names():
        if f"`{name}`" not in obs:
            problems.append(
                f"docs/OBSERVABILITY.md: metric series '{name}' is "
                "undocumented"
            )


def check_operations(problems):
    ops_path = os.path.join(REPO, "docs", "OPERATIONS.md")
    if not os.path.exists(ops_path):
        problems.append("docs/OPERATIONS.md is missing")
        return
    with open(ops_path, encoding="utf-8") as f:
        ops = f.read()
    for knob in set_knobs():
        if f"`{knob}`" not in ops:
            problems.append(
                f"docs/OPERATIONS.md: SET knob '{knob}' is undocumented"
            )
    for key in stats_keys():
        if f"`{key}`" not in ops:
            problems.append(
                f"docs/OPERATIONS.md: SHOW STATS key '{key}' is undocumented"
            )
    for flag in serve_flags():
        if f"`{flag}" not in ops:
            problems.append(
                f"docs/OPERATIONS.md: raven_serve flag '{flag}' is "
                "undocumented"
            )
    for flag in worker_flags():
        if f"`{flag}" not in ops:
            problems.append(
                f"docs/OPERATIONS.md: raven_worker flag '{flag}' is "
                "undocumented"
            )
    for flag in ingest_flags():
        if f"`{flag}" not in ops:
            problems.append(
                f"docs/OPERATIONS.md: raven_ingest flag '{flag}' is "
                "undocumented"
            )


def main():
    problems = []
    check_links(problems)
    check_operations(problems)
    check_observability(problems)
    if problems:
        for p in problems:
            print(f"check_docs: {p}", file=sys.stderr)
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
