#ifndef RAVEN_TESTS_TEST_UTIL_H_
#define RAVEN_TESTS_TEST_UTIL_H_

// Shared test fixtures: hospital/flight catalog builders, the paper's
// running-example query, and plan-shape snapshot helpers. Every suite that
// needs a populated catalog or asserts on plan structure goes through these
// instead of re-rolling its own copy.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/flight.h"
#include "data/hospital.h"
#include "frontend/analyzer.h"
#include "ir/ir.h"
#include "ml/pipeline.h"
#include "relational/catalog.h"

namespace raven::test_util {

// ---------------------------------------------------------------------------
// Dataset / catalog builders
// ---------------------------------------------------------------------------

/// Registers the three hospital base tables (patient_info, blood_tests,
/// prenatal_tests) and, when `include_joined` is set, the pre-joined table
/// as "patients". Fatal assertions only abort this helper — wrap calls in
/// ASSERT_NO_FATAL_FAILURE so a failed registration also aborts SetUp.
inline void RegisterHospitalTables(relational::Catalog* catalog,
                                   const data::HospitalDataset& data,
                                   bool include_joined = true) {
  ASSERT_TRUE(catalog->RegisterTable("patient_info", data.patient_info).ok());
  ASSERT_TRUE(catalog->RegisterTable("blood_tests", data.blood_tests).ok());
  ASSERT_TRUE(
      catalog->RegisterTable("prenatal_tests", data.prenatal_tests).ok());
  if (include_joined) {
    ASSERT_TRUE(catalog->RegisterTable("patients", data.joined).ok());
  }
}

/// Trains the paper's §2 length-of-stay tree and stores it under
/// `model_name`. Returns the trained pipeline for ground-truth checks.
/// On failure, records a test failure and returns an empty pipeline (never
/// aborts the process); fixtures should end SetUp with
/// `ASSERT_FALSE(HasFailure())` so the test body is skipped.
inline ml::ModelPipeline InsertHospitalTreeModel(
    relational::Catalog* catalog, const data::HospitalDataset& data,
    std::int64_t depth, const std::string& model_name = "los") {
  auto trained = data::TrainHospitalTree(data, depth);
  if (!trained.ok()) {
    ADD_FAILURE() << "TrainHospitalTree: " << trained.status().ToString();
    return {};
  }
  ml::ModelPipeline pipeline = std::move(trained).value();
  Status inserted = catalog->InsertModel(
      model_name, data::HospitalTreeScript(), pipeline.ToBytes());
  if (!inserted.ok()) {
    ADD_FAILURE() << "InsertModel(" << model_name
                  << "): " << inserted.ToString();
  }
  return pipeline;
}

/// Registers the flight-delay table as "flights".
inline void RegisterFlightTable(relational::Catalog* catalog,
                                const data::FlightDataset& data) {
  ASSERT_TRUE(catalog->RegisterTable("flights", data.flights).ok());
}

// ---------------------------------------------------------------------------
// Canonical queries
// ---------------------------------------------------------------------------

/// The paper's §2 running example (hospital length-of-stay) against the
/// stored model `model_name`.
inline std::string RunningExampleSql(const std::string& model_name = "los") {
  return "WITH data AS (SELECT * FROM patient_info AS pi "
         "  JOIN blood_tests AS bt ON pi.id = bt.id "
         "  JOIN prenatal_tests AS pt ON bt.id = pt.id) "
         "SELECT id, length_of_stay "
         "FROM PREDICT(MODEL='" +
         model_name +
         "', DATA=data) WITH(length_of_stay float) "
         "WHERE pregnant = 1 AND length_of_stay > 7";
}

/// Analyzes `sql` against `catalog`, failing the test on error. On failure
/// it returns a harmless single-scan sentinel plan (non-null root) so a
/// caller that keeps running walks a valid tree instead of dereferencing
/// null — the recorded failure still fails the test.
inline ir::IrPlan AnalyzePlan(const relational::Catalog& catalog,
                              const std::string& sql) {
  frontend::StaticAnalyzer analyzer(&catalog);
  auto plan = analyzer.Analyze(sql);
  if (!plan.ok()) {
    ADD_FAILURE() << "Analyze failed for \"" << sql
                  << "\": " << plan.status().ToString();
    return ir::IrPlan(ir::IrNode::TableScan("__analysis_failed__"));
  }
  return std::move(plan).value();
}

// ---------------------------------------------------------------------------
// Plan-shape snapshot helpers
// ---------------------------------------------------------------------------

/// Compact structural snapshot of a plan subtree: operator kinds only, in
/// the nested form "Project(Filter(ModelPipeline(TableScan)))". Payloads
/// (predicates, column lists, model internals) are deliberately excluded so
/// snapshots stay stable across payload-level tweaks while still pinning
/// operator order — exactly what rule-chain regressions need to catch.
inline std::string PlanShape(const ir::IrNode* node) {
  if (node == nullptr) return "(null)";
  std::string out = ir::IrOpKindToString(node->kind);
  if (!node->children.empty()) {
    out += "(";
    for (std::size_t i = 0; i < node->children.size(); ++i) {
      if (i > 0) out += ", ";
      out += PlanShape(node->children[i].get());
    }
    out += ")";
  }
  return out;
}

inline std::string PlanShape(const ir::IrPlan& plan) {
  return PlanShape(plan.root());
}

/// Preorder list of operator kind names, for order-sensitive assertions
/// that don't care about arity/nesting.
inline std::vector<std::string> KindSequence(const ir::IrPlan& plan) {
  std::vector<std::string> kinds;
  ir::VisitIr(plan.root(), [&](const ir::IrNode* node) {
    kinds.emplace_back(ir::IrOpKindToString(node->kind));
  });
  return kinds;
}

/// True if any kFilter node anywhere under `root` mentions `substr` in its
/// predicate's ToString().
inline bool FilterMentions(const ir::IrNode* root, const std::string& substr) {
  bool found = false;
  ir::VisitIr(root, [&](const ir::IrNode* node) {
    if (node->kind == ir::IrOpKind::kFilter && node->predicate != nullptr &&
        node->predicate->ToString().find(substr) != std::string::npos) {
      found = true;
    }
  });
  return found;
}

/// True if a kFilter mentioning `substr` sits below ANY model node
/// (kModelPipeline / kClusteredPredict / kNnGraph) — the canonical
/// "predicate was pushed through PREDICT" check for single-model plans.
inline bool FilterBelowModelMentions(const ir::IrNode* root,
                                     const std::string& substr) {
  bool found = false;
  ir::VisitIr(root, [&](const ir::IrNode* node) {
    switch (node->kind) {
      case ir::IrOpKind::kModelPipeline:
      case ir::IrOpKind::kClusteredPredict:
      case ir::IrOpKind::kNnGraph:
        for (const auto& child : node->children) {
          if (FilterMentions(child.get(), substr)) found = true;
        }
        break;
      default:
        break;
    }
  });
  return found;
}

}  // namespace raven::test_util

/// Snapshot assertion: EXPECT_PLAN_SHAPE(plan, "Project(Filter(TableScan))").
/// On mismatch the full pretty-printed plan is attached for diagnosis.
#define EXPECT_PLAN_SHAPE(plan, expected)                       \
  EXPECT_EQ(raven::test_util::PlanShape(plan), (expected))      \
      << "full plan:\n"                                         \
      << (plan).ToString()

#endif  // RAVEN_TESTS_TEST_UTIL_H_
