#ifndef RAVEN_RAVEN_RAVEN_H_
#define RAVEN_RAVEN_RAVEN_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "frontend/analyzer.h"
#include "ml/pipeline.h"
#include "nnrt/session.h"
#include "optimizer/cross_optimizer.h"
#include "optimizer/specialize.h"
#include "relational/catalog.h"
#include "relational/table.h"
#include "runtime/codegen.h"
#include "runtime/plan_executor.h"

namespace raven {

/// Result of one inference query: the output table plus the artifacts of
/// every stage (analysis, optimization, execution) for inspection.
struct QueryResult {
  relational::Table table;
  frontend::AnalysisStats analysis;
  optimizer::OptimizationReport optimization;
  runtime::ExecutionStats execution;
  /// The rewritten SQL emitted by the Runtime Code Generator.
  std::string generated_sql;
  double total_millis = 0.0;
};

/// Top-level configuration.
struct RavenOptions {
  optimizer::OptimizerOptions optimizer;
  runtime::ExecutionOptions execution;
  std::size_t session_cache_capacity = 32;
  /// When non-empty, compiled (optimized) NNRT graphs persist to this
  /// directory keyed by graph fingerprint, so later cold starts — and
  /// raven_worker children, which inherit the directory via worker_args —
  /// skip graph optimization entirely (`--artifact-dir` on raven_serve).
  std::string artifact_dir;
};

/// The Raven system facade: an in-memory RDBMS with models stored in its
/// catalog, a static analyzer for inference queries, the cross optimizer,
/// and the integrated NNRT runtime (paper Fig 1 end-to-end).
///
/// Typical use:
///   RavenContext ctx;
///   ctx.RegisterTable("patients", table);
///   ctx.InsertModel("duration_of_stay", script, pipeline);
///   auto result = ctx.Query(
///       "SELECT id, p FROM PREDICT(MODEL='duration_of_stay', "
///       "DATA=patients) WITH(p float) WHERE p > 7");
class RavenContext {
 public:
  explicit RavenContext(RavenOptions options = RavenOptions());

  // -- Data & model registration -------------------------------------------
  Status RegisterTable(const std::string& name, relational::Table table);
  /// Registers an on-disk columnar table (e.g. a memory-mapped `.rvc` file
  /// opened with storage::DiskTable::Open). Shares the name space with
  /// in-memory tables; scans read it block-by-block with zone-map skipping.
  Status RegisterDiskTable(const std::string& name,
                           std::shared_ptr<const relational::BlockTable> table);
  /// INSERT INTO models(name, script, pipeline): stores the script and the
  /// serialized trained pipeline in the catalog.
  Status InsertModel(const std::string& name, const std::string& script,
                     const ml::ModelPipeline& pipeline);
  /// Transactional model replacement (bumps version; cached inference
  /// sessions for the old version age out of the LRU cache).
  Status UpdateModel(const std::string& name, const std::string& script,
                     const ml::ModelPipeline& pipeline);

  /// Builds and registers a model-clustering artifact from a sample table
  /// (paper §4.1: clustering runs offline on historical data).
  Status BuildClusteredModel(const std::string& model_name,
                             const std::string& sample_table,
                             const optimizer::ClusteringOptions& options);

  // -- Query execution -------------------------------------------------------
  /// Full path: static analysis -> cross optimization -> code generation ->
  /// execution.
  Result<QueryResult> Query(const std::string& sql);

  /// Analyze + optimize only; returns the IR before/after and the
  /// generated SQL.
  Result<std::string> Explain(const std::string& sql);

  /// EXPLAIN ANALYZE: executes the statement with a stats collector
  /// attached and renders the optimized plan tree annotated with actual
  /// per-operator counters (rows, chunks, open/work wall time, fused-chain
  /// membership) plus execution totals. `table` is the real result of that
  /// execution — instrumentation is observation-only, so it is
  /// byte-identical to what Query() returns for the same statement.
  struct ExplainAnalyzeResult {
    std::string text;
    relational::Table table;
    runtime::ExecutionStats stats;
  };
  Result<ExplainAnalyzeResult> ExplainAnalyze(const std::string& sql);

  /// EXPLAIN ANALYZE over an already-optimized plan with explicit execution
  /// options (the server path: cached plans, per-session knobs). The
  /// sql-taking overload above analyzes/optimizes under the context's own
  /// options, then delegates here.
  Result<ExplainAnalyzeResult> ExplainAnalyzePlan(
      const ir::IrPlan& plan, const runtime::ExecutionOptions& exec);

  /// Analyze + optimize, returning the plan (benchmark harness hook:
  /// optimize once, execute many times).
  Result<ir::IrPlan> Prepare(const std::string& sql,
                             optimizer::OptimizationReport* report = nullptr);
  /// Executes a prepared plan.
  Result<relational::Table> ExecutePlan(const ir::IrPlan& plan,
                                        runtime::ExecutionStats* stats = nullptr);

  // -- Component access -------------------------------------------------------
  // The server layer (src/server) builds its per-session query pipeline out
  // of these components directly instead of going through Query(): the
  // catalog, session cache, and executor are safe to share across
  // concurrent sessions, while the analyzer is stateless and the optimizer
  // is serialized by the server (its options carry per-query parallelism
  // targets). Query()/Explain() themselves are NOT thread-safe against
  // concurrent use of the same context — route concurrent traffic through
  // a server::QueryServer.
  relational::Catalog& catalog() { return catalog_; }
  const relational::Catalog& catalog() const { return catalog_; }
  frontend::StaticAnalyzer& analyzer() { return analyzer_; }
  optimizer::CrossOptimizer& cross_optimizer() { return optimizer_; }
  nnrt::SessionCache& session_cache() { return session_cache_; }
  runtime::PlanExecutor& executor() { return executor_; }
  runtime::ExecutionOptions& execution_options() { return options_.execution; }
  optimizer::OptimizerOptions& optimizer_options() {
    return optimizer_.mutable_options();
  }

 private:
  /// Keeps the optimizer's costing parallelism following
  /// execution_options().parallelism unless the caller pinned an explicit
  /// optimizer.target_parallelism at construction.
  void SyncOptimizerParallelism();

  RavenOptions options_;
  relational::Catalog catalog_;
  nnrt::SessionCache session_cache_;
  frontend::StaticAnalyzer analyzer_;
  optimizer::CrossOptimizer optimizer_;
  runtime::PlanExecutor executor_;
  bool optimizer_parallelism_auto_ = true;
};

}  // namespace raven

#endif  // RAVEN_RAVEN_RAVEN_H_
