#include "runtime/plan_executor.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "relational/block_table.h"
#include "relational/operators.h"
#include "runtime/worker_pool.h"

namespace raven::runtime {
namespace {

using ir::IrNode;
using ir::IrOpKind;
using relational::OperatorPtr;
using relational::OrderedChunk;
using relational::Table;

bool PlanContains(const IrNode* root, IrOpKind kind) {
  bool found = false;
  ir::VisitIr(root, [&](const IrNode* node) {
    if (node->kind == kind) found = true;
  });
  return found;
}

/// Orchestrates one morsel-parallel execution: owns the shared state the
/// worker trees read, the materialized intermediates, and the pipeline
/// schedule (aggregates bottom-up, join builds before their probes, root
/// pipeline last).
class MorselExecutor {
 public:
  MorselExecutor(RuntimeContext base_ctx, std::int64_t workers)
      : base_ctx_(std::move(base_ctx)) {
    state_.num_workers = std::max<std::int64_t>(1, workers);
    state_.morsel_rows = base_ctx_.options.morsel_rows > 0
                             ? base_ctx_.options.morsel_rows
                             : relational::kChunkSize;
    base_ctx_.parallel = &state_;
  }

  Result<Table> Execute(const IrNode& root) {
    // Pipeline breakers (scalar aggregates, grouped aggregates, sorts) run
    // each (deepest first) as their own parallel pipeline; the result is
    // spliced in as a materialized source for everything above it.
    std::vector<const IrNode*> breakers;
    CollectBreakersPostOrder(&root, &breakers);
    for (const IrNode* breaker : breakers) {
      switch (breaker->kind) {
        case IrOpKind::kAggregate:
          RAVEN_RETURN_IF_ERROR(MaterializeAggregate(breaker));
          break;
        case IrOpKind::kGroupBy:
          RAVEN_RETURN_IF_ERROR(MaterializeGroupBy(breaker));
          break;
        case IrOpKind::kOrderBy:
          RAVEN_RETURN_IF_ERROR(MaterializeOrderBy(breaker));
          break;
        default:
          return Status::Internal("unexpected breaker kind");
      }
    }
    auto it = state_.materialized.find(&root);
    if (it != state_.materialized.end()) {  // root = breaker
      // Materialized intermediates keep their schema even at zero rows (so
      // parent operators can resolve ordinals at Open time); as a query
      // result, zero rows renders column-less, exactly like a sequential
      // run whose root operator emitted no chunks.
      if (it->second->num_rows() == 0) return Table();
      return *it->second;
    }
    return RunPipeline(root, /*has_sink=*/false);
  }

  std::int64_t morsels_dispensed() const { return morsels_dispensed_; }

 private:
  static void CollectBreakersPostOrder(const IrNode* node,
                                       std::vector<const IrNode*>* out) {
    for (const auto& child : node->children) {
      CollectBreakersPostOrder(child.get(), out);
    }
    if (node->kind == IrOpKind::kAggregate ||
        node->kind == IrOpKind::kGroupBy ||
        node->kind == IrOpKind::kOrderBy) {
      out->push_back(node);
    }
  }

  Status Materialize(const IrNode* node, Table result) {
    owned_.push_back(std::move(result));
    state_.materialized[node] = &owned_.back();
    return Status::OK();
  }

  Status MaterializeAggregate(const IrNode* agg) {
    auto sink = std::make_shared<relational::SharedAggregateState>(
        ToAggregateSpecs(agg->aggregates));
    state_.agg_sinks[agg] = sink;
    auto drained = RunPipeline(*agg, /*has_sink=*/true);
    state_.agg_sinks.erase(agg);
    RAVEN_RETURN_IF_ERROR(drained.status());
    relational::DataChunk final_chunk = sink->FinalChunk();
    Table result;
    for (std::size_t c = 0; c < final_chunk.names.size(); ++c) {
      RAVEN_RETURN_IF_ERROR(result.AddNumericColumn(
          final_chunk.names[c], std::move(final_chunk.cols[c])));
    }
    return Materialize(agg, std::move(result));
  }

  /// Morsel-parallel hash GROUP BY: every worker pre-aggregates its morsels
  /// into a thread-local table and merges once into the shared lock-striped
  /// table; the merged result (ascending key order) becomes a materialized
  /// source.
  Status MaterializeGroupBy(const IrNode* group) {
    auto sink = std::make_shared<relational::SharedGroupByState>(
        ToGroupBySpec(*group));
    state_.group_sinks[group] = sink;
    auto drained = RunPipeline(*group, /*has_sink=*/true);
    state_.group_sinks.erase(group);
    RAVEN_RETURN_IF_ERROR(drained.status());
    RAVEN_ASSIGN_OR_RETURN(Table result, sink->FinalTable());
    return Materialize(group, std::move(result));
  }

  /// ORDER BY as a gather-and-sort breaker: the child pipeline runs
  /// morsel-parallel, the provenance merge restores sequential row order,
  /// and one stable sort then yields output identical to a sequential run.
  Status MaterializeOrderBy(const IrNode* order) {
    Table gathered;
    auto mat = state_.materialized.find(order->children[0].get());
    if (mat != state_.materialized.end()) {
      // Child is itself a materialized breaker (e.g. ORDER BY directly over
      // GROUP BY): steal its table instead of spinning up a copy pipeline.
      // The plan is a tree, so once the OrderBy result supersedes it no
      // other pipeline can scan the child's entry — the const_cast moves
      // out of a table this executor owns (it lives in owned_).
      gathered = std::move(*const_cast<Table*>(mat->second));
      state_.materialized.erase(mat);
    } else {
      RAVEN_ASSIGN_OR_RETURN(gathered,
                             RunPipeline(*order->children[0],
                                         /*has_sink=*/false));
    }
    RAVEN_ASSIGN_OR_RETURN(
        Table sorted,
        relational::SortTable(std::move(gathered),
                              ToSortSpecs(order->sort_keys)));
    return Materialize(order, std::move(sorted));
  }

  /// Runs the build side of every join in the pipeline rooted at `node`
  /// (bottom-up) and registers the finalized shared hash tables, so the
  /// pipeline's worker trees probe instead of re-building.
  Status PrepareJoinBuilds(const IrNode* node) {
    if (state_.materialized.count(node) > 0) return Status::OK();
    if (node->kind == IrOpKind::kJoin) {
      RAVEN_RETURN_IF_ERROR(PrepareJoinBuilds(node->children[0].get()));
      // Nested joins inside the build subtree run as part of its pipeline.
      RAVEN_RETURN_IF_ERROR(PrepareJoinBuilds(node->children[1].get()));
      auto build = std::make_shared<relational::JoinBuildState>(
          node->right_key, state_.num_workers);
      RAVEN_RETURN_IF_ERROR(
          RunBuildPipeline(*node->children[1], build.get()));
      RAVEN_RETURN_IF_ERROR(build->FinalizeBuild());
      state_.join_builds[node] = std::move(build);
      return Status::OK();
    }
    for (const auto& child : node->children) {
      RAVEN_RETURN_IF_ERROR(PrepareJoinBuilds(child.get()));
    }
    return Status::OK();
  }

  /// Registers a fresh morsel queue for every scan source of the pipeline
  /// rooted at `node` (table scans and materialized intermediates), keyed
  /// by node identity and ordered by visit order so merged output matches
  /// sequential execution.
  Status AssignScanQueues(const IrNode* node, std::int64_t* ordinal) {
    auto add_queue = [&](const IrNode* source,
                         std::int64_t rows) {
      auto queue = std::make_shared<MorselQueue>(rows, state_.morsel_rows);
      morsels_dispensed_ += queue->num_morsels();
      state_.scan_queues[source] = {std::move(queue), (*ordinal)++};
    };
    auto mat = state_.materialized.find(node);
    if (mat != state_.materialized.end()) {
      add_queue(node, mat->second->num_rows());
      return Status::OK();
    }
    if (node->kind == IrOpKind::kTableScan) {
      if (base_ctx_.catalog->HasDiskTable(node->table_name)) {
        // Disk tables use the BLOCK as the morsel unit: a block-aligned
        // queue means each morsel decodes exactly one block, each block is
        // claimed by exactly one worker, and the (source, block) order key
        // reproduces sequential row order byte-identically.
        RAVEN_ASSIGN_OR_RETURN(
            auto disk, base_ctx_.catalog->GetDiskTable(node->table_name));
        auto queue = std::make_shared<MorselQueue>(disk->num_rows(),
                                                   disk->block_rows());
        morsels_dispensed_ += queue->num_morsels();
        state_.scan_queues[node] = {std::move(queue), (*ordinal)++};
        return Status::OK();
      }
      RAVEN_ASSIGN_OR_RETURN(const Table* table,
                             base_ctx_.catalog->GetTable(node->table_name));
      add_queue(node, table->num_rows());
      return Status::OK();
    }
    if (node->kind == IrOpKind::kJoin &&
        state_.join_builds.count(node) > 0) {
      // Build side already ran as its own pipeline; only the probe side
      // feeds this one.
      return AssignScanQueues(node->children[0].get(), ordinal);
    }
    for (const auto& child : node->children) {
      RAVEN_RETURN_IF_ERROR(AssignScanQueues(child.get(), ordinal));
    }
    return Status::OK();
  }

  /// Spawns the worker trees for the pipeline rooted at `root` and invokes
  /// `consume(worker, tree)` on each worker's thread to drain it.
  Status RunWorkers(
      const IrNode& root,
      const std::function<Status(std::int64_t, relational::PhysicalOperator*)>&
          consume) {
    state_.scan_queues.clear();
    std::int64_t ordinal = 0;
    RAVEN_RETURN_IF_ERROR(AssignScanQueues(&root, &ordinal));
    std::mutex error_mu;
    Status first_error = Status::OK();
    TaskGroup group;
    for (std::int64_t w = 0; w < state_.num_workers; ++w) {
      group.Spawn([this, w, &root, &consume, &error_mu, &first_error] {
        RuntimeContext ctx = base_ctx_;
        ctx.worker_id = w;
        Status status = Status::OK();
        auto tree = BuildPhysicalPlan(root, ctx);
        if (!tree.ok()) {
          status = tree.status();
        } else {
          status = consume(w, tree.value().get());
        }
        if (!status.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = status;
        }
      });
    }
    group.Wait();
    return first_error;
  }

  /// Drains `build_root`'s worker trees into the shared join build state.
  Status RunBuildPipeline(const IrNode& build_root,
                          relational::JoinBuildState* build) {
    return RunWorkers(
        build_root,
        [build](std::int64_t worker,
                relational::PhysicalOperator* tree) -> Status {
          RAVEN_RETURN_IF_ERROR(tree->Open());
          relational::DataChunk chunk;
          while (true) {
            RAVEN_ASSIGN_OR_RETURN(bool more, tree->Next(&chunk));
            if (!more) return Status::OK();
            // Moved-from chunk is fine: every operator's Next overwrites
            // names/cols before use.
            RAVEN_RETURN_IF_ERROR(build->Append(worker, std::move(chunk)));
          }
        });
  }

  /// Runs the pipeline rooted at `root` to completion. With `has_sink` set
  /// the pipeline's worker trees end in partial-aggregate (scalar or
  /// grouped) sinks and emit no rows; otherwise the workers' chunks are
  /// merged in morsel order.
  Result<Table> RunPipeline(const IrNode& root, bool has_sink) {
    RAVEN_RETURN_IF_ERROR(PrepareJoinBuilds(&root));
    std::vector<std::vector<OrderedChunk>> per_worker(
        static_cast<std::size_t>(state_.num_workers));
    RAVEN_RETURN_IF_ERROR(RunWorkers(
        root, [&per_worker](std::int64_t worker,
                            relational::PhysicalOperator* tree) -> Status {
          return relational::DrainOrdered(
              tree, &per_worker[static_cast<std::size_t>(worker)]);
        }));
    if (has_sink) return Table();  // result lives in the shared sink
    return relational::MergeOrderedChunks(std::move(per_worker));
  }

  RuntimeContext base_ctx_;
  ParallelExecState state_;
  std::deque<Table> owned_;  // materialized aggregate outputs (stable ptrs)
  std::int64_t morsels_dispensed_ = 0;
};

/// Orchestrates one distributed execution: ships every distributable
/// fragment to the worker pool (one leaf-scan partition per worker, merged
/// back in range order), then executes the in-process remainder over the
/// materialized fragment tables. Owns the retry-then-fallback policy that
/// keeps a query correct through worker deaths.
class DistributedExecutor {
 public:
  DistributedExecutor(RuntimeContext base_ctx, WorkerPool* pool,
                      std::int64_t trace_parent = 0)
      : base_ctx_(std::move(base_ctx)),
        pool_(pool),
        trace_parent_(trace_parent) {}

  Result<Table> Execute(const IrNode& original_root) {
    // Work on a clone: fragment subtrees are spliced out of the tree below,
    // and the caller's plan must stay reusable.
    ir::IrNodePtr root = original_root.Clone();
    std::vector<const IrNode*> fragments;
    ir::CollectDistributableFragments(*root, &fragments);
    std::unordered_map<const IrNode*, std::string> splice_names;
    relational::Catalog overlay;
    for (std::size_t i = 0; i < fragments.size(); ++i) {
      RAVEN_ASSIGN_OR_RETURN(Table result, ExecuteFragment(*fragments[i]));
      if (fragments[i] == root.get()) return result;  // whole plan shipped
      if (result.num_columns() == 0) {
        // Every row died inside the fragment, so the workers sent back
        // column-less tables. The remainder's operators still resolve
        // their column ordinals against this table at Open time: restore
        // the fragment's schema (zero rows) from an in-process build of
        // its operator tree.
        RAVEN_ASSIGN_OR_RETURN(auto tree,
                               BuildPhysicalPlan(*fragments[i], base_ctx_));
        RAVEN_RETURN_IF_ERROR(tree->Open());
        RAVEN_ASSIGN_OR_RETURN(std::vector<std::string> names,
                               tree->OutputColumns());
        for (const auto& col : names) {
          RAVEN_RETURN_IF_ERROR(result.AddNumericColumn(col, {}));
        }
      }
      const std::string name = "__raven_fragment_" + std::to_string(i);
      RAVEN_RETURN_IF_ERROR(overlay.RegisterTable(name, std::move(result)));
      splice_names[fragments[i]] = name;
    }
    SpliceFragments(&root, splice_names);
    // The remainder (joins, aggregates, sorts, limits — everything above
    // the fragments) executes sequentially in-process. Every original leaf
    // scan lives inside some fragment, so the overlay catalog is the
    // remainder's complete universe.
    RuntimeContext ctx = base_ctx_;
    ctx.catalog = &overlay;
    RAVEN_ASSIGN_OR_RETURN(auto tree, BuildPhysicalPlan(*root, ctx));
    return relational::MaterializeAll(tree.get());
  }

 private:
  static void SpliceFragments(
      ir::IrNodePtr* node,
      const std::unordered_map<const IrNode*, std::string>& names) {
    auto it = names.find(node->get());
    if (it != names.end()) {
      *node = IrNode::TableScan(it->second);
      return;
    }
    for (auto& child : (*node)->children) {
      SpliceFragments(&child, names);
    }
  }

  void CountFrame(const std::string& frame) {
    if (base_ctx_.stats == nullptr) return;
    base_ctx_.stats->frames_sent.fetch_add(1, std::memory_order_relaxed);
    base_ctx_.stats->bytes_shipped.fetch_add(
        static_cast<std::int64_t>(frame.size()), std::memory_order_relaxed);
  }

  void CountReceived(std::int64_t bytes) {
    if (base_ctx_.stats == nullptr) return;
    base_ctx_.stats->bytes_shipped.fetch_add(bytes,
                                             std::memory_order_relaxed);
  }

  /// Executes the fragment in-process over the full scan table (used for
  /// empty scans, where partitioning has nothing to hand out).
  Result<Table> ExecuteFragmentInProcess(const IrNode& fragment) {
    RAVEN_ASSIGN_OR_RETURN(auto tree,
                           BuildPhysicalPlan(fragment, base_ctx_));
    return relational::MaterializeAll(tree.get());
  }

  Result<Table> ExecuteFragment(const IrNode& fragment) {
    const IrNode* leaf = &fragment;
    while (leaf->kind != IrOpKind::kTableScan) {
      leaf = leaf->children[0].get();
    }
    // Disk tables distribute the same way as in-memory ones: the leaf
    // partition materializes (ReadRows) before shipping, so pool workers
    // stay storage-agnostic and partition outputs concatenate in the same
    // range order either way.
    const Table* table = nullptr;
    std::shared_ptr<const relational::BlockTable> disk;
    auto mem = base_ctx_.catalog->GetTable(leaf->table_name);
    if (mem.ok()) {
      table = *mem;
    } else {
      RAVEN_ASSIGN_OR_RETURN(
          disk, base_ctx_.catalog->GetDiskTable(leaf->table_name));
    }
    const std::int64_t rows = table != nullptr ? table->num_rows()
                                               : disk->num_rows();
    const std::int64_t workers = pool_->num_workers();
    if (rows == 0) return ExecuteFragmentInProcess(fragment);
    BinaryWriter plan_writer;
    RAVEN_RETURN_IF_ERROR(ir::SerializeFragment(fragment, &plan_writer));
    const std::string plan_bytes = plan_writer.Release();

    // One contiguous partition per worker (the first `rows % workers`
    // partitions absorb the remainder); concatenating partition outputs in
    // range order reproduces the sequential row order exactly. Only the
    // encoded frame is kept per partition — it already embeds the slice,
    // and the fallback path re-decodes it rather than holding a second
    // copy of the shipped bytes alive for the whole execution.
    struct Partition {
      std::int64_t worker = 0;
      std::int64_t begin = 0;
      std::int64_t end = 0;
      std::int64_t exchange_span = 0;  ///< tracing only; 0 = untraced
      std::string frame;
      Result<Table> result = Status::Internal("not executed");
    };
    std::deque<Partition> partitions;
    const std::int64_t base = rows / workers;
    const std::int64_t extra = rows % workers;
    std::int64_t begin = 0;
    for (std::int64_t w = 0; w < workers && begin < rows; ++w) {
      const std::int64_t size = base + (w < extra ? 1 : 0);
      if (size == 0) continue;
      Partition part;
      part.worker = w;
      part.begin = begin;
      part.end = begin + size;
      FragmentRequest request;
      request.plan_bytes = plan_bytes;
      request.table_name = leaf->table_name;
      request.range_begin = begin;
      request.range_end = begin + size;
      BinaryWriter table_writer;
      if (table != nullptr) {
        table->SliceRows(begin, begin + size).Serialize(&table_writer);
      } else {
        RAVEN_ASSIGN_OR_RETURN(Table slice,
                               disk->ReadRows(begin, begin + size));
        slice.Serialize(&table_writer);
      }
      request.table_bytes = table_writer.Release();
      if (obs::Trace* trace = base_ctx_.options.trace; trace != nullptr) {
        // The exchange span opens before the frame encodes so its id can
        // ride in the frame header — the worker echoes it, which is what
        // lets a retried partition's spans stay attributable.
        part.exchange_span = trace->StartSpan("exchange", trace_parent_);
        request.trace_enabled = true;
        request.trace_id = static_cast<std::uint64_t>(part.exchange_span);
      }
      part.frame = EncodeFragmentRequest(request);
      partitions.push_back(std::move(part));
      begin += size;
    }

    TaskGroup group;
    for (auto& part : partitions) {
      group.Spawn([this, &part, leaf] {
        part.result = RunPartition(part.frame, leaf->table_name, part.begin,
                                   part.end, part.worker,
                                   part.exchange_span);
      });
    }
    group.Wait();

    std::vector<Table> pieces;
    pieces.reserve(partitions.size());
    for (auto& part : partitions) {
      if (!part.result.ok()) return part.result.status();
      pieces.push_back(std::move(part.result).value());
    }
    // Schema divergence across partitions (a worker sent garbage that
    // still decoded) fails here rather than corrupting the merge.
    return relational::ConcatTables(std::move(pieces));
  }

  /// One partition's lifecycle: try the assigned worker; on any failure
  /// replace that worker and retry the identical frame once (frames are
  /// self-contained, so a resend is safe); if the retry also fails, decode
  /// the frame back and execute the partition in-process — the same decode
  /// path a worker uses. The partition therefore always completes — the
  /// failure mode is a diagnosable slowdown, never a wrong answer or a
  /// hang.
  Result<Table> RunPartition(const std::string& frame,
                             const std::string& table_name,
                             std::int64_t range_begin, std::int64_t range_end,
                             std::int64_t worker,
                             std::int64_t exchange_span) {
    obs::Trace* trace = base_ctx_.options.trace;
    const std::string range_detail =
        "worker=" + std::to_string(worker) + " table=" + table_name +
        " range=[" + std::to_string(range_begin) + "," +
        std::to_string(range_end) + ")";
    CountFrame(frame);
    // `active_span` tracks whichever exchange attempt is currently open
    // (the original exchange, then possibly the retry); worker span trees
    // splice under it, and base time re-bases worker-relative times onto
    // the coordinator clock.
    std::int64_t active_span = exchange_span;
    std::int64_t attempt_base = trace != nullptr ? trace->NowMicros() : 0;
    auto attempt = pool_->ExecuteFragment(worker, frame);
    if (!attempt.ok()) {
      if (trace != nullptr) {
        trace->EndSpan(active_span, range_detail + " error=\"" +
                                        attempt.status().ToString() + "\"");
        active_span = 0;
      }
      RAVEN_LOG(Warning) << "distributed partition [" << range_begin << ", "
                         << range_end << ") of " << table_name
                         << " failed on worker " << worker << ": "
                         << attempt.status().ToString()
                         << "; retrying on a fresh worker";
      Status restarted = pool_->RestartWorker(worker);
      if (restarted.ok()) {
        if (base_ctx_.stats != nullptr) {
          base_ctx_.stats->worker_restarts.fetch_add(
              1, std::memory_order_relaxed);
        }
        if (trace != nullptr) {
          active_span = trace->StartSpan("exchange.retry", trace_parent_);
          attempt_base = trace->NowMicros();
        }
        CountFrame(frame);
        attempt = pool_->ExecuteFragment(worker, frame);
      } else {
        attempt = restarted;
      }
    }
    if (attempt.ok()) {
      CountReceived(attempt->bytes_received);
      auto table = attempt->ToTable();
      if (table.ok()) {
        if (trace != nullptr) {
          if (!attempt->trace_spans.empty()) {
            auto worker_spans =
                obs::Trace::DeserializeSpans(attempt->trace_spans);
            if (worker_spans.ok()) {
              trace->Splice(active_span, attempt_base, worker_spans.value());
            }
          }
          trace->EndSpan(active_span,
                         range_detail + " rows=" +
                             std::to_string(attempt->result_rows) +
                             " bytes=" +
                             std::to_string(attempt->bytes_received));
        }
        return table;
      }
      attempt = table.status();
    }
    if (trace != nullptr && active_span != 0) {
      trace->EndSpan(active_span, range_detail + " error=\"" +
                                      attempt.status().ToString() + "\"");
    }
    RAVEN_LOG(Warning) << "distributed partition [" << range_begin << ", "
                       << range_end << ") of " << table_name
                       << " exhausted its retry; executing in-process: "
                       << attempt.status().ToString();
    RAVEN_ASSIGN_OR_RETURN(FragmentRequest request,
                           DecodeFragmentRequest(frame));
    if (trace == nullptr) {
      return ExecuteFragmentLocally(request, base_ctx_.session_cache);
    }
    // The fallback runs through the same decode+execute path a worker
    // would, so it records into its own local arena and splices — exactly
    // like a worker's shipped span tree, minus the pipe.
    const std::int64_t fallback_span =
        trace->StartSpan("local_fallback", trace_parent_);
    const std::int64_t fallback_base = trace->NowMicros();
    obs::Trace local;
    auto result =
        ExecuteFragmentLocally(request, base_ctx_.session_cache, &local);
    trace->Splice(fallback_span, fallback_base, local.Snapshot());
    trace->EndSpan(fallback_span,
                   range_detail +
                       (result.ok() ? "" : " error=\"" +
                                               result.status().ToString() +
                                               "\""));
    return result;
  }

  RuntimeContext base_ctx_;
  WorkerPool* pool_;
  std::int64_t trace_parent_ = 0;
};

}  // namespace

PlanExecutor::PlanExecutor(const relational::Catalog* catalog,
                           nnrt::SessionCache* session_cache)
    : catalog_(catalog), session_cache_(session_cache) {}

PlanExecutor::~PlanExecutor() = default;

std::shared_ptr<WorkerPool> PlanExecutor::worker_pool() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return pool_;
}

std::shared_ptr<WorkerPool> PlanExecutor::EnsurePool(
    const ExecutionOptions& options) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  WorkerPoolOptions want;
  want.num_workers = std::max<std::int64_t>(1, options.distributed_workers);
  want.external = options.external;
  want.frame_timeout_millis = options.distributed_frame_timeout_millis;
  if (pool_ != nullptr && pool_->running() &&
      pool_->options().SameSpawnConfig(want)) {
    // The timeout is a per-query option, not spawn configuration: follow
    // it on the warm pool instead of silently keeping the first query's.
    pool_->set_frame_timeout_millis(want.frame_timeout_millis);
    return pool_;
  }
  // Replacing the member does not stop a pool another session's in-flight
  // query still holds: shared ownership keeps it (and its workers) alive
  // until that query's last exchange completes.
  auto fresh = std::make_shared<WorkerPool>();
  Status started = fresh->Start(want);
  if (!started.ok()) {
    RAVEN_LOG(Warning) << "distributed worker pool unavailable, executing "
                       << "in-process: " << started.ToString();
    pool_.reset();
    return nullptr;
  }
  pool_ = std::move(fresh);
  return pool_;
}

Result<Table> PlanExecutor::Execute(const ir::IrPlan& plan,
                                    const ExecutionOptions& options,
                                    ExecutionStats* stats) {
  if (plan.root() == nullptr) {
    return Status::InvalidArgument("cannot execute an empty plan");
  }
  StatsCollector collector;
  RuntimeContext ctx;
  ctx.catalog = catalog_;
  ctx.session_cache = session_cache_;
  ctx.options = options;
  // A trace needs operator slots even when the caller passes no stats
  // sink: operator spans render from the collector at the end.
  obs::Trace* trace = options.trace;
  ctx.stats = (stats != nullptr || trace != nullptr) ? &collector : nullptr;

  const std::int64_t exec_start =
      trace != nullptr ? trace->NowMicros() : 0;
  const std::int64_t exec_span =
      trace != nullptr ? trace->StartSpan("execute") : 0;
  std::string exec_detail;
  Result<Table> result = Status::Internal("not executed");
  bool executed = false;

  // Distributed execution ships the plan's distributable fragments to the
  // persistent worker pool and runs the remainder in-process. If the pool
  // cannot start (no worker binary), the query degrades to the in-process
  // paths below rather than failing.
  if (options.mode == ExecutionMode::kDistributed) {
    std::shared_ptr<WorkerPool> pool = EnsurePool(options);
    if (pool != nullptr) {
      DistributedExecutor dexec(ctx, pool.get(), exec_span);
      result = dexec.Execute(*plan.root());
      collector.partitions_used.store(pool->num_workers());
      exec_detail = "mode=distributed workers=" +
                    std::to_string(pool->num_workers());
      executed = true;
    }
  }

  if (!executed) {
    // Morsel-parallel execution covers every in-process plan shape except:
    // LIMIT (an ordered early-out — splitting it across workers changes
    // which rows survive) and opaque pipelines (each worker tree would boot
    // its own external process).
    const bool parallel =
        options.parallelism > 1 &&
        (options.mode == ExecutionMode::kInProcess ||
         options.mode == ExecutionMode::kDistributed) &&
        !PlanContains(plan.root(), IrOpKind::kLimit) &&
        !PlanContains(plan.root(), IrOpKind::kOpaquePipeline);

    if (parallel) {
      MorselExecutor executor(ctx, options.parallelism);
      result = executor.Execute(*plan.root());
      collector.partitions_used.store(options.parallelism);
      collector.morsels.store(executor.morsels_dispensed());
      exec_detail = "mode=parallel dop=" + std::to_string(options.parallelism);
    } else {
      auto root_op = BuildPhysicalPlan(*plan.root(), ctx);
      result = root_op.ok()
                   ? relational::MaterializeAll(root_op.value().get())
                   : Result<Table>(root_op.status());
      exec_detail = "mode=sequential";
    }
  }
  if (stats != nullptr) collector.Finalize(stats);
  if (trace != nullptr) {
    // Operator spans are AGGREGATES, not timeline intervals: duration is
    // Open+Next wall time summed across worker clones, anchored at the
    // execute span's start (see docs/OBSERVABILITY.md).
    ExecutionStats rendered;
    collector.Finalize(&rendered);
    for (const OperatorStats& op : rendered.operators) {
      trace->AddSpan(
          "op:" + op.op, exec_span, exec_start,
          static_cast<std::int64_t>(op.wall_micros + op.open_micros),
          "rows=" + std::to_string(op.rows) +
              " chunks=" + std::to_string(op.chunks) +
              " open_micros=" + std::to_string(
                  static_cast<std::int64_t>(op.open_micros)) +
              " work_micros=" + std::to_string(
                  static_cast<std::int64_t>(op.wall_micros)));
    }
    if (!result.ok()) {
      exec_detail += " error=\"" + result.status().ToString() + "\"";
    }
    trace->EndSpan(exec_span, exec_detail);
  }
  return result;
}

}  // namespace raven::runtime
