#ifndef RAVEN_COMMON_SERIALIZE_H_
#define RAVEN_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace raven {

/// Append-only little-endian binary writer. Used for the NNRT model format,
/// the ML model store, and the out-of-process wire protocol.
class BinaryWriter {
 public:
  void WriteU8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU32(std::uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(std::uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(std::int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(std::int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  /// Length-prefixed string.
  void WriteString(const std::string& s) {
    WriteU32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }

  void WriteF64Vector(const std::vector<double>& v) {
    WriteU64(v.size());
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(double));
  }
  void WriteF32Vector(const std::vector<float>& v) {
    WriteU64(v.size());
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(float));
  }
  void WriteI32Vector(const std::vector<std::int32_t>& v) {
    WriteU64(v.size());
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(std::int32_t));
  }
  void WriteI64Vector(const std::vector<std::int64_t>& v) {
    WriteU64(v.size());
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(std::int64_t));
  }
  void WriteStringVector(const std::vector<std::string>& v) {
    WriteU64(v.size());
    for (const auto& s : v) WriteString(s);
  }

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }

 private:
  void WriteRaw(const void* data, std::size_t n) {
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, data, n);
  }

  std::string buf_;
};

/// Bounds-checked reader over a binary buffer produced by BinaryWriter.
/// Every accessor returns Status/Result so corrupt or truncated payloads
/// surface as errors rather than undefined behaviour.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& buf)
      : data_(buf.data()), size_(buf.size()) {}
  BinaryReader(const char* data, std::size_t size)
      : data_(data), size_(size) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<std::int32_t> ReadI32();
  Result<std::int64_t> ReadI64();
  Result<double> ReadF64();
  Result<float> ReadF32();
  Result<bool> ReadBool();
  Result<std::string> ReadString();
  Result<std::vector<double>> ReadF64Vector();
  Result<std::vector<float>> ReadF32Vector();
  Result<std::vector<std::int32_t>> ReadI32Vector();
  Result<std::vector<std::int64_t>> ReadI64Vector();
  Result<std::vector<std::string>> ReadStringVector();

  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status ReadRaw(void* out, std::size_t n);

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace raven

#endif  // RAVEN_COMMON_SERIALIZE_H_
