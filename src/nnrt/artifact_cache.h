#ifndef RAVEN_NNRT_ARTIFACT_CACHE_H_
#define RAVEN_NNRT_ARTIFACT_CACHE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "nnrt/graph.h"
#include "nnrt/graph_optimizer.h"

namespace raven::nnrt {

/// A graph that already went through OptimizeGraph, plus the optimizer's
/// stats so warm-started sessions report what the original compile did.
struct CompiledArtifact {
  Graph graph;
  GraphOptStats opt_stats;
};

/// On-disk cache of compiled (optimized) NNRT graphs, keyed by
/// `IrNode::nn_graph_fingerprint` — the rwkv-qualcomm saveBinary /
/// createFromBinary idiom. One immutable file per fingerprint under `dir`
/// (`nn_<fingerprint-hex>.rnna`); writers stage to a unique temp file and
/// rename() into place, so concurrent servers and workers sharing a
/// directory never observe partial artifacts. There is no in-process
/// eviction: files are content-addressed and tiny (the serialized graph),
/// so operators prune the directory externally (see docs/OPERATIONS.md).
///
/// Load() rejects — rather than trusts — anything suspicious: bad magic,
/// future format version, fingerprint mismatch, truncation, or checksum
/// failure all come back as errors so SessionCache falls back to a fresh
/// compile and rewrites the artifact.
///
/// Fingerprints come from std::hash over the serialized graph bytes, so
/// artifacts are valid only for the same binary/build that wrote them;
/// kFormatVersion bumps whenever the graph serialization format changes.
class ArtifactCache {
 public:
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Creates `dir` (and parents) lazily on first Store.
  explicit ArtifactCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Path the artifact for `fingerprint` lives at (whether or not it exists).
  std::string PathFor(std::uint64_t fingerprint) const;

  /// NotFound when no artifact exists; any other error means the file is
  /// present but unusable (corrupt/truncated/stale) and should be recompiled.
  Result<CompiledArtifact> Load(std::uint64_t fingerprint) const;

  /// Atomically persists an optimized graph (temp file + rename). Safe to
  /// race from multiple threads and processes; last writer wins with an
  /// identical payload.
  Status Store(std::uint64_t fingerprint, const Graph& graph,
               const GraphOptStats& opt_stats) const;

 private:
  std::string dir_;
};

/// Fingerprint of a serialized NNRT graph: std::hash of the bytes with 0
/// remapped to 1 (0 means "no fingerprint" throughout the engine). The same
/// function ir.cc stamps into IrNode::nn_graph_fingerprint, exposed here so
/// raven_worker derives identical artifact keys from received model bytes.
std::uint64_t FingerprintGraphBytes(const std::string& bytes);

}  // namespace raven::nnrt

#endif  // RAVEN_NNRT_ARTIFACT_CACHE_H_
