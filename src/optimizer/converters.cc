#include "optimizer/converters.h"

#include <cmath>

namespace raven::optimizer {
namespace {

using ml::FeatureProvenance;
using ml::ModelPipeline;
using ml::PredictorKind;
using ml::TransformKind;
using nnrt::Graph;
using nnrt::Node;

/// Emits the featurization stage; returns the value name holding the
/// [n, F] feature matrix.
std::string EmitFeaturizer(const ModelPipeline& pipeline, Graph* graph) {
  if (pipeline.featurizer.branches().empty()) return "X";
  std::vector<std::string> parts;
  for (const auto& branch : pipeline.featurizer.branches()) {
    switch (branch.kind) {
      case TransformKind::kIdentity: {
        const std::string out = graph->FreshValueName("identity");
        Node node;
        node.op_type = "GatherColumns";
        node.name = graph->FreshValueName("op_gather");
        node.inputs = {"X"};
        node.outputs = {out};
        node.attrs["indices"] = branch.input_columns;
        graph->AddNode(std::move(node));
        parts.push_back(out);
        break;
      }
      case TransformKind::kScaler: {
        const std::string gathered = graph->FreshValueName("scaled_in");
        Node gather;
        gather.op_type = "GatherColumns";
        gather.name = graph->FreshValueName("op_gather");
        gather.inputs = {"X"};
        gather.outputs = {gathered};
        gather.attrs["indices"] = branch.input_columns;
        graph->AddNode(std::move(gather));
        const std::string out = graph->FreshValueName("scaled");
        Node scaler;
        scaler.op_type = "Scaler";
        scaler.name = graph->FreshValueName("op_scaler");
        scaler.inputs = {gathered};
        scaler.outputs = {out};
        scaler.attrs["offset"] = branch.scaler.mean();
        scaler.attrs["scale"] = branch.scaler.scale();
        graph->AddNode(std::move(scaler));
        parts.push_back(out);
        break;
      }
      case TransformKind::kOneHot: {
        // One OneHot op per column; restricted codes add a GatherColumns.
        for (std::size_t c = 0; c < branch.input_columns.size(); ++c) {
          const std::string col_val = graph->FreshValueName("cat");
          Node gather;
          gather.op_type = "GatherColumns";
          gather.name = graph->FreshValueName("op_gather");
          gather.inputs = {"X"};
          gather.outputs = {col_val};
          gather.attrs["indices"] =
              std::vector<std::int64_t>{branch.input_columns[c]};
          graph->AddNode(std::move(gather));
          const std::int64_t card = branch.onehot.cardinalities()[c];
          const std::string onehot_out = graph->FreshValueName("onehot");
          Node onehot;
          onehot.op_type = "OneHot";
          onehot.name = graph->FreshValueName("op_onehot");
          onehot.inputs = {col_val};
          onehot.outputs = {onehot_out};
          onehot.attrs["depth"] = card;
          graph->AddNode(std::move(onehot));
          const auto emitted = branch.onehot.EmittedCodes(c);
          if (static_cast<std::int64_t>(emitted.size()) == card) {
            parts.push_back(onehot_out);
          } else {
            const std::string restricted = graph->FreshValueName("onehot_kept");
            Node restrict_node;
            restrict_node.op_type = "GatherColumns";
            restrict_node.name = graph->FreshValueName("op_gather");
            restrict_node.inputs = {onehot_out};
            restrict_node.outputs = {restricted};
            restrict_node.attrs["indices"] = emitted;
            graph->AddNode(std::move(restrict_node));
            parts.push_back(restricted);
          }
        }
        break;
      }
    }
  }
  if (parts.size() == 1) return parts[0];
  const std::string out = graph->FreshValueName("features");
  Node concat;
  concat.op_type = "Concat";
  concat.name = graph->FreshValueName("op_concat");
  concat.inputs = parts;
  concat.outputs = {out};
  graph->AddNode(std::move(concat));
  return out;
}

void EmitGemm(Graph* graph, const std::string& input, Tensor weights,
              Tensor bias, const std::string& output) {
  const std::string w_name = graph->FreshValueName("W");
  const std::string b_name = graph->FreshValueName("b");
  graph->AddInitializer(w_name, std::move(weights));
  graph->AddInitializer(b_name, std::move(bias));
  Node gemm;
  gemm.op_type = "Gemm";
  gemm.name = graph->FreshValueName("op_gemm");
  gemm.inputs = {input, w_name, b_name};
  gemm.outputs = {output};
  graph->AddNode(std::move(gemm));
}

void EmitUnary(Graph* graph, const char* op, const std::string& input,
               const std::string& output) {
  Node node;
  node.op_type = op;
  node.name = graph->FreshValueName(std::string("op_") + op);
  node.inputs = {input};
  node.outputs = {output};
  graph->AddNode(std::move(node));
}

/// Hummingbird-style GEMM lowering of one decision tree: three dense
/// layers (feature select, path check, leaf map).
Status EmitTreeAsGemm(Graph* graph, const ml::DecisionTree& tree,
                      std::int64_t num_features, const std::string& feats,
                      const std::string& output) {
  // Collect internal nodes and leaves.
  std::vector<std::int32_t> internals;
  std::vector<std::int32_t> leaves;
  for (std::int32_t i = 0; i < tree.num_nodes(); ++i) {
    if (tree.feature()[static_cast<std::size_t>(i)] >= 0) {
      internals.push_back(i);
    } else {
      leaves.push_back(i);
    }
  }
  const std::int64_t num_internal =
      static_cast<std::int64_t>(internals.size());
  const std::int64_t num_leaves = static_cast<std::int64_t>(leaves.size());
  if (num_internal == 0) {
    // Single-leaf tree: constant output via zero Gemm.
    EmitGemm(graph, feats, Tensor::Zeros({num_features, 1}),
             Tensor::FromVector({tree.value()[static_cast<std::size_t>(
                 tree.root())]}),
             output);
    return Status::OK();
  }
  std::vector<std::int64_t> internal_pos(
      static_cast<std::size_t>(tree.num_nodes()), -1);
  for (std::int64_t i = 0; i < num_internal; ++i) {
    internal_pos[static_cast<std::size_t>(internals[static_cast<std::size_t>(i)])] = i;
  }
  std::vector<std::int64_t> leaf_pos(
      static_cast<std::size_t>(tree.num_nodes()), -1);
  for (std::int64_t l = 0; l < num_leaves; ++l) {
    leaf_pos[static_cast<std::size_t>(leaves[static_cast<std::size_t>(l)])] = l;
  }

  // A [F, I]: selects the tested feature per internal node.
  Tensor a = Tensor::Zeros({num_features, num_internal});
  Tensor b = Tensor::Zeros({num_internal});
  for (std::int64_t i = 0; i < num_internal; ++i) {
    const std::size_t node =
        static_cast<std::size_t>(internals[static_cast<std::size_t>(i)]);
    a.raw()[static_cast<std::int64_t>(tree.feature()[node]) * num_internal +
            i] = 1.0f;
    b.raw()[i] = tree.threshold()[node];
  }
  // C [I, L]: +1 if the leaf is in the internal node's left subtree, -1 if
  // right. D [L]: number of left-edge ancestors. A leaf is reached iff its
  // C-score equals D (any deviation strictly decreases the score).
  Tensor c = Tensor::Zeros({num_internal, num_leaves});
  Tensor d = Tensor::Zeros({num_leaves});
  Tensor e = Tensor::Zeros({num_leaves, 1});
  // Walk from root tracking ancestor directions.
  struct Frame {
    std::int32_t node;
    std::vector<std::pair<std::int64_t, bool>> path;  // (internal pos, left?)
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{tree.root(), {}});
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const std::size_t node = static_cast<std::size_t>(frame.node);
    if (tree.feature()[node] < 0) {
      const std::int64_t l = leaf_pos[node];
      double left_count = 0;
      for (const auto& [pos, left] : frame.path) {
        c.raw()[pos * num_leaves + l] = left ? 1.0f : -1.0f;
        if (left) left_count += 1;
      }
      d.raw()[l] = static_cast<float>(left_count);
      e.raw()[l] = tree.value()[node];
      continue;
    }
    const std::int64_t pos = internal_pos[node];
    Frame left_frame{tree.left()[node], frame.path};
    left_frame.path.emplace_back(pos, true);
    Frame right_frame{tree.right()[node], std::move(frame.path)};
    right_frame.path.emplace_back(pos, false);
    stack.push_back(std::move(left_frame));
    stack.push_back(std::move(right_frame));
  }

  const std::string a_name = graph->FreshValueName("tree_A");
  const std::string b_name = graph->FreshValueName("tree_B");
  const std::string c_name = graph->FreshValueName("tree_C");
  const std::string d_name = graph->FreshValueName("tree_D");
  const std::string e_name = graph->FreshValueName("tree_E");
  graph->AddInitializer(a_name, std::move(a));
  graph->AddInitializer(b_name, std::move(b));
  graph->AddInitializer(c_name, std::move(c));
  graph->AddInitializer(d_name, std::move(d));
  graph->AddInitializer(e_name, std::move(e));

  const std::string t1 = graph->FreshValueName("tree_t1");
  Node mm1;
  mm1.op_type = "MatMul";
  mm1.name = graph->FreshValueName("op_mm");
  mm1.inputs = {feats, a_name};
  mm1.outputs = {t1};
  graph->AddNode(std::move(mm1));

  const std::string t2 = graph->FreshValueName("tree_t2");
  Node le;
  le.op_type = "LessOrEqual";
  le.name = graph->FreshValueName("op_le");
  le.inputs = {t1, b_name};
  le.outputs = {t2};
  graph->AddNode(std::move(le));

  const std::string t3 = graph->FreshValueName("tree_t3");
  Node mm2;
  mm2.op_type = "MatMul";
  mm2.name = graph->FreshValueName("op_mm");
  mm2.inputs = {t2, c_name};
  mm2.outputs = {t3};
  graph->AddNode(std::move(mm2));

  const std::string t4 = graph->FreshValueName("tree_t4");
  Node eq;
  eq.op_type = "Equal";
  eq.name = graph->FreshValueName("op_eq");
  eq.inputs = {t3, d_name};
  eq.outputs = {t4};
  graph->AddNode(std::move(eq));

  Node mm3;
  mm3.op_type = "MatMul";
  mm3.name = graph->FreshValueName("op_mm");
  mm3.inputs = {t4, e_name};
  mm3.outputs = {output};
  graph->AddNode(std::move(mm3));
  return Status::OK();
}

/// Encodes trees as a single TreeEnsemble op (the ONNX-ML level).
void EmitTreeEnsemble(Graph* graph, const std::vector<const ml::DecisionTree*>& trees,
                      bool average, const std::string& feats,
                      const std::string& output) {
  std::vector<float> roots;
  std::vector<float> feature;
  std::vector<float> threshold;
  std::vector<float> left;
  std::vector<float> right;
  std::vector<float> value;
  for (const auto* tree : trees) {
    const float base = static_cast<float>(feature.size());
    roots.push_back(base + static_cast<float>(tree->root()));
    for (std::int64_t i = 0; i < tree->num_nodes(); ++i) {
      const std::size_t s = static_cast<std::size_t>(i);
      feature.push_back(static_cast<float>(tree->feature()[s]));
      threshold.push_back(tree->threshold()[s]);
      left.push_back(tree->feature()[s] >= 0
                         ? base + static_cast<float>(tree->left()[s])
                         : -1.0f);
      right.push_back(tree->feature()[s] >= 0
                          ? base + static_cast<float>(tree->right()[s])
                          : -1.0f);
      value.push_back(tree->value()[s]);
    }
  }
  Node node;
  node.op_type = "TreeEnsemble";
  node.name = graph->FreshValueName("op_trees");
  node.inputs = {feats};
  node.outputs = {output};
  node.attrs["roots"] = Tensor::FromVector(std::move(roots));
  node.attrs["feature"] = Tensor::FromVector(std::move(feature));
  node.attrs["threshold"] = Tensor::FromVector(std::move(threshold));
  node.attrs["left"] = Tensor::FromVector(std::move(left));
  node.attrs["right"] = Tensor::FromVector(std::move(right));
  node.attrs["value"] = Tensor::FromVector(std::move(value));
  node.attrs["aggregate"] = static_cast<std::int64_t>(average ? 1 : 0);
  node.attrs["post"] = static_cast<std::int64_t>(0);
  graph->AddNode(std::move(node));
}

}  // namespace

Result<Graph> PipelineToNnGraph(const ModelPipeline& pipeline,
                                const NnTranslationOptions& options) {
  Graph graph;
  graph.AddInput("X");
  const std::string feats = EmitFeaturizer(pipeline, &graph);
  const std::int64_t num_features = pipeline.NumFeatures();

  switch (ml::KindOf(pipeline.predictor)) {
    case PredictorKind::kLinearModel: {
      const auto& linear = std::get<ml::LinearModel>(pipeline.predictor);
      Tensor w = Tensor::Zeros({num_features, 1});
      for (std::int64_t f = 0; f < num_features; ++f) {
        w.raw()[f] = static_cast<float>(
            linear.weights()[static_cast<std::size_t>(f)]);
      }
      const bool logistic = linear.kind() == ml::LinearKind::kLogistic;
      const std::string margin = logistic ? graph.FreshValueName("margin") : "Y";
      EmitGemm(&graph, feats, std::move(w),
               Tensor::FromVector({static_cast<float>(linear.bias())}),
               margin);
      if (logistic) EmitUnary(&graph, "Sigmoid", margin, "Y");
      break;
    }
    case PredictorKind::kMlp: {
      const auto& mlp = std::get<ml::Mlp>(pipeline.predictor);
      std::string cur = feats;
      for (std::size_t l = 0; l < mlp.layers().size(); ++l) {
        const auto& layer = mlp.layers()[l];
        RAVEN_ASSIGN_OR_RETURN(
            Tensor w, Tensor::FromData({layer.in, layer.out}, layer.weights));
        Tensor b = Tensor::FromVector(layer.bias);
        const bool last = l + 1 == mlp.layers().size();
        const bool has_act = layer.activation != ml::Activation::kNone;
        const std::string gemm_out =
            (last && !has_act) ? "Y" : graph.FreshValueName("dense");
        EmitGemm(&graph, cur, std::move(w), std::move(b), gemm_out);
        cur = gemm_out;
        if (has_act) {
          const char* act = layer.activation == ml::Activation::kRelu
                                ? "Relu"
                                : (layer.activation == ml::Activation::kSigmoid
                                       ? "Sigmoid"
                                       : "Tanh");
          const std::string act_out =
              last ? "Y" : graph.FreshValueName("act");
          EmitUnary(&graph, act, cur, act_out);
          cur = act_out;
        }
      }
      break;
    }
    case PredictorKind::kDecisionTree: {
      const auto& tree = std::get<ml::DecisionTree>(pipeline.predictor);
      if (options.lower_trees_to_gemm) {
        RAVEN_RETURN_IF_ERROR(
            EmitTreeAsGemm(&graph, tree, num_features, feats, "Y"));
      } else {
        EmitTreeEnsemble(&graph, {&tree}, /*average=*/false, feats, "Y");
      }
      break;
    }
    case PredictorKind::kRandomForest: {
      const auto& forest = std::get<ml::RandomForest>(pipeline.predictor);
      if (forest.trees().empty()) {
        return Status::InvalidArgument("cannot translate an empty forest");
      }
      if (options.lower_trees_to_gemm) {
        std::vector<std::string> tree_outputs;
        for (const auto& tree : forest.trees()) {
          const std::string out = graph.FreshValueName("tree_out");
          RAVEN_RETURN_IF_ERROR(
              EmitTreeAsGemm(&graph, tree, num_features, feats, out));
          tree_outputs.push_back(out);
        }
        if (tree_outputs.size() == 1) {
          EmitUnary(&graph, "Identity", tree_outputs[0], "Y");
        } else {
          const std::string all = graph.FreshValueName("all_trees");
          Node concat;
          concat.op_type = "Concat";
          concat.name = graph.FreshValueName("op_concat");
          concat.inputs = tree_outputs;
          concat.outputs = {all};
          graph.AddNode(std::move(concat));
          const std::int64_t t =
              static_cast<std::int64_t>(tree_outputs.size());
          EmitGemm(&graph, all,
                   Tensor::Full({t, 1}, 1.0f / static_cast<float>(t)),
                   Tensor::FromVector({0.0f}), "Y");
        }
      } else {
        std::vector<const ml::DecisionTree*> trees;
        for (const auto& tree : forest.trees()) trees.push_back(&tree);
        EmitTreeEnsemble(&graph, trees, /*average=*/true, feats, "Y");
      }
      break;
    }
  }
  graph.AddOutput("Y");
  RAVEN_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

namespace {

/// Builds the raw-space "goes left" condition for internal node `i`.
Result<relational::ExprPtr> LeftCondition(
    const ModelPipeline& pipeline,
    const std::vector<FeatureProvenance>& prov, const ml::DecisionTree& tree,
    std::int32_t node) {
  const std::size_t s = static_cast<std::size_t>(node);
  const std::int64_t f = tree.feature()[s];
  const double thr = tree.threshold()[s];
  const auto& p = prov[static_cast<std::size_t>(f)];
  const std::string& column =
      pipeline.input_columns[static_cast<std::size_t>(p.input_column)];
  switch (p.kind) {
    case TransformKind::kIdentity:
      return relational::Le(relational::Col(column), relational::Lit(thr));
    case TransformKind::kScaler: {
      // (x - m) * s <= t  <=>  x <= t / s + m   (s = 1/std > 0)
      double mean = 0.0;
      double scale = 1.0;
      const auto& branch = pipeline.featurizer.branches()
                               [static_cast<std::size_t>(p.branch_index)];
      for (std::size_t c = 0; c < branch.input_columns.size(); ++c) {
        if (branch.input_columns[c] == p.input_column) {
          mean = branch.scaler.mean()[c];
          scale = branch.scaler.scale()[c];
          break;
        }
      }
      if (scale <= 0.0) {
        return Status::InvalidArgument("non-positive scaler scale");
      }
      return relational::Le(relational::Col(column),
                            relational::Lit(thr / scale + mean));
    }
    case TransformKind::kOneHot: {
      // Indicator(col == code) <= thr.
      if (thr >= 1.0) return relational::Lit(1.0);  // always true
      if (thr < 0.0) return relational::Lit(0.0);   // always false
      return relational::Cmp(relational::CompareOp::kNe,
                             relational::Col(column),
                             relational::Lit(static_cast<double>(p.category)));
    }
  }
  return Status::Internal("unreachable transform kind");
}

Result<relational::ExprPtr> TreeNodeToExpr(
    const ModelPipeline& pipeline,
    const std::vector<FeatureProvenance>& prov, const ml::DecisionTree& tree,
    std::int32_t node) {
  const std::size_t s = static_cast<std::size_t>(node);
  if (tree.feature()[s] < 0) {
    return relational::Lit(static_cast<double>(tree.value()[s]));
  }
  RAVEN_ASSIGN_OR_RETURN(auto cond,
                         LeftCondition(pipeline, prov, tree, node));
  RAVEN_ASSIGN_OR_RETURN(auto left_expr,
                         TreeNodeToExpr(pipeline, prov, tree, tree.left()[s]));
  RAVEN_ASSIGN_OR_RETURN(
      auto right_expr, TreeNodeToExpr(pipeline, prov, tree, tree.right()[s]));
  std::vector<relational::CaseWhenExpr::Arm> arms;
  arms.push_back(relational::CaseWhenExpr::Arm{std::move(cond),
                                               std::move(left_expr)});
  return relational::ExprPtr(std::make_unique<relational::CaseWhenExpr>(
      std::move(arms), std::move(right_expr)));
}

}  // namespace

bool IsInlinable(const ModelPipeline& pipeline) {
  return ml::KindOf(pipeline.predictor) == PredictorKind::kDecisionTree;
}

Result<relational::ExprPtr> TreeToCaseExpr(const ModelPipeline& pipeline) {
  if (!IsInlinable(pipeline)) {
    return Status::InvalidArgument(
        "model inlining supports DecisionTree predictors");
  }
  const auto& tree = std::get<ml::DecisionTree>(pipeline.predictor);
  std::vector<FeatureProvenance> prov;
  if (pipeline.featurizer.branches().empty()) {
    for (std::size_t i = 0; i < pipeline.input_columns.size(); ++i) {
      prov.push_back(FeatureProvenance{static_cast<std::int64_t>(i), -1,
                                       TransformKind::kIdentity, -1});
    }
  } else {
    prov = pipeline.featurizer.Provenance();
  }
  return TreeNodeToExpr(pipeline, prov, tree, tree.root());
}

}  // namespace raven::optimizer
