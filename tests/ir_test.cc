#include <gtest/gtest.h>

#include "data/hospital.h"
#include "ir/clustered_model.h"
#include "ir/ir.h"
#include "ml/pipeline.h"
#include "optimizer/specialize.h"
#include "relational/catalog.h"

namespace raven::ir {
namespace {

void FillCatalog(relational::Catalog* catalog) {
  relational::Table t;
  (void)t.AddNumericColumn("id", {0, 1, 2});
  (void)t.AddNumericColumn("a", {1, 2, 3});
  (void)t.AddNumericColumn("b", {4, 5, 6});
  (void)catalog->RegisterTable("t", std::move(t));
  relational::Table u;
  (void)u.AddNumericColumn("id", {0, 1, 2});
  (void)u.AddNumericColumn("c", {7, 8, 9});
  (void)catalog->RegisterTable("u", std::move(u));
}

std::shared_ptr<ml::ModelPipeline> TinyPipeline() {
  auto pipeline = std::make_shared<ml::ModelPipeline>();
  pipeline->input_columns = {"a", "b"};
  ml::LinearModel model(ml::LinearKind::kRegression);
  model.SetParams({1.0, 1.0}, 0.0);
  pipeline->predictor = std::move(model);
  return pipeline;
}

TEST(IrTest, SchemaComputation) {
  relational::Catalog catalog;
  FillCatalog(&catalog);
  IrNodePtr plan = IrNode::Join(IrNode::TableScan("t"), IrNode::TableScan("u"),
                                "id", "id");
  auto schema = *IrPlan::ComputeSchema(*plan, catalog);
  EXPECT_EQ(schema, (std::vector<std::string>{"id", "a", "b", "c"}));

  IrNodePtr model = IrNode::ModelPipelineNode(std::move(plan), "m",
                                              TinyPipeline(), {"a", "b"},
                                              "pred");
  schema = *IrPlan::ComputeSchema(*model, catalog);
  EXPECT_EQ(schema.back(), "pred");
}

TEST(IrTest, ValidateChecksModelInputs) {
  relational::Catalog catalog;
  FillCatalog(&catalog);
  IrPlan good(IrNode::ModelPipelineNode(IrNode::TableScan("t"), "m",
                                        TinyPipeline(), {"a", "b"}, "pred"));
  EXPECT_TRUE(good.Validate(catalog).ok());
  IrPlan bad(IrNode::ModelPipelineNode(IrNode::TableScan("u"), "m",
                                       TinyPipeline(), {"a", "b"}, "pred"));
  EXPECT_FALSE(bad.Validate(catalog).ok());
}

TEST(IrTest, ValidateChecksArity) {
  relational::Catalog catalog;
  FillCatalog(&catalog);
  auto filter = std::make_unique<IrNode>(IrOpKind::kFilter);
  filter->predicate = relational::Gt(relational::Col("a"), relational::Lit(1));
  // Filter with no child.
  IrPlan plan(std::move(filter));
  EXPECT_FALSE(plan.Validate(catalog).ok());
}

TEST(IrTest, CloneIsDeep) {
  relational::Catalog catalog;
  FillCatalog(&catalog);
  IrPlan plan(IrNode::Filter(IrNode::TableScan("t"),
                             relational::Gt(relational::Col("a"),
                                            relational::Lit(1))));
  IrPlan copy = plan.Clone();
  // Mutating the copy must not affect the original.
  copy.mutable_root()->predicate =
      relational::Lt(relational::Col("b"), relational::Lit(0));
  EXPECT_NE(plan.root()->predicate->ToString(),
            copy.root()->predicate->ToString());
}

TEST(IrTest, ToStringShowsStructure) {
  IrPlan plan(IrNode::ModelPipelineNode(IrNode::TableScan("t"), "model_x",
                                        TinyPipeline(), {"a", "b"}, "pred"));
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("ModelPipeline"), std::string::npos);
  EXPECT_NE(s.find("model_x"), std::string::npos);
  EXPECT_NE(s.find("TableScan"), std::string::npos);
  EXPECT_NE(s.find("[MLD]"), std::string::npos);
  EXPECT_NE(s.find("[RA]"), std::string::npos);
}

TEST(IrTest, CountKind) {
  IrPlan plan(IrNode::Join(IrNode::TableScan("t"), IrNode::TableScan("u"),
                           "id", "id"));
  EXPECT_EQ(plan.CountKind(IrOpKind::kTableScan), 2u);
  EXPECT_EQ(plan.CountKind(IrOpKind::kJoin), 1u);
  EXPECT_EQ(plan.CountKind(IrOpKind::kFilter), 0u);
}

TEST(IrTest, CategoryTaxonomy) {
  EXPECT_EQ(CategoryOf(IrOpKind::kTableScan), OpCategory::kRelational);
  EXPECT_EQ(CategoryOf(IrOpKind::kModelPipeline), OpCategory::kClassicalMl);
  EXPECT_EQ(CategoryOf(IrOpKind::kNnGraph), OpCategory::kLinearAlgebra);
  EXPECT_EQ(CategoryOf(IrOpKind::kOpaquePipeline), OpCategory::kUdf);
}

TEST(IrTest, GroupByAndOrderBySchemaAndValidate) {
  relational::Catalog catalog;
  FillCatalog(&catalog);
  std::vector<AggregateItem> aggs;
  aggs.push_back(AggregateItem{AggFunc::kCount, "", "n"});
  aggs.push_back(AggregateItem{AggFunc::kAvg, "b", "mean_b"});
  IrPlan plan(IrNode::OrderBy(
      IrNode::GroupBy(IrNode::TableScan("t"), {"a"}, std::move(aggs)),
      {SortKey{"n", true}}));
  EXPECT_TRUE(plan.Validate(catalog).ok()) << plan.ToString();
  auto schema = *IrPlan::ComputeSchema(*plan.root(), catalog);
  EXPECT_EQ(schema, (std::vector<std::string>{"a", "n", "mean_b"}));
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("GroupBy"), std::string::npos);
  EXPECT_NE(s.find("keys=[a]"), std::string::npos);
  EXPECT_NE(s.find("OrderBy"), std::string::npos);
  EXPECT_NE(s.find("n DESC"), std::string::npos);

  // Clone preserves the new payloads.
  IrPlan copy = plan.Clone();
  EXPECT_EQ(copy.root()->sort_keys, plan.root()->sort_keys);
  EXPECT_EQ(copy.root()->children[0]->group_keys,
            plan.root()->children[0]->group_keys);
  EXPECT_EQ(copy.root()->children[0]->aggregates,
            plan.root()->children[0]->aggregates);

  // Bad group key / bad sort column fail validation.
  IrPlan bad_key(IrNode::GroupBy(IrNode::TableScan("t"), {"nope"},
                                 {AggregateItem{AggFunc::kCount, "", "n"}}));
  EXPECT_FALSE(bad_key.Validate(catalog).ok());
  IrPlan bad_sort(
      IrNode::OrderBy(IrNode::TableScan("t"), {SortKey{"nope", false}}));
  EXPECT_FALSE(bad_sort.Validate(catalog).ok());
  IrPlan no_keys(IrNode::GroupBy(IrNode::TableScan("t"), {},
                                 {AggregateItem{AggFunc::kCount, "", "n"}}));
  EXPECT_FALSE(no_keys.Validate(catalog).ok());
  IrPlan no_sort_keys(IrNode::OrderBy(IrNode::TableScan("t"), {}));
  EXPECT_FALSE(no_sort_keys.Validate(catalog).ok());
  // A GroupBy with keys but no aggregates is SELECT DISTINCT — legal.
  IrPlan distinct(IrNode::GroupBy(IrNode::TableScan("t"), {"a", "b"}, {}));
  EXPECT_TRUE(distinct.Validate(catalog).ok());
  auto distinct_schema = *IrPlan::ComputeSchema(*distinct.root(), catalog);
  EXPECT_EQ(distinct_schema, (std::vector<std::string>{"a", "b"}));
}

TEST(IrTest, AggregateItemAndSortKeySerializationRoundTrip) {
  std::vector<AggregateItem> items;
  items.push_back(AggregateItem{AggFunc::kCount, "", "n"});
  items.push_back(AggregateItem{AggFunc::kAvg, "score", "mean_score"});
  items.push_back(AggregateItem{AggFunc::kMax, "bp", "max_bp"});
  std::vector<SortKey> keys{SortKey{"mean_score", true}, SortKey{"n", false}};

  BinaryWriter writer;
  WriteAggregateItems(items, &writer);
  WriteSortKeys(keys, &writer);

  BinaryReader reader(writer.buffer());
  auto items_back = ReadAggregateItems(&reader);
  ASSERT_TRUE(items_back.ok());
  EXPECT_EQ(*items_back, items);
  auto keys_back = ReadSortKeys(&reader);
  ASSERT_TRUE(keys_back.ok());
  EXPECT_EQ(*keys_back, keys);
  EXPECT_TRUE(reader.AtEnd());

  // Truncated buffers and corrupt enum codes error instead of faulting.
  const std::string& buf = writer.buffer();
  for (std::size_t cut : {std::size_t{1}, buf.size() / 2}) {
    BinaryReader truncated(buf.data(), cut);
    auto result = ReadAggregateItems(&truncated);
    if (result.ok()) {
      // The prefix may decode; the follow-up read must then fail.
      EXPECT_FALSE(ReadSortKeys(&truncated).ok());
    }
  }
  BinaryWriter corrupt;
  corrupt.WriteU64(1);
  corrupt.WriteU8(250);  // not an AggFunc
  corrupt.WriteString("x");
  corrupt.WriteString("y");
  BinaryReader corrupt_reader(corrupt.buffer());
  EXPECT_FALSE(ReadAggregateItems(&corrupt_reader).ok());
}

TEST(ClusteredModelTest, MatchesFallbackSemantics) {
  // Build a clustered artifact over the hospital model and check exact
  // agreement with the original pipeline (fallback-on-violation makes the
  // transformation lossless).
  auto data = data::MakeHospitalDataset(3000, 77);
  auto pipeline = *data::TrainHospitalTree(data, 6);
  optimizer::ClusteringOptions options;
  options.k = 4;
  ClusteredModel clustered =
      *optimizer::BuildClusteredModel(pipeline, data.joined, options);
  EXPECT_EQ(clustered.cluster_models.size(),
            static_cast<std::size_t>(clustered.router.k()));

  auto fresh = data::MakeHospitalDataset(500, 78);
  Tensor x = *fresh.joined.ToTensor(pipeline.input_columns);
  Tensor expected = *pipeline.Predict(x);
  Tensor actual = *clustered.Predict(x);
  EXPECT_TRUE(expected.AllClose(actual, 1e-5f));
}

TEST(ClusteredModelTest, RejectsWidthMismatch) {
  auto data = data::MakeHospitalDataset(500, 79);
  auto pipeline = *data::TrainHospitalTree(data, 4);
  optimizer::ClusteringOptions options;
  options.k = 2;
  ClusteredModel clustered =
      *optimizer::BuildClusteredModel(pipeline, data.joined, options);
  EXPECT_FALSE(clustered.Predict(Tensor::Zeros({2, 3})).ok());
}

}  // namespace
}  // namespace raven::ir
