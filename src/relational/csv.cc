#include "relational/csv.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace raven::relational {

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const auto& cols = table.columns();
  for (std::size_t c = 0; c < cols.size(); ++c) {
    if (c > 0) out << ",";
    out << cols[c].name;
  }
  out << "\n";
  const std::int64_t n = table.num_rows();
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      if (c > 0) out << ",";
      if (cols[c].is_categorical()) {
        const auto code =
            static_cast<std::size_t>(cols[c].data[static_cast<std::size_t>(r)]);
        out << (code < cols[c].dictionary->size()
                    ? (*cols[c].dictionary)[code]
                    : "");
      } else {
        out << cols[c].data[static_cast<std::size_t>(r)];
      }
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line)) return Status::ParseError("empty CSV");
  const std::vector<std::string> header = SplitString(TrimString(line), ',');
  std::vector<std::vector<std::string>> raw(header.size());
  while (std::getline(in, line)) {
    if (TrimString(line).empty()) continue;
    const std::vector<std::string> fields = SplitString(line, ',');
    if (fields.size() != header.size()) {
      return Status::ParseError("CSV row has " +
                                std::to_string(fields.size()) +
                                " fields, expected " +
                                std::to_string(header.size()));
    }
    for (std::size_t c = 0; c < fields.size(); ++c) {
      raw[c].push_back(TrimString(fields[c]));
    }
  }
  Table table;
  for (std::size_t c = 0; c < header.size(); ++c) {
    bool numeric = true;
    std::vector<double> nums;
    nums.reserve(raw[c].size());
    for (const auto& field : raw[c]) {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        numeric = false;
        break;
      }
      nums.push_back(v);
    }
    if (numeric) {
      RAVEN_RETURN_IF_ERROR(table.AddNumericColumn(header[c], std::move(nums)));
    } else {
      std::map<std::string, double> dict_index;
      std::vector<std::string> dictionary;
      std::vector<double> codes;
      codes.reserve(raw[c].size());
      for (const auto& field : raw[c]) {
        auto it = dict_index.find(field);
        if (it == dict_index.end()) {
          const double code = static_cast<double>(dictionary.size());
          dict_index[field] = code;
          dictionary.push_back(field);
          codes.push_back(code);
        } else {
          codes.push_back(it->second);
        }
      }
      RAVEN_RETURN_IF_ERROR(table.AddCategoricalColumn(
          header[c], std::move(codes), std::move(dictionary)));
    }
  }
  return table;
}

}  // namespace raven::relational
