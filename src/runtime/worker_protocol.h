#ifndef RAVEN_RUNTIME_WORKER_PROTOCOL_H_
#define RAVEN_RUNTIME_WORKER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/serialize.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace raven::runtime {

/// Wire protocol between the database process and the out-of-process
/// scoring worker (`tools/raven_worker`), the stand-in for SQL Server's
/// sp_execute_external_script runtime (paper §5, "Raven Ext"). Frames are
/// [u32 length][payload]; payloads use the common BinaryWriter encoding.

enum class WorkerCommand : std::uint8_t {
  kPing = 0,
  kScorePipeline = 1,  ///< payload: pipeline bytes + input tensor
  kScoreGraph = 2,     ///< payload: NNRT graph bytes + input tensor
  kShutdown = 3,
};

struct ScoreRequest {
  WorkerCommand command = WorkerCommand::kPing;
  std::string model_bytes;
  Tensor input;
};

struct ScoreResponse {
  bool ok = false;
  std::string error;
  Tensor output;
};

std::string EncodeRequest(const ScoreRequest& request);
Result<ScoreRequest> DecodeRequest(const std::string& payload);
std::string EncodeResponse(const ScoreResponse& response);
Result<ScoreResponse> DecodeResponse(const std::string& payload);

/// Blocking full-frame I/O on file descriptors (length-prefixed).
Status WriteFrame(int fd, const std::string& payload);
Result<std::string> ReadFrame(int fd);

}  // namespace raven::runtime

#endif  // RAVEN_RUNTIME_WORKER_PROTOCOL_H_
