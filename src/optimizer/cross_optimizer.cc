#include "optimizer/cross_optimizer.h"

#include <algorithm>

#include "optimizer/cost_model.h"
#include "optimizer/rules.h"

namespace raven::optimizer {

Status CrossOptimizer::Optimize(ir::IrPlan* plan,
                                OptimizationReport* report) const {
  if (plan->root() == nullptr) {
    return Status::InvalidArgument("cannot optimize an empty plan");
  }
  OptimizationReport local;
  local.before = plan->ToString();
  auto record = [&local](const char* rule, std::size_t fired) {
    local.rule_applications.emplace_back(rule, fired);
  };

  ir::IrNodePtr* root = &plan->mutable_root();

  // Phase 1: relational predicate pushdown feeds the model-side rules.
  if (options_.predicate_pushdown) {
    RAVEN_ASSIGN_OR_RETURN(std::size_t fired,
                           ApplyPredicatePushdown(root, *catalog_));
    record("predicate_pushdown", fired);
  }

  // Phase 2: model specialization.
  if (options_.model_clustering && !clustering_artifacts_.empty()) {
    RAVEN_ASSIGN_OR_RETURN(std::size_t fired,
                           ApplyModelClustering(root, clustering_artifacts_));
    record("model_clustering", fired);
  }
  if (options_.predicate_model_pruning) {
    RAVEN_ASSIGN_OR_RETURN(std::size_t fired,
                           ApplyPredicateModelPruning(root));
    record("predicate_model_pruning", fired);
  }
  if (options_.data_property_pruning) {
    RAVEN_ASSIGN_OR_RETURN(std::size_t fired,
                           ApplyDataPropertyPruning(root, *catalog_));
    record("data_property_pruning", fired);
  }
  if (options_.lossy_projection_threshold > 0.0) {
    RAVEN_ASSIGN_OR_RETURN(
        std::size_t fired,
        ApplyLossyProjection(root, options_.lossy_projection_threshold));
    record("lossy_projection", fired);
  }
  if (options_.model_projection_pushdown) {
    RAVEN_ASSIGN_OR_RETURN(std::size_t fired,
                           ApplyModelProjectionPushdown(root));
    record("model_projection_pushdown", fired);
  }
  if (options_.model_query_splitting) {
    RAVEN_ASSIGN_OR_RETURN(std::size_t fired, ApplyModelQuerySplitting(root));
    record("model_query_splitting", fired);
    if (fired > 0 && options_.predicate_pushdown) {
      // The new per-branch filters can sink further.
      RAVEN_ASSIGN_OR_RETURN(std::size_t pushed,
                             ApplyPredicatePushdown(root, *catalog_));
      record("predicate_pushdown(post-split)", pushed);
    }
  }

  // Phase 3: representation choice — inline small trees into relational
  // expressions; translate everything else to the NN runtime.
  if (options_.model_inlining) {
    RAVEN_ASSIGN_OR_RETURN(
        std::size_t fired,
        ApplyModelInlining(root, *catalog_, options_.inline_max_nodes));
    record("model_inlining", fired);
  }
  if (options_.nn_translation) {
    RAVEN_ASSIGN_OR_RETURN(std::size_t fired,
                           ApplyNnTranslation(root, options_.nn_options));
    record("nn_translation", fired);
  }

  // Phase 4: relational cleanup — the shrunken models expose projection and
  // join opportunities.
  if (options_.join_elimination) {
    RAVEN_ASSIGN_OR_RETURN(std::size_t fired,
                           ApplyJoinElimination(root, *catalog_));
    record("join_elimination", fired);
  }
  if (options_.projection_pushdown) {
    RAVEN_ASSIGN_OR_RETURN(std::size_t fired,
                           ApplyProjectionPushdown(root, *catalog_));
    record("projection_pushdown", fired);
  }
  if (options_.predicate_pushdown) {
    RAVEN_ASSIGN_OR_RETURN(std::size_t fired,
                           ApplyPredicatePushdown(root, *catalog_));
    record("predicate_pushdown(final)", fired);
  }

  RAVEN_RETURN_IF_ERROR(plan->Validate(*catalog_));
  local.after = plan->ToString();
  if (report != nullptr) {
    // Cost the optimized plan both sequentially and at the runtime's degree
    // of parallelism so EXPLAIN (and future cost-based phases) see what the
    // morsel-driven executor will actually pay — per operator, from one
    // bottom-up pass per dop. Skipped when no report was requested; the
    // walks are pure output.
    local.costed_parallelism =
        std::max<std::int64_t>(1, options_.target_parallelism);
    RAVEN_ASSIGN_OR_RETURN(
        auto rows,
        EstimateOperatorCosts(*plan->root(), *catalog_,
                              local.costed_parallelism));
    for (const auto& row : rows) {
      local.operator_costs.push_back(OperatorCost{
          ir::IrOpKindToString(row.node->kind), row.depth, row.output_rows,
          row.sequential_cost, row.parallel_cost, row.fused_into_parent});
    }
    // rows.front() is the plan root: its columns ARE the plan totals.
    local.sequential_cost = rows.front().sequential_cost;
    local.parallel_cost = rows.front().parallel_cost;
    if (options_.target_distributed_workers > 1) {
      local.costed_distributed_workers = options_.target_distributed_workers;
      RAVEN_ASSIGN_OR_RETURN(
          PlanCost distributed,
          EstimateDistributedCost(*plan->root(), *catalog_,
                                  local.costed_distributed_workers));
      local.distributed_cost = distributed.total_cost;
    }
    *report = std::move(local);
  }
  return Status::OK();
}

}  // namespace raven::optimizer
