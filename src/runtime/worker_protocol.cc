#include "runtime/worker_protocol.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>

namespace raven::runtime {

std::string EncodeRequest(const ScoreRequest& request) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(request.command));
  writer.WriteString(request.model_bytes);
  request.input.Serialize(&writer);
  return writer.Release();
}

Result<ScoreRequest> DecodeRequest(const std::string& payload) {
  BinaryReader reader(payload);
  ScoreRequest request;
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t command, reader.ReadU8());
  if (command > 3) return Status::ParseError("bad worker command");
  request.command = static_cast<WorkerCommand>(command);
  RAVEN_ASSIGN_OR_RETURN(request.model_bytes, reader.ReadString());
  RAVEN_ASSIGN_OR_RETURN(request.input, Tensor::Deserialize(&reader));
  return request;
}

std::string EncodeResponse(const ScoreResponse& response) {
  BinaryWriter writer;
  writer.WriteBool(response.ok);
  writer.WriteString(response.error);
  response.output.Serialize(&writer);
  return writer.Release();
}

Result<ScoreResponse> DecodeResponse(const std::string& payload) {
  BinaryReader reader(payload);
  ScoreResponse response;
  RAVEN_ASSIGN_OR_RETURN(response.ok, reader.ReadBool());
  RAVEN_ASSIGN_OR_RETURN(response.error, reader.ReadString());
  RAVEN_ASSIGN_OR_RETURN(response.output, Tensor::Deserialize(&reader));
  return response;
}

Status WriteFrame(int fd, const std::string& payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char header[4];
  std::memcpy(header, &len, 4);
  std::string framed(header, 4);
  framed += payload;
  std::size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(fd, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("worker pipe write failed: " +
                             std::string(std::strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

namespace {

Status ReadFull(int fd, char* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, buf + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("worker pipe read failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IoError("worker pipe closed unexpectedly");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFrame(int fd) {
  char header[4];
  RAVEN_RETURN_IF_ERROR(ReadFull(fd, header, 4));
  std::uint32_t len = 0;
  std::memcpy(&len, header, 4);
  if (len > (1u << 30)) return Status::OutOfRange("worker frame too large");
  std::string payload(len, '\0');
  if (len > 0) {
    RAVEN_RETURN_IF_ERROR(ReadFull(fd, payload.data(), len));
  }
  return payload;
}

}  // namespace raven::runtime
