// Distributed scan+PREDICT (ISSUE 4): the same inference query executed
// in-process versus shipped to a 4-worker pool as plan fragments. The pool
// is warm (spawned once, outside the timed loop), so the measured gap is
// the steady-state fragment-shipping tax — table-slice serialization, pipe
// transfer, result-chunk reassembly — against whatever the pool wins by
// scoring partitions in parallel processes. The regression signals are the
// distributed-vs-in-process ratio per row count and bytes_shipped per row.

#include "bench_util.h"
#include "data/hospital.h"
#include "raven/raven.h"

namespace raven {
namespace {

/// workers == 0 benchmarks the in-process baseline; > 0 the distributed
/// mode with that pool size.
void RunScanPredict(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const std::int64_t workers = state.range(1);
  RavenOptions options;
  if (workers > 0) {
    options.execution.mode = runtime::ExecutionMode::kDistributed;
    options.execution.distributed_workers = workers;
  }
  RavenContext ctx(options);
  data::HospitalDataset hospital = data::MakeHospitalDataset(rows, 17);
  bench::MustOk(ctx.RegisterTable("patients", hospital.joined), "register");
  auto trained = data::TrainHospitalTree(hospital, 5);
  bench::MustOk(trained.status(), "train");
  bench::MustOk(
      ctx.InsertModel("los", data::HospitalTreeScript(), trained.value()),
      "insert model");
  const std::string sql =
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(p float) WHERE p > 5";
  ir::IrPlan plan = bench::Must(ctx.Prepare(sql), "prepare");
  // Warm-up outside the timed loop: spawns the worker pool in distributed
  // mode, so the timed iterations see the steady warm-pool state.
  runtime::ExecutionStats warm_stats;
  auto warm = ctx.ExecutePlan(plan, &warm_stats);
  bench::MustOk(warm.status(), "warm-up execute");
  for (auto _ : state) {
    auto result = ctx.ExecutePlan(plan);
    if (!result.ok()) {
      state.SkipWithError("execute failed");
      return;
    }
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["bytes_shipped"] =
      static_cast<double>(warm_stats.bytes_shipped);
  state.counters["frames"] = static_cast<double>(warm_stats.frames_sent);
}

void BM_ScanPredict_InProcess(benchmark::State& state) {
  RunScanPredict(state);
}

void BM_ScanPredict_Distributed(benchmark::State& state) {
  RunScanPredict(state);
}

// 2000/20000-row points stay in the --smoke set; 100000 is filtered out
// there (see tools/bench.sh) and anchors the full sweep.
BENCHMARK(BM_ScanPredict_InProcess)
    ->Args({2000, 0})->Args({20000, 0})->Args({100000, 0})
    ->Iterations(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanPredict_Distributed)
    ->Args({2000, 4})->Args({20000, 4})->Args({100000, 4})
    ->Iterations(2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace raven
