#include "data/flight.h"

#include <cmath>

#include "common/rng.h"

namespace raven::data {

std::vector<std::string> FlightFeatureColumns() {
  return {"dep_hour", "distance", "day_of_week", "airline", "origin", "dest"};
}

FlightDataset MakeFlightDataset(std::int64_t n, std::uint64_t seed,
                                std::int64_t num_airlines,
                                std::int64_t num_airports) {
  Rng rng(seed);
  std::vector<double> id(static_cast<std::size_t>(n));
  std::vector<double> airline(static_cast<std::size_t>(n));
  std::vector<double> origin(static_cast<std::size_t>(n));
  std::vector<double> dest(static_cast<std::size_t>(n));
  std::vector<double> dep_hour(static_cast<std::size_t>(n));
  std::vector<double> distance(static_cast<std::size_t>(n));
  std::vector<double> day_of_week(static_cast<std::size_t>(n));
  std::vector<double> delayed(static_cast<std::size_t>(n));

  // Per-airline and per-airport delay propensities make the one-hot
  // features genuinely predictive (so L1 keeps a nontrivial subset).
  std::vector<double> airline_bias(static_cast<std::size_t>(num_airlines));
  std::vector<double> airport_bias(static_cast<std::size_t>(num_airports));
  for (auto& b : airline_bias) b = 0.8 * rng.NextGaussian();
  for (auto& b : airport_bias) b = 0.6 * rng.NextGaussian();

  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    id[s] = static_cast<double>(i);
    airline[s] = static_cast<double>(
        rng.NextUint(static_cast<std::uint64_t>(num_airlines)));
    origin[s] = static_cast<double>(
        rng.NextUint(static_cast<std::uint64_t>(num_airports)));
    do {
      dest[s] = static_cast<double>(
          rng.NextUint(static_cast<std::uint64_t>(num_airports)));
    } while (dest[s] == origin[s]);
    dep_hour[s] = std::floor(rng.Uniform(5.0, 23.0));
    distance[s] = 150.0 + 2500.0 * rng.NextDouble();
    day_of_week[s] = std::floor(rng.Uniform(0.0, 7.0));
    const double logit =
        -0.8 + airline_bias[static_cast<std::size_t>(airline[s])] +
        0.5 * airport_bias[static_cast<std::size_t>(origin[s])] +
        0.5 * airport_bias[static_cast<std::size_t>(dest[s])] +
        0.08 * (dep_hour[s] - 12.0) + 0.1 * (day_of_week[s] >= 5 ? 1 : 0);
    const double p = 1.0 / (1.0 + std::exp(-logit));
    delayed[s] = rng.NextBool(p) ? 1.0 : 0.0;
  }

  std::vector<std::string> airline_dict;
  for (std::int64_t a = 0; a < num_airlines; ++a) {
    airline_dict.push_back("AL" + std::to_string(a));
  }
  std::vector<std::string> airport_dict;
  for (std::int64_t a = 0; a < num_airports; ++a) {
    airport_dict.push_back("AP" + std::to_string(a));
  }

  FlightDataset data;
  data.num_airlines = num_airlines;
  data.num_airports = num_airports;
  (void)data.flights.AddNumericColumn("id", std::move(id));
  (void)data.flights.AddNumericColumn("dep_hour", std::move(dep_hour));
  (void)data.flights.AddNumericColumn("distance", std::move(distance));
  (void)data.flights.AddNumericColumn("day_of_week", std::move(day_of_week));
  (void)data.flights.AddCategoricalColumn("airline", std::move(airline),
                                          airline_dict);
  (void)data.flights.AddCategoricalColumn("origin", std::move(origin),
                                          airport_dict);
  (void)data.flights.AddCategoricalColumn("dest", std::move(dest),
                                          airport_dict);
  (void)data.flights.AddNumericColumn("delayed", std::move(delayed));
  return data;
}

Result<ml::ModelPipeline> TrainFlightLogreg(const FlightDataset& data,
                                            double l1, std::int64_t epochs) {
  ml::ModelPipeline pipeline;
  pipeline.input_columns = FlightFeatureColumns();
  ml::FeatureBranch scaler;
  scaler.name = "scaler";
  scaler.kind = ml::TransformKind::kScaler;
  scaler.input_columns = {0, 1, 2};
  ml::FeatureBranch onehot;
  onehot.name = "onehot";
  onehot.kind = ml::TransformKind::kOneHot;
  onehot.input_columns = {3, 4, 5};
  pipeline.featurizer.AddBranch(std::move(scaler));
  pipeline.featurizer.AddBranch(std::move(onehot));

  RAVEN_ASSIGN_OR_RETURN(Tensor x,
                         data.flights.ToTensor(pipeline.input_columns));
  RAVEN_RETURN_IF_ERROR(pipeline.featurizer.Fit(x));
  // Pin one-hot cardinalities to the full dictionaries (a sample might not
  // contain every code).
  auto& branches = pipeline.featurizer.mutable_branches();
  branches[1].onehot.SetCardinalities(
      {data.num_airlines, data.num_airports, data.num_airports});
  RAVEN_ASSIGN_OR_RETURN(Tensor features, pipeline.featurizer.Transform(x));

  const auto label = data.flights.GetColumn("delayed");
  std::vector<float> y;
  y.reserve((*label)->data.size());
  for (double v : (*label)->data) y.push_back(static_cast<float>(v));

  ml::LinearModel model(ml::LinearKind::kLogistic);
  ml::LinearTrainOptions options;
  options.epochs = epochs;
  options.learning_rate = 0.3;
  options.l1 = l1;
  RAVEN_RETURN_IF_ERROR(model.Fit(features, y, options));
  pipeline.predictor = std::move(model);
  return std::move(pipeline);
}

std::string FlightLogregScript() {
  return "from sklearn.pipeline import Pipeline, FeatureUnion\n"
         "from sklearn.preprocessing import StandardScaler, OneHotEncoder\n"
         "from sklearn.linear_model import LogisticRegression\n"
         "\n"
         "model_pipeline = Pipeline([\n"
         "    ('union', FeatureUnion([\n"
         "        ('scaler', StandardScaler(columns=['dep_hour', 'distance',\n"
         "            'day_of_week'])),\n"
         "        ('onehot', OneHotEncoder(columns=['airline', 'origin',\n"
         "            'dest']))\n"
         "    ])),\n"
         "    ('clf', LogisticRegression(penalty=1))\n"
         "])\n";
}

}  // namespace raven::data
