#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <vector>

namespace raven::optimizer {
namespace {

constexpr double kFilterSelectivity = 0.4;

/// Fraction of input rows assumed to form distinct group-key tuples when no
/// distinct-count statistics are available.
constexpr double kGroupCardinality = 0.1;

double PredictorRowCost(const ml::Predictor& predictor) {
  if (const auto* tree = std::get_if<ml::DecisionTree>(&predictor)) {
    return 2.0 * static_cast<double>(tree->depth());
  }
  if (const auto* forest = std::get_if<ml::RandomForest>(&predictor)) {
    double cost = 0.0;
    for (const auto& tree : forest->trees()) {
      cost += 2.0 * static_cast<double>(tree.depth());
    }
    return cost;
  }
  if (const auto* linear = std::get_if<ml::LinearModel>(&predictor)) {
    return 2.0 * static_cast<double>(linear->num_features()) +
           (linear->kind() == ml::LinearKind::kLogistic ? 4.0 : 0.0);
  }
  const auto& mlp = std::get<ml::Mlp>(predictor);
  double cost = 0.0;
  for (const auto& layer : mlp.layers()) {
    cost += 2.0 * static_cast<double>(layer.in) * static_cast<double>(layer.out);
  }
  return cost;
}

}  // namespace

double PipelineRowCost(const ml::ModelPipeline& pipeline) {
  double featurize = 0.0;
  for (const auto& branch : pipeline.featurizer.branches()) {
    switch (branch.kind) {
      case ml::TransformKind::kIdentity:
        featurize += static_cast<double>(branch.input_columns.size());
        break;
      case ml::TransformKind::kScaler:
        featurize += 2.0 * static_cast<double>(branch.input_columns.size());
        break;
      case ml::TransformKind::kOneHot:
        featurize += static_cast<double>(branch.OutputWidth());
        break;
    }
  }
  return featurize + PredictorRowCost(pipeline.predictor);
}

double NnGraphRowCost(const nnrt::Graph& graph) {
  // Static estimate: Gemm/MatMul dominate; use initializer shapes.
  double cost = 0.0;
  for (const auto& node : graph.nodes()) {
    if (node.op_type == "Gemm" || node.op_type == "MatMul") {
      // Weight is the second input; look it up among initializers.
      if (node.inputs.size() >= 2) {
        auto it = graph.initializers().find(node.inputs[1]);
        if (it != graph.initializers().end() && it->second.rank() == 2) {
          cost += 2.0 * static_cast<double>(it->second.dim(0)) *
                  static_cast<double>(it->second.dim(1));
          continue;
        }
      }
      cost += 16.0;  // unknown operand: nominal
    } else {
      cost += 4.0;  // element-wise ops, per feature (nominal)
    }
  }
  return cost;
}

namespace {

/// Per-worker fixed overhead of a parallel run (operator-tree cloning,
/// morsel scheduling, result collection), in abstract work units.
constexpr double kWorkerStartupCost = 256.0;

/// State threaded through one costing walk: the catalog plus an optional
/// per-node sink, so EstimateOperatorCosts gets every subtree's cost from
/// the same single bottom-up pass that computes the plan total.
struct CostContext {
  const relational::Catalog& catalog;
  std::map<const ir::IrNode*, PlanCost>* sink = nullptr;
};

Result<PlanCost> EstimateCostImpl(const ir::IrNode& node,
                                  const CostContext& ctx, double dop);

/// Recursive body: `dop` is the degree of parallelism the subtree executes
/// at. Self-costs of morsel-parallelizable operators divide by dop;
/// cardinalities never do.
Result<PlanCost> EstimateCostNode(const ir::IrNode& node,
                                  const CostContext& ctx, double dop) {
  using ir::IrOpKind;
  switch (node.kind) {
    case IrOpKind::kTableScan: {
      RAVEN_ASSIGN_OR_RETURN(const auto shape,
                             ctx.catalog.TableShape(node.table_name));
      const double rows = static_cast<double>(shape.first);
      const double cols = static_cast<double>(shape.second);
      return PlanCost{rows, rows * cols / dop};
    }
    case IrOpKind::kFilter: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCostImpl(*node.children[0], ctx,
                                              dop));
      const std::size_t conjuncts =
          relational::ExtractConjuncts(*node.predicate).size();
      const double selectivity =
          std::pow(kFilterSelectivity, static_cast<double>(conjuncts));
      return PlanCost{child.output_rows * selectivity,
                      child.total_cost +
                          child.output_rows *
                              static_cast<double>(conjuncts) / dop};
    }
    case IrOpKind::kProject: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCostImpl(*node.children[0], ctx,
                                              dop));
      return PlanCost{child.output_rows,
                      child.total_cost +
                          child.output_rows *
                              static_cast<double>(node.proj_exprs.size()) /
                              dop};
    }
    case IrOpKind::kJoin: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost left,
                             EstimateCostImpl(*node.children[0], ctx,
                                              dop));
      RAVEN_ASSIGN_OR_RETURN(PlanCost right,
                             EstimateCostImpl(*node.children[1], ctx,
                                              dop));
      // Build insertion and probe split across workers; the build-buffer
      // concatenation at the pipeline barrier stays sequential.
      const double parallel_part =
          2.0 * (left.output_rows + right.output_rows) / dop;
      const double merge_part = dop > 1.0 ? right.output_rows : 0.0;
      return PlanCost{left.output_rows, left.total_cost + right.total_cost +
                                            parallel_part + merge_part};
    }
    case IrOpKind::kUnionAll: {
      PlanCost total{0.0, 0.0};
      for (const auto& child : node.children) {
        RAVEN_ASSIGN_OR_RETURN(PlanCost c,
                               EstimateCostImpl(*child, ctx, dop));
        total.output_rows += c.output_rows;
        total.total_cost += c.total_cost;
      }
      return total;
    }
    case IrOpKind::kLimit: {
      // LIMIT pins sequential execution (ordered early-out), so everything
      // below it is costed at dop 1 regardless of the configured target.
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCostImpl(*node.children[0], ctx,
                                              1.0));
      return PlanCost{
          std::min(child.output_rows, static_cast<double>(node.limit)),
          child.total_cost};
    }
    case IrOpKind::kAggregate: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCostImpl(*node.children[0], ctx,
                                              dop));
      const double aggs = static_cast<double>(node.aggregates.size());
      // Accumulation parallelizes; the final partial merge is dop*aggs.
      return PlanCost{1.0, child.total_cost +
                               child.output_rows * aggs / dop + dop * aggs};
    }
    case IrOpKind::kGroupBy: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCostImpl(*node.children[0], ctx,
                                              dop));
      const double width = static_cast<double>(node.group_keys.size() +
                                               node.aggregates.size());
      // No distinct-count statistics yet: assume kGroupCardinality of the
      // input forms distinct key tuples.
      const double groups =
          std::max(1.0, child.output_rows * kGroupCardinality);
      // Thread-local pre-aggregation parallelizes; every worker then pays
      // one merge of (up to) its whole local table into the striped global
      // table, and the final render is sequential.
      return PlanCost{groups, child.total_cost +
                                  child.output_rows * width / dop +
                                  dop * groups * width};
    }
    case IrOpKind::kOrderBy: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCostImpl(*node.children[0], ctx,
                                              dop));
      const double rows = child.output_rows;
      // The gather-and-sort breaker: the child pipeline parallelizes, the
      // stable sort itself is a sequential tail (deliberately NOT divided
      // by dop), plus a gather of the workers' chunks when parallel.
      const double sort = rows * std::log2(rows + 2.0) *
                          static_cast<double>(node.sort_keys.size());
      const double gather = dop > 1.0 ? rows : 0.0;
      return PlanCost{rows, child.total_cost + sort + gather};
    }
    case IrOpKind::kModelPipeline: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCostImpl(*node.children[0], ctx,
                                              dop));
      return PlanCost{child.output_rows,
                      child.total_cost +
                          child.output_rows * PipelineRowCost(*node.pipeline) /
                              dop};
    }
    case IrOpKind::kClusteredPredict: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCostImpl(*node.children[0], ctx,
                                              dop));
      double avg_cost = 0.0;
      if (!node.clustered->cluster_models.empty()) {
        for (const auto& model : node.clustered->cluster_models) {
          avg_cost += PipelineRowCost(model);
        }
        avg_cost /= static_cast<double>(node.clustered->cluster_models.size());
      } else {
        avg_cost = PipelineRowCost(node.clustered->fallback);
      }
      const double routing =
          2.0 * static_cast<double>(node.clustered->routing_columns.size()) *
          static_cast<double>(node.clustered->router.k());
      return PlanCost{child.output_rows,
                      child.total_cost +
                          child.output_rows * (avg_cost + routing) / dop};
    }
    case IrOpKind::kNnGraph: {
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCostImpl(*node.children[0], ctx,
                                              dop));
      return PlanCost{child.output_rows,
                      child.total_cost +
                          child.output_rows * NnGraphRowCost(*node.nn_graph) /
                              dop};
    }
    case IrOpKind::kOpaquePipeline: {
      // Opaque pipelines run out of process and the executor keeps such
      // plans sequential; charge a serialization tax at dop 1.
      RAVEN_ASSIGN_OR_RETURN(PlanCost child,
                             EstimateCostImpl(*node.children[0], ctx,
                                              1.0));
      return PlanCost{child.output_rows,
                      child.total_cost + child.output_rows * 64.0};
    }
  }
  return Status::Internal("unreachable IR kind in EstimateCost");
}

Result<PlanCost> EstimateCostImpl(const ir::IrNode& node,
                                  const CostContext& ctx, double dop) {
  RAVEN_ASSIGN_OR_RETURN(PlanCost cost, EstimateCostNode(node, ctx, dop));
  if (ctx.sink != nullptr) (*ctx.sink)[&node] = cost;
  return cost;
}

/// The dop the executor would run this plan at (LIMIT / opaque pipelines
/// anywhere force fully sequential execution).
double EffectiveDop(const ir::IrNode& node, std::int64_t parallelism) {
  bool sequential_only = false;
  ir::VisitIr(&node, [&](const ir::IrNode* n) {
    if (n->kind == ir::IrOpKind::kLimit ||
        n->kind == ir::IrOpKind::kOpaquePipeline) {
      sequential_only = true;
    }
  });
  return sequential_only
             ? 1.0
             : static_cast<double>(std::max<std::int64_t>(1, parallelism));
}

/// Worker startup plus the ordered merge of the final result — the
/// sequential tail that makes tiny inputs cheaper at dop 1. Charged to the
/// plan root only.
void AddParallelTail(double dop, PlanCost* cost) {
  if (dop > 1.0) {
    cost->total_cost += dop * kWorkerStartupCost + cost->output_rows;
  }
}

}  // namespace

Result<PlanCost> EstimateCost(const ir::IrNode& node,
                              const relational::Catalog& catalog,
                              std::int64_t parallelism) {
  // Mirror the executor's gating exactly: costing any part of a
  // sequential-pinned plan at dop > 1 would promise a speedup the runtime
  // never delivers.
  const double dop = EffectiveDop(node, parallelism);
  const CostContext ctx{catalog, nullptr};
  RAVEN_ASSIGN_OR_RETURN(PlanCost cost, EstimateCostImpl(node, ctx, dop));
  AddParallelTail(dop, &cost);
  return cost;
}

namespace {

/// Serialization + pipe + deserialization tax per row crossing the worker
/// boundary, each direction (the scan partition out, the result back).
constexpr double kShipCostPerRow = 32.0;

/// Fixed cost of one kExecuteFragment exchange (frame encode/decode,
/// scheduling, response-stream handling), charged per partition.
constexpr double kFragmentFrameCost = 512.0;

}  // namespace

Result<PlanCost> EstimateDistributedCost(const ir::IrNode& node,
                                         const relational::Catalog& catalog,
                                         std::int64_t workers) {
  RAVEN_ASSIGN_OR_RETURN(PlanCost sequential,
                         EstimateCost(node, catalog, 1));
  if (workers <= 1) return sequential;
  const double w = static_cast<double>(workers);
  std::vector<const ir::IrNode*> fragments;
  ir::CollectDistributableFragments(node, &fragments);
  const CostContext ctx{catalog, nullptr};
  PlanCost total = sequential;
  for (const ir::IrNode* fragment : fragments) {
    RAVEN_ASSIGN_OR_RETURN(PlanCost seq_frag,
                           EstimateCostImpl(*fragment, ctx, 1.0));
    RAVEN_ASSIGN_OR_RETURN(PlanCost par_frag,
                           EstimateCostImpl(*fragment, ctx, w));
    const ir::IrNode* leaf = fragment;
    while (leaf->kind != ir::IrOpKind::kTableScan) {
      leaf = leaf->children[0].get();
    }
    RAVEN_ASSIGN_OR_RETURN(const auto shape,
                           catalog.TableShape(leaf->table_name));
    const double ship =
        kShipCostPerRow * (static_cast<double>(shape.first) +
                           seq_frag.output_rows);
    // Swap the fragment's sequential compute for pool-parallel compute plus
    // the shipping tax; the remainder keeps its sequential costing.
    total.total_cost +=
        par_frag.total_cost + ship + w * kFragmentFrameCost -
        seq_frag.total_cost;
  }
  return total;
}

Result<std::vector<OperatorCostRow>> EstimateOperatorCosts(
    const ir::IrNode& root, const relational::Catalog& catalog,
    std::int64_t parallelism) {
  // One bottom-up pass per dop fills every subtree's cost (O(plan size)).
  std::map<const ir::IrNode*, PlanCost> sequential;
  std::map<const ir::IrNode*, PlanCost> parallel;
  const CostContext seq_ctx{catalog, &sequential};
  RAVEN_ASSIGN_OR_RETURN(PlanCost seq_root,
                         EstimateCostImpl(root, seq_ctx, 1.0));
  sequential[&root] = seq_root;
  const double dop = EffectiveDop(root, parallelism);
  if (dop > 1.0) {
    const CostContext par_ctx{catalog, &parallel};
    RAVEN_ASSIGN_OR_RETURN(PlanCost par_root,
                           EstimateCostImpl(root, par_ctx, dop));
    // The root rows mirror the plan-level EstimateCost (parallel tail
    // included); inner rows stay tail-free, as the executor runs them.
    AddParallelTail(dop, &par_root);
    parallel[&root] = par_root;
  } else {
    parallel = sequential;  // dop 1: both walks would be identical
  }

  std::vector<OperatorCostRow> rows;
  std::function<void(const ir::IrNode&, int, bool)> assemble =
      [&](const ir::IrNode& node, int depth, bool parent_fusable) {
        OperatorCostRow row;
        row.node = &node;
        row.depth = depth;
        row.output_rows = sequential[&node].output_rows;
        row.sequential_cost = sequential[&node].total_cost;
        row.parallel_cost = parallel[&node].total_cost;
        row.fused_into_parent =
            parent_fusable && ir::IsFusablePipelineKind(node.kind);
        rows.push_back(row);
        for (const auto& child : node.children) {
          assemble(*child, depth + 1, ir::IsFusablePipelineKind(node.kind));
        }
      };
  assemble(root, 0, /*parent_fusable=*/false);
  return rows;
}

}  // namespace raven::optimizer
