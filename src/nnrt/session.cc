#include "nnrt/session.h"

#include "common/timer.h"

namespace raven::nnrt {

Result<std::unique_ptr<InferenceSession>> InferenceSession::Create(
    Graph graph, const SessionOptions& options) {
  RAVEN_RETURN_IF_ERROR(graph.Validate());
  GraphOptStats opt_stats;
  if (options.enable_graph_optimizations) {
    RAVEN_RETURN_IF_ERROR(OptimizeGraph(&graph, &opt_stats));
  }
  return std::unique_ptr<InferenceSession>(
      new InferenceSession(std::move(graph), options, opt_stats));
}

Result<std::unique_ptr<InferenceSession>> InferenceSession::FromBytes(
    const std::string& bytes, const SessionOptions& options) {
  BinaryReader reader(bytes);
  RAVEN_ASSIGN_OR_RETURN(Graph graph, Graph::Deserialize(&reader));
  return Create(std::move(graph), options);
}

Result<std::unique_ptr<InferenceSession>> InferenceSession::FromArtifact(
    CompiledArtifact artifact, const SessionOptions& options) {
  // Validate defensively — the artifact passed magic/version/checksum, but a
  // graph that fails validation must still fall back to a fresh compile
  // rather than reach Run().
  RAVEN_RETURN_IF_ERROR(artifact.graph.Validate());
  return std::unique_ptr<InferenceSession>(new InferenceSession(
      std::move(artifact.graph), options, artifact.opt_stats));
}

Result<TensorMap> InferenceSession::Run(const TensorMap& inputs,
                                        RunStats* stats) const {
  RunStats local;
  RAVEN_ASSIGN_OR_RETURN(
      TensorMap out,
      ExecuteGraph(graph_, inputs, &local, GetBackend(backend_),
                   /*profile_ops=*/profiler_ != nullptr));
  if (device_.type == DeviceType::kAccelerator) {
    local.simulated_micros =
        device_.launch_overhead_us + local.flops / device_.flops_per_us;
  }
  if (profiler_ != nullptr) profiler_->Merge(local.per_op);
  if (stats != nullptr) *stats = std::move(local);
  return out;
}

Result<Tensor> InferenceSession::RunSingle(const Tensor& input,
                                           RunStats* stats) const {
  if (graph_.inputs().size() != 1 || graph_.outputs().size() != 1) {
    return Status::InvalidArgument(
        "RunSingle requires a single-input/single-output graph");
  }
  TensorMap in;
  in[graph_.inputs()[0]] = input;
  RAVEN_ASSIGN_OR_RETURN(TensorMap out, Run(in, stats));
  return std::move(out.at(graph_.outputs()[0]));
}

std::string InferenceSession::ToBytes() const {
  BinaryWriter writer;
  graph_.Serialize(&writer);
  return writer.Release();
}

Result<std::shared_ptr<InferenceSession>> SessionCache::GetOrCreate(
    const std::string& key, const std::string& bytes,
    const SessionOptions& options) {
  return GetOrCreate(key, /*fingerprint=*/0, [&bytes]() { return bytes; },
                     options);
}

Result<std::shared_ptr<InferenceSession>> SessionCache::GetOrCreate(
    const std::string& key, const std::function<std::string()>& bytes_fn,
    const SessionOptions& options) {
  return GetOrCreate(key, /*fingerprint=*/0, bytes_fn, options);
}

Result<std::shared_ptr<InferenceSession>> SessionCache::GetOrCreate(
    const std::string& key, std::uint64_t fingerprint,
    const std::function<std::string()>& bytes_fn,
    const SessionOptions& options) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.first;
    }
    auto bit = building_.find(key);
    if (bit == building_.end()) break;  // No builder — this thread becomes it.
    // Single-flight: wait for the in-flight build instead of duplicating the
    // compile. Waiters take the built session straight from the BuildState
    // (not the LRU), so this holds even at capacity 0 or after an eviction.
    std::shared_ptr<BuildState> state = bit->second;
    cv_.wait(lock, [&state] { return state->done; });
    if (!state->status.ok()) return state->status;
    if (state->session != nullptr) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return state->session;
    }
    // Builder vanished without a result (should not happen) — retry.
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<BuildState>();
  building_.emplace(key, state);
  std::shared_ptr<ArtifactCache> artifacts = artifacts_;
  lock.unlock();

  auto built = Build(artifacts.get(), fingerprint, bytes_fn, options);

  lock.lock();
  building_.erase(key);
  state->done = true;
  if (built.ok()) {
    state->session = *built;
  } else {
    state->status = built.status();
  }
  cv_.notify_all();
  if (!built.ok()) return built.status();
  if (capacity_ > 0) {
    // No other thread can have inserted `key` (all inserts funnel through the
    // builder), but an Invalidate may have raced — inserting fresh is correct
    // either way.
    lru_.push_front(key);
    entries_[key] = {state->session, lru_.begin()};
    while (entries_.size() > capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return state->session;
}

Result<std::shared_ptr<InferenceSession>> SessionCache::Build(
    ArtifactCache* artifacts, std::uint64_t fingerprint,
    const std::function<std::string()>& bytes_fn,
    const SessionOptions& options) {
  const bool use_artifacts = artifacts != nullptr && fingerprint != 0;
  if (use_artifacts) {
    auto loaded = artifacts->Load(fingerprint);
    if (loaded.ok()) {
      auto session =
          InferenceSession::FromArtifact(std::move(*loaded), options);
      if (session.ok()) {
        artifact_hits_.fetch_add(1, std::memory_order_relaxed);
        return std::shared_ptr<InferenceSession>(std::move(*session));
      }
      artifact_rejects_.fetch_add(1, std::memory_order_relaxed);
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      // Present but corrupt/truncated/stale — recompile and rewrite below.
      artifact_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  RAVEN_ASSIGN_OR_RETURN(auto session,
                         InferenceSession::FromBytes(bytes_fn(), options));
  compiles_.fetch_add(1, std::memory_order_relaxed);
  if (options.enable_graph_optimizations) {
    graph_optimizations_.fetch_add(1, std::memory_order_relaxed);
  }
  std::shared_ptr<InferenceSession> shared = std::move(session);
  if (use_artifacts && options.enable_graph_optimizations) {
    // Best-effort: a failed write (disk full, read-only dir) costs the next
    // cold start a compile, never a query.
    if (artifacts
            ->Store(fingerprint, shared->graph(), shared->optimization_stats())
            .ok()) {
      artifact_writes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return shared;
}

void SessionCache::Invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.erase(it->second.second);
    entries_.erase(it);
  }
}

void SessionCache::AttachArtifacts(std::shared_ptr<ArtifactCache> artifacts) {
  std::lock_guard<std::mutex> lock(mu_);
  artifacts_ = std::move(artifacts);
}

std::shared_ptr<ArtifactCache> SessionCache::artifacts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return artifacts_;
}

void SessionCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t SessionCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

SessionCacheStats SessionCache::stats() const {
  SessionCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.compiles = compiles_.load(std::memory_order_relaxed);
  s.graph_optimizations =
      graph_optimizations_.load(std::memory_order_relaxed);
  s.artifact_hits = artifact_hits_.load(std::memory_order_relaxed);
  s.artifact_writes = artifact_writes_.load(std::memory_order_relaxed);
  s.artifact_rejects = artifact_rejects_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.entries = entries_.size();
  }
  return s;
}

}  // namespace raven::nnrt
