// Columnar on-disk scan: in-memory scan vs `.rvc` full scan vs a
// zone-map-selective `.rvc` scan, at dop 1 and 8. The full-scan pair
// measures the decode overhead of the block format (mmap read + checksum +
// RLE decode against a plain in-memory sweep); the selective run measures
// what block skipping buys when the predicate prunes most of a clustered
// column — the regression signal is selective-vs-full on the same file.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "raven/raven.h"
#include "storage/columnar.h"

namespace raven {
namespace {

/// A table clustered on id (sequential), so range predicates on id map
/// cleanly onto block zone maps — the layout ingest produces from any
/// sorted export.
relational::Table MakeClusteredTable(std::int64_t rows) {
  Rng rng(77);
  std::vector<double> id(static_cast<std::size_t>(rows));
  std::vector<double> v(static_cast<std::size_t>(rows));
  for (std::size_t i = 0; i < id.size(); ++i) {
    id[i] = static_cast<double>(i);
    v[i] = rng.Uniform(0.0, 1000.0);
  }
  relational::Table t;
  bench::MustOk(t.AddNumericColumn("id", std::move(id)), "id column");
  bench::MustOk(t.AddNumericColumn("v", std::move(v)), "value column");
  return t;
}

const std::string kSelectiveSql =
    "SELECT COUNT(*) AS n, SUM(v) AS s FROM scans WHERE id < 100";
const std::string kFullSql = "SELECT COUNT(*) AS n, SUM(v) AS s FROM scans";

void RunScan(benchmark::State& state, bool on_disk, bool selective) {
  const std::int64_t rows = state.range(0);
  const std::int64_t dop = state.range(1);
  RavenContext ctx;
  ctx.execution_options().parallelism = dop;
  const std::string path = "/tmp/raven_bench_columnar_" +
                           std::to_string(rows) + ".rvc";
  if (on_disk) {
    storage::RvcWriteOptions opts;
    opts.block_rows = 4096;
    bench::MustOk(storage::WriteRvc(MakeClusteredTable(rows), path, opts),
                  "write rvc");
    auto disk = bench::Must(storage::DiskTable::Open(path), "open rvc");
    bench::MustOk(ctx.RegisterDiskTable("scans", disk), "register disk");
  } else {
    bench::MustOk(ctx.RegisterTable("scans", MakeClusteredTable(rows)),
                  "register");
  }
  ir::IrPlan plan =
      bench::Must(ctx.Prepare(selective ? kSelectiveSql : kFullSql),
                  "prepare");
  runtime::ExecutionStats warm_stats;
  auto warm = ctx.ExecutePlan(plan, &warm_stats);
  bench::MustOk(warm.status(), "warm-up execute");
  for (auto _ : state) {
    auto result = ctx.ExecutePlan(plan);
    if (!result.ok()) {
      state.SkipWithError("execute failed");
      return;
    }
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["dop"] = static_cast<double>(dop);
  state.counters["blocks_scanned"] =
      static_cast<double>(warm_stats.blocks_scanned);
  state.counters["blocks_skipped"] =
      static_cast<double>(warm_stats.blocks_skipped);
  if (on_disk) std::remove(path.c_str());
}

void BM_InMemoryFullScan(benchmark::State& state) {
  RunScan(state, /*on_disk=*/false, /*selective=*/false);
}
void BM_DiskFullScan(benchmark::State& state) {
  RunScan(state, /*on_disk=*/true, /*selective=*/false);
}
void BM_DiskSelectiveScan(benchmark::State& state) {
  RunScan(state, /*on_disk=*/true, /*selective=*/true);
}

BENCHMARK(BM_InMemoryFullScan)
    ->ArgsProduct({{20000, 200000}, {1, 8}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DiskFullScan)
    ->ArgsProduct({{20000, 200000}, {1, 8}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DiskSelectiveScan)
    ->ArgsProduct({{20000, 200000}, {1, 8}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace raven
