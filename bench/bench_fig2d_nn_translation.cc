// Fig 2(d): NN translation (hospital random forest). The paper compares
// scikit-learn's interpreted RF against the same model translated to a
// neural network (GEMM layers) on CPU and on a K80 GPU: RF-NN(CPU) ~2x
// faster at 1K rows with the gap closing as size grows; RF-NN(GPU) up to
// ~15x at 1M rows.
//
// Series:
//   RF_Interpreted   = row-at-a-time tree walking (classical framework).
//   RFNN_CPU         = GEMM-lowered forest in NNRT on the host CPU
//                      (measured wall time).
//   RFNN_Accelerator = same graph on the simulated accelerator; reported
//                      time is the device cost model
//                      (launch_overhead + flops/throughput), see DESIGN.md
//                      GPU substitution. Uses manual timing.

#include "bench_util.h"
#include "nnrt/session.h"
#include "optimizer/converters.h"

namespace raven {
namespace {

const ml::ModelPipeline& Forest() {
  static auto* model = new ml::ModelPipeline(bench::Must(
      data::TrainHospitalForest(bench::Hospital(20000), 10, 8), "train rf"));
  return *model;
}

Tensor InputFor(std::int64_t rows) {
  return bench::Must(
      bench::Hospital(rows).joined.ToTensor(Forest().input_columns),
      "tensor");
}

const nnrt::InferenceSession& Session(nnrt::DeviceSpec device) {
  static auto* cpu = new std::unique_ptr<nnrt::InferenceSession>();
  static auto* acc = new std::unique_ptr<nnrt::InferenceSession>();
  auto& slot = device.type == nnrt::DeviceType::kCpu ? *cpu : *acc;
  if (slot == nullptr) {
    nnrt::Graph graph =
        bench::Must(optimizer::PipelineToNnGraph(Forest()), "translate");
    nnrt::SessionOptions options;
    options.device = device;
    slot = bench::Must(
        nnrt::InferenceSession::Create(std::move(graph), options),
        "session");
  }
  return *slot;
}

void BM_Fig2d_RF_Interpreted(benchmark::State& state) {
  Tensor x = InputFor(state.range(0));
  const auto& model = Forest();
  for (auto _ : state) {
    auto preds = model.Predict(x);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

void BM_Fig2d_RFNN_CPU(benchmark::State& state) {
  Tensor x = InputFor(state.range(0));
  const auto& session = Session(nnrt::DeviceSpec::Cpu());
  for (auto _ : state) {
    auto preds = session.RunSingle(x);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

void BM_Fig2d_RFNN_Accelerator(benchmark::State& state) {
  Tensor x = InputFor(state.range(0));
  const auto& session =
      Session(nnrt::DeviceSpec::Accelerator(/*launch_overhead_us=*/60.0,
                                            /*flops_per_us=*/2.0e4));
  for (auto _ : state) {
    nnrt::RunStats stats;
    auto preds = session.RunSingle(x, &stats);
    benchmark::DoNotOptimize(preds);
    // Report the device-model time, not host wall time.
    state.SetIterationTime(stats.simulated_micros * 1e-6);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

#define FIG2D_SIZES ->Arg(1000)->Arg(10000)->Arg(100000)->Arg(200000)

BENCHMARK(BM_Fig2d_RF_Interpreted)
    FIG2D_SIZES->Iterations(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig2d_RFNN_CPU)
    FIG2D_SIZES->Iterations(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig2d_RFNN_Accelerator)
    FIG2D_SIZES->Iterations(2)->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace raven
