// Dedicated round-trip coverage for the out-of-process scoring wire
// protocol (runtime/worker_protocol): request/response encode->decode
// equality across commands, and truncated/corrupt payload error paths.

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>

#include "runtime/worker_protocol.h"
#include "tensor/tensor.h"

namespace raven::runtime {
namespace {

ScoreRequest MakeRequest(WorkerCommand command) {
  ScoreRequest request;
  request.command = command;
  request.model_bytes = "stored-model-bytes";
  request.input = *Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  return request;
}

TEST(WorkerProtocolRoundTrip, RequestAllCommands) {
  for (WorkerCommand command :
       {WorkerCommand::kPing, WorkerCommand::kScorePipeline,
        WorkerCommand::kScoreGraph, WorkerCommand::kShutdown}) {
    ScoreRequest request = MakeRequest(command);
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->command, command);
    EXPECT_EQ(decoded->model_bytes, request.model_bytes);
    EXPECT_EQ(decoded->input.shape(), request.input.shape());
    EXPECT_TRUE(decoded->input.AllClose(request.input, 0.0f));
  }
}

TEST(WorkerProtocolRoundTrip, SuccessResponse) {
  ScoreResponse response;
  response.ok = true;
  response.output = *Tensor::FromData({3, 1}, {0.25f, -1.5f, 9.0f});
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->ok);
  EXPECT_TRUE(decoded->error.empty());
  EXPECT_EQ(decoded->output.shape(), response.output.shape());
  EXPECT_TRUE(decoded->output.AllClose(response.output, 0.0f));
}

TEST(WorkerProtocolRoundTrip, ErrorResponseCarriesMessage) {
  ScoreResponse response;
  response.ok = false;
  response.error = "model deserialization failed";
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->error, "model deserialization failed");
}

TEST(WorkerProtocolErrors, TruncatedRequestAtEveryPrefixFails) {
  const std::string full = EncodeRequest(MakeRequest(WorkerCommand::kScoreGraph));
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    auto decoded = DecodeRequest(full.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "decode succeeded at cut=" << cut;
  }
}

TEST(WorkerProtocolErrors, TruncatedResponseFails) {
  ScoreResponse response;
  response.ok = true;
  response.output = *Tensor::FromData({2, 2}, {1, 2, 3, 4});
  const std::string full = EncodeResponse(response);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    auto decoded = DecodeResponse(full.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "decode succeeded at cut=" << cut;
  }
}

TEST(WorkerProtocolErrors, BadCommandByteIsParseError) {
  std::string payload = EncodeRequest(MakeRequest(WorkerCommand::kPing));
  payload[0] = static_cast<char>(0x7F);  // command is the first byte
  auto decoded = DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(WorkerProtocolErrors, EmptyPayloadFails) {
  EXPECT_FALSE(DecodeRequest("").ok());
  EXPECT_FALSE(DecodeResponse("").ok());
}

TEST(WorkerProtocolFrames, PipeRoundTrip) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = EncodeRequest(MakeRequest(WorkerCommand::kScorePipeline));
  ASSERT_TRUE(WriteFrame(fds[1], payload).ok());
  auto read_back = ReadFrame(fds[0]);
  ASSERT_TRUE(read_back.ok()) << read_back.status().ToString();
  EXPECT_EQ(*read_back, payload);
  // Empty frames are legal (used for pings).
  ASSERT_TRUE(WriteFrame(fds[1], "").ok());
  auto empty = ReadFrame(fds[0]);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WorkerProtocolFrames, ClosedPipeIsIoError) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[1]);  // writer gone -> EOF on read
  auto result = ReadFrame(fds[0]);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  ::close(fds[0]);
}

}  // namespace
}  // namespace raven::runtime
