// Execution modes (paper §5): the same inference query scored
//   1. in-process  (NNRT linked into the engine, session caching, optional
//                   parallel scan+PREDICT),
//   2. distributed (plan fragments shipped to a persistent raven_worker
//                   pool — the boot cost is paid once, not per query),
//   3. out-of-process (one-shot raven_worker per query, Raven Ext),
//   4. containerized (per-query worker with container boot cost).
//
//   ./build/examples/execution_modes

#include <cstdio>

#include "data/hospital.h"
#include "raven/raven.h"

namespace {

double RunOnce(raven::RavenContext* ctx, const char* label) {
  const char* sql =
      "SELECT id, p FROM PREDICT(MODEL='los_rf', DATA=patients) "
      "WITH(p float) WHERE p > 6";
  auto result = ctx->Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 result.status().ToString().c_str());
    return -1;
  }
  std::printf("%-28s %8.2f ms  (%lld rows)\n", label, result->total_millis,
              static_cast<long long>(result->table.num_rows()));
  return result->total_millis;
}

}  // namespace

int main() {
  using namespace raven;
  auto data = data::MakeHospitalDataset(200000, /*seed=*/17);
  auto forest = data::TrainHospitalForest(data, 10, 8);
  if (!forest.ok()) {
    std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
    return 1;
  }

  auto make_ctx = [&](runtime::ExecutionMode mode, std::int64_t parallelism) {
    RavenOptions options;
    options.optimizer.model_inlining = false;  // keep the NNRT path
    options.execution.mode = mode;
    options.execution.parallelism = parallelism;
    options.execution.external.boot_millis = 400;
    auto ctx = std::make_unique<RavenContext>(options);
    (void)ctx->RegisterTable("patients", data.joined);
    (void)ctx->InsertModel("los_rf", data::HospitalForestScript(), *forest);
    return ctx;
  };

  std::printf("scoring 200K rows through a 10-tree forest (NN-translated):\n");
  {
    auto ctx = make_ctx(runtime::ExecutionMode::kInProcess, 1);
    RunOnce(ctx.get(), "in-process (cold session)");
    RunOnce(ctx.get(), "in-process (warm session)");
  }
  {
    auto ctx = make_ctx(runtime::ExecutionMode::kInProcess, 4);
    RunOnce(ctx.get(), "in-process parallel x4");
    RunOnce(ctx.get(), "in-process parallel x4 warm");
  }
  {
    auto ctx = make_ctx(runtime::ExecutionMode::kDistributed, 1);
    ctx->execution_options().distributed_workers = 4;
    RunOnce(ctx.get(), "distributed pool x4 (cold)");
    RunOnce(ctx.get(), "distributed pool x4 (warm)");
  }
  {
    auto ctx = make_ctx(runtime::ExecutionMode::kOutOfProcess, 1);
    RunOnce(ctx.get(), "out-of-process (Raven Ext)");
  }
  {
    auto ctx = make_ctx(runtime::ExecutionMode::kContainer, 1);
    RunOnce(ctx.get(), "containerized");
  }
  std::printf(
      "\nNote: the distributed pool pays its workers' ~0.4 s simulated "
      "runtime boot\nonce (cold), then ships plan fragments to warm "
      "workers; one-shot\nout-of-process pays the boot per query, and "
      "containerized adds container\nstart-up on top (paper Fig 3 / §5).\n");
  return 0;
}
