// Ablation: static-analysis latency. The paper reports the Static Analyzer
// (lexing, parsing, dataflow extraction, KB mapping, SQL planning) takes
// under 10 ms in most practical cases (§3.2).

#include "bench_util.h"
#include "frontend/analyzer.h"
#include "raven/raven.h"

namespace raven {
namespace {

constexpr const char* kQuery =
    "WITH data AS (SELECT * FROM patient_info "
    "  JOIN blood_tests ON id = id JOIN prenatal_tests ON id = id) "
    "SELECT id, p FROM PREDICT(MODEL='los', DATA=data) WITH(p float) "
    "WHERE pregnant = 1 AND p > 7";

void BM_StaticAnalysis(benchmark::State& state) {
  static auto* ctx = [] {
    auto* c = new RavenContext();
    const auto& data = bench::Hospital(1000);
    bench::MustOk(c->RegisterTable("patient_info", data.patient_info), "t1");
    bench::MustOk(c->RegisterTable("blood_tests", data.blood_tests), "t2");
    bench::MustOk(c->RegisterTable("prenatal_tests", data.prenatal_tests),
                  "t3");
    bench::MustOk(c->InsertModel(
                      "los", data::HospitalTreeScript(),
                      bench::Must(data::TrainHospitalTree(
                                      bench::Hospital(1000), 6),
                                  "train")),
                  "model");
    return c;
  }();
  frontend::StaticAnalyzer analyzer(&ctx->catalog());
  for (auto _ : state) {
    auto plan = analyzer.Analyze(kQuery);
    if (!plan.ok()) {
      state.SkipWithError(plan.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(plan);
  }
}

void BM_AnalyzePlusOptimize(benchmark::State& state) {
  static auto* ctx = [] {
    auto* c = new RavenContext();
    const auto& data = bench::Hospital(1000);
    bench::MustOk(c->RegisterTable("patient_info", data.patient_info), "t1");
    bench::MustOk(c->RegisterTable("blood_tests", data.blood_tests), "t2");
    bench::MustOk(c->RegisterTable("prenatal_tests", data.prenatal_tests),
                  "t3");
    bench::MustOk(c->InsertModel(
                      "los", data::HospitalTreeScript(),
                      bench::Must(data::TrainHospitalTree(
                                      bench::Hospital(1000), 6),
                                  "train")),
                  "model");
    return c;
  }();
  for (auto _ : state) {
    auto plan = ctx->Prepare(kQuery);
    if (!plan.ok()) {
      state.SkipWithError(plan.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(plan);
  }
}

BENCHMARK(BM_StaticAnalysis)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnalyzePlusOptimize)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace raven
