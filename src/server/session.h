#ifndef RAVEN_SERVER_SESSION_H_
#define RAVEN_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ir/ir.h"
#include "runtime/codegen.h"

namespace raven::server {

/// One PREPAREd statement: the optimized plan template (with ParamExpr
/// placeholders still in it), pinned to the catalog version AND planning
/// profile it was planned under so EXECUTE can detect staleness — a model
/// update or a SET that changes the costing targets — and re-plan from the
/// stored text instead of running a template optimized for a different
/// world.
struct PreparedStatement {
  std::string name;
  std::string sql;  ///< view-rewritten statement text (re-plan source)
  std::shared_ptr<const ir::IrPlan> plan;
  std::int64_t param_count = 0;
  std::uint64_t fingerprint = 0;
  std::int64_t catalog_version = 0;
  std::string profile;  ///< Session::PlanProfile() at plan time
};

/// Per-connection state: execution knobs (SET), prepared statements, and
/// temp views. Touched by at most one dispatch thread at a time (the event
/// loop is strict request/response per connection, no pipelining) — no
/// locking; everything cross-session lives in the QueryServer (plan cache,
/// admission, the inference batcher, the engine itself).
class Session {
 public:
  /// `shared_cache` (the engine-wide NNRT session cache) enables the
  /// server-wide `SET nn_session_cache_capacity` knob; null leaves the
  /// knob rejected (direct API / unit-test sessions).
  Session(std::int64_t id, runtime::ExecutionOptions defaults,
          nnrt::SessionCache* shared_cache = nullptr)
      : id_(id),
        execution_(std::move(defaults)),
        shared_cache_(shared_cache) {}

  std::int64_t id() const { return id_; }
  runtime::ExecutionOptions& execution() { return execution_; }
  const runtime::ExecutionOptions& execution() const { return execution_; }

  /// Applies `SET key = value`. Keys (case-insensitive): parallelism,
  /// morsel_rows, mode (inprocess|distributed|outofprocess|container),
  /// distributed_workers, distributed_frame_timeout_millis,
  /// batch_window_micros (0 = no cross-query coalescing), max_batch_rows,
  /// nn_backend (reference|simd|fp16), nn_session_cache_capacity
  /// (server-wide NNRT session-cache resize), trace (on|off — record a
  /// span tree per statement, SHOW TRACE reads the last one),
  /// slow_query_millis (0 = off — statements at or over the threshold
  /// emit their span tree to the server's slow-query log).
  Status ApplySet(const std::string& key, const std::string& value);

  /// `SET trace` state: record a per-statement span tree even without the
  /// TRACE verb. Observation only — never part of PlanProfile().
  bool trace_enabled() const { return trace_enabled_; }
  /// `SET slow_query_millis` threshold; 0 disables slow-query logging.
  std::int64_t slow_query_millis() const { return slow_query_millis_; }

  /// Last recorded trace (tree text + one-line JSON), overwritten per
  /// traced statement; SHOW TRACE returns the tree.
  void SetLastTrace(std::string tree, std::string json) {
    last_trace_tree_ = std::move(tree);
    last_trace_json_ = std::move(json);
  }
  const std::string& last_trace_tree() const { return last_trace_tree_; }
  const std::string& last_trace_json() const { return last_trace_json_; }

  /// The session knobs that change what the optimizer produces (cost-based
  /// representation choices depend on them); part of the plan-cache key so
  /// sessions with different targets never share a mis-costed plan.
  std::string PlanProfile() const;

  // -- Temp views ------------------------------------------------------------
  /// Registers `name` as a session-scoped view over `select_sql` (the text
  /// is validated by the caller before this sticks). Re-CREATE replaces.
  void PutView(const std::string& name, const std::string& select_sql);
  Status DropView(const std::string& name);
  bool HasView(const std::string& name) const;

  /// Prepends the session's views as CTEs (in creation order) so any
  /// statement can reference them; statements see the same text the
  /// plan-cache key is derived from.
  std::string RewriteWithViews(const std::string& sql) const;

  // -- Prepared statements ---------------------------------------------------
  std::map<std::string, PreparedStatement>& prepared() { return prepared_; }

 private:
  const std::int64_t id_;
  runtime::ExecutionOptions execution_;
  nnrt::SessionCache* shared_cache_;
  bool trace_enabled_ = false;
  std::int64_t slow_query_millis_ = 0;
  std::string last_trace_tree_;
  std::string last_trace_json_;
  std::map<std::string, PreparedStatement> prepared_;
  /// name -> SELECT text, in creation order (later views may reference
  /// earlier ones).
  std::vector<std::pair<std::string, std::string>> views_;
};

}  // namespace raven::server

#endif  // RAVEN_SERVER_SESSION_H_
