#ifndef RAVEN_ML_DECISION_TREE_H_
#define RAVEN_ML_DECISION_TREE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace raven::ml {

/// Training hyper-parameters for CART regression trees. Classification
/// targets are trained as regression to the class value (the paper's
/// length-of-stay tree predicts values like 2/4/7 days).
struct TreeTrainOptions {
  std::int64_t max_depth = 8;
  std::int64_t min_samples_leaf = 8;
  /// Number of candidate thresholds evaluated per feature (quantile grid).
  std::int64_t candidate_splits = 32;
  /// Features subsampled per split (<= 0 means all; used by forests).
  std::int64_t max_features = -1;
  std::uint64_t seed = 17;
};

/// A closed interval constraint on one feature, used by predicate-based
/// model pruning (paper §4.1): WHERE-clause predicates become intervals and
/// tree branches incompatible with them are removed.
struct FeatureInterval {
  std::int64_t feature = -1;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
};

/// CART decision tree stored as flattened parallel arrays (the same layout
/// the NNRT TreeEnsemble kernel consumes). Node i is a leaf iff
/// feature[i] < 0, in which case value[i] is the prediction; otherwise the
/// test is x[feature[i]] <= threshold[i] ? left[i] : right[i].
class DecisionTree {
 public:
  DecisionTree() = default;

  /// Trains on X [n, d] with targets y [n].
  Status Fit(const Tensor& x, const std::vector<float>& y,
             const TreeTrainOptions& options = TreeTrainOptions());

  /// Scalar prediction for one row (interpreted walk — this is the
  /// "classical framework" baseline path in the paper's figures).
  float PredictRow(const float* row, std::int64_t num_features) const;

  /// Predictions for X [n, d] as a [n, 1] tensor.
  Result<Tensor> Predict(const Tensor& x) const;

  /// Returns a copy of this tree with every branch unreachable under the
  /// given per-feature interval constraints removed. Intervals on features
  /// the tree never tests are ignored. The pruned tree is observationally
  /// equivalent on all inputs satisfying the constraints.
  DecisionTree PruneWithIntervals(
      const std::vector<FeatureInterval>& intervals) const;

  /// Indices of features actually tested by some internal node.
  std::vector<std::int64_t> UsedFeatures() const;

  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(feature_.size());
  }
  std::int64_t num_leaves() const;
  std::int64_t depth() const;
  std::int64_t num_features() const { return num_features_; }

  /// Flattened arrays (shared with the NNRT TreeEnsemble layout).
  const std::vector<std::int32_t>& feature() const { return feature_; }
  const std::vector<float>& threshold() const { return threshold_; }
  const std::vector<std::int32_t>& left() const { return left_; }
  const std::vector<std::int32_t>& right() const { return right_; }
  const std::vector<float>& value() const { return value_; }
  std::int32_t root() const { return root_; }

  /// Builds a tree directly from flattened arrays (converters, tests).
  static Result<DecisionTree> FromArrays(std::int64_t num_features,
                                         std::vector<std::int32_t> feature,
                                         std::vector<float> threshold,
                                         std::vector<std::int32_t> left,
                                         std::vector<std::int32_t> right,
                                         std::vector<float> value,
                                         std::int32_t root = 0);

  void Serialize(BinaryWriter* writer) const;
  static Result<DecisionTree> Deserialize(BinaryReader* reader);

  /// Renumbers features according to old->new index map; -1 entries mean
  /// the feature is unused by the pruned model (must not be referenced).
  Status RemapFeatures(const std::vector<std::int64_t>& old_to_new);

 private:
  friend class RandomForest;

  struct BuildContext;
  std::int32_t BuildNode(BuildContext* ctx, std::vector<std::int64_t>* indices,
                         std::int64_t begin, std::int64_t end,
                         std::int64_t depth);

  std::int64_t num_features_ = 0;
  std::int32_t root_ = 0;
  std::vector<std::int32_t> feature_;
  std::vector<float> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<float> value_;
};

}  // namespace raven::ml

#endif  // RAVEN_ML_DECISION_TREE_H_
