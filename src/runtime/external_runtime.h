#ifndef RAVEN_RUNTIME_EXTERNAL_RUNTIME_H_
#define RAVEN_RUNTIME_EXTERNAL_RUNTIME_H_

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/worker_protocol.h"
#include "tensor/tensor.h"

namespace raven::runtime {

/// Configuration for out-of-process / containerized execution.
struct ExternalRuntimeOptions {
  /// Path to the raven_worker binary; empty = auto-discover relative to the
  /// current executable (build/<dir>/x -> build/tools/raven_worker) or via
  /// $RAVEN_WORKER_PATH.
  std::string worker_path;
  /// Simulated interpreter start-up cost the worker sleeps at boot. The
  /// paper measures ~0.5 s for sp_execute_external_script to start the
  /// Python runtime; the real fork/exec cost is a few ms, so this models
  /// the rest (documented substitution, DESIGN.md §1).
  std::int64_t boot_millis = 0;
  /// When true, a fresh worker is spawned per query — the
  /// sp_execute_external_script lifecycle; when false the worker persists
  /// across calls (used by tests).
  bool per_query_process = true;
  /// Extra argv entries appended after --boot-ms (e.g. the protocol
  /// fault-injection flags raven_worker exposes for tests).
  std::vector<std::string> worker_args;
};

/// Resolves the worker binary path (options, $RAVEN_WORKER_PATH, or
/// relative to /proc/self/exe).
Result<std::string> ResolveWorkerPath(const std::string& configured);

/// A handle to one spawned scoring worker process connected over pipes.
/// This is Raven Ext (paper §5): real process isolation, real
/// serialization, real start-up cost.
class WorkerClient {
 public:
  WorkerClient() = default;
  ~WorkerClient();

  WorkerClient(const WorkerClient&) = delete;
  WorkerClient& operator=(const WorkerClient&) = delete;

  /// Spawns the worker via fork/exec. Blocks until the worker answers a
  /// ping (i.e. the simulated runtime boot completed). Also installs a
  /// process-wide SIGPIPE ignore (once), so writing to a worker that died
  /// surfaces as an EPIPE IoError instead of killing the engine.
  Status Start(const ExternalRuntimeOptions& options);

  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  /// Ships model bytes + input tensor, returns predictions.
  Result<Tensor> Score(WorkerCommand kind, const std::string& model_bytes,
                       const Tensor& input);

  /// Raw frame I/O for multi-frame exchanges (the plan-fragment streaming
  /// protocol). The caller owns request/response pairing; a failed exchange
  /// leaves the pipe in an unknown state, so treat any error as fatal for
  /// this worker and restart it.
  Status SendFrame(const std::string& payload);
  Result<std::string> ReceiveFrame(int timeout_millis = -1);

  /// Graceful shutdown: sends kShutdown, waits for the worker's ack frame
  /// (making the join deterministic), then reaps the child — escalating to
  /// SIGKILL only if the worker ignores the request.
  void Stop();

 private:
  pid_t pid_ = -1;
  int to_worker_ = -1;
  int from_worker_ = -1;
};

}  // namespace raven::runtime

#endif  // RAVEN_RUNTIME_EXTERNAL_RUNTIME_H_
