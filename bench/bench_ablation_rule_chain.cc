// Ablation: the Fig 1 rule chain on the running example. Each variant adds
// one optimization layer; the chain (predicate pushdown -> model pruning ->
// model-projection pushdown -> inlining -> join elimination) is exactly the
// interaction the paper's §2 walk-through describes.

#include "bench_util.h"
#include "raven/raven.h"

namespace raven {
namespace {

constexpr std::int64_t kRows = 100000;

constexpr const char* kQuery =
    "WITH data AS (SELECT * FROM patient_info "
    "  JOIN blood_tests ON id = id JOIN prenatal_tests ON id = id) "
    "SELECT id, length_of_stay "
    "FROM PREDICT(MODEL='los', DATA=data) WITH(length_of_stay float) "
    "WHERE pregnant = 1 AND length_of_stay > 7";

enum Level {
  kNoOpt = 0,
  kPushdown = 1,
  kPruning = 2,
  kProjection = 3,
  kInlining = 4,
  kJoinElim = 5,
};

std::unique_ptr<RavenContext> MakeContext(int level) {
  RavenOptions options;
  options.optimizer.predicate_pushdown = level >= kPushdown;
  options.optimizer.predicate_model_pruning = level >= kPruning;
  options.optimizer.model_projection_pushdown = level >= kProjection;
  options.optimizer.projection_pushdown = level >= kProjection;
  options.optimizer.model_inlining = level >= kInlining;
  options.optimizer.join_elimination = level >= kJoinElim;
  options.optimizer.nn_translation = false;
  auto ctx = std::make_unique<RavenContext>(options);
  const auto& data = bench::Hospital(kRows);
  bench::MustOk(ctx->RegisterTable("patient_info", data.patient_info), "t1");
  bench::MustOk(ctx->RegisterTable("blood_tests", data.blood_tests), "t2");
  bench::MustOk(ctx->RegisterTable("prenatal_tests", data.prenatal_tests),
                "t3");
  bench::MustOk(ctx->InsertModel(
                    "los", data::HospitalTreeScript(),
                    bench::Must(data::TrainHospitalTree(
                                    bench::Hospital(kRows), 8),
                                "train")),
                "model");
  return ctx;
}

void BM_RuleChain(benchmark::State& state) {
  auto ctx = MakeContext(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = ctx->Query(kQuery);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->table.num_rows());
  }
  static const char* kNames[] = {"none",
                                 "+predicate_pushdown",
                                 "+model_pruning",
                                 "+projection_pushdown",
                                 "+model_inlining",
                                 "+join_elimination"};
  state.SetLabel(kNames[state.range(0)]);
}

BENCHMARK(BM_RuleChain)
    ->DenseRange(0, 5)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace raven
