#ifndef RAVEN_TENSOR_TENSOR_H_
#define RAVEN_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace raven {

/// Shape of a dense tensor; empty shape denotes a scalar.
using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape (product of dims; 1 for scalars).
std::int64_t ShapeNumElements(const Shape& shape);

/// Human-readable "[2, 3]" form.
std::string ShapeToString(const Shape& shape);

/// Dense row-major float32 tensor.
///
/// NNRT (the ONNX-Runtime stand-in) is a float32 engine, matching the common
/// inference configuration of the paper's models; integer data (one-hot
/// indices, tree node ids) is represented as exact small floats. This keeps
/// every kernel monomorphic, which is what a vectorized inference runtime
/// wants anyway.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  static Tensor Zeros(Shape shape);
  /// Allocates a tensor filled with `value`.
  static Tensor Full(Shape shape, float value);
  /// Wraps existing data; data.size() must equal the shape's element count.
  static Result<Tensor> FromData(Shape shape, std::vector<float> data);
  /// 1-D convenience constructor.
  static Tensor FromVector(std::vector<float> data);
  /// Scalar convenience constructor.
  static Tensor Scalar(float value);

  const Shape& shape() const { return shape_; }
  std::int64_t num_elements() const {
    return static_cast<std::int64_t>(data_.size());
  }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }

  /// Dimension i; negative axes are not supported at this layer.
  std::int64_t dim(std::int64_t i) const { return shape_[static_cast<std::size_t>(i)]; }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }
  const float* raw() const { return data_.data(); }
  float* raw() { return data_.data(); }

  /// Element access for rank-2 tensors.
  float At(std::int64_t row, std::int64_t col) const {
    return data_[static_cast<std::size_t>(row * shape_[1] + col)];
  }
  float& At(std::int64_t row, std::int64_t col) {
    return data_[static_cast<std::size_t>(row * shape_[1] + col)];
  }

  /// Reinterprets the buffer under a new shape with the same element count.
  Status Reshape(Shape new_shape);

  /// Returns rows [begin, end) of a rank-2 tensor as a new tensor.
  Result<Tensor> SliceRows(std::int64_t begin, std::int64_t end) const;

  /// Exact element-wise equality.
  bool Equals(const Tensor& other) const;
  /// Element-wise equality within `atol`.
  bool AllClose(const Tensor& other, float atol = 1e-5f) const;

  std::string ToString(std::int64_t max_elements = 16) const;

  void Serialize(BinaryWriter* writer) const;
  static Result<Tensor> Deserialize(BinaryReader* reader);

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace raven

#endif  // RAVEN_TENSOR_TENSOR_H_
