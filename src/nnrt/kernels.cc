#include "nnrt/kernels.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace raven::nnrt {
namespace {

Status CheckInputCount(const KernelContext& ctx, std::size_t min_inputs,
                       std::size_t max_inputs) {
  if (ctx.inputs.size() < min_inputs || ctx.inputs.size() > max_inputs) {
    return Status::InvalidArgument(
        ctx.node->op_type + " expects between " + std::to_string(min_inputs) +
        " and " + std::to_string(max_inputs) + " inputs, got " +
        std::to_string(ctx.inputs.size()));
  }
  return Status::OK();
}

/// Rows/cols of a tensor treated as a matrix: rank-1 [n] is a single row.
std::pair<std::int64_t, std::int64_t> AsMatrix(const Tensor& t) {
  if (t.rank() == 2) return {t.dim(0), t.dim(1)};
  if (t.rank() == 1) return {1, t.dim(0)};
  return {1, t.num_elements()};
}

// ---------------------------------------------------------------------------
// Element-wise binary ops with row-vector / scalar broadcasting.
// ---------------------------------------------------------------------------

template <typename F>
Status ElementwiseBinary(KernelContext* ctx, F f) {
  RAVEN_RETURN_IF_ERROR(CheckInputCount(*ctx, 2, 2));
  const Tensor& a = ctx->input(0);
  const Tensor& b = ctx->input(1);
  Tensor out = Tensor::Zeros(a.shape());
  const auto [rows, cols] = AsMatrix(a);
  const std::int64_t bn = b.num_elements();
  if (bn == a.num_elements()) {
    for (std::int64_t i = 0; i < a.num_elements(); ++i) {
      out.data()[static_cast<std::size_t>(i)] =
          f(a.raw()[i], b.raw()[i]);
    }
  } else if (bn == 1) {
    const float bv = b.raw()[0];
    for (std::int64_t i = 0; i < a.num_elements(); ++i) {
      out.data()[static_cast<std::size_t>(i)] = f(a.raw()[i], bv);
    }
  } else if (bn == cols) {
    // Broadcast b across rows.
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* arow = a.raw() + r * cols;
      float* orow = out.raw() + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) orow[c] = f(arow[c], b.raw()[c]);
    }
  } else {
    return Status::InvalidArgument(
        ctx->node->op_type + ": cannot broadcast " +
        ShapeToString(b.shape()) + " against " + ShapeToString(a.shape()));
  }
  ctx->flops = static_cast<double>(a.num_elements());
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

Status AddKernel(KernelContext* ctx) {
  return ElementwiseBinary(ctx, [](float x, float y) { return x + y; });
}
Status SubKernel(KernelContext* ctx) {
  return ElementwiseBinary(ctx, [](float x, float y) { return x - y; });
}
Status MulKernel(KernelContext* ctx) {
  return ElementwiseBinary(ctx, [](float x, float y) { return x * y; });
}
Status DivKernel(KernelContext* ctx) {
  return ElementwiseBinary(ctx, [](float x, float y) { return x / y; });
}
Status LessKernel(KernelContext* ctx) {
  return ElementwiseBinary(ctx,
                           [](float x, float y) { return x < y ? 1.f : 0.f; });
}
Status LessOrEqualKernel(KernelContext* ctx) {
  return ElementwiseBinary(
      ctx, [](float x, float y) { return x <= y ? 1.f : 0.f; });
}
Status GreaterKernel(KernelContext* ctx) {
  return ElementwiseBinary(ctx,
                           [](float x, float y) { return x > y ? 1.f : 0.f; });
}
Status EqualKernel(KernelContext* ctx) {
  return ElementwiseBinary(
      ctx, [](float x, float y) { return x == y ? 1.f : 0.f; });
}

// ---------------------------------------------------------------------------
// Element-wise unary ops.
// ---------------------------------------------------------------------------

template <typename F>
Status ElementwiseUnary(KernelContext* ctx, F f, double flops_per_elem = 1.0) {
  RAVEN_RETURN_IF_ERROR(CheckInputCount(*ctx, 1, 1));
  const Tensor& a = ctx->input(0);
  Tensor out = Tensor::Zeros(a.shape());
  for (std::int64_t i = 0; i < a.num_elements(); ++i) {
    out.data()[static_cast<std::size_t>(i)] = f(a.raw()[i]);
  }
  ctx->flops = flops_per_elem * static_cast<double>(a.num_elements());
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

Status IdentityKernel(KernelContext* ctx) {
  return ElementwiseUnary(ctx, [](float x) { return x; }, 0.0);
}
Status ReluKernel(KernelContext* ctx) {
  return ElementwiseUnary(ctx, [](float x) { return x > 0 ? x : 0.f; });
}
Status SigmoidKernel(KernelContext* ctx) {
  return ElementwiseUnary(
      ctx, [](float x) { return 1.0f / (1.0f + std::exp(-x)); }, 4.0);
}
Status TanhKernel(KernelContext* ctx) {
  return ElementwiseUnary(ctx, [](float x) { return std::tanh(x); }, 4.0);
}
Status NegKernel(KernelContext* ctx) {
  return ElementwiseUnary(ctx, [](float x) { return -x; });
}

// ---------------------------------------------------------------------------
// Matrix ops.
// ---------------------------------------------------------------------------

Status MatMulImpl(const Tensor& a, const Tensor& b, const Tensor* bias,
                  KernelContext* ctx) {
  const auto [n, k] = AsMatrix(a);
  if (b.rank() != 2 || b.dim(0) != k) {
    return Status::InvalidArgument(
        "MatMul shape mismatch: " + ShapeToString(a.shape()) + " x " +
        ShapeToString(b.shape()));
  }
  const std::int64_t m = b.dim(1);
  if (bias != nullptr && bias->num_elements() != m) {
    return Status::InvalidArgument("Gemm bias size mismatch");
  }
  Tensor out = Tensor::Zeros({n, m});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::int64_t i = 0; i < n; ++i) {
    if (bias != nullptr) {
      for (std::int64_t j = 0; j < m; ++j) po[i * m + j] = bias->raw()[j];
    }
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;  // Sparse inputs (one-hot) skip work.
      const float* brow = pb + kk * m;
      float* orow = po + i * m;
      for (std::int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  ctx->flops = 2.0 * static_cast<double>(n) * static_cast<double>(k) *
               static_cast<double>(m);
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

Status MatMulKernel(KernelContext* ctx) {
  RAVEN_RETURN_IF_ERROR(CheckInputCount(*ctx, 2, 2));
  return MatMulImpl(ctx->input(0), ctx->input(1), nullptr, ctx);
}

/// Gemm: Y = X * W (+ bias). W is [in, out]; bias broadcasts over rows.
Status GemmKernel(KernelContext* ctx) {
  RAVEN_RETURN_IF_ERROR(CheckInputCount(*ctx, 2, 3));
  const Tensor* bias = ctx->num_inputs() == 3 ? &ctx->input(2) : nullptr;
  return MatMulImpl(ctx->input(0), ctx->input(1), bias, ctx);
}

Status SoftmaxKernel(KernelContext* ctx) {
  RAVEN_RETURN_IF_ERROR(CheckInputCount(*ctx, 1, 1));
  const Tensor& a = ctx->input(0);
  const auto [rows, cols] = AsMatrix(a);
  Tensor out = Tensor::Zeros(a.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = a.raw() + r * cols;
    float* o = out.raw() + r * cols;
    float mx = in[0];
    for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    float sum = 0.f;
    for (std::int64_t c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      sum += o[c];
    }
    for (std::int64_t c = 0; c < cols; ++c) o[c] /= sum;
  }
  ctx->flops = 6.0 * static_cast<double>(a.num_elements());
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

Status ConcatKernel(KernelContext* ctx) {
  if (ctx->inputs.empty()) {
    return Status::InvalidArgument("Concat needs at least one input");
  }
  // Axis 1 (feature concatenation), the layout FeatureUnion produces.
  std::int64_t rows = AsMatrix(ctx->input(0)).first;
  std::int64_t total_cols = 0;
  for (const Tensor* t : ctx->inputs) {
    const auto [r, c] = AsMatrix(*t);
    if (r != rows) {
      return Status::InvalidArgument("Concat row mismatch");
    }
    total_cols += c;
  }
  Tensor out = Tensor::Zeros({rows, total_cols});
  std::int64_t offset = 0;
  for (const Tensor* t : ctx->inputs) {
    const auto [r, c] = AsMatrix(*t);
    (void)r;
    for (std::int64_t i = 0; i < rows; ++i) {
      std::copy(t->raw() + i * c, t->raw() + (i + 1) * c,
                out.raw() + i * total_cols + offset);
    }
    offset += c;
  }
  ctx->flops = static_cast<double>(out.num_elements());
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

/// Gather: selects columns given by the "indices" int-list attribute.
Status GatherColumnsKernel(KernelContext* ctx) {
  RAVEN_RETURN_IF_ERROR(CheckInputCount(*ctx, 1, 1));
  RAVEN_ASSIGN_OR_RETURN(auto indices, ctx->node->GetIntsAttr("indices"));
  const Tensor& a = ctx->input(0);
  const auto [rows, cols] = AsMatrix(a);
  for (std::int64_t idx : indices) {
    if (idx < 0 || idx >= cols) {
      return Status::OutOfRange("GatherColumns index " + std::to_string(idx) +
                                " out of range for " +
                                ShapeToString(a.shape()));
    }
  }
  const std::int64_t m = static_cast<std::int64_t>(indices.size());
  Tensor out = Tensor::Zeros({rows, m});
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = a.raw() + r * cols;
    float* o = out.raw() + r * m;
    for (std::int64_t j = 0; j < m; ++j) o[j] = in[indices[static_cast<std::size_t>(j)]];
  }
  ctx->flops = static_cast<double>(out.num_elements());
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

/// OneHot: category codes [n] or [n,1] -> [n, depth]; out-of-range codes
/// produce an all-zero row (scikit-learn handle_unknown="ignore").
Status OneHotKernel(KernelContext* ctx) {
  RAVEN_RETURN_IF_ERROR(CheckInputCount(*ctx, 1, 1));
  RAVEN_ASSIGN_OR_RETURN(std::int64_t depth, ctx->node->GetIntAttr("depth"));
  if (depth <= 0) return Status::InvalidArgument("OneHot depth must be > 0");
  const Tensor& a = ctx->input(0);
  const std::int64_t n = a.rank() == 2 ? a.dim(0) : a.num_elements();
  if (a.rank() == 2 && a.dim(1) != 1) {
    return Status::InvalidArgument("OneHot expects a single input column");
  }
  Tensor out = Tensor::Zeros({n, depth});
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t code = static_cast<std::int64_t>(std::llround(a.raw()[i]));
    if (code >= 0 && code < depth) out.raw()[i * depth + code] = 1.0f;
  }
  ctx->flops = static_cast<double>(n);
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

/// Scaler (ai.onnx.ml semantics): y = (x - offset) * scale, per column.
Status ScalerKernel(KernelContext* ctx) {
  RAVEN_RETURN_IF_ERROR(CheckInputCount(*ctx, 1, 1));
  RAVEN_ASSIGN_OR_RETURN(auto offset, ctx->node->GetFloatsAttr("offset"));
  RAVEN_ASSIGN_OR_RETURN(auto scale, ctx->node->GetFloatsAttr("scale"));
  const Tensor& a = ctx->input(0);
  const auto [rows, cols] = AsMatrix(a);
  if (static_cast<std::int64_t>(offset.size()) != cols ||
      static_cast<std::int64_t>(scale.size()) != cols) {
    return Status::InvalidArgument("Scaler offset/scale size mismatch");
  }
  Tensor out = Tensor::Zeros(a.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = a.raw() + r * cols;
    float* o = out.raw() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      o[c] = (in[c] - static_cast<float>(offset[static_cast<std::size_t>(c)])) *
             static_cast<float>(scale[static_cast<std::size_t>(c)]);
    }
  }
  ctx->flops = 2.0 * static_cast<double>(a.num_elements());
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

Status ArgMaxKernel(KernelContext* ctx) {
  RAVEN_RETURN_IF_ERROR(CheckInputCount(*ctx, 1, 1));
  const Tensor& a = ctx->input(0);
  const auto [rows, cols] = AsMatrix(a);
  Tensor out = Tensor::Zeros({rows, 1});
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = a.raw() + r * cols;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < cols; ++c) {
      if (in[c] > in[best]) best = c;
    }
    out.raw()[r] = static_cast<float>(best);
  }
  ctx->flops = static_cast<double>(a.num_elements());
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

Status ReduceSumKernel(KernelContext* ctx) {
  RAVEN_RETURN_IF_ERROR(CheckInputCount(*ctx, 1, 1));
  const Tensor& a = ctx->input(0);
  const auto [rows, cols] = AsMatrix(a);
  Tensor out = Tensor::Zeros({rows, 1});
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = a.raw() + r * cols;
    float sum = 0.f;
    for (std::int64_t c = 0; c < cols; ++c) sum += in[c];
    out.raw()[r] = sum;
  }
  ctx->flops = static_cast<double>(a.num_elements());
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// TreeEnsemble: native interpreted scoring of flattened decision trees, the
// analogue of ai.onnx.ml.TreeEnsembleRegressor. NN translation rewrites this
// node into pure linear-algebra ops (see optimizer/rules/nn_translation).
//
// Attribute layout (all tensor attrs, parallel arrays over node slots):
//   roots:      [num_trees]   index of each tree's root slot
//   feature:    [num_slots]   feature index tested at slot, -1 for leaves
//   threshold:  [num_slots]   split threshold (x <= t goes left)
//   left/right: [num_slots]   child slot indices (unused for leaves)
//   value:      [num_slots]   leaf prediction (unused for internal nodes)
// Int attrs: aggregate (0 = sum, 1 = average); post (0 = none, 1 = sigmoid).
// ---------------------------------------------------------------------------

Status TreeEnsembleKernel(KernelContext* ctx) {
  RAVEN_RETURN_IF_ERROR(CheckInputCount(*ctx, 1, 1));
  RAVEN_ASSIGN_OR_RETURN(Tensor roots, ctx->node->GetTensorAttr("roots"));
  RAVEN_ASSIGN_OR_RETURN(Tensor feature, ctx->node->GetTensorAttr("feature"));
  RAVEN_ASSIGN_OR_RETURN(Tensor threshold,
                         ctx->node->GetTensorAttr("threshold"));
  RAVEN_ASSIGN_OR_RETURN(Tensor left, ctx->node->GetTensorAttr("left"));
  RAVEN_ASSIGN_OR_RETURN(Tensor right, ctx->node->GetTensorAttr("right"));
  RAVEN_ASSIGN_OR_RETURN(Tensor value, ctx->node->GetTensorAttr("value"));
  const std::int64_t aggregate = ctx->node->GetIntAttrOr("aggregate", 0);
  const std::int64_t post = ctx->node->GetIntAttrOr("post", 0);

  const Tensor& x = ctx->input(0);
  const auto [rows, cols] = AsMatrix(x);
  const std::int64_t num_trees = roots.num_elements();
  const std::int64_t num_slots = feature.num_elements();
  Tensor out = Tensor::Zeros({rows, 1});
  double steps = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.raw() + r * cols;
    float acc = 0.f;
    for (std::int64_t t = 0; t < num_trees; ++t) {
      std::int64_t slot = static_cast<std::int64_t>(roots.raw()[t]);
      std::int64_t guard = 0;
      while (true) {
        if (slot < 0 || slot >= num_slots) {
          return Status::ExecutionError("TreeEnsemble: slot out of range");
        }
        const std::int64_t f = static_cast<std::int64_t>(feature.raw()[slot]);
        if (f < 0) {
          acc += value.raw()[slot];
          break;
        }
        if (f >= cols) {
          return Status::ExecutionError(
              "TreeEnsemble: feature index " + std::to_string(f) +
              " out of range for input with " + std::to_string(cols) +
              " columns");
        }
        slot = xr[f] <= threshold.raw()[slot]
                   ? static_cast<std::int64_t>(left.raw()[slot])
                   : static_cast<std::int64_t>(right.raw()[slot]);
        ++steps;
        if (++guard > num_slots) {
          return Status::ExecutionError("TreeEnsemble: cycle in tree");
        }
      }
    }
    if (aggregate == 1 && num_trees > 0) {
      acc /= static_cast<float>(num_trees);
    }
    if (post == 1) acc = 1.0f / (1.0f + std::exp(-acc));
    out.raw()[r] = acc;
  }
  ctx->flops = 2.0 * steps;
  ctx->outputs[0] = std::move(out);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

const std::map<std::string, Kernel>& Registry() {
  static const std::map<std::string, Kernel>* registry =
      new std::map<std::string, Kernel>{
          {"Add", AddKernel},
          {"Sub", SubKernel},
          {"Mul", MulKernel},
          {"Div", DivKernel},
          {"Less", LessKernel},
          {"LessOrEqual", LessOrEqualKernel},
          {"Greater", GreaterKernel},
          {"Equal", EqualKernel},
          {"Identity", IdentityKernel},
          {"Relu", ReluKernel},
          {"Sigmoid", SigmoidKernel},
          {"Tanh", TanhKernel},
          {"Neg", NegKernel},
          {"MatMul", MatMulKernel},
          {"Gemm", GemmKernel},
          {"Softmax", SoftmaxKernel},
          {"Concat", ConcatKernel},
          {"GatherColumns", GatherColumnsKernel},
          {"OneHot", OneHotKernel},
          {"Scaler", ScalerKernel},
          {"ArgMax", ArgMaxKernel},
          {"ReduceSum", ReduceSumKernel},
          {"TreeEnsemble", TreeEnsembleKernel},
      };
  return *registry;
}

}  // namespace

const Kernel* FindKernel(const std::string& op_type) {
  const auto& registry = Registry();
  auto it = registry.find(op_type);
  return it == registry.end() ? nullptr : &it->second;
}

bool IsOpSupported(const std::string& op_type) {
  return FindKernel(op_type) != nullptr;
}

std::vector<std::string> SupportedOps() {
  std::vector<std::string> out;
  for (const auto& [name, kernel] : Registry()) {
    (void)kernel;
    out.push_back(name);
  }
  return out;
}

}  // namespace raven::nnrt
