#ifndef RAVEN_ML_PIPELINE_H_
#define RAVEN_ML_PIPELINE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "ml/decision_tree.h"
#include "ml/featurizer.h"
#include "ml/linear_model.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"
#include "tensor/tensor.h"

namespace raven::ml {

/// The terminal estimator of a pipeline.
using Predictor = std::variant<DecisionTree, RandomForest, LinearModel, Mlp>;

/// Kind discriminator for Predictor (used in serialization and the IR).
enum class PredictorKind : std::uint8_t {
  kDecisionTree = 0,
  kRandomForest = 1,
  kLinearModel = 2,
  kMlp = 3,
};

PredictorKind KindOf(const Predictor& predictor);
const char* PredictorKindToString(PredictorKind kind);

/// A trained model pipeline: named raw input columns, a featurization stage
/// (FeatureUnion of scaler/one-hot/identity branches), and a predictor.
/// This is the unit stored in the model catalog and referenced by PREDICT —
/// the MLflow-style "model pipeline" of the paper (§1).
struct ModelPipeline {
  /// Names of the raw input columns, in the order the featurizer indexes
  /// them. These bind to relational column names at optimization time.
  std::vector<std::string> input_columns;
  Featurizer featurizer;
  Predictor predictor;

  /// Featurize + predict; x is the raw [n, |input_columns|] matrix.
  Result<Tensor> Predict(const Tensor& x) const;

  /// Row-at-a-time scoring on raw inputs (the interpreted baseline path).
  Result<float> PredictRow(const float* row, std::int64_t width) const;

  /// Number of post-featurization features the predictor consumes.
  std::int64_t NumFeatures() const;

  std::string Summary() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<ModelPipeline> Deserialize(BinaryReader* reader);

  std::string ToBytes() const;
  static Result<ModelPipeline> FromBytes(const std::string& bytes);
};

/// Applies `predictor` to featurized input.
Result<Tensor> PredictWith(const Predictor& predictor, const Tensor& features);

}  // namespace raven::ml

#endif  // RAVEN_ML_PIPELINE_H_
