// Plan-shape golden tests for the optimizer rule chain. These pin the
// *structure* (operator kinds and nesting, via test_util::PlanShape) of the
// canonical Raven plans after each stage of the chain the paper describes:
// relational pushdowns -> model specialization (clustering) -> representation
// choice (inlining). Future rule edits that reorder or restructure the
// canonical plans must update these snapshots consciously.

#include <gtest/gtest.h>

#include "data/flight.h"
#include "data/hospital.h"
#include "ir/clustered_model.h"
#include "optimizer/converters.h"
#include "optimizer/cross_optimizer.h"
#include "optimizer/rules.h"
#include "optimizer/specialize.h"
#include "test_util.h"

namespace raven::optimizer {
namespace {

class GoldenFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = data::MakeHospitalDataset(2000, 91);
    ASSERT_NO_FATAL_FAILURE(test_util::RegisterHospitalTables(&catalog_, data_));
    pipeline_ = test_util::InsertHospitalTreeModel(&catalog_, data_, 6);
    ASSERT_FALSE(HasFailure()) << "fixture setup failed";
  }

  ir::IrPlan RunningExamplePlan() {
    return test_util::AnalyzePlan(catalog_, test_util::RunningExampleSql());
  }

  std::shared_ptr<ir::ClusteredModel> ClusteredArtifact(std::int64_t k) {
    ClusteringOptions options;
    options.k = k;
    auto clustered = BuildClusteredModel(pipeline_, data_.joined, options);
    if (!clustered.ok()) {
      ADD_FAILURE() << "BuildClusteredModel: " << clustered.status().ToString();
      return nullptr;
    }
    return std::make_shared<ir::ClusteredModel>(std::move(clustered).value());
  }

  data::HospitalDataset data_;
  relational::Catalog catalog_;
  ml::ModelPipeline pipeline_;
};

// The analyzer's canonical (unoptimized) running-example plan.
TEST_F(GoldenFixture, AnalyzerShape) {
  ir::IrPlan plan = RunningExamplePlan();
  EXPECT_PLAN_SHAPE(
      plan,
      "Project(Filter(ModelPipeline(Join(Join(TableScan, TableScan), TableScan))))");
}

// Stage 1: relational pushdowns (predicate, then projection).
TEST_F(GoldenFixture, AfterPushdownsShape) {
  ir::IrPlan plan = RunningExamplePlan();
  ASSERT_TRUE(ApplyPredicatePushdown(&plan.mutable_root(), catalog_).ok());
  ASSERT_TRUE(ApplyProjectionPushdown(&plan.mutable_root(), catalog_).ok());
  ASSERT_TRUE(plan.Validate(catalog_).ok());
  EXPECT_PLAN_SHAPE(
      plan,
      "Project(Filter(ModelPipeline(Join(Join(Filter(TableScan), TableScan), "
      "Project(TableScan)))))");
}

// Stage 2: model clustering swaps the pipeline node for the precompiled
// per-cluster artifact.
TEST_F(GoldenFixture, AfterClusteringShape) {
  ir::IrPlan plan = RunningExamplePlan();
  ASSERT_TRUE(ApplyPredicatePushdown(&plan.mutable_root(), catalog_).ok());
  ASSERT_TRUE(ApplyProjectionPushdown(&plan.mutable_root(), catalog_).ok());
  std::map<std::string, std::shared_ptr<ir::ClusteredModel>> artifacts;
  auto artifact = ClusteredArtifact(3);
  ASSERT_NE(artifact, nullptr);
  artifacts["los"] = std::move(artifact);
  auto fired = ApplyModelClustering(&plan.mutable_root(), artifacts);
  ASSERT_TRUE(fired.ok()) << fired.status().ToString();
  EXPECT_EQ(*fired, 1u);
  ASSERT_TRUE(plan.Validate(catalog_).ok());
  EXPECT_PLAN_SHAPE(
      plan,
      "Project(Filter(ClusteredPredict(Join(Join(Filter(TableScan), TableScan), "
      "Project(TableScan)))))");
}

// Stage 3: model inlining turns the (small) tree into relational CASE
// expressions, erasing the model node entirely.
TEST_F(GoldenFixture, AfterInliningShape) {
  ir::IrPlan plan = RunningExamplePlan();
  ASSERT_TRUE(ApplyPredicatePushdown(&plan.mutable_root(), catalog_).ok());
  ASSERT_TRUE(ApplyProjectionPushdown(&plan.mutable_root(), catalog_).ok());
  auto fired = ApplyModelInlining(&plan.mutable_root(), catalog_, 100000);
  ASSERT_TRUE(fired.ok()) << fired.status().ToString();
  EXPECT_EQ(*fired, 1u);
  ASSERT_TRUE(plan.Validate(catalog_).ok());
  EXPECT_PLAN_SHAPE(
      plan,
      "Project(Filter(Project(Join(Join(Filter(TableScan), TableScan), "
      "Project(TableScan)))))");
}

// The full CrossOptimizer over the same plan with a clustering artifact
// registered: the end-to-end canonical shape, plus the rule-application
// order recorded in the report.
TEST_F(GoldenFixture, FullChainShapeAndRuleOrder) {
  OptimizerOptions options;
  CrossOptimizer optimizer(&catalog_, options);
  auto artifact = ClusteredArtifact(3);
  ASSERT_NE(artifact, nullptr);
  optimizer.RegisterClusteredModel("los", std::move(artifact));
  ir::IrPlan plan = RunningExamplePlan();
  OptimizationReport report;
  ASSERT_TRUE(optimizer.Optimize(&plan, &report).ok());
  ASSERT_TRUE(plan.Validate(catalog_).ok());
  EXPECT_PLAN_SHAPE(
      plan,
      "Project(Filter(ClusteredPredict(Join(Join(Filter(TableScan), TableScan), "
      "Project(Project(TableScan))))))");
  // Rule order is part of the golden contract (paper §4.3 fixed order).
  std::vector<std::string> fired;
  for (const auto& [rule, count] : report.rule_applications) {
    if (count > 0) fired.push_back(rule);
  }
  EXPECT_EQ(fired, (std::vector<std::string>{"predicate_pushdown", "model_clustering",
                                     "join_elimination", "projection_pushdown"}));
}

// GROUP BY / HAVING / ORDER BY goldens: the analyzer's canonical grouped
// shapes and their path through the optimizer chain.

// HAVING over a group key is pulled below the GroupBy (HAVING -> WHERE),
// while HAVING over an aggregate output must stay above it.
TEST_F(GoldenFixture, HavingOnKeyPullsBelowGroupByShape) {
  ir::IrPlan plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT pregnant, COUNT(*) AS n FROM patients "
      "GROUP BY pregnant HAVING pregnant = 1");
  EXPECT_PLAN_SHAPE(plan, "Project(Filter(GroupBy(TableScan)))");
  ASSERT_TRUE(ApplyPredicatePushdown(&plan.mutable_root(), catalog_).ok());
  ASSERT_TRUE(plan.Validate(catalog_).ok());
  EXPECT_PLAN_SHAPE(plan, "Project(GroupBy(Filter(TableScan)))");

  ir::IrPlan agg_having = test_util::AnalyzePlan(
      catalog_,
      "SELECT pregnant, AVG(bp) AS mean_bp FROM patients "
      "GROUP BY pregnant HAVING AVG(bp) > 100");
  ASSERT_TRUE(
      ApplyPredicatePushdown(&agg_having.mutable_root(), catalog_).ok());
  ASSERT_TRUE(agg_having.Validate(catalog_).ok());
  EXPECT_PLAN_SHAPE(agg_having, "Project(Filter(GroupBy(TableScan)))");
}

// Projection pushdown narrows the grouped subtree to keys + aggregated
// columns.
TEST_F(GoldenFixture, GroupByProjectionPushdownShape) {
  ir::IrPlan plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT pregnant, AVG(bp) AS mean_bp FROM patients GROUP BY pregnant");
  EXPECT_PLAN_SHAPE(plan, "Project(GroupBy(TableScan))");
  ASSERT_TRUE(ApplyProjectionPushdown(&plan.mutable_root(), catalog_).ok());
  ASSERT_TRUE(plan.Validate(catalog_).ok());
  EXPECT_PLAN_SHAPE(plan, "Project(GroupBy(Project(TableScan)))");
}

// The paper's signature grouped-inference query (per-group PREDICT score
// distribution with HAVING cut and descending sort) through the full
// CrossOptimizer chain, with the rule-firing order pinned.
TEST_F(GoldenFixture, GroupByOverPredictFullChainShapeAndRuleOrder) {
  OptimizerOptions options;
  CrossOptimizer optimizer(&catalog_, options);
  ir::IrPlan plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT pregnant, AVG(p) AS mean_pred, COUNT(*) AS n "
      "FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE bp > 100 "
      "GROUP BY pregnant HAVING AVG(p) > 0.4 ORDER BY 2 DESC");
  EXPECT_PLAN_SHAPE(
      plan,
      "OrderBy(Project(Filter(GroupBy(Filter(ModelPipeline(TableScan))))))");
  OptimizationReport report;
  ASSERT_TRUE(optimizer.Optimize(&plan, &report).ok());
  ASSERT_TRUE(plan.Validate(catalog_).ok());
  // WHERE bp > 100 sank below PREDICT (feeding predicate-based model
  // pruning); the small tree then inlined into a CASE projection; the
  // HAVING filter (aggregate output) stays above the GroupBy.
  EXPECT_PLAN_SHAPE(
      plan,
      "OrderBy(Project(Filter(GroupBy(Project(Filter(TableScan))))))");
  std::vector<std::string> fired;
  for (const auto& [rule, count] : report.rule_applications) {
    if (count > 0) fired.push_back(rule);
  }
  EXPECT_EQ(fired,
            (std::vector<std::string>{"predicate_pushdown",
                                      "predicate_model_pruning",
                                      "model_inlining"}));
  // Parallelism-aware costing is reported for every operator of the plan,
  // GroupBy and OrderBy included.
  bool saw_group = false;
  bool saw_order = false;
  for (const auto& row : report.operator_costs) {
    if (row.op == "GroupBy") saw_group = true;
    if (row.op == "OrderBy") saw_order = true;
    EXPECT_GT(row.sequential_cost, 0.0) << row.op;
  }
  EXPECT_TRUE(saw_group);
  EXPECT_TRUE(saw_order);
}

// The flight-delay workload (paper Fig 2(a)): single-table logreg query.
// Pins both the nested shape and the preorder kind sequence after the full
// chain, which exercises model-projection pushdown instead of clustering.
TEST(FlightGolden, LogregQueryFullChain) {
  auto data = data::MakeFlightDataset(2000, 92);
  relational::Catalog catalog;
  ASSERT_NO_FATAL_FAILURE(test_util::RegisterFlightTable(&catalog, data));
  auto trained = data::TrainFlightLogreg(data, 0.01);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  ASSERT_TRUE(catalog
                  .InsertModel("delay", data::FlightLogregScript(),
                               trained->ToBytes())
                  .ok());
  ir::IrPlan plan = test_util::AnalyzePlan(
      catalog,
      "SELECT id, p FROM PREDICT(MODEL='delay', DATA=flights) WITH(p float) "
      "WHERE p > 0.4");
  EXPECT_PLAN_SHAPE(plan, "Project(Filter(ModelPipeline(TableScan)))");

  OptimizerOptions options;
  CrossOptimizer optimizer(&catalog, options);
  ASSERT_TRUE(optimizer.Optimize(&plan).ok());
  ASSERT_TRUE(plan.Validate(catalog).ok());
  EXPECT_PLAN_SHAPE(plan, "Project(Filter(NnGraph(Project(Project(TableScan)))))");
  EXPECT_EQ(test_util::KindSequence(plan),
            (std::vector<std::string>{"Project", "Filter", "NnGraph", "Project",
                                     "Project", "TableScan"}));
}

}  // namespace
}  // namespace raven::optimizer
