// Fig 2(a): model-projection pushdown on L1-regularized logistic regression
// (flight delay). The paper reports ~1.7x speedup for a 41.75%-sparse model
// and ~5.3x for an 80.96%-sparse model, roughly flat across dataset sizes.
//
// Series: Full = original model; Projected = zero-weight features dropped
// (model-projection pushdown). Compare Full vs Projected at the same
// (sparsity, rows) point; the ratio is the figure's speedup.

#include "bench_util.h"
#include "ml/linear_model.h"
#include "optimizer/specialize.h"

namespace raven {
namespace {

struct SparseModel {
  ml::ModelPipeline full;
  ml::ModelPipeline projected;
  double sparsity;
};

/// Trains at an L1 strength and pre-applies projection (compile time is
/// negligible, as in the paper).
const SparseModel& ModelFor(double l1) {
  static auto* cache = new std::map<double, SparseModel>();
  auto it = cache->find(l1);
  if (it == cache->end()) {
    const auto& data = bench::Flight(60000);
    SparseModel m;
    m.full = bench::Must(data::TrainFlightLogreg(data, l1), "train logreg");
    m.sparsity =
        std::get<ml::LinearModel>(m.full.predictor).Sparsity();
    auto spec = bench::Must(optimizer::ProjectUnusedFeatures(m.full),
                            "project");
    m.projected = std::move(spec.pipeline);
    it = cache->emplace(l1, std::move(m)).first;
  }
  return it->second;
}

void RunScoring(benchmark::State& state, const ml::ModelPipeline& pipeline,
                double sparsity) {
  const std::int64_t rows = state.range(0);
  const auto& data = bench::Flight(rows);
  Tensor x =
      bench::Must(data.flights.ToTensor(pipeline.input_columns), "tensor");
  for (auto _ : state) {
    auto preds = pipeline.Predict(x);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["features"] = static_cast<double>(pipeline.NumFeatures());
  state.counters["sparsity_pct"] = 100.0 * sparsity;
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_Fig2a_DenseFull(benchmark::State& state) {
  RunScoring(state, ModelFor(0.0011).full, ModelFor(0.0011).sparsity);
}
void BM_Fig2a_DenseProjected(benchmark::State& state) {
  RunScoring(state, ModelFor(0.0011).projected, ModelFor(0.0011).sparsity);
}
void BM_Fig2a_SparseFull(benchmark::State& state) {
  RunScoring(state, ModelFor(0.0023).full, ModelFor(0.0023).sparsity);
}
void BM_Fig2a_SparseProjected(benchmark::State& state) {
  RunScoring(state, ModelFor(0.0023).projected, ModelFor(0.0023).sparsity);
}

// Paper sweeps 10K..1M tuples; we sweep 10K..200K (laptop substrate — the
// effect is per-row, hence flat in size, which the sweep demonstrates).
#define FIG2A_ARGS \
  ->Arg(10000)->Arg(50000)->Arg(100000)->Arg(200000)->Iterations(5) \
  ->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Fig2a_DenseFull) FIG2A_ARGS;
BENCHMARK(BM_Fig2a_DenseProjected) FIG2A_ARGS;
BENCHMARK(BM_Fig2a_SparseFull) FIG2A_ARGS;
BENCHMARK(BM_Fig2a_SparseProjected) FIG2A_ARGS;

}  // namespace
}  // namespace raven
