// Out-of-process scoring worker: the stand-in for the external language
// runtime behind sp_execute_external_script (paper §5, Raven Ext) and for
// containerized scoring endpoints. Speaks the length-prefixed protocol of
// runtime/worker_protocol.h on stdin/stdout.
//
// Usage: raven_worker [--boot-ms=N]
//   --boot-ms simulates interpreter start-up (the paper observes ~0.5 s for
//   the external Python runtime; fork/exec alone is a few milliseconds).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>

#include "ml/pipeline.h"
#include "nnrt/session.h"
#include "runtime/worker_protocol.h"

namespace {

using raven::Result;
using raven::Status;
using raven::Tensor;
using raven::runtime::DecodeRequest;
using raven::runtime::EncodeResponse;
using raven::runtime::ReadFrame;
using raven::runtime::ScoreRequest;
using raven::runtime::ScoreResponse;
using raven::runtime::WorkerCommand;
using raven::runtime::WriteFrame;

Result<Tensor> ScoreOnce(const ScoreRequest& request) {
  switch (request.command) {
    case WorkerCommand::kScorePipeline: {
      RAVEN_ASSIGN_OR_RETURN(
          raven::ml::ModelPipeline pipeline,
          raven::ml::ModelPipeline::FromBytes(request.model_bytes));
      return pipeline.Predict(request.input);
    }
    case WorkerCommand::kScoreGraph: {
      // Sessions are cached per model bytes within the worker's lifetime.
      static std::unordered_map<
          std::size_t, std::unique_ptr<raven::nnrt::InferenceSession>>*
          sessions = new std::unordered_map<
              std::size_t, std::unique_ptr<raven::nnrt::InferenceSession>>();
      const std::size_t key = std::hash<std::string>{}(request.model_bytes);
      auto it = sessions->find(key);
      if (it == sessions->end()) {
        RAVEN_ASSIGN_OR_RETURN(
            auto session,
            raven::nnrt::InferenceSession::FromBytes(request.model_bytes));
        it = sessions->emplace(key, std::move(session)).first;
      }
      return it->second->RunSingle(request.input);
    }
    default:
      return Status::InvalidArgument("not a scoring command");
  }
}

int Serve() {
  for (;;) {
    auto payload = ReadFrame(STDIN_FILENO);
    if (!payload.ok()) return 0;  // parent closed the pipe
    auto request = DecodeRequest(payload.value());
    ScoreResponse response;
    if (!request.ok()) {
      response.ok = false;
      response.error = request.status().ToString();
      if (!WriteFrame(STDOUT_FILENO, EncodeResponse(response)).ok()) return 1;
      continue;
    }
    if (request->command == WorkerCommand::kShutdown) {
      return 0;
    }
    if (request->command == WorkerCommand::kPing) {
      response.ok = true;
    } else {
      auto output = ScoreOnce(request.value());
      if (output.ok()) {
        response.ok = true;
        response.output = std::move(output).value();
      } else {
        response.ok = false;
        response.error = output.status().ToString();
      }
    }
    if (!WriteFrame(STDOUT_FILENO, EncodeResponse(response)).ok()) return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  long boot_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--boot-ms=", 10) == 0) {
      boot_ms = std::strtol(argv[i] + 10, nullptr, 10);
    }
  }
  if (boot_ms > 0) {
    ::usleep(static_cast<useconds_t>(boot_ms) * 1000);
  }
  return Serve();
}
