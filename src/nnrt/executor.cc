#include "nnrt/executor.h"

#include <algorithm>

#include "common/timer.h"
#include "nnrt/backend.h"
#include "nnrt/kernels.h"

namespace raven::nnrt {

void OpProfiler::Merge(const std::vector<OpProfile>& per_op) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const OpProfile& p : per_op) {
    OpProfile& agg = ops_[p.op_type];
    agg.op_type = p.op_type;
    agg.calls += p.calls;
    agg.wall_micros += p.wall_micros;
    agg.flops += p.flops;
    total_calls_ += p.calls;
    total_micros_ += p.wall_micros;
  }
}

std::vector<OpProfile> OpProfiler::Snapshot() const {
  std::vector<OpProfile> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(ops_.size());
    for (const auto& [op, profile] : ops_) out.push_back(profile);
  }
  std::sort(out.begin(), out.end(), [](const OpProfile& a, const OpProfile& b) {
    if (a.wall_micros != b.wall_micros) return a.wall_micros > b.wall_micros;
    return a.op_type < b.op_type;
  });
  return out;
}

std::int64_t OpProfiler::total_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_calls_;
}

double OpProfiler::total_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_micros_;
}

Result<TensorMap> ExecuteGraph(const Graph& graph, const TensorMap& inputs,
                               RunStats* stats, const Backend* backend,
                               bool profile_ops) {
  if (backend == nullptr) backend = GetBackend(BackendKind::kReference);
  Timer timer;
  TensorMap env;
  for (const auto& [name, tensor] : graph.initializers()) {
    env[name] = tensor;
  }
  for (const auto& name : graph.inputs()) {
    auto it = inputs.find(name);
    if (it == inputs.end()) {
      return Status::InvalidArgument("missing graph input '" + name + "'");
    }
    env[name] = it->second;
  }

  RAVEN_ASSIGN_OR_RETURN(auto order, graph.TopologicalOrder());
  double total_flops = 0.0;
  std::size_t executed = 0;
  std::map<std::string, OpProfile> per_op;
  for (std::size_t idx : order) {
    const Node& node = graph.nodes()[idx];
    const Kernel* kernel = backend->FindKernel(node.op_type);
    if (kernel == nullptr) {
      return Status::Unimplemented("no NNRT kernel for op '" + node.op_type +
                                   "' (node '" + node.name + "')");
    }
    KernelContext ctx;
    ctx.node = &node;
    ctx.inputs.reserve(node.inputs.size());
    for (const auto& in : node.inputs) {
      auto it = env.find(in);
      if (it == env.end()) {
        return Status::ExecutionError("value '" + in +
                                      "' not materialized before node '" +
                                      node.name + "'");
      }
      ctx.inputs.push_back(&it->second);
    }
    ctx.outputs.resize(node.outputs.size());
    if (profile_ops) {
      Timer node_timer;
      RAVEN_RETURN_IF_ERROR((*kernel)(&ctx));
      OpProfile& p = per_op[node.op_type];
      p.op_type = node.op_type;
      ++p.calls;
      p.wall_micros += node_timer.ElapsedMicros();
      p.flops += ctx.flops;
    } else {
      RAVEN_RETURN_IF_ERROR((*kernel)(&ctx));
    }
    for (std::size_t o = 0; o < node.outputs.size(); ++o) {
      env[node.outputs[o]] = std::move(ctx.outputs[o]);
    }
    total_flops += ctx.flops;
    ++executed;
  }

  TensorMap out;
  for (const auto& name : graph.outputs()) {
    auto it = env.find(name);
    if (it == env.end()) {
      return Status::ExecutionError("graph output '" + name +
                                    "' was not produced");
    }
    out[name] = std::move(it->second);
  }
  if (stats != nullptr) {
    stats->wall_micros = timer.ElapsedMicros();
    stats->simulated_micros = stats->wall_micros;
    stats->flops = total_flops;
    stats->nodes_executed = executed;
    stats->per_op.clear();
    stats->per_op.reserve(per_op.size());
    for (auto& [op, profile] : per_op) stats->per_op.push_back(profile);
  }
  return out;
}

}  // namespace raven::nnrt
