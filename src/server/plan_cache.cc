#include "server/plan_cache.h"

namespace raven::server {

std::shared_ptr<const CachedPlan> PlanCache::Get(
    const std::string& key, std::int64_t catalog_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second.catalog_version != catalog_version) {
    // Planned against a catalog that has since changed: the plan may bind
    // dropped models or miss new pushdown opportunities. Drop it.
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    ++invalidations_;
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++hits_;
  return it->second.plan;
}

void PlanCache::Put(const std::string& key, std::int64_t catalog_version,
                    std::shared_ptr<const CachedPlan> plan) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Two sessions raced the same cold statement; last write wins (both
    // plans are equivalent, they were planned from the same key).
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    it->second.plan = std::move(plan);
    it->second.catalog_version = catalog_version;
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(key);
  entries_.emplace(key, Node{std::move(plan), catalog_version, lru_.begin()});
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.invalidations = invalidations_;
  out.entries = static_cast<std::int64_t>(entries_.size());
  return out;
}

}  // namespace raven::server
