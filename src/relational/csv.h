#ifndef RAVEN_RELATIONAL_CSV_H_
#define RAVEN_RELATIONAL_CSV_H_

#include <string>

#include "common/status.h"
#include "relational/table.h"

namespace raven::relational {

/// Writes a table to CSV (categorical columns emit their dictionary
/// strings).
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV with a header row. Columns whose values all parse as numbers
/// become numeric; anything else becomes a dictionary-encoded categorical.
Result<Table> ReadCsv(const std::string& path);

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_CSV_H_
