#ifndef RAVEN_OBS_TRACE_H_
#define RAVEN_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace raven {
namespace obs {

/// One completed (or in-flight) span of a query's timeline. Times are
/// microseconds relative to the owning Trace's start, so a span tree is
/// self-contained and can be shipped across the worker protocol without
/// clock synchronization (worker spans are re-based when spliced).
struct TraceSpan {
  std::int64_t id = 0;      // 1-based; 0 is "no span"
  std::int64_t parent = 0;  // 0 = top-level
  std::string name;
  std::int64_t start_micros = 0;
  std::int64_t duration_micros = 0;
  std::string detail;  // freeform "k=v k=v" annotations
};

/// Per-query span arena. One Trace is owned by one query execution; spans
/// are recorded at phase and operator *boundaries* (parse, optimize, one
/// fragment exchange, one operator's lifetime), never per row or per
/// chunk, so the mutex guarding the arena is uncontended and off the
/// data hot path — per-row accounting stays in the StatsCollector's
/// atomics and is folded into operator spans once, at finalize.
///
/// Span ids are handed out by StartSpan/AddSpan and used as parent links;
/// worker-side trees are spliced under an exchange span with their ids
/// offset so the stitched tree stays consistent.
class Trace {
 public:
  /// Arena cap: spans past this are counted (surfaced as "dropped" in the
  /// JSON line) but not stored, bounding trace memory for huge queries.
  static constexpr std::size_t kMaxSpans = 4096;

  Trace();

  /// Microseconds since this trace was constructed.
  std::int64_t NowMicros() const;

  /// Opens a span starting now. Returns its id (parent 0 = top-level).
  std::int64_t StartSpan(const std::string& name, std::int64_t parent = 0);

  /// Closes a span opened by StartSpan, stamping its duration (and
  /// optionally a detail string). Unknown ids are ignored.
  void EndSpan(std::int64_t id, const std::string& detail = "");

  /// Records an already-measured span (used for post-hoc operator spans
  /// and worker-side recording with explicit timing).
  std::int64_t AddSpan(const std::string& name, std::int64_t parent,
                       std::int64_t start_micros,
                       std::int64_t duration_micros,
                       const std::string& detail = "");

  /// Grafts `spans` (a worker-local tree, ids 1..N, times relative to the
  /// worker's own trace start) under `parent`: ids are offset past this
  /// arena's, times are re-based onto `base_micros` (coordinator time at
  /// which the exchange began).
  void Splice(std::int64_t parent, std::int64_t base_micros,
              const std::vector<TraceSpan>& spans);

  std::vector<TraceSpan> Snapshot() const;
  bool empty() const;

  /// Human-readable indented tree, one line per span:
  ///   name  start+Nus  dur=Nus  detail
  std::string RenderTree() const;

  /// The slow-query-log / SHOW TRACE format: the whole tree as ONE JSON
  /// line {"query":...,"total_micros":N,"spans":[{...},...]}.
  std::string RenderJsonLine(const std::string& query,
                             std::int64_t total_micros) const;

  /// Compact binary encoding of a span list for the worker frame
  /// protocol (length-prefixed strings, little-endian i64 fields).
  static std::string SerializeSpans(const std::vector<TraceSpan>& spans);
  static Result<std::vector<TraceSpan>> DeserializeSpans(
      const std::string& bytes);

 private:
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::int64_t next_id_ = 1;
  std::int64_t dropped_ = 0;
};

/// RAII span: opens on construction, closes on destruction. A null trace
/// makes every operation a no-op, so call sites need no `if (trace)`.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, const char* name, std::int64_t parent = 0)
      : trace_(trace),
        id_(trace ? trace->StartSpan(name, parent) : 0) {}
  ~ScopedSpan() {
    if (trace_) trace_->EndSpan(id_, detail_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::int64_t id() const { return id_; }
  void SetDetail(std::string detail) { detail_ = std::move(detail); }

 private:
  Trace* trace_;
  std::int64_t id_;
  std::string detail_;
};

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace raven

#endif  // RAVEN_OBS_TRACE_H_
