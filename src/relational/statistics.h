#ifndef RAVEN_RELATIONAL_STATISTICS_H_
#define RAVEN_RELATIONAL_STATISTICS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/status.h"
#include "relational/table.h"

namespace raven::relational {

/// Per-column summary statistics used by data-property-derived predicate
/// pruning (paper §4.1: "Using data statistics, we might observe that only
/// specific unique values appear in the data ... we can derive predicates").
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  std::int64_t num_rows = 0;
  /// Number of distinct values, tracked exactly up to a small cap
  /// (past the cap the column is treated as high-cardinality).
  std::int64_t distinct = 0;
  bool distinct_exact = true;
  /// Set when the column holds a single value across all rows.
  std::optional<double> constant;
};

/// Computes stats for one column (single pass).
ColumnStats ComputeColumnStats(const Column& column);

/// Computes stats for every column of a table.
std::map<std::string, ColumnStats> ComputeTableStats(const Table& table);

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_STATISTICS_H_
