// Fig 2(b): model clustering (flight delay). The paper clusters 700K tuples
// with k-means, precompiles one pruned model per cluster, and reports up to
// ~54% lower inference time, with diminishing returns as k grows; the
// hospital dataset does NOT benefit (its categoricals are already binary,
// so few features drop).
//
// Series: k=0 is the unclustered baseline; k in {2,4,8,16,32} are clustered
// variants. Hospital control shows the no-benefit case.

#include "bench_util.h"
#include "ir/clustered_model.h"
#include "optimizer/specialize.h"

namespace raven {
namespace {

constexpr std::int64_t kFlightRows = 100000;  // paper: 700K (scaled down)

const ml::ModelPipeline& FlightModel() {
  static auto* model = new ml::ModelPipeline(bench::Must(
      data::TrainFlightLogreg(bench::Flight(kFlightRows), 0.0),
      "train logreg"));
  return *model;
}

const ir::ClusteredModel& FlightClustered(std::int64_t k) {
  static auto* cache = new std::map<std::int64_t, ir::ClusteredModel>();
  auto it = cache->find(k);
  if (it == cache->end()) {
    optimizer::ClusteringOptions options;
    options.k = k;
    it = cache->emplace(
                  k, bench::Must(optimizer::BuildClusteredModel(
                                     FlightModel(),
                                     bench::Flight(kFlightRows).flights,
                                     options),
                                 "cluster"))
             .first;
  }
  return it->second;
}

void BM_Fig2b_FlightBaseline(benchmark::State& state) {
  const auto& model = FlightModel();
  Tensor x = bench::Must(
      bench::Flight(kFlightRows).flights.ToTensor(model.input_columns),
      "tensor");
  for (auto _ : state) {
    auto preds = model.Predict(x);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["k"] = 0;
  state.counters["features"] = static_cast<double>(model.NumFeatures());
}

void BM_Fig2b_FlightClustered(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  const auto& clustered = FlightClustered(k);
  Tensor x = bench::Must(
      bench::Flight(kFlightRows).flights.ToTensor(
          FlightModel().input_columns),
      "tensor");
  for (auto _ : state) {
    auto preds = clustered.Predict(x);
    benchmark::DoNotOptimize(preds);
  }
  double avg_features = 0;
  for (const auto& m : clustered.cluster_models) {
    avg_features += static_cast<double>(m.NumFeatures());
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["avg_features"] =
      avg_features / static_cast<double>(clustered.cluster_models.size());
}

// Hospital control: binary categoricals -> clustering drops few features.
void BM_Fig2b_HospitalBaseline(benchmark::State& state) {
  const auto& data = bench::Hospital(50000);
  static auto* model = new ml::ModelPipeline(
      bench::Must(data::TrainHospitalTree(data, 8), "train tree"));
  Tensor x =
      bench::Must(data.joined.ToTensor(model->input_columns), "tensor");
  for (auto _ : state) {
    auto preds = model->Predict(x);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["k"] = 0;
}

void BM_Fig2b_HospitalClustered(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  const auto& data = bench::Hospital(50000);
  static auto* model = new ml::ModelPipeline(
      bench::Must(data::TrainHospitalTree(data, 8), "train tree"));
  static auto* cache = new std::map<std::int64_t, ir::ClusteredModel>();
  auto it = cache->find(k);
  if (it == cache->end()) {
    optimizer::ClusteringOptions options;
    options.k = k;
    it = cache->emplace(k, bench::Must(optimizer::BuildClusteredModel(
                                           *model, data.joined, options),
                                       "cluster"))
             .first;
  }
  Tensor x =
      bench::Must(data.joined.ToTensor(model->input_columns), "tensor");
  for (auto _ : state) {
    auto preds = it->second.Predict(x);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["k"] = static_cast<double>(k);
}

#define FIG2B_ARGS ->Iterations(5)->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Fig2b_FlightBaseline) FIG2B_ARGS;
BENCHMARK(BM_Fig2b_FlightClustered)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32) FIG2B_ARGS;
BENCHMARK(BM_Fig2b_HospitalBaseline) FIG2B_ARGS;
BENCHMARK(BM_Fig2b_HospitalClustered)->Arg(4)->Arg(16) FIG2B_ARGS;

}  // namespace
}  // namespace raven
