#include "relational/operators.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <mutex>
#include <numeric>

namespace raven::relational {

ScanOperator::ScanOperator(const Table* table, std::int64_t begin,
                           std::int64_t end)
    : table_(table), begin_(begin),
      end_(end < 0 ? table->num_rows() : end) {}

ScanOperator::ScanOperator(const Table* table,
                           std::shared_ptr<MorselQueue> morsels,
                           std::int64_t order_source)
    : table_(table), begin_(0), end_(table->num_rows()),
      morsels_(std::move(morsels)), order_source_(order_source) {}

Status ScanOperator::Open() {
  cursor_ = begin_;
  if (begin_ < 0 || end_ > table_->num_rows() || begin_ > end_) {
    return Status::OutOfRange("scan range invalid");
  }
  if (morsels_ != nullptr && morsels_->total_rows() != table_->num_rows()) {
    return Status::InvalidArgument("morsel queue sized for different table");
  }
  return Status::OK();
}

void ScanOperator::EmitRows(std::int64_t begin, std::int64_t n,
                            DataChunk* out) const {
  out->names.clear();
  out->cols.clear();
  out->names.reserve(static_cast<std::size_t>(table_->num_columns()));
  out->cols.reserve(static_cast<std::size_t>(table_->num_columns()));
  for (const auto& col : table_->columns()) {
    out->names.push_back(col.name);
    out->cols.emplace_back(col.data.begin() + begin,
                           col.data.begin() + begin + n);
  }
}

Result<bool> ScanOperator::Next(DataChunk* out) {
  if (morsels_ != nullptr) {
    Morsel m;
    if (!morsels_->Pop(&m)) return false;
    EmitRows(m.begin, m.end - m.begin, out);
    out->order_source = order_source_;
    out->order_morsel = m.index;
    return true;
  }
  if (cursor_ >= end_) return false;
  const std::int64_t n = std::min(kChunkSize, end_ - cursor_);
  EmitRows(cursor_, n, out);
  out->order_source = order_source_;
  out->order_morsel = (cursor_ - begin_) / kChunkSize;
  cursor_ += n;
  return true;
}

Result<bool> FilterOperator::Next(DataChunk* out) {
  DataChunk chunk;
  std::vector<double> mask;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
    if (!more) return false;
    RAVEN_RETURN_IF_ERROR(predicate_->Evaluate(chunk, &mask));
    // Compact matching rows.
    std::vector<std::int64_t> selected;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i] != 0.0) selected.push_back(static_cast<std::int64_t>(i));
    }
    if (selected.empty()) continue;  // fully filtered; pull next chunk
    out->names = chunk.names;
    out->order_source = chunk.order_source;
    out->order_morsel = chunk.order_morsel;
    out->cols.assign(chunk.cols.size(), {});
    for (std::size_t c = 0; c < chunk.cols.size(); ++c) {
      out->cols[c].reserve(selected.size());
      for (std::int64_t i : selected) {
        out->cols[c].push_back(chunk.cols[c][static_cast<std::size_t>(i)]);
      }
    }
    return true;
  }
}

Result<bool> ProjectOperator::Next(DataChunk* out) {
  DataChunk chunk;
  RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
  if (!more) return false;
  out->names = names_;
  out->order_source = chunk.order_source;
  out->order_morsel = chunk.order_morsel;
  out->cols.assign(exprs_.size(), {});
  for (std::size_t e = 0; e < exprs_.size(); ++e) {
    RAVEN_RETURN_IF_ERROR(exprs_[e]->Evaluate(chunk, &out->cols[e]));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

JoinBuildState::JoinBuildState(std::string right_key, std::int64_t num_workers)
    : right_key_(std::move(right_key)),
      buffers_(static_cast<std::size_t>(std::max<std::int64_t>(1,
                                                               num_workers))) {}

Status JoinBuildState::Append(std::int64_t worker, DataChunk chunk) {
  if (worker < 0 || worker >= static_cast<std::int64_t>(buffers_.size())) {
    return Status::InvalidArgument("join build worker id out of range");
  }
  buffers_[static_cast<std::size_t>(worker)].push_back(std::move(chunk));
  return Status::OK();
}

Status JoinBuildState::FinalizeBuild() {
  if (finalized_) return Status::Internal("join build finalized twice");
  // Order the chunks by morsel provenance: this is the row order a
  // sequential build would have seen, making build row ids — and therefore
  // duplicate-key probe output — deterministic regardless of which worker
  // claimed which morsel. stable_sort keeps arrival order for equal keys
  // (the sequential owning-join case, where all chunks share source 0).
  std::vector<DataChunk*> chunks;
  std::int64_t total = 0;
  for (auto& buffer : buffers_) {
    for (auto& chunk : buffer) {
      chunks.push_back(&chunk);
      total += chunk.num_rows();
    }
  }
  std::stable_sort(chunks.begin(), chunks.end(),
                   [](const DataChunk* a, const DataChunk* b) {
                     return a->order_source != b->order_source
                                ? a->order_source < b->order_source
                                : a->order_morsel < b->order_morsel;
                   });
  if (!chunks.empty()) {
    names_ = chunks.front()->names;
    cols_.assign(names_.size(), {});
    for (std::size_t c = 0; c < names_.size(); ++c) {
      cols_[c].reserve(static_cast<std::size_t>(total));
    }
    for (DataChunk* chunk : chunks) {
      if (chunk->names != names_) {
        return Status::ExecutionError("join build chunk schema mismatch");
      }
      for (std::size_t c = 0; c < names_.size(); ++c) {
        cols_[c].insert(cols_[c].end(), chunk->cols[c].begin(),
                        chunk->cols[c].end());
      }
      // Release as we go: peak memory stays ~one chunk above the build.
      chunk->cols.clear();
      chunk->cols.shrink_to_fit();
    }
  }
  chunks.clear();
  buffers_.clear();
  buffers_.shrink_to_fit();
  if (total > 0) {
    std::int64_t key_idx = -1;
    for (std::size_t c = 0; c < names_.size(); ++c) {
      if (names_[c] == right_key_) key_idx = static_cast<std::int64_t>(c);
    }
    if (key_idx < 0) {
      return Status::ExecutionError("join build key '" + right_key_ +
                                    "' not found");
    }
    // Striped parallel insertion over row shards; contention is limited to
    // the per-stripe mutexes.
    const auto& key_col = cols_[static_cast<std::size_t>(key_idx)];
    const std::int64_t shards = std::min<std::int64_t>(
        16, (total + kChunkSize - 1) / kChunkSize);
    const std::int64_t per = (total + shards - 1) / shards;
    ThreadPool::Global().ParallelFor(
        static_cast<std::size_t>(shards), [&](std::size_t s) {
          const std::int64_t begin = static_cast<std::int64_t>(s) * per;
          const std::int64_t end = std::min(total, begin + per);
          for (std::int64_t row = begin; row < end; ++row) {
            const double key = key_col[static_cast<std::size_t>(row)];
            Stripe& stripe = stripes_[StripeOf(key)];
            std::lock_guard<std::mutex> lock(stripe.mu);
            stripe.map[key].push_back(row);
          }
        });
    // Shard interleaving is racy; ascending row ids == sequential
    // insertion order, restoring deterministic duplicate-key matches.
    ThreadPool::Global().ParallelFor(kStripes, [&](std::size_t s) {
      for (auto& [key, rows] : stripes_[s].map) {
        std::sort(rows.begin(), rows.end());
      }
    });
  }
  finalized_ = true;
  return Status::OK();
}

const std::vector<std::int64_t>* JoinBuildState::Lookup(double key) const {
  const Stripe& stripe = stripes_[StripeOf(key)];
  auto it = stripe.map.find(key);
  return it == stripe.map.end() ? nullptr : &it->second;
}

std::int64_t JoinBuildState::num_rows() const {
  return cols_.empty() ? 0 : static_cast<std::int64_t>(cols_.front().size());
}

HashJoinOperator::HashJoinOperator(OperatorPtr left, OperatorPtr right,
                                   std::string left_key,
                                   std::string right_key)
    : left_(std::move(left)), right_(std::move(right)),
      left_key_(std::move(left_key)),
      build_(std::make_shared<JoinBuildState>(std::move(right_key), 1)) {}

HashJoinOperator::HashJoinOperator(OperatorPtr left, std::string left_key,
                                   std::shared_ptr<JoinBuildState> build)
    : left_(std::move(left)), left_key_(std::move(left_key)),
      build_(std::move(build)) {}

Status HashJoinOperator::Open() {
  RAVEN_RETURN_IF_ERROR(left_->Open());
  build_emit_cols_.clear();
  if (right_ == nullptr) {
    // Probe-only mode: the shared build pipeline already ran.
    if (build_ == nullptr || !build_->finalized()) {
      return Status::Internal("probe-only hash join without finalized build");
    }
    return Status::OK();
  }
  RAVEN_RETURN_IF_ERROR(right_->Open());
  DataChunk chunk;
  std::int64_t arrival = 0;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, right_->Next(&chunk));
    if (!more) break;
    // Re-tag with the arrival index: a multi-source build side (e.g. a
    // union of scans) reuses (source 0, morsel 0..) per branch, and
    // FinalizeBuild's provenance sort must not interleave the branches.
    chunk.order_source = 0;
    chunk.order_morsel = arrival++;
    RAVEN_RETURN_IF_ERROR(build_->Append(0, std::move(chunk)));
  }
  return build_->FinalizeBuild();
}

Result<bool> HashJoinOperator::Next(DataChunk* out) {
  DataChunk chunk;
  const auto& build_names = build_->names();
  const auto& build_cols = build_->cols();
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, left_->Next(&chunk));
    if (!more) return false;
    RAVEN_ASSIGN_OR_RETURN(std::int64_t key_idx,
                           chunk.ColumnIndex(left_key_));
    // Output schema: all probe columns, then build columns whose names do
    // not collide with probe columns (the equi-key dedupes naturally).
    if (build_emit_cols_.empty()) {
      for (std::size_t c = 0; c < build_names.size(); ++c) {
        bool shadowed = false;
        for (const auto& name : chunk.names) {
          if (name == build_names[c]) {
            shadowed = true;
            break;
          }
        }
        if (!shadowed) build_emit_cols_.push_back(c);
      }
    }
    out->names = chunk.names;
    out->order_source = chunk.order_source;
    out->order_morsel = chunk.order_morsel;
    for (std::size_t c : build_emit_cols_) {
      out->names.push_back(build_names[c]);
    }
    out->cols.assign(out->names.size(), {});
    const std::int64_t n = chunk.num_rows();
    for (std::int64_t i = 0; i < n; ++i) {
      const double key = chunk.cols[static_cast<std::size_t>(key_idx)]
                                   [static_cast<std::size_t>(i)];
      const std::vector<std::int64_t>* matches = build_->Lookup(key);
      if (matches == nullptr) continue;
      for (std::int64_t build_row : *matches) {
        for (std::size_t c = 0; c < chunk.cols.size(); ++c) {
          out->cols[c].push_back(chunk.cols[c][static_cast<std::size_t>(i)]);
        }
        for (std::size_t e = 0; e < build_emit_cols_.size(); ++e) {
          out->cols[chunk.cols.size() + e].push_back(
              build_cols[build_emit_cols_[e]]
                        [static_cast<std::size_t>(build_row)]);
        }
      }
    }
    if (out->num_rows() > 0) return true;
    // All probe rows missed; continue with the next chunk.
  }
}

Status UnionAllOperator::Open() {
  for (auto& child : children_) {
    RAVEN_RETURN_IF_ERROR(child->Open());
  }
  current_ = 0;
  return Status::OK();
}

Result<bool> UnionAllOperator::Next(DataChunk* out) {
  while (current_ < children_.size()) {
    RAVEN_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(out));
    if (more) return true;
    ++current_;
  }
  return false;
}

Result<bool> LimitOperator::Next(DataChunk* out) {
  if (emitted_ >= limit_) return false;
  RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  const std::int64_t n = out->num_rows();
  if (emitted_ + n > limit_) {
    const std::int64_t keep = limit_ - emitted_;
    for (auto& col : out->cols) col.resize(static_cast<std::size_t>(keep));
  }
  emitted_ += out->num_rows();
  return true;
}

Result<bool> PredictOperator::Next(DataChunk* out) {
  DataChunk chunk;
  RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
  if (!more) return false;
  const std::int64_t n = chunk.num_rows();
  const std::int64_t k = static_cast<std::int64_t>(input_columns_.size());
  Tensor input = Tensor::Zeros({n, k});
  for (std::int64_t j = 0; j < k; ++j) {
    RAVEN_ASSIGN_OR_RETURN(
        std::int64_t idx,
        chunk.ColumnIndex(input_columns_[static_cast<std::size_t>(j)]));
    const auto& col = chunk.cols[static_cast<std::size_t>(idx)];
    for (std::int64_t r = 0; r < n; ++r) {
      input.raw()[r * k + j] =
          static_cast<float>(col[static_cast<std::size_t>(r)]);
    }
  }
  RAVEN_ASSIGN_OR_RETURN(std::vector<double> preds, scorer_(input));
  if (static_cast<std::int64_t>(preds.size()) != n) {
    return Status::ExecutionError("scorer returned " +
                                  std::to_string(preds.size()) +
                                  " predictions for " + std::to_string(n) +
                                  " rows");
  }
  *out = std::move(chunk);
  out->names.push_back(output_name_);
  out->cols.push_back(std::move(preds));
  return true;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

void AggPartial::AccumulateValue(double v) {
  if (count == 0) {
    min = v;
    max = v;
  } else if (std::isnan(v) || std::isnan(min)) {
    // NaN-propagating MIN/MAX: any NaN input makes both NaN, regardless of
    // accumulation or merge order. std::min/std::max keep or drop a NaN
    // depending on argument order, which would make parallel results
    // diverge from sequential (SUM propagates NaN on its own).
    min = std::numeric_limits<double>::quiet_NaN();
    max = std::numeric_limits<double>::quiet_NaN();
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  sum += v;
  ++count;
}

void AggPartial::MergeFrom(const AggPartial& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  if (std::isnan(min) || std::isnan(other.min)) {
    min = std::numeric_limits<double>::quiet_NaN();
    max = std::numeric_limits<double>::quiet_NaN();
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  sum += other.sum;
  count += other.count;
}

double FinalizeAggPartial(AggKind kind, const AggPartial& partial) {
  switch (kind) {
    case AggKind::kCount:
      return static_cast<double>(partial.count);
    case AggKind::kSum:
      return partial.sum;
    case AggKind::kAvg:
      return partial.count > 0
                 ? partial.sum / static_cast<double>(partial.count)
                 : 0.0;
    case AggKind::kMin:
      return partial.min;
    case AggKind::kMax:
      return partial.max;
  }
  return 0.0;
}

SharedAggregateState::SharedAggregateState(std::vector<AggregateSpec> aggs)
    : aggs_(std::move(aggs)), totals_(aggs_.size()) {}

void SharedAggregateState::Merge(const std::vector<AggPartial>& partials) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t a = 0; a < totals_.size() && a < partials.size(); ++a) {
    totals_[a].MergeFrom(partials[a]);
  }
}

DataChunk SharedAggregateState::FinalChunk() const {
  std::lock_guard<std::mutex> lock(mu_);
  DataChunk out;
  for (std::size_t a = 0; a < aggs_.size(); ++a) {
    out.names.push_back(aggs_[a].output_name);
    out.cols.push_back({FinalizeAggPartial(aggs_[a].kind, totals_[a])});
  }
  return out;
}

AggregateOperator::AggregateOperator(OperatorPtr child,
                                     std::vector<AggregateSpec> aggs)
    : child_(std::move(child)), aggs_(std::move(aggs)) {}

AggregateOperator::AggregateOperator(
    OperatorPtr child, std::shared_ptr<SharedAggregateState> shared)
    : child_(std::move(child)), shared_(std::move(shared)) {}

Result<std::vector<AggPartial>> AggregateOperator::DrainChild(
    const std::vector<AggregateSpec>& aggs) {
  std::vector<AggPartial> partials(aggs.size());
  DataChunk chunk;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
    if (!more) break;
    const std::int64_t n = chunk.num_rows();
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      AggPartial& acc = partials[a];
      if (aggs[a].kind == AggKind::kCount) {
        acc.count += n;  // no NULLs in this engine: COUNT(col) == COUNT(*)
        continue;
      }
      RAVEN_ASSIGN_OR_RETURN(std::int64_t idx,
                             chunk.ColumnIndex(aggs[a].column));
      const auto& col = chunk.cols[static_cast<std::size_t>(idx)];
      for (double v : col) acc.AccumulateValue(v);
    }
  }
  return partials;
}

Result<bool> AggregateOperator::Next(DataChunk* out) {
  if (done_) return false;
  done_ = true;
  if (shared_ != nullptr) {
    // Partial-sink mode: accumulate thread-locally, merge once, emit
    // nothing — the executor renders the final row after all workers join.
    RAVEN_ASSIGN_OR_RETURN(std::vector<AggPartial> partials,
                           DrainChild(shared_->aggs()));
    shared_->Merge(partials);
    return false;
  }
  RAVEN_ASSIGN_OR_RETURN(std::vector<AggPartial> partials, DrainChild(aggs_));
  SharedAggregateState state(aggs_);
  state.Merge(partials);
  *out = state.FinalChunk();
  return true;
}

// ---------------------------------------------------------------------------
// Grouped aggregation
// ---------------------------------------------------------------------------

namespace {

/// Renders the (already key-ordered) groups into output columns: keys in
/// spec order, then the finalized aggregates.
void RenderGroups(const GroupBySpec& spec, const GroupMap& groups,
                  std::vector<std::string>* names,
                  std::vector<std::vector<double>>* cols) {
  names->clear();
  names->reserve(spec.keys.size() + spec.aggs.size());
  for (const auto& key : spec.keys) names->push_back(key);
  for (const auto& agg : spec.aggs) names->push_back(agg.output_name);
  cols->assign(names->size(), {});
  for (auto& col : *cols) col.reserve(groups.size());
  for (const auto& [key, partials] : groups) {
    for (std::size_t k = 0; k < spec.keys.size(); ++k) {
      (*cols)[k].push_back(key[k]);
    }
    for (std::size_t a = 0; a < spec.aggs.size(); ++a) {
      (*cols)[spec.keys.size() + a].push_back(
          FinalizeAggPartial(spec.aggs[a].kind, partials[a]));
    }
  }
}

}  // namespace

SharedGroupByState::SharedGroupByState(GroupBySpec spec)
    : spec_(std::move(spec)) {}

std::size_t SharedGroupByState::StripeOf(const std::vector<double>& key) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  for (double v : key) {
    seed ^= std::hash<double>{}(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
            (seed >> 2);
  }
  return seed % kStripes;
}

void SharedGroupByState::Merge(GroupMap local) {
  // Bucket the worker's groups per stripe first so every stripe mutex is
  // taken at most once per merge instead of once per group.
  std::array<std::vector<const GroupMap::value_type*>, kStripes> buckets;
  for (const auto& entry : local) {
    buckets[StripeOf(entry.first)].push_back(&entry);
  }
  for (std::size_t s = 0; s < kStripes; ++s) {
    if (buckets[s].empty()) continue;
    Stripe& stripe = stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const GroupMap::value_type* entry : buckets[s]) {
      auto [it, inserted] =
          stripe.groups.try_emplace(entry->first, spec_.aggs.size());
      for (std::size_t a = 0; a < spec_.aggs.size(); ++a) {
        it->second[a].MergeFrom(entry->second[a]);
      }
      (void)inserted;
    }
  }
}

Result<Table> SharedGroupByState::FinalTable() const {
  // Each key lives in exactly one stripe, so concatenating the (ordered)
  // stripe maps into one ordered map restores the canonical ascending
  // key-tuple order.
  GroupMap merged;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    merged.insert(stripe.groups.begin(), stripe.groups.end());
  }
  // Zero groups renders as a column-less table, matching the engine-wide
  // empty-result convention (an operator that emits no chunks materializes
  // to a table without columns) so parallel == sequential on empty input.
  Table out;
  if (merged.empty()) return out;
  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;
  RenderGroups(spec_, merged, &names, &cols);
  for (std::size_t c = 0; c < names.size(); ++c) {
    RAVEN_RETURN_IF_ERROR(out.AddNumericColumn(names[c], std::move(cols[c])));
  }
  return out;
}

GroupByOperator::GroupByOperator(OperatorPtr child, GroupBySpec spec)
    : child_(std::move(child)), spec_(std::move(spec)) {}

GroupByOperator::GroupByOperator(OperatorPtr child,
                                 std::shared_ptr<SharedGroupByState> shared)
    : child_(std::move(child)), shared_(std::move(shared)) {}

Result<GroupMap> GroupByOperator::DrainChild(const GroupBySpec& spec) {
  GroupMap groups;
  DataChunk chunk;
  std::vector<double> key(spec.keys.size());
  std::vector<const std::vector<double>*> key_cols(spec.keys.size());
  std::vector<const std::vector<double>*> agg_cols(spec.aggs.size());
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
    if (!more) break;
    for (std::size_t k = 0; k < spec.keys.size(); ++k) {
      RAVEN_ASSIGN_OR_RETURN(std::int64_t idx,
                             chunk.ColumnIndex(spec.keys[k]));
      key_cols[k] = &chunk.cols[static_cast<std::size_t>(idx)];
    }
    for (std::size_t a = 0; a < spec.aggs.size(); ++a) {
      if (spec.aggs[a].kind == AggKind::kCount) {
        agg_cols[a] = nullptr;  // COUNT needs no input column
        continue;
      }
      RAVEN_ASSIGN_OR_RETURN(std::int64_t idx,
                             chunk.ColumnIndex(spec.aggs[a].column));
      agg_cols[a] = &chunk.cols[static_cast<std::size_t>(idx)];
    }
    const std::int64_t n = chunk.num_rows();
    for (std::int64_t r = 0; r < n; ++r) {
      const auto row = static_cast<std::size_t>(r);
      for (std::size_t k = 0; k < key.size(); ++k) {
        const double v = (*key_cols[k])[row];
        // Canonicalize NaN: all NaN payloads are one group (GroupKeyLess
        // treats them as equal), so they must also hash to one stripe.
        key[k] = std::isnan(v) ? std::numeric_limits<double>::quiet_NaN() : v;
      }
      auto& partials = groups.try_emplace(key, spec.aggs.size()).first->second;
      for (std::size_t a = 0; a < spec.aggs.size(); ++a) {
        if (agg_cols[a] == nullptr) {
          ++partials[a].count;  // no NULLs in this engine: COUNT counts rows
        } else {
          partials[a].AccumulateValue((*agg_cols[a])[row]);
        }
      }
    }
  }
  return groups;
}

Result<bool> GroupByOperator::Next(DataChunk* out) {
  if (done_) return false;
  done_ = true;
  if (shared_ != nullptr) {
    // Partial-sink mode: pre-aggregate thread-locally, merge once, emit
    // nothing — the executor renders the merged table after all workers
    // join.
    RAVEN_ASSIGN_OR_RETURN(GroupMap groups, DrainChild(shared_->spec()));
    shared_->Merge(std::move(groups));
    return false;
  }
  RAVEN_ASSIGN_OR_RETURN(GroupMap groups, DrainChild(spec_));
  if (groups.empty()) return false;  // empty input: emit nothing (see above)
  out->order_source = 0;
  out->order_morsel = 0;
  RenderGroups(spec_, groups, &out->names, &out->cols);
  return true;
}

// ---------------------------------------------------------------------------
// Sorting (ORDER BY)
// ---------------------------------------------------------------------------

Result<Table> SortTable(Table table, const std::vector<SortSpec>& keys) {
  if (table.num_rows() <= 1 || keys.empty()) return table;
  std::vector<const std::vector<double>*> key_cols;
  key_cols.reserve(keys.size());
  for (const auto& key : keys) {
    RAVEN_ASSIGN_OR_RETURN(std::int64_t idx, table.ColumnIndex(key.column));
    key_cols.push_back(&table.columns()[static_cast<std::size_t>(idx)].data);
  }
  std::vector<std::size_t> order(static_cast<std::size_t>(table.num_rows()));
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(
      order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        for (std::size_t k = 0; k < keys.size(); ++k) {
          // TotalDoubleLess keeps this a strict weak ordering even with
          // NaN key values (plain < would be UB for stable_sort then).
          const double va = (*key_cols[k])[a];
          const double vb = (*key_cols[k])[b];
          if (TotalDoubleLess(va, vb)) return !keys[k].descending;
          if (TotalDoubleLess(vb, va)) return keys[k].descending;
        }
        return false;  // stable: ties keep input order
      });
  for (auto& column : table.mutable_columns()) {
    std::vector<double> sorted;
    sorted.reserve(order.size());
    for (std::size_t r : order) sorted.push_back(column.data[r]);
    column.data = std::move(sorted);
  }
  return table;
}

Result<bool> SortOperator::Next(DataChunk* out) {
  if (done_) return false;
  done_ = true;
  // Gather: drain the (already opened) child into one columnar buffer.
  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;
  bool first = true;
  DataChunk chunk;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
    if (!more) break;
    if (first) {
      names = chunk.names;
      cols.assign(chunk.cols.size(), {});
      first = false;
    }
    for (std::size_t c = 0; c < chunk.cols.size(); ++c) {
      cols[c].insert(cols[c].end(), chunk.cols[c].begin(),
                     chunk.cols[c].end());
    }
  }
  if (first) return false;  // empty input: nothing to sort or emit
  Table gathered;
  for (std::size_t c = 0; c < names.size(); ++c) {
    RAVEN_RETURN_IF_ERROR(
        gathered.AddNumericColumn(names[c], std::move(cols[c])));
  }
  RAVEN_ASSIGN_OR_RETURN(Table sorted, SortTable(std::move(gathered), keys_));
  out->names = names;
  out->order_source = 0;
  out->order_morsel = 0;
  out->cols.clear();
  out->cols.reserve(sorted.columns().size());
  for (auto& column : sorted.mutable_columns()) {
    out->cols.push_back(std::move(column.data));
  }
  return true;
}

Result<bool> InstrumentedOperator::Next(DataChunk* out) {
  const auto start = std::chrono::steady_clock::now();
  auto result = child_->Next(out);
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  slot_->wall_nanos.fetch_add(elapsed, std::memory_order_relaxed);
  if (result.ok() && result.value()) {
    slot_->chunks.fetch_add(1, std::memory_order_relaxed);
    slot_->rows.fetch_add(out->num_rows(), std::memory_order_relaxed);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

Result<Table> MaterializeAll(PhysicalOperator* root) {
  RAVEN_RETURN_IF_ERROR(root->Open());
  Table out;
  DataChunk chunk;
  bool first = true;
  std::vector<std::vector<double>> cols;
  std::vector<std::string> names;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, root->Next(&chunk));
    if (!more) break;
    if (first) {
      names = chunk.names;
      cols.assign(chunk.cols.size(), {});
      first = false;
    }
    for (std::size_t c = 0; c < chunk.cols.size(); ++c) {
      cols[c].insert(cols[c].end(), chunk.cols[c].begin(),
                     chunk.cols[c].end());
    }
  }
  for (std::size_t c = 0; c < names.size(); ++c) {
    RAVEN_RETURN_IF_ERROR(out.AddNumericColumn(names[c], std::move(cols[c])));
  }
  return out;
}

Status DrainOrdered(PhysicalOperator* root, std::vector<OrderedChunk>* out) {
  RAVEN_RETURN_IF_ERROR(root->Open());
  while (true) {
    DataChunk chunk;
    RAVEN_ASSIGN_OR_RETURN(bool more, root->Next(&chunk));
    if (!more) return Status::OK();
    OrderedChunk entry;
    entry.source = chunk.order_source;
    entry.morsel = chunk.order_morsel;
    entry.chunk = std::move(chunk);
    out->push_back(std::move(entry));
  }
}

Result<Table> MergeOrderedChunks(
    std::vector<std::vector<OrderedChunk>> parts) {
  std::vector<OrderedChunk> all;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  all.reserve(total);
  for (auto& part : parts) {
    for (auto& entry : part) all.push_back(std::move(entry));
  }
  // Workers pop morsels in increasing order, so each part is already
  // sorted; a stable sort across parts restores global sequential order.
  std::stable_sort(all.begin(), all.end(),
                   [](const OrderedChunk& a, const OrderedChunk& b) {
                     return a.source != b.source ? a.source < b.source
                                                 : a.morsel < b.morsel;
                   });
  Table out;
  std::vector<std::vector<double>> cols;
  std::vector<std::string> names;
  bool first = true;
  for (auto& entry : all) {
    if (first) {
      names = entry.chunk.names;
      cols.assign(names.size(), {});
      first = false;
    }
    if (entry.chunk.names != names) {
      return Status::ExecutionError("parallel worker chunk schema mismatch");
    }
    for (std::size_t c = 0; c < names.size(); ++c) {
      cols[c].insert(cols[c].end(), entry.chunk.cols[c].begin(),
                     entry.chunk.cols[c].end());
    }
  }
  for (std::size_t c = 0; c < names.size(); ++c) {
    RAVEN_RETURN_IF_ERROR(out.AddNumericColumn(names[c], std::move(cols[c])));
  }
  return out;
}

Result<Table> ExecutePartitionedParallel(const Table& base,
                                         std::int64_t num_partitions,
                                         const PartitionPlanFactory& factory) {
  const std::int64_t n = base.num_rows();
  num_partitions = std::max<std::int64_t>(1, std::min(num_partitions, n));
  const std::int64_t per = (n + num_partitions - 1) / num_partitions;
  std::vector<Result<Table>> results(
      static_cast<std::size_t>(num_partitions),
      Result<Table>(Status::Internal("partition not executed")));
  ThreadPool::Global().ParallelFor(
      static_cast<std::size_t>(num_partitions), [&](std::size_t p) {
        const std::int64_t begin = static_cast<std::int64_t>(p) * per;
        const std::int64_t end = std::min(n, begin + per);
        OperatorPtr plan = factory(begin, end);
        results[p] = plan == nullptr
                         ? Result<Table>(Status::ExecutionError(
                               "partition plan construction failed"))
                         : MaterializeAll(plan.get());
      });
  std::vector<Table> parts;
  parts.reserve(results.size());
  for (auto& result : results) {
    if (!result.ok()) return result.status();
    parts.push_back(std::move(result).value());
  }
  return ConcatTables(std::move(parts));
}

}  // namespace raven::relational
