#ifndef RAVEN_COMMON_STATUS_H_
#define RAVEN_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace raven {

/// Error categories used across all Raven subsystems.
///
/// Raven follows the database-engine convention (Arrow, RocksDB, LevelDB) of
/// propagating errors through `Status` / `Result<T>` return values rather
/// than exceptions. All public APIs that can fail return one of the two.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIoError,
  kParseError,
  kTypeError,
  kExecutionError,
  /// The query server's admission controller shed the request (execution
  /// slots and queue both full). Clients should back off and retry.
  kServerBusy,
};

/// Human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); carries a message string on the error path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status ServerBusy(std::string msg) {
    return Status(StatusCode::kServerBusy, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union. `Result<T>` either holds a `T` (status OK) or an
/// error `Status`. Accessing the value of an errored result aborts, so
/// callers must check `ok()` first (or use RAVEN_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success). Implicit by design so
  /// functions can `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const;

  std::optional<T> value_;
  Status status_;
};

namespace internal {
/// Aborts the process with `status`'s message. Out-of-line so Result stays
/// header-only without pulling in <cstdio>.
[[noreturn]] void DieOnBadAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!ok()) internal::DieOnBadAccess(status_);
}

}  // namespace raven

/// Propagates a non-OK Status out of the calling function.
#define RAVEN_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::raven::Status _raven_status = (expr);    \
    if (!_raven_status.ok()) return _raven_status; \
  } while (false)

#define RAVEN_CONCAT_IMPL(x, y) x##y
#define RAVEN_CONCAT(x, y) RAVEN_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// moves the value into `lhs`.
#define RAVEN_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  RAVEN_ASSIGN_OR_RETURN_IMPL(                                  \
      RAVEN_CONCAT(_raven_result_, __LINE__), lhs, rexpr)

#define RAVEN_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                                \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value()

#endif  // RAVEN_COMMON_STATUS_H_
