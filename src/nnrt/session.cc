#include "nnrt/session.h"

#include "common/timer.h"

namespace raven::nnrt {

Result<std::unique_ptr<InferenceSession>> InferenceSession::Create(
    Graph graph, const SessionOptions& options) {
  RAVEN_RETURN_IF_ERROR(graph.Validate());
  GraphOptStats opt_stats;
  if (options.enable_graph_optimizations) {
    RAVEN_RETURN_IF_ERROR(OptimizeGraph(&graph, &opt_stats));
  }
  return std::unique_ptr<InferenceSession>(
      new InferenceSession(std::move(graph), options.device, opt_stats));
}

Result<std::unique_ptr<InferenceSession>> InferenceSession::FromBytes(
    const std::string& bytes, const SessionOptions& options) {
  BinaryReader reader(bytes);
  RAVEN_ASSIGN_OR_RETURN(Graph graph, Graph::Deserialize(&reader));
  return Create(std::move(graph), options);
}

Result<TensorMap> InferenceSession::Run(const TensorMap& inputs,
                                        RunStats* stats) const {
  RunStats local;
  RAVEN_ASSIGN_OR_RETURN(TensorMap out, ExecuteGraph(graph_, inputs, &local));
  if (device_.type == DeviceType::kAccelerator) {
    local.simulated_micros =
        device_.launch_overhead_us + local.flops / device_.flops_per_us;
  }
  if (stats != nullptr) *stats = local;
  return out;
}

Result<Tensor> InferenceSession::RunSingle(const Tensor& input,
                                           RunStats* stats) const {
  if (graph_.inputs().size() != 1 || graph_.outputs().size() != 1) {
    return Status::InvalidArgument(
        "RunSingle requires a single-input/single-output graph");
  }
  TensorMap in;
  in[graph_.inputs()[0]] = input;
  RAVEN_ASSIGN_OR_RETURN(TensorMap out, Run(in, stats));
  return std::move(out.at(graph_.outputs()[0]));
}

std::string InferenceSession::ToBytes() const {
  BinaryWriter writer;
  graph_.Serialize(&writer);
  return writer.Release();
}

Result<std::shared_ptr<InferenceSession>> SessionCache::GetOrCreate(
    const std::string& key, const std::string& bytes,
    const SessionOptions& options) {
  return GetOrCreate(key, [&bytes]() { return bytes; }, options);
}

Result<std::shared_ptr<InferenceSession>> SessionCache::GetOrCreate(
    const std::string& key, const std::function<std::string()>& bytes_fn,
    const SessionOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.second);
      ++hits_;
      return it->second.first;
    }
    ++misses_;
  }
  // Build outside the lock; duplicate builds are harmless (last one wins).
  RAVEN_ASSIGN_OR_RETURN(auto session,
                         InferenceSession::FromBytes(bytes_fn(), options));
  std::shared_ptr<InferenceSession> shared = std::move(session);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return it->second.first;
  }
  lru_.push_front(key);
  entries_[key] = {shared, lru_.begin()};
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  return shared;
}

void SessionCache::Invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.erase(it->second.second);
    entries_.erase(it);
  }
}

std::size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace raven::nnrt
