#include "server/query_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "frontend/sql_parser.h"

namespace raven::server {
namespace {

/// Scans one identifier-shaped word starting at `*pos` (skipping leading
/// whitespace); empty when the text is exhausted or starts with a
/// non-identifier character.
std::string NextWord(const std::string& text, std::size_t* pos) {
  while (*pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[*pos]))) {
    ++*pos;
  }
  const std::size_t begin = *pos;
  while (*pos < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[*pos])) ||
          text[*pos] == '_')) {
    ++*pos;
  }
  return text.substr(begin, *pos - begin);
}

std::string RestFrom(const std::string& text, std::size_t pos) {
  return TrimString(text.substr(std::min(pos, text.size())));
}

/// Valid CTE/view name: identifier-shaped (no leading digit) and not a
/// grammar keyword. Anything else would parse at CREATE but poison every
/// later statement once spliced in as `WITH <name> AS (...)`.
Status ValidateViewName(const std::string& name) {
  if (name.empty() || (!std::isalpha(static_cast<unsigned char>(name[0])) &&
                       name[0] != '_')) {
    return Status::InvalidArgument(
        "view name '" + name +
        "' must start with a letter or underscore");
  }
  static const char* kReserved[] = {
      "SELECT", "FROM",  "WHERE", "GROUP",   "BY",    "HAVING", "ORDER",
      "LIMIT",  "JOIN",  "ON",    "AS",      "WITH",  "PREDICT", "MODEL",
      "DATA",   "AND",   "OR",    "NOT",     "IN",    "ASC",    "DESC",
      "COUNT",  "SUM",   "AVG",   "MIN",     "MAX"};
  const std::string upper = ToUpper(name);
  for (const char* keyword : kReserved) {
    if (upper == keyword) {
      return Status::InvalidArgument("view name '" + name +
                                     "' is a reserved word");
    }
  }
  return Status::OK();
}

/// Parses the optional `( v1, v2, ... )` parameter list of a SQL-level
/// EXECUTE. Values are plain doubles (the engine is numeric end to end).
Result<std::vector<double>> ParseParamList(const std::string& rest) {
  std::vector<double> params;
  if (rest.empty()) return params;
  if (rest.front() != '(' || rest.back() != ')') {
    return Status::ParseError(
        "EXECUTE parameters must be parenthesized: EXECUTE name (1, 2.5)");
  }
  const std::string inner = TrimString(rest.substr(1, rest.size() - 2));
  if (inner.empty()) return params;
  for (const std::string& part : SplitString(inner, ',')) {
    const std::string value = TrimString(part);
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return Status::ParseError("EXECUTE parameter '" + value +
                                "' is not a number");
    }
    params.push_back(parsed);
  }
  return params;
}

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-picked); on success
/// returns the fd and stores the resolved port in `bound_port`.
Result<int> ListenLoopbackTcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket(AF_INET) failed: " +
                           std::string(std::strerror(errno)));
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind(127.0.0.1:" + std::to_string(port) +
                           ") failed: " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    *bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  if (::listen(fd, 16) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen failed: " + error);
  }
  return fd;
}

}  // namespace

std::vector<std::pair<std::string, std::int64_t>> ServerStats::ToPairs()
    const {
  return {
      {"plan_cache_hits", plan_cache.hits},
      {"plan_cache_misses", plan_cache.misses},
      {"plan_cache_evictions", plan_cache.evictions},
      {"plan_cache_invalidations", plan_cache.invalidations},
      {"plan_cache_entries", plan_cache.entries},
      {"queries_active", admission.active},
      {"queries_queued", admission.queued},
      {"queries_admitted", admission.admitted},
      {"queries_ever_queued", admission.ever_queued},
      {"queries_shed", admission.shed},
      {"queue_timeouts", admission.timeouts},
      {"peak_active", admission.peak_active},
      {"peak_queued", admission.peak_queued},
      {"queries_served", queries_served},
      {"statements_prepared", statements_prepared},
      {"prepared_executions", prepared_executions},
      {"sessions_opened", sessions_opened},
      {"sessions_active", sessions_active},
      {"worker_restarts", worker_restarts},
      {"catalog_version", catalog_version},
      {"blocks_scanned", blocks_scanned},
      {"blocks_skipped", blocks_skipped},
      {"batches_flushed", batches_flushed},
      {"rows_coalesced", rows_coalesced},
      {"batch_occupancy_x100", batch_occupancy},
      {"epoll_wakeups", epoll_wakeups},
      {"nn_session_hits", nn_session_hits},
      {"nn_session_misses", nn_session_misses},
      {"nn_session_evictions", nn_session_evictions},
      {"nn_session_entries", nn_session_entries},
      {"nn_graph_optimizations", nn_graph_optimizations},
      {"nn_artifact_hits", nn_artifact_hits},
      {"nn_artifact_writes", nn_artifact_writes},
      {"nn_artifact_rejects", nn_artifact_rejects},
      {"nn_ops_profiled", nn_ops_profiled},
      {"nn_op_micros", nn_op_micros},
      {"slow_queries", slow_queries},
  };
}

std::int64_t ServerStats::BatchOccupancyX100(std::int64_t rows_flushed,
                                             std::int64_t batches_flushed) {
  // Round half-up rather than truncate: 1 row over 3 batches is 33, not 66
  // truncated from intermediate math, and 5/3 rounds to 167 not 166. No
  // batches yet is an explicit 0, not "skip the stat".
  if (batches_flushed <= 0) return 0;
  return (rows_flushed * 100 + batches_flushed / 2) / batches_flushed;
}

QueryServer::QueryServer(RavenContext* ctx, QueryServerOptions options)
    : ctx_(ctx),
      options_(std::move(options)),
      plan_cache_(options_.plan_cache_capacity),
      admission_(options_.admission),
      batcher_(std::make_shared<PredictBatcher>()) {
  // Every session's PREDICT scorers route through the shared batcher (the
  // window/row-cap knobs stay per-session SET state; with the default
  // window of 0 the scorer never consults it).
  options_.default_execution.predict_batcher = batcher_;
  // Sessions inherit the context's extra worker args (notably
  // --artifact-dir=..., appended by RavenContext when an artifact cache is
  // attached) so out-of-process/distributed children of server sessions
  // warm-start from the same compiled-graph artifacts.
  for (const std::string& arg :
       ctx_->execution_options().external.worker_args) {
    auto& args = options_.default_execution.external.worker_args;
    if (std::find(args.begin(), args.end(), arg) == args.end()) {
      args.push_back(arg);
    }
  }
  // Metric series register once here and stay immutable; values update
  // push-style on the query path (histograms) or at scrape time from
  // Snapshot() (counters/gauges whose lifetime sources live elsewhere).
  h_query_latency_ = metrics_.AddHistogram(
      "raven_query_latency_seconds",
      "Server-side statement latency (admission wait included)",
      obs::LogBuckets(0.0005, 2.0, 16));
  h_queue_wait_ = metrics_.AddHistogram(
      "raven_queue_wait_seconds",
      "Wall time queued in the admission controller before execution",
      obs::LogBuckets(0.0001, 2.0, 18));
  h_query_rows_ = metrics_.AddHistogram(
      "raven_query_rows", "Result rows per executed statement",
      obs::LogBuckets(1.0, 4.0, 10));
  c_queries_served_ = metrics_.AddCounter(
      "raven_queries_served_total", "Statements executed to completion");
  c_plan_cache_hits_ = metrics_.AddCounter(
      "raven_plan_cache_hits_total", "Plan cache lookups that skipped "
      "parse+optimize");
  c_plan_cache_misses_ = metrics_.AddCounter(
      "raven_plan_cache_misses_total", "Plan cache lookups that planned "
      "fresh");
  c_queries_shed_ = metrics_.AddCounter(
      "raven_queries_shed_total", "Statements rejected by admission "
      "control");
  c_sessions_opened_ = metrics_.AddCounter("raven_sessions_opened_total",
                                           "Connections accepted");
  c_worker_restarts_ = metrics_.AddCounter(
      "raven_worker_restarts_total",
      "Distributed pool workers replaced after a failed exchange");
  c_blocks_scanned_ = metrics_.AddCounter(
      "raven_blocks_scanned_total", "Columnar storage blocks decoded");
  c_blocks_skipped_ = metrics_.AddCounter(
      "raven_blocks_skipped_total",
      "Columnar storage blocks pruned by zone maps");
  c_batches_flushed_ = metrics_.AddCounter(
      "raven_predict_batches_flushed_total",
      "Cross-query inference batches flushed");
  c_rows_coalesced_ = metrics_.AddCounter(
      "raven_predict_rows_coalesced_total",
      "PREDICT rows that shared another query's NNRT call");
  c_nn_session_hits_ = metrics_.AddCounter(
      "raven_nn_session_hits_total", "NNRT session cache hits");
  c_nn_session_misses_ = metrics_.AddCounter(
      "raven_nn_session_misses_total", "NNRT session cache misses");
  c_nn_op_micros_ = metrics_.AddCounter(
      "raven_nn_op_micros_total",
      "Cumulative NNRT kernel wall time across all backends, micros");
  c_epoll_wakeups_ = metrics_.AddCounter(
      "raven_epoll_wakeups_total", "Event-loop wakeups with ready fds");
  c_slow_queries_ = metrics_.AddCounter(
      "raven_slow_queries_total",
      "Statements at or over their session's slow_query_millis");
  g_sessions_active_ =
      metrics_.AddGauge("raven_sessions_active", "Open client sessions");
  g_queries_active_ = metrics_.AddGauge(
      "raven_queries_active", "Statements holding an admission slot");
  g_queries_queued_ = metrics_.AddGauge(
      "raven_queries_queued", "Statements waiting in the admission queue");
  g_plan_cache_entries_ = metrics_.AddGauge("raven_plan_cache_entries",
                                            "Cached optimized plans");
  g_plan_cache_hit_ratio_ = metrics_.AddGauge(
      "raven_plan_cache_hit_ratio",
      "Lifetime plan-cache hits / lookups (0 before the first lookup)");
  g_batch_occupancy_ = metrics_.AddGauge(
      "raven_batch_occupancy_x100",
      "Mean PREDICT rows per flushed NNRT batch, x100");
  g_connections_open_ = metrics_.AddGauge("raven_connections_open",
                                          "Registered connection fds");
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server is already running");
  }
  // Batcher Shutdown is permanent, so a restarted server gets a fresh
  // (open) one; Snapshot between Stop and the next Start still reads the
  // finished run's counters.
  batcher_ = std::make_shared<PredictBatcher>();
  options_.default_execution.predict_batcher = batcher_;
  // A client that disappears mid-response must surface as EPIPE on the
  // connection, not kill the server (same rationale as WorkerClient).
  ::signal(SIGPIPE, SIG_IGN);
  if (!options_.unix_socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError("socket(AF_UNIX) failed: " +
                             std::string(std::strerror(errno)));
    }
    ::unlink(options_.unix_socket_path.c_str());  // stale socket file
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string error = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IoError("bind(" + options_.unix_socket_path +
                             ") failed: " + error);
    }
  } else if (options_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError("socket(AF_INET) failed: " +
                             std::string(std::strerror(errno)));
    }
    const int reuse = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string error = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IoError("bind(127.0.0.1:" +
                             std::to_string(options_.tcp_port) +
                             ") failed: " + error);
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      bound_tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  } else {
    return Status::InvalidArgument(
        "configure either unix_socket_path or tcp_port");
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen failed: " + error);
  }

  EventLoopOptions loop;
  loop.max_connections = options_.max_connections;
  loop.max_request_frame_bytes = options_.max_request_frame_bytes;
  loop.idle_timeout_millis = options_.idle_timeout_millis;
  // Every admission slot and queue seat must be occupiable at once, or the
  // dispatch pool — not the admission controller — would become the real
  // shed/queue policy; the slack covers control traffic (SET, SHOW STATS,
  // pings) arriving while all admission seats are taken.
  loop.dispatch_threads = static_cast<int>(options_.admission.max_concurrent +
                                           options_.admission.max_queue + 4);
  loop.busy_payload = EncodeServerResponse(ErrorResponse(Status::ServerBusy(
      "connection limit (" + std::to_string(options_.max_connections) +
      ") reached; retry later")));
  loop.oversize_payload = EncodeServerResponse(ErrorResponse(
      Status::OutOfRange("request frame is over the cap of " +
                         std::to_string(options_.max_request_frame_bytes) +
                         " bytes")));
  event_loop_ = std::make_unique<EventLoop>(
      std::move(loop),
      [this]() -> void* {
        sessions_opened_.fetch_add(1, std::memory_order_relaxed);
        sessions_active_.fetch_add(1, std::memory_order_relaxed);
        return new Session(
            next_session_id_.fetch_add(1, std::memory_order_relaxed),
            options_.default_execution, &ctx_->session_cache());
      },
      [this](void* conn_ctx, std::string payload) -> std::string {
        ServerResponse response;
        auto request = DecodeClientRequest(payload);
        if (!request.ok()) {
          // Frames are length-delimited, so a malformed payload does not
          // desynchronize the stream; answer the error and keep serving.
          response = ErrorResponse(request.status());
        } else {
          response = HandleRequest(static_cast<Session*>(conn_ctx),
                                   request.value());
        }
        return EncodeServerResponse(response);
      },
      [this](void* conn_ctx) {
        delete static_cast<Session*>(conn_ctx);
        sessions_active_.fetch_sub(1, std::memory_order_relaxed);
      });
  Status started = event_loop_->Start(listen_fd_);
  if (!started.ok()) {
    event_loop_.reset();
    ::close(listen_fd_);
    listen_fd_ = -1;
    return started;
  }
  // Running from here on: the optional listeners below roll everything
  // back through Stop() on failure.
  running_.store(true, std::memory_order_release);
  if (!options_.slow_query_log_path.empty()) {
    std::lock_guard<std::mutex> lock(slow_log_mu_);
    slow_log_ = std::fopen(options_.slow_query_log_path.c_str(), "a");
    if (slow_log_ == nullptr) {
      const std::string error = std::strerror(errno);
      Stop();
      return Status::IoError("open slow-query log " +
                             options_.slow_query_log_path + ": " + error);
    }
  }
  if (options_.metrics_port >= 0) {
    auto fd = ListenLoopbackTcp(options_.metrics_port, &bound_metrics_port_);
    if (!fd.ok()) {
      Stop();
      return Status(fd.status().code(),
                    "metrics listener: " + fd.status().message());
    }
    metrics_listen_fd_ = fd.value();
    EventLoopOptions mloop;
    mloop.http_mode = true;
    mloop.max_connections = 32;
    mloop.max_request_frame_bytes = 64u << 10;
    mloop.idle_timeout_millis = 10000;
    mloop.dispatch_threads = 2;
    metrics_loop_ = std::make_unique<EventLoop>(
        std::move(mloop), []() -> void* { return nullptr; },
        [this](void*, std::string request) -> std::string {
          return HandleMetricsHttp(request);
        },
        [](void*) {});
    Status metrics_started = metrics_loop_->Start(metrics_listen_fd_);
    if (!metrics_started.ok()) {
      Stop();
      return metrics_started;
    }
  }
  return Status::OK();
}

void QueryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Drain the batcher FIRST: pending leaders wake and flush their groups
  // immediately, and later submissions run solo — so the in-flight
  // statements the loop is about to wait on can never be parked on a batch
  // window waiting for company that will not arrive. No PREDICT waiter is
  // dropped: drained batches run normally, they just stop waiting.
  batcher_->Shutdown();
  // Severs connections, finishes in-flight handlers, joins every thread.
  if (event_loop_ != nullptr) event_loop_->Stop();
  if (metrics_loop_ != nullptr) {
    metrics_loop_->Stop();
    metrics_loop_.reset();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (metrics_listen_fd_ >= 0) {
    ::close(metrics_listen_fd_);
    metrics_listen_fd_ = -1;
    bound_metrics_port_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(slow_log_mu_);
    if (slow_log_ != nullptr) {
      std::fclose(slow_log_);
      slow_log_ = nullptr;
    }
  }
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

ServerResponse QueryServer::ErrorResponse(const Status& status) {
  ServerResponse response;
  response.kind = status.code() == StatusCode::kServerBusy
                      ? ServerResponseKind::kBusy
                      : ServerResponseKind::kError;
  response.code = status.code();
  response.message = status.message();
  return response;
}

ServerResponse QueryServer::HandleRequest(Session* session,
                                          const ClientRequest& request) {
  switch (request.command) {
    case ClientCommand::kPing: {
      ServerResponse response;
      response.kind = ServerResponseKind::kAck;
      response.message = "pong";
      return response;
    }
    case ClientCommand::kExecute:
      return HandleExecute(session, request.statement_name, request.params);
    case ClientCommand::kQuery:
      return HandleStatement(session, request.sql);
  }
  return ErrorResponse(Status::InvalidArgument("unhandled client command"));
}

ServerResponse QueryServer::HandleStatement(Session* session,
                                            const std::string& sql) {
  std::string text = TrimString(sql);
  while (!text.empty() && text.back() == ';') {
    text.pop_back();
    text = TrimString(text);
  }
  if (text.empty()) {
    return ErrorResponse(Status::ParseError("empty statement"));
  }
  std::size_t pos = 0;
  const std::string verb = ToUpper(NextWord(text, &pos));
  if (verb == "PREPARE") {
    return HandlePrepare(session, RestFrom(text, pos));
  }
  if (verb == "EXECUTE") {
    const std::string name = NextWord(text, &pos);
    if (name.empty()) {
      return ErrorResponse(
          Status::ParseError("EXECUTE expects a statement name"));
    }
    auto params = ParseParamList(RestFrom(text, pos));
    if (!params.ok()) return ErrorResponse(params.status());
    return HandleExecute(session, name, params.value());
  }
  if (verb == "SET") {
    return HandleSet(session, RestFrom(text, pos));
  }
  if (verb == "EXPLAIN") {
    std::size_t peek = pos;
    if (ToUpper(NextWord(text, &peek)) == "ANALYZE") {
      return HandleExplainAnalyze(session, RestFrom(text, peek));
    }
    return HandleExplain(session, RestFrom(text, pos));
  }
  if (verb == "TRACE") {
    return HandleTrace(session, RestFrom(text, pos));
  }
  if (verb == "SHOW") {
    const std::string what = ToUpper(NextWord(text, &pos));
    if (what == "STATS") return ShowStats();
    if (what == "METRICS") {
      ServerResponse response;
      response.kind = ServerResponseKind::kAck;
      response.message = RenderMetrics();
      return response;
    }
    if (what == "TRACE") {
      ServerResponse response;
      response.kind = ServerResponseKind::kAck;
      response.message =
          session->last_trace_tree().empty()
              ? "(no trace recorded; SET trace = on or TRACE <statement>)"
              : session->last_trace_tree();
      return response;
    }
    return ErrorResponse(Status::ParseError(
        "expected SHOW STATS, SHOW METRICS, or SHOW TRACE"));
  }
  if (verb == "CREATE") {
    return HandleCreateView(session, RestFrom(text, pos));
  }
  if (verb == "DROP") {
    const std::string what = ToUpper(NextWord(text, &pos));
    const std::string name = NextWord(text, &pos);
    if (what != "VIEW" || name.empty()) {
      return ErrorResponse(Status::ParseError("expected DROP VIEW <name>"));
    }
    Status dropped = session->DropView(name);
    if (!dropped.ok()) return ErrorResponse(dropped);
    ServerResponse response;
    response.kind = ServerResponseKind::kAck;
    response.message = "dropped view '" + name + "'";
    return response;
  }
  return RunStatement(session, text);
}

ServerResponse QueryServer::HandleSet(Session* session,
                                      const std::string& rest) {
  // Accept `SET key = value` and `SET key value`.
  std::string key;
  std::string value;
  const std::size_t eq = rest.find('=');
  if (eq != std::string::npos) {
    key = TrimString(rest.substr(0, eq));
    value = TrimString(rest.substr(eq + 1));
  } else {
    std::size_t pos = 0;
    key = NextWord(rest, &pos);
    value = RestFrom(rest, pos);
  }
  if (key.empty() || value.empty()) {
    return ErrorResponse(Status::ParseError("expected SET <knob> = <value>"));
  }
  Status applied = session->ApplySet(key, value);
  if (!applied.ok()) return ErrorResponse(applied);
  ServerResponse response;
  response.kind = ServerResponseKind::kAck;
  response.message = "SET " + ToLower(key) + " = " + value;
  return response;
}

ServerResponse QueryServer::HandleCreateView(Session* session,
                                             const std::string& rest) {
  std::size_t pos = 0;
  std::string word = ToUpper(NextWord(rest, &pos));
  if (word == "TEMP" || word == "TEMPORARY") {
    word = ToUpper(NextWord(rest, &pos));
  }
  if (word != "VIEW") {
    return ErrorResponse(
        Status::ParseError("expected CREATE [TEMP] VIEW <name> AS <select>"));
  }
  const std::string name = NextWord(rest, &pos);
  const std::string as = ToUpper(NextWord(rest, &pos));
  const std::string body = RestFrom(rest, pos);
  if (name.empty() || as != "AS" || body.empty()) {
    return ErrorResponse(
        Status::ParseError("expected CREATE [TEMP] VIEW <name> AS <select>"));
  }
  Status valid_name = ValidateViewName(name);
  if (!valid_name.ok()) return ErrorResponse(valid_name);
  // Validate the body now (against the session's existing views) so a
  // broken view fails its CREATE, not every later statement that uses it.
  bool cache_hit = false;
  auto planned =
      PlanStatement(session, session->RewriteWithViews(body), &cache_hit);
  if (!planned.ok()) return ErrorResponse(planned.status());
  if ((*planned)->param_count > 0) {
    return ErrorResponse(Status::InvalidArgument(
        "views cannot contain ? placeholders (prepare a statement instead)"));
  }
  session->PutView(name, body);
  ServerResponse response;
  response.kind = ServerResponseKind::kAck;
  response.message = "created view '" + name + "'";
  return response;
}

ServerResponse QueryServer::HandlePrepare(Session* session,
                                          const std::string& rest) {
  std::size_t pos = 0;
  const std::string name = NextWord(rest, &pos);
  const std::string as = ToUpper(NextWord(rest, &pos));
  const std::string body = RestFrom(rest, pos);
  if (name.empty() || as != "AS" || body.empty()) {
    return ErrorResponse(
        Status::ParseError("expected PREPARE <name> AS <select>"));
  }
  const std::string rewritten = session->RewriteWithViews(body);
  // Version read BEFORE planning: if the catalog mutates mid-plan, the
  // template looks stale on the next EXECUTE and re-plans — never the
  // other way around (a stale plan that looks permanently fresh).
  const std::int64_t planned_version = ctx_->catalog().version();
  bool cache_hit = false;
  auto planned = PlanStatement(session, rewritten, &cache_hit);
  if (!planned.ok()) return ErrorResponse(planned.status());
  PreparedStatement prepared;
  prepared.name = name;
  prepared.sql = rewritten;
  prepared.plan = (*planned)->plan;
  prepared.param_count = (*planned)->param_count;
  prepared.fingerprint = (*planned)->fingerprint;
  prepared.catalog_version = planned_version;
  prepared.profile = session->PlanProfile();
  session->prepared()[name] = std::move(prepared);
  statements_prepared_.fetch_add(1, std::memory_order_relaxed);
  ServerResponse response;
  response.kind = ServerResponseKind::kAck;
  response.message = "prepared '" + name + "' (" +
                     std::to_string((*planned)->param_count) +
                     " parameters)";
  return response;
}

ServerResponse QueryServer::HandleExecute(Session* session,
                                          const std::string& name,
                                          const std::vector<double>& params) {
  auto it = session->prepared().find(name);
  if (it == session->prepared().end()) {
    return ErrorResponse(
        Status::NotFound("no prepared statement named '" + name + "'"));
  }
  PreparedStatement& prepared = it->second;
  // Prepared executions trace like plain statements (re-plan spans
  // included) when the session asked for tracing.
  std::unique_ptr<obs::Trace> trace;
  if (session->trace_enabled() || session->slow_query_millis() > 0) {
    trace = std::make_unique<obs::Trace>();
  }
  Timer timer;
  bool cache_hit = true;
  if (prepared.catalog_version != ctx_->catalog().version() ||
      prepared.profile != session->PlanProfile()) {
    // The template went stale: the catalog moved since PREPARE (model
    // update, new table) or a SET changed the costing targets it was
    // optimized for. Re-plan from the stored text — same policy as the
    // plan cache, applied to the session-pinned template. Version read
    // before planning, same staleness direction as HandlePrepare.
    const std::int64_t planned_version = ctx_->catalog().version();
    auto replanned =
        PlanStatement(session, prepared.sql, &cache_hit, trace.get());
    if (!replanned.ok()) return ErrorResponse(replanned.status());
    prepared.plan = (*replanned)->plan;
    prepared.param_count = (*replanned)->param_count;
    prepared.fingerprint = (*replanned)->fingerprint;
    prepared.catalog_version = planned_version;
    prepared.profile = session->PlanProfile();
  }
  if (static_cast<std::int64_t>(params.size()) != prepared.param_count) {
    return ErrorResponse(Status::InvalidArgument(
        "prepared statement '" + name + "' takes " +
        std::to_string(prepared.param_count) + " parameters, got " +
        std::to_string(params.size())));
  }
  prepared_executions_.fetch_add(1, std::memory_order_relaxed);
  ServerResponse response;
  if (prepared.param_count == 0) {
    response = ExecutePlan(session, *prepared.plan, cache_hit, trace.get());
  } else {
    auto bound = ir::BindPlanParameters(*prepared.plan->root(), params);
    if (!bound.ok()) return ErrorResponse(bound.status());
    const ir::IrPlan bound_plan(std::move(bound).value());
    response = ExecutePlan(session, bound_plan, cache_hit, trace.get());
  }
  if (trace != nullptr) {
    FinishTrace(session, "EXECUTE " + name, timer.ElapsedMillis(),
                trace.get());
  }
  return response;
}

ServerResponse QueryServer::HandleExplain(Session* session,
                                          const std::string& body) {
  if (body.empty()) {
    return ErrorResponse(Status::ParseError("EXPLAIN expects a statement"));
  }
  std::string text;
  {
    // Explain re-runs analyze + optimize and touches the shared
    // optimizer's per-query costing state, so it serializes like PlanFresh
    // (never cached — it is a diagnostic, not a hot path). Costing targets
    // come from the server's default execution options, not the session.
    std::lock_guard<std::mutex> lock(optimize_mu_);
    auto explained = ctx_->Explain(session->RewriteWithViews(body));
    if (!explained.ok()) return ErrorResponse(explained.status());
    text = std::move(explained).value();
  }
  // The plan text reports which PREDICT nodes are batch-eligible; whether
  // they actually coalesce is this session's knob state — append it so one
  // round trip answers both questions.
  const runtime::ExecutionOptions& exec = session->execution();
  text += "=== Session batching knobs ===\n";
  text += "  batch_window_micros = " +
          std::to_string(exec.predict_batch_window_micros);
  if (exec.predict_batch_window_micros <= 0) {
    text += "  (0: batch-eligible nodes run per-morsel, uncoalesced)";
  }
  text += "\n  max_batch_rows = " +
          std::to_string(exec.predict_max_batch_rows) + "\n";
  // Backend selection + profiling: which kernel set this session's PREDICT
  // sessions bind, the fp16 accuracy caveat, and the cumulative per-op cost
  // breakdown the profiling hooks have gathered so far (cache-wide).
  text += "=== NNRT backend ===\n";
  text += "  nn_backend = ";
  text += nnrt::BackendKindToString(exec.nn_backend);
  if (exec.nn_backend == nnrt::BackendKind::kFp16) {
    text +=
        "  (outputs rounded to fp16 per op: faster dense math, "
        "approximate scores — see docs/OPERATIONS.md for the tolerance)";
  }
  text += "\n";
  const std::vector<nnrt::OpProfile> ops =
      ctx_->session_cache().profiler().Snapshot();
  if (!ops.empty()) {
    text += "  per-op profile (cumulative, all sessions):\n";
    std::size_t shown = 0;
    for (const nnrt::OpProfile& op : ops) {
      if (++shown > 8) break;
      text += "    " + op.op_type + ": calls=" + std::to_string(op.calls) +
              " micros=" + std::to_string(static_cast<std::int64_t>(
                               op.wall_micros)) +
              " flops=" +
              std::to_string(static_cast<std::int64_t>(op.flops)) + "\n";
    }
  }
  ServerResponse response;
  response.kind = ServerResponseKind::kAck;
  response.message = std::move(text);
  return response;
}

ServerResponse QueryServer::RunStatement(Session* session,
                                         const std::string& sql,
                                         bool force_trace) {
  std::unique_ptr<obs::Trace> trace;
  if (force_trace || session->trace_enabled() ||
      session->slow_query_millis() > 0) {
    trace = std::make_unique<obs::Trace>();
  }
  Timer timer;
  const std::int64_t rewrite_span =
      trace != nullptr ? trace->StartSpan("rewrite_views") : 0;
  const std::string rewritten = session->RewriteWithViews(sql);
  if (trace != nullptr) trace->EndSpan(rewrite_span);
  bool cache_hit = false;
  auto planned = PlanStatement(session, rewritten, &cache_hit, trace.get());
  if (!planned.ok()) return ErrorResponse(planned.status());
  if ((*planned)->param_count > 0) {
    return ErrorResponse(Status::InvalidArgument(
        "statement has ? placeholders; use PREPARE/EXECUTE to bind them"));
  }
  ServerResponse response =
      ExecutePlan(session, *(*planned)->plan, cache_hit, trace.get());
  if (trace != nullptr) {
    FinishTrace(session, sql, timer.ElapsedMillis(), trace.get());
  }
  return response;
}

ServerResponse QueryServer::HandleTrace(Session* session,
                                        const std::string& rest) {
  if (rest.empty()) {
    return ErrorResponse(Status::ParseError("TRACE expects a statement"));
  }
  // Execute exactly like the plain statement (same plan cache, admission,
  // knobs) with the trace forced on; the response is the span tree, not
  // the result rows — TRACE is the diagnostic form of the statement.
  ServerResponse executed = RunStatement(session, rest, /*force_trace=*/true);
  if (executed.kind == ServerResponseKind::kError ||
      executed.kind == ServerResponseKind::kBusy) {
    return executed;
  }
  ServerResponse response;
  response.kind = ServerResponseKind::kAck;
  response.message = session->last_trace_tree();
  return response;
}

ServerResponse QueryServer::HandleExplainAnalyze(Session* session,
                                                 const std::string& body) {
  if (body.empty()) {
    return ErrorResponse(
        Status::ParseError("EXPLAIN ANALYZE expects a statement"));
  }
  bool cache_hit = false;
  auto planned =
      PlanStatement(session, session->RewriteWithViews(body), &cache_hit);
  if (!planned.ok()) return ErrorResponse(planned.status());
  if ((*planned)->param_count > 0) {
    return ErrorResponse(Status::InvalidArgument(
        "EXPLAIN ANALYZE cannot bind ? placeholders; inline the values"));
  }
  // EXPLAIN ANALYZE really executes, so it takes an admission slot like
  // any statement and its counters feed the serving totals.
  auto ticket = admission_.Admit();
  if (!ticket.ok()) return ErrorResponse(ticket.status());
  auto analyzed =
      ctx_->ExplainAnalyzePlan(*(*planned)->plan, session->execution());
  if (!analyzed.ok()) return ErrorResponse(analyzed.status());
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  blocks_scanned_.fetch_add(analyzed->stats.blocks_scanned,
                            std::memory_order_relaxed);
  blocks_skipped_.fetch_add(analyzed->stats.blocks_skipped,
                            std::memory_order_relaxed);
  worker_restarts_.fetch_add(analyzed->stats.worker_restarts,
                             std::memory_order_relaxed);
  ServerResponse response;
  response.kind = ServerResponseKind::kAck;
  response.message = std::move(analyzed->text);
  response.plan_cache_hit = cache_hit;
  return response;
}

void QueryServer::FinishTrace(Session* session, const std::string& sql,
                              double total_millis, obs::Trace* trace) {
  const std::string json = trace->RenderJsonLine(
      sql, static_cast<std::int64_t>(total_millis * 1000.0));
  const std::int64_t threshold = session->slow_query_millis();
  if (threshold > 0 && total_millis >= static_cast<double>(threshold)) {
    slow_queries_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(slow_log_mu_);
    if (slow_log_ != nullptr) {
      std::fputs(json.c_str(), slow_log_);
      std::fputc('\n', slow_log_);
      std::fflush(slow_log_);
    }
  }
  session->SetLastTrace(trace->RenderTree(), json);
}

std::string QueryServer::RenderMetrics() {
  const ServerStats s = Snapshot();
  std::lock_guard<std::mutex> lock(scrape_mu_);
  c_queries_served_->Set(s.queries_served);
  c_plan_cache_hits_->Set(s.plan_cache.hits);
  c_plan_cache_misses_->Set(s.plan_cache.misses);
  c_queries_shed_->Set(s.admission.shed);
  c_sessions_opened_->Set(s.sessions_opened);
  c_worker_restarts_->Set(s.worker_restarts);
  c_blocks_scanned_->Set(s.blocks_scanned);
  c_blocks_skipped_->Set(s.blocks_skipped);
  c_batches_flushed_->Set(s.batches_flushed);
  c_rows_coalesced_->Set(s.rows_coalesced);
  c_nn_session_hits_->Set(s.nn_session_hits);
  c_nn_session_misses_->Set(s.nn_session_misses);
  c_nn_op_micros_->Set(s.nn_op_micros);
  c_epoll_wakeups_->Set(s.epoll_wakeups);
  c_slow_queries_->Set(s.slow_queries);
  g_sessions_active_->Set(static_cast<double>(s.sessions_active));
  g_queries_active_->Set(static_cast<double>(s.admission.active));
  g_queries_queued_->Set(static_cast<double>(s.admission.queued));
  g_plan_cache_entries_->Set(static_cast<double>(s.plan_cache.entries));
  const std::int64_t lookups = s.plan_cache.hits + s.plan_cache.misses;
  g_plan_cache_hit_ratio_->Set(
      lookups > 0 ? static_cast<double>(s.plan_cache.hits) /
                        static_cast<double>(lookups)
                  : 0.0);
  g_batch_occupancy_->Set(static_cast<double>(s.batch_occupancy));
  if (event_loop_ != nullptr) {
    g_connections_open_->Set(
        static_cast<double>(event_loop_->stats().connections_open));
  }
  return metrics_.Render();
}

std::string QueryServer::HandleMetricsHttp(const std::string& request) {
  // Request line: METHOD SP PATH SP VERSION. Anything that is not a GET of
  // /metrics is a 404 — the endpoint is a scrape target, not a web server.
  std::string path;
  const std::size_t sp1 = request.find(' ');
  if (sp1 != std::string::npos) {
    const std::size_t sp2 = request.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) path = request.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  std::string status_line = "HTTP/1.0 404 Not Found";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body = "not found; scrape /metrics\n";
  if (path == "/metrics" || path == "/metrics/") {
    status_line = "HTTP/1.0 200 OK";
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = RenderMetrics();
  }
  return status_line + "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

Result<std::shared_ptr<const CachedPlan>> QueryServer::PlanStatement(
    Session* session, const std::string& sql, bool* cache_hit,
    obs::Trace* trace) {
  const std::int64_t lookup_span =
      trace != nullptr ? trace->StartSpan("plan_cache.lookup") : 0;
  auto normalized_or = frontend::NormalizeSql(sql);
  if (!normalized_or.ok()) return normalized_or.status();
  const std::string normalized = std::move(normalized_or).value();
  // The profile is the LAST \x1f-delimited segment and is machine-generated
  // (Session::PlanProfile must never emit \x1f): however the SQL segment
  // re-segments — string literals CAN carry arbitrary bytes — the final
  // separator still delimits the profile unambiguously, so two different
  // (sql, profile) pairs can't produce the same key.
  const std::string key = normalized + '\x1f' + session->PlanProfile();
  const std::int64_t version = ctx_->catalog().version();
  if (auto cached = plan_cache_.Get(key, version)) {
    *cache_hit = true;
    if (trace != nullptr) trace->EndSpan(lookup_span, "hit");
    return cached;
  }
  *cache_hit = false;
  if (trace != nullptr) trace->EndSpan(lookup_span, "miss");
  RAVEN_ASSIGN_OR_RETURN(std::shared_ptr<const CachedPlan> fresh,
                         PlanFresh(session, sql, trace));
  plan_cache_.Put(key, version, fresh);
  return fresh;
}

Result<std::shared_ptr<const CachedPlan>> QueryServer::PlanFresh(
    Session* session, const std::string& sql, obs::Trace* trace) {
  // The analyzer is stateless and the catalog thread-safe, so analysis
  // runs concurrently across sessions; only Optimize is serialized (its
  // costing targets are per-query fields on the shared CrossOptimizer).
  const std::int64_t parse_span =
      trace != nullptr ? trace->StartSpan("parse") : 0;
  RAVEN_ASSIGN_OR_RETURN(ir::IrPlan plan, ctx_->analyzer().Analyze(sql));
  if (trace != nullptr) trace->EndSpan(parse_span);
  {
    const std::int64_t optimize_span =
        trace != nullptr ? trace->StartSpan("optimize") : 0;
    std::lock_guard<std::mutex> lock(optimize_mu_);
    const runtime::ExecutionOptions& exec = session->execution();
    optimizer::OptimizerOptions& opts = ctx_->optimizer_options();
    opts.target_parallelism =
        exec.mode == runtime::ExecutionMode::kInProcess ? exec.parallelism
                                                        : 1;
    opts.target_distributed_workers =
        exec.mode == runtime::ExecutionMode::kDistributed
            ? exec.distributed_workers
            : 0;
    RAVEN_RETURN_IF_ERROR(ctx_->cross_optimizer().Optimize(&plan));
    if (trace != nullptr) trace->EndSpan(optimize_span);
  }
  auto cached = std::make_shared<CachedPlan>();
  cached->param_count = ir::PlanParamCount(*plan.root());
  cached->fingerprint = ir::PlanFingerprint(*plan.root());
  cached->plan = std::make_shared<const ir::IrPlan>(std::move(plan));
  return std::shared_ptr<const CachedPlan>(std::move(cached));
}

ServerResponse QueryServer::ExecutePlan(Session* session,
                                        const ir::IrPlan& plan,
                                        bool cache_hit, obs::Trace* trace) {
  Timer timer;
  const std::int64_t admit_span =
      trace != nullptr ? trace->StartSpan("admission.wait") : 0;
  auto ticket = admission_.Admit();
  if (trace != nullptr) {
    trace->EndSpan(admit_span,
                   ticket.ok() ? "wait_micros=" +
                                     std::to_string(static_cast<std::int64_t>(
                                         ticket->queue_wait_micros()))
                               : "shed");
  }
  if (!ticket.ok()) return ErrorResponse(ticket.status());
  runtime::ExecutionStats stats;
  runtime::ExecutionOptions exec = session->execution();
  exec.trace = trace;
  auto result = ctx_->executor().Execute(plan, exec, &stats);
  // The serving-path fields of ExecutionStats are filled here — the
  // response below is built FROM the stats, so an embedder reading the
  // stats and a client reading the response see the same numbers.
  stats.plan_cache_hit = cache_hit;
  stats.queue_wait_micros = ticket->queue_wait_micros();
  worker_restarts_.fetch_add(stats.worker_restarts,
                             std::memory_order_relaxed);
  blocks_scanned_.fetch_add(stats.blocks_scanned, std::memory_order_relaxed);
  blocks_skipped_.fetch_add(stats.blocks_skipped, std::memory_order_relaxed);
  if (!result.ok()) return ErrorResponse(result.status());
  const std::int64_t row_cap = options_.admission.max_result_rows;
  if (row_cap > 0 && result->num_rows() > row_cap) {
    return ErrorResponse(Status::ExecutionError(
        "result has " + std::to_string(result->num_rows()) +
        " rows, over the per-query cap of " + std::to_string(row_cap)));
  }
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  ServerResponse response;
  response.kind = ServerResponseKind::kTable;
  response.table = std::move(result).value();
  response.plan_cache_hit = stats.plan_cache_hit;
  response.queue_wait_micros = stats.queue_wait_micros;
  response.total_millis = timer.ElapsedMillis();
  // Push-style latency observations: histograms can't be reconstructed at
  // scrape time from totals, so they're fed on the query path (lock-free
  // bucket increments — the only metrics work the hot path does).
  h_query_latency_->Observe(response.total_millis / 1000.0);
  h_queue_wait_->Observe(stats.queue_wait_micros / 1e6);
  h_query_rows_->Observe(static_cast<double>(response.table.num_rows()));
  return response;
}

ServerResponse QueryServer::ShowStats() const {
  ServerResponse response;
  response.kind = ServerResponseKind::kStats;
  response.stats = Snapshot().ToPairs();
  return response;
}

ServerStats QueryServer::Snapshot() const {
  ServerStats stats;
  stats.plan_cache = plan_cache_.stats();
  stats.admission = admission_.stats();
  stats.queries_served = queries_served_.load(std::memory_order_relaxed);
  stats.statements_prepared =
      statements_prepared_.load(std::memory_order_relaxed);
  stats.prepared_executions =
      prepared_executions_.load(std::memory_order_relaxed);
  stats.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  stats.sessions_active = sessions_active_.load(std::memory_order_relaxed);
  stats.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  stats.blocks_scanned = blocks_scanned_.load(std::memory_order_relaxed);
  stats.blocks_skipped = blocks_skipped_.load(std::memory_order_relaxed);
  stats.catalog_version = ctx_->catalog().version();
  const PredictBatcher::Stats batcher = batcher_->stats();
  stats.batches_flushed = batcher.batches_flushed;
  stats.rows_coalesced = batcher.rows_coalesced;
  stats.batch_occupancy = ServerStats::BatchOccupancyX100(
      batcher.rows_flushed, batcher.batches_flushed);
  if (event_loop_ != nullptr) {
    stats.epoll_wakeups = event_loop_->stats().epoll_wakeups;
  }
  const nnrt::SessionCacheStats nn = ctx_->session_cache().stats();
  stats.nn_session_hits = static_cast<std::int64_t>(nn.hits);
  stats.nn_session_misses = static_cast<std::int64_t>(nn.misses);
  stats.nn_session_evictions = static_cast<std::int64_t>(nn.evictions);
  stats.nn_session_entries = static_cast<std::int64_t>(nn.entries);
  stats.nn_graph_optimizations =
      static_cast<std::int64_t>(nn.graph_optimizations);
  stats.nn_artifact_hits = static_cast<std::int64_t>(nn.artifact_hits);
  stats.nn_artifact_writes = static_cast<std::int64_t>(nn.artifact_writes);
  stats.nn_artifact_rejects = static_cast<std::int64_t>(nn.artifact_rejects);
  const nnrt::OpProfiler& profiler = ctx_->session_cache().profiler();
  stats.nn_ops_profiled = profiler.total_calls();
  stats.nn_op_micros =
      static_cast<std::int64_t>(profiler.total_micros());
  stats.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace raven::server
