#ifndef RAVEN_RELATIONAL_CHUNK_H_
#define RAVEN_RELATIONAL_CHUNK_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace raven::relational {

/// Preferred number of rows per execution batch (DuckDB-style vectorized
/// execution).
inline constexpr std::int64_t kChunkSize = 2048;

/// A batch of rows flowing between physical operators, stored columnar.
struct DataChunk {
  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;

  /// Selection vector: ascending row indices into `cols` that are logically
  /// present. Empty means "all rows selected" (the common case — no
  /// indirection cost). Filters refine `sel` instead of copying every
  /// surviving column; consumers either iterate `sel` directly (aggregates,
  /// join probes) or gather-compact through it (projections, sorts,
  /// materialization). Producers never emit a chunk whose selection is
  /// non-empty-but-zero-rows; a filter that kills every row keeps pulling.
  std::vector<std::int32_t> sel;

  /// Provenance of the scan morsel this chunk's rows derive from:
  /// (source ordinal, morsel index). Operators that transform chunks 1:1
  /// propagate the key; the parallel executor sorts merged output by it so
  /// morsel-parallel runs reproduce sequential row order exactly.
  std::int64_t order_source = 0;
  std::int64_t order_morsel = 0;

  std::int64_t num_rows() const {
    return cols.empty() ? 0 : static_cast<std::int64_t>(cols.front().size());
  }
  std::int64_t num_cols() const {
    return static_cast<std::int64_t>(cols.size());
  }

  bool has_sel() const { return !sel.empty(); }

  /// Logical row count: selected rows if a selection is active, else all.
  std::int64_t num_selected() const {
    return has_sel() ? static_cast<std::int64_t>(sel.size()) : num_rows();
  }

  Result<std::int64_t> ColumnIndex(const std::string& name) const {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<std::int64_t>(i);
    }
    return Status::NotFound("chunk column '" + name + "' not found");
  }

  /// Compacts every column through the selection vector and clears it, so
  /// downstream code that indexes rows positionally sees only selected
  /// rows. No-op when no selection is active.
  void FlattenSel() {
    if (!has_sel()) return;
    for (auto& c : cols) {
      std::vector<double> packed;
      packed.reserve(sel.size());
      for (std::int32_t i : sel) packed.push_back(c[static_cast<std::size_t>(i)]);
      c = std::move(packed);
    }
    sel.clear();
  }

  void Clear() {
    for (auto& c : cols) c.clear();
    sel.clear();
  }
};

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_CHUNK_H_
