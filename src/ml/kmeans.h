#ifndef RAVEN_ML_KMEANS_H_
#define RAVEN_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace raven::ml {

/// Lloyd's k-means with k-means++ seeding. Used by the model-clustering
/// optimization (paper §4.1, Fig 2(b)): cluster historical data offline,
/// derive per-cluster constant features, and precompile one specialized
/// model per cluster.
struct KMeansOptions {
  std::int64_t k = 8;
  std::int64_t max_iters = 25;
  std::uint64_t seed = 47;
};

class KMeans {
 public:
  KMeans() = default;

  Status Fit(const Tensor& x, const KMeansOptions& options = KMeansOptions());

  /// Nearest-centroid index for one row.
  std::int64_t AssignRow(const float* row, std::int64_t num_features) const;
  /// Assignment vector for a batch.
  Result<std::vector<std::int64_t>> Assign(const Tensor& x) const;

  std::int64_t k() const {
    return static_cast<std::int64_t>(centroids_.size());
  }
  std::int64_t num_features() const {
    return centroids_.empty()
               ? 0
               : static_cast<std::int64_t>(centroids_.front().size());
  }
  const std::vector<std::vector<float>>& centroids() const {
    return centroids_;
  }

  void Serialize(BinaryWriter* writer) const;
  static Result<KMeans> Deserialize(BinaryReader* reader);

 private:
  std::vector<std::vector<float>> centroids_;
};

}  // namespace raven::ml

#endif  // RAVEN_ML_KMEANS_H_
