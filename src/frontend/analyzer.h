#ifndef RAVEN_FRONTEND_ANALYZER_H_
#define RAVEN_FRONTEND_ANALYZER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "frontend/pipeline_parser.h"
#include "ir/ir.h"
#include "relational/catalog.h"

namespace raven::frontend {

/// Statistics from the last analysis (the paper reports <10 ms end-to-end
/// static analysis; bench_ablation_static_analysis reproduces that check).
struct AnalysisStats {
  double sql_parse_micros = 0.0;
  double script_analysis_micros = 0.0;
  bool used_udf_fallback = false;
  std::string fallback_reason;
};

/// Raven's Static Analyzer (paper §3.2): parses the inference query's SQL
/// into RA operators and the referenced models' pipeline scripts into MLD
/// operators, producing a single unified-IR plan. Scripts the analyzer
/// cannot map through the API knowledge base (unknown calls, control flow)
/// degrade gracefully into OpaquePipeline (UDF-category) nodes that still
/// execute but forgo cross-optimizations.
class StaticAnalyzer {
 public:
  explicit StaticAnalyzer(const relational::Catalog* catalog)
      : catalog_(catalog) {}

  /// Analyzes a full inference query.
  Result<ir::IrPlan> Analyze(const std::string& sql,
                             AnalysisStats* stats = nullptr) const;

  /// Analyzes a stored model's script against its trained pipeline,
  /// returning the IR node to splice above `data`.
  Result<ir::IrNodePtr> BuildModelNode(const std::string& model_name,
                                       ir::IrNodePtr data,
                                       const std::string& output_column,
                                       AnalysisStats* stats = nullptr) const;

  /// Validates that the scripted structure matches the trained pipeline
  /// (branch kinds/columns and predictor family). Exposed for tests.
  static Status CheckSpecMatchesPipeline(const PipelineSpec& spec,
                                         const ml::ModelPipeline& pipeline);

 private:
  const relational::Catalog* catalog_;
};

}  // namespace raven::frontend

#endif  // RAVEN_FRONTEND_ANALYZER_H_
