#include "ir/ir.h"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

#include "nnrt/artifact_cache.h"

namespace raven::ir {

const char* OpCategoryToString(OpCategory category) {
  switch (category) {
    case OpCategory::kRelational:
      return "RA";
    case OpCategory::kLinearAlgebra:
      return "LA";
    case OpCategory::kClassicalMl:
      return "MLD";
    case OpCategory::kUdf:
      return "UDF";
  }
  return "?";
}

void WriteAggregateItems(const std::vector<AggregateItem>& items,
                         BinaryWriter* writer) {
  writer->WriteU64(items.size());
  for (const auto& item : items) {
    writer->WriteU8(static_cast<std::uint8_t>(item.func));
    writer->WriteString(item.column);
    writer->WriteString(item.output_name);
  }
}

Result<std::vector<AggregateItem>> ReadAggregateItems(BinaryReader* reader) {
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t n, reader->ReadU64());
  if (n > reader->remaining()) {
    return Status::ParseError("implausible aggregate-item count");
  }
  std::vector<AggregateItem> items;
  items.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    AggregateItem item;
    RAVEN_ASSIGN_OR_RETURN(std::uint8_t func, reader->ReadU8());
    if (func > static_cast<std::uint8_t>(AggFunc::kMax)) {
      return Status::ParseError("unknown aggregate function code " +
                                std::to_string(func));
    }
    item.func = static_cast<AggFunc>(func);
    RAVEN_ASSIGN_OR_RETURN(item.column, reader->ReadString());
    RAVEN_ASSIGN_OR_RETURN(item.output_name, reader->ReadString());
    items.push_back(std::move(item));
  }
  return items;
}

void WriteSortKeys(const std::vector<SortKey>& keys, BinaryWriter* writer) {
  writer->WriteU64(keys.size());
  for (const auto& key : keys) {
    writer->WriteString(key.column);
    writer->WriteBool(key.descending);
  }
}

Result<std::vector<SortKey>> ReadSortKeys(BinaryReader* reader) {
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t n, reader->ReadU64());
  if (n > reader->remaining()) {
    return Status::ParseError("implausible sort-key count");
  }
  std::vector<SortKey> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    SortKey key;
    RAVEN_ASSIGN_OR_RETURN(key.column, reader->ReadString());
    RAVEN_ASSIGN_OR_RETURN(key.descending, reader->ReadBool());
    keys.push_back(std::move(key));
  }
  return keys;
}

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

const char* IrOpKindToString(IrOpKind kind) {
  switch (kind) {
    case IrOpKind::kTableScan:
      return "TableScan";
    case IrOpKind::kFilter:
      return "Filter";
    case IrOpKind::kProject:
      return "Project";
    case IrOpKind::kJoin:
      return "Join";
    case IrOpKind::kUnionAll:
      return "UnionAll";
    case IrOpKind::kLimit:
      return "Limit";
    case IrOpKind::kAggregate:
      return "Aggregate";
    case IrOpKind::kGroupBy:
      return "GroupBy";
    case IrOpKind::kOrderBy:
      return "OrderBy";
    case IrOpKind::kModelPipeline:
      return "ModelPipeline";
    case IrOpKind::kClusteredPredict:
      return "ClusteredPredict";
    case IrOpKind::kNnGraph:
      return "NnGraph";
    case IrOpKind::kOpaquePipeline:
      return "OpaquePipeline";
  }
  return "?";
}

OpCategory CategoryOf(IrOpKind kind) {
  switch (kind) {
    case IrOpKind::kTableScan:
    case IrOpKind::kFilter:
    case IrOpKind::kProject:
    case IrOpKind::kJoin:
    case IrOpKind::kUnionAll:
    case IrOpKind::kLimit:
    case IrOpKind::kAggregate:
    case IrOpKind::kGroupBy:
    case IrOpKind::kOrderBy:
      return OpCategory::kRelational;
    case IrOpKind::kModelPipeline:
    case IrOpKind::kClusteredPredict:
      return OpCategory::kClassicalMl;
    case IrOpKind::kNnGraph:
      return OpCategory::kLinearAlgebra;
    case IrOpKind::kOpaquePipeline:
      return OpCategory::kUdf;
  }
  return OpCategory::kUdf;
}

bool IsFusablePipelineKind(IrOpKind kind) {
  switch (kind) {
    case IrOpKind::kFilter:
    case IrOpKind::kProject:
    case IrOpKind::kModelPipeline:
    case IrOpKind::kClusteredPredict:
    case IrOpKind::kNnGraph:
    case IrOpKind::kOpaquePipeline:
      return true;
    default:
      return false;
  }
}

IrNodePtr IrNode::Clone() const {
  auto node = std::make_unique<IrNode>(kind);
  for (const auto& child : children) node->children.push_back(child->Clone());
  node->table_name = table_name;
  if (predicate != nullptr) node->predicate = predicate->Clone();
  for (const auto& e : proj_exprs) node->proj_exprs.push_back(e->Clone());
  node->proj_names = proj_names;
  node->left_key = left_key;
  node->right_key = right_key;
  node->limit = limit;
  node->aggregates = aggregates;
  node->group_keys = group_keys;
  node->sort_keys = sort_keys;
  node->model_name = model_name;
  node->output_column = output_column;
  // Model payloads are shared; rules copy-on-write when specializing.
  node->pipeline = pipeline;
  node->clustered = clustered;
  node->nn_graph = nn_graph;
  node->nn_graph_fingerprint = nn_graph_fingerprint;
  node->model_input_columns = model_input_columns;
  node->opaque_bytes = opaque_bytes;
  node->opaque_reason = opaque_reason;
  return node;
}

IrNodePtr IrNode::TableScan(std::string table) {
  auto node = std::make_unique<IrNode>(IrOpKind::kTableScan);
  node->table_name = std::move(table);
  return node;
}

IrNodePtr IrNode::Filter(IrNodePtr child, relational::ExprPtr predicate) {
  auto node = std::make_unique<IrNode>(IrOpKind::kFilter);
  node->children.push_back(std::move(child));
  node->predicate = std::move(predicate);
  return node;
}

IrNodePtr IrNode::Project(IrNodePtr child,
                          std::vector<relational::ExprPtr> exprs,
                          std::vector<std::string> names) {
  auto node = std::make_unique<IrNode>(IrOpKind::kProject);
  node->children.push_back(std::move(child));
  node->proj_exprs = std::move(exprs);
  node->proj_names = std::move(names);
  return node;
}

IrNodePtr IrNode::ProjectColumns(IrNodePtr child,
                                 const std::vector<std::string>& columns) {
  std::vector<relational::ExprPtr> exprs;
  std::vector<std::string> names;
  for (const auto& c : columns) {
    exprs.push_back(relational::Col(c));
    names.push_back(c);
  }
  return Project(std::move(child), std::move(exprs), std::move(names));
}

IrNodePtr IrNode::Join(IrNodePtr left, IrNodePtr right, std::string left_key,
                       std::string right_key) {
  auto node = std::make_unique<IrNode>(IrOpKind::kJoin);
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  node->left_key = std::move(left_key);
  node->right_key = std::move(right_key);
  return node;
}

IrNodePtr IrNode::UnionAll(std::vector<IrNodePtr> children) {
  auto node = std::make_unique<IrNode>(IrOpKind::kUnionAll);
  node->children = std::move(children);
  return node;
}

IrNodePtr IrNode::Limit(IrNodePtr child, std::int64_t limit) {
  auto node = std::make_unique<IrNode>(IrOpKind::kLimit);
  node->children.push_back(std::move(child));
  node->limit = limit;
  return node;
}

IrNodePtr IrNode::Aggregate(IrNodePtr child,
                            std::vector<AggregateItem> aggregates) {
  auto node = std::make_unique<IrNode>(IrOpKind::kAggregate);
  node->children.push_back(std::move(child));
  node->aggregates = std::move(aggregates);
  return node;
}

IrNodePtr IrNode::GroupBy(IrNodePtr child, std::vector<std::string> group_keys,
                          std::vector<AggregateItem> aggregates) {
  auto node = std::make_unique<IrNode>(IrOpKind::kGroupBy);
  node->children.push_back(std::move(child));
  node->group_keys = std::move(group_keys);
  node->aggregates = std::move(aggregates);
  return node;
}

IrNodePtr IrNode::OrderBy(IrNodePtr child, std::vector<SortKey> sort_keys) {
  auto node = std::make_unique<IrNode>(IrOpKind::kOrderBy);
  node->children.push_back(std::move(child));
  node->sort_keys = std::move(sort_keys);
  return node;
}

IrNodePtr IrNode::ModelPipelineNode(IrNodePtr child, std::string model_name,
                                    std::shared_ptr<ml::ModelPipeline> model,
                                    std::vector<std::string> input_columns,
                                    std::string output_column) {
  auto node = std::make_unique<IrNode>(IrOpKind::kModelPipeline);
  node->children.push_back(std::move(child));
  node->model_name = std::move(model_name);
  node->pipeline = std::move(model);
  node->model_input_columns = std::move(input_columns);
  node->output_column = std::move(output_column);
  return node;
}

IrNodePtr IrNode::ClusteredPredict(IrNodePtr child, std::string model_name,
                                   std::shared_ptr<ClusteredModel> model,
                                   std::vector<std::string> input_columns,
                                   std::string output_column) {
  auto node = std::make_unique<IrNode>(IrOpKind::kClusteredPredict);
  node->children.push_back(std::move(child));
  node->model_name = std::move(model_name);
  node->clustered = std::move(model);
  node->model_input_columns = std::move(input_columns);
  node->output_column = std::move(output_column);
  return node;
}

namespace {

/// Content hash of a translated graph, taken once at node construction;
/// 0 is reserved for "not computed". Delegates to the nnrt helper so the
/// artifact cache and raven_worker derive the identical key from bytes.
std::uint64_t FingerprintNnGraph(const nnrt::Graph& graph) {
  BinaryWriter writer;
  graph.Serialize(&writer);
  return nnrt::FingerprintGraphBytes(writer.Release());
}

}  // namespace

IrNodePtr IrNode::NnGraph(IrNodePtr child, std::string model_name,
                          std::shared_ptr<nnrt::Graph> graph,
                          std::vector<std::string> input_columns,
                          std::string output_column) {
  auto node = std::make_unique<IrNode>(IrOpKind::kNnGraph);
  node->children.push_back(std::move(child));
  node->model_name = std::move(model_name);
  node->nn_graph = std::move(graph);
  node->nn_graph_fingerprint = FingerprintNnGraph(*node->nn_graph);
  node->model_input_columns = std::move(input_columns);
  node->output_column = std::move(output_column);
  return node;
}

IrNodePtr IrNode::OpaquePipeline(IrNodePtr child, std::string model_name,
                                 std::string bytes, std::string reason,
                                 std::vector<std::string> input_columns,
                                 std::string output_column) {
  auto node = std::make_unique<IrNode>(IrOpKind::kOpaquePipeline);
  node->children.push_back(std::move(child));
  node->model_name = std::move(model_name);
  node->opaque_bytes = std::move(bytes);
  node->opaque_reason = std::move(reason);
  node->model_input_columns = std::move(input_columns);
  node->output_column = std::move(output_column);
  return node;
}

IrPlan IrPlan::Clone() const {
  return root_ == nullptr ? IrPlan() : IrPlan(root_->Clone());
}

Result<std::vector<std::string>> IrPlan::ComputeSchema(
    const IrNode& node, const relational::Catalog& catalog) {
  switch (node.kind) {
    case IrOpKind::kTableScan: {
      // TableSchema covers in-memory and on-disk tables alike.
      return catalog.TableSchema(node.table_name);
    }
    case IrOpKind::kFilter:
    case IrOpKind::kLimit:
    case IrOpKind::kOrderBy:
      return ComputeSchema(*node.children[0], catalog);
    case IrOpKind::kProject:
      return node.proj_names;
    case IrOpKind::kJoin: {
      RAVEN_ASSIGN_OR_RETURN(auto left, ComputeSchema(*node.children[0],
                                                      catalog));
      RAVEN_ASSIGN_OR_RETURN(auto right, ComputeSchema(*node.children[1],
                                                       catalog));
      std::set<std::string> seen(left.begin(), left.end());
      for (const auto& name : right) {
        if (seen.insert(name).second) left.push_back(name);
      }
      return left;
    }
    case IrOpKind::kUnionAll:
      return ComputeSchema(*node.children[0], catalog);
    case IrOpKind::kAggregate: {
      std::vector<std::string> names;
      names.reserve(node.aggregates.size());
      for (const auto& agg : node.aggregates) {
        names.push_back(agg.output_name);
      }
      return names;
    }
    case IrOpKind::kGroupBy: {
      std::vector<std::string> names = node.group_keys;
      names.reserve(names.size() + node.aggregates.size());
      for (const auto& agg : node.aggregates) {
        names.push_back(agg.output_name);
      }
      return names;
    }
    case IrOpKind::kModelPipeline:
    case IrOpKind::kClusteredPredict:
    case IrOpKind::kNnGraph:
    case IrOpKind::kOpaquePipeline: {
      RAVEN_ASSIGN_OR_RETURN(auto schema,
                             ComputeSchema(*node.children[0], catalog));
      schema.push_back(node.output_column);
      return schema;
    }
  }
  return Status::Internal("unreachable IR kind");
}

namespace {

Status ValidateNode(const IrNode& node, const relational::Catalog& catalog) {
  const std::size_t expected_children =
      node.kind == IrOpKind::kTableScan
          ? 0
          : (node.kind == IrOpKind::kJoin
                 ? 2
                 : (node.kind == IrOpKind::kUnionAll ? node.children.size()
                                                     : 1));
  if (node.kind == IrOpKind::kUnionAll) {
    if (node.children.empty()) {
      return Status::InvalidArgument("UnionAll needs >= 1 child");
    }
  } else if (node.children.size() != expected_children) {
    return Status::InvalidArgument(
        std::string(IrOpKindToString(node.kind)) + " expects " +
        std::to_string(expected_children) + " children, has " +
        std::to_string(node.children.size()));
  }
  for (const auto& child : node.children) {
    RAVEN_RETURN_IF_ERROR(ValidateNode(*child, catalog));
  }
  // Schema resolvability checks.
  RAVEN_ASSIGN_OR_RETURN(auto schema, IrPlan::ComputeSchema(node, catalog));
  (void)schema;
  if (!node.model_input_columns.empty()) {
    RAVEN_ASSIGN_OR_RETURN(auto child_schema,
                           IrPlan::ComputeSchema(*node.children[0], catalog));
    std::set<std::string> available(child_schema.begin(), child_schema.end());
    for (const auto& col : node.model_input_columns) {
      if (available.find(col) == available.end()) {
        return Status::InvalidArgument("model input column '" + col +
                                       "' not produced by child of " +
                                       IrOpKindToString(node.kind));
      }
    }
  }
  if (node.kind == IrOpKind::kFilter && node.predicate == nullptr) {
    return Status::InvalidArgument("Filter without predicate");
  }
  if (node.kind == IrOpKind::kOrderBy) {
    if (node.sort_keys.empty()) {
      return Status::InvalidArgument("OrderBy without sort keys");
    }
    RAVEN_ASSIGN_OR_RETURN(auto child_schema,
                           IrPlan::ComputeSchema(*node.children[0], catalog));
    const std::set<std::string> available(child_schema.begin(),
                                          child_schema.end());
    for (const auto& key : node.sort_keys) {
      if (available.find(key.column) == available.end()) {
        return Status::InvalidArgument("sort column '" + key.column +
                                       "' not produced by child");
      }
    }
  }
  if (node.kind == IrOpKind::kAggregate || node.kind == IrOpKind::kGroupBy) {
    // A scalar aggregate needs at least one item; a GroupBy without
    // aggregates is legal — it is SELECT DISTINCT over the keys.
    if (node.kind == IrOpKind::kAggregate && node.aggregates.empty()) {
      return Status::InvalidArgument("Aggregate without aggregate items");
    }
    RAVEN_ASSIGN_OR_RETURN(auto child_schema,
                           IrPlan::ComputeSchema(*node.children[0], catalog));
    const std::set<std::string> available(child_schema.begin(),
                                          child_schema.end());
    std::set<std::string> outputs;
    if (node.kind == IrOpKind::kGroupBy) {
      if (node.group_keys.empty()) {
        return Status::InvalidArgument("GroupBy without group keys");
      }
      for (const auto& key : node.group_keys) {
        if (available.find(key) == available.end()) {
          return Status::InvalidArgument("group key '" + key +
                                         "' not produced by child");
        }
        if (!outputs.insert(key).second) {
          return Status::InvalidArgument("duplicate group key '" + key + "'");
        }
      }
    }
    for (const auto& agg : node.aggregates) {
      if (!outputs.insert(agg.output_name).second) {
        return Status::InvalidArgument("duplicate aggregate output name '" +
                                       agg.output_name +
                                       "' (use AS to disambiguate)");
      }
      if (agg.column.empty()) {
        if (agg.func != AggFunc::kCount) {
          return Status::InvalidArgument(
              std::string(AggFuncToString(agg.func)) + " needs a column");
        }
        continue;
      }
      if (available.find(agg.column) == available.end()) {
        return Status::InvalidArgument("aggregate column '" + agg.column +
                                       "' not produced by child");
      }
    }
  }
  if (node.kind == IrOpKind::kModelPipeline && node.pipeline == nullptr) {
    return Status::InvalidArgument("ModelPipeline without pipeline");
  }
  if (node.kind == IrOpKind::kNnGraph && node.nn_graph == nullptr) {
    return Status::InvalidArgument("NnGraph without graph");
  }
  return Status::OK();
}

void PrintNode(const IrNode& node, int indent, std::ostringstream* os) {
  for (int i = 0; i < indent; ++i) *os << "  ";
  *os << IrOpKindToString(node.kind) << " [" <<
      OpCategoryToString(node.category()) << "]";
  switch (node.kind) {
    case IrOpKind::kTableScan:
      *os << " " << node.table_name;
      break;
    case IrOpKind::kFilter:
      *os << " " << node.predicate->ToString();
      break;
    case IrOpKind::kProject: {
      *os << " [";
      for (std::size_t i = 0; i < node.proj_names.size(); ++i) {
        if (i > 0) *os << ", ";
        const std::string expr = node.proj_exprs[i]->ToString();
        if (expr == node.proj_names[i]) {
          *os << expr;
        } else if (expr.size() > 40) {
          *os << node.proj_names[i] << " := <expr:" << expr.size()
              << " chars>";
        } else {
          *os << node.proj_names[i] << " := " << expr;
        }
      }
      *os << "]";
      break;
    }
    case IrOpKind::kJoin:
      *os << " on " << node.left_key << " = " << node.right_key;
      break;
    case IrOpKind::kLimit:
      *os << " " << node.limit;
      break;
    case IrOpKind::kAggregate: {
      *os << " [";
      for (std::size_t i = 0; i < node.aggregates.size(); ++i) {
        if (i > 0) *os << ", ";
        const auto& agg = node.aggregates[i];
        *os << agg.output_name << " := " << AggFuncToString(agg.func) << "("
            << (agg.column.empty() ? "*" : agg.column) << ")";
      }
      *os << "]";
      break;
    }
    case IrOpKind::kGroupBy: {
      *os << " keys=[";
      for (std::size_t i = 0; i < node.group_keys.size(); ++i) {
        if (i > 0) *os << ", ";
        *os << node.group_keys[i];
      }
      *os << "] [";
      for (std::size_t i = 0; i < node.aggregates.size(); ++i) {
        if (i > 0) *os << ", ";
        const auto& agg = node.aggregates[i];
        *os << agg.output_name << " := " << AggFuncToString(agg.func) << "("
            << (agg.column.empty() ? "*" : agg.column) << ")";
      }
      *os << "]";
      break;
    }
    case IrOpKind::kOrderBy: {
      *os << " [";
      for (std::size_t i = 0; i < node.sort_keys.size(); ++i) {
        if (i > 0) *os << ", ";
        *os << node.sort_keys[i].column
            << (node.sort_keys[i].descending ? " DESC" : " ASC");
      }
      *os << "]";
      break;
    }
    case IrOpKind::kModelPipeline:
      *os << " model='" << node.model_name << "' "
          << node.pipeline->Summary() << " -> " << node.output_column;
      break;
    case IrOpKind::kClusteredPredict:
      *os << " model='" << node.model_name << "' k=" << node.clustered->router.k()
          << " -> " << node.output_column;
      break;
    case IrOpKind::kNnGraph:
      *os << " model='" << node.model_name << "' ("
          << node.nn_graph->nodes().size() << " LA ops) -> "
          << node.output_column;
      break;
    case IrOpKind::kOpaquePipeline:
      *os << " model='" << node.model_name << "' reason='"
          << node.opaque_reason << "' -> " << node.output_column;
      break;
    default:
      break;
  }
  *os << "\n";
  for (const auto& child : node.children) {
    PrintNode(*child, indent + 1, os);
  }
}

}  // namespace

Status IrPlan::Validate(const relational::Catalog& catalog) const {
  if (root_ == nullptr) return Status::InvalidArgument("empty plan");
  return ValidateNode(*root_, catalog);
}

std::string IrPlan::ToString() const {
  if (root_ == nullptr) return "(empty plan)\n";
  std::ostringstream os;
  PrintNode(*root_, 0, &os);
  return os.str();
}

std::size_t IrPlan::CountKind(IrOpKind kind) const {
  std::size_t count = 0;
  VisitIr(root(), [&](const IrNode* node) {
    if (node->kind == kind) ++count;
  });
  return count;
}

void VisitIr(IrNode* node, const std::function<void(IrNode*)>& fn) {
  if (node == nullptr) return;
  fn(node);
  for (auto& child : node->children) VisitIr(child.get(), fn);
}

void VisitIr(const IrNode* node,
             const std::function<void(const IrNode*)>& fn) {
  if (node == nullptr) return;
  fn(node);
  // Recurse through a const pointer so overload resolution cannot fall into
  // the non-const VisitIr (child.get() yields IrNode* even here).
  for (const auto& child : node->children) {
    VisitIr(static_cast<const IrNode*>(child.get()), fn);
  }
}

namespace {

constexpr std::uint8_t kFragmentFormatVersion = 1;
constexpr int kMaxFragmentDepth = 64;

/// Children each kind must carry for the physical builder to be safe
/// (children[0]/children[1] indexing). -1 = any count (kUnionAll).
int ExpectedChildren(IrOpKind kind) {
  switch (kind) {
    case IrOpKind::kTableScan:
      return 0;
    case IrOpKind::kJoin:
      return 2;
    case IrOpKind::kUnionAll:
      return -1;
    default:
      return 1;
  }
}

Status SerializeNode(const IrNode& node, BinaryWriter* writer) {
  writer->WriteU8(static_cast<std::uint8_t>(node.kind));
  switch (node.kind) {
    case IrOpKind::kTableScan:
      writer->WriteString(node.table_name);
      break;
    case IrOpKind::kFilter:
      if (node.predicate == nullptr) {
        return Status::InvalidArgument("filter node without a predicate");
      }
      relational::SerializeExpr(*node.predicate, writer);
      break;
    case IrOpKind::kProject:
      if (node.proj_exprs.size() != node.proj_names.size()) {
        return Status::InvalidArgument(
            "projection expression/name count mismatch");
      }
      writer->WriteStringVector(node.proj_names);
      for (const auto& expr : node.proj_exprs) {
        relational::SerializeExpr(*expr, writer);
      }
      break;
    case IrOpKind::kJoin:
      writer->WriteString(node.left_key);
      writer->WriteString(node.right_key);
      break;
    case IrOpKind::kUnionAll:
      break;
    case IrOpKind::kLimit:
      writer->WriteI64(node.limit);
      break;
    case IrOpKind::kAggregate:
      WriteAggregateItems(node.aggregates, writer);
      break;
    case IrOpKind::kGroupBy:
      writer->WriteStringVector(node.group_keys);
      WriteAggregateItems(node.aggregates, writer);
      break;
    case IrOpKind::kOrderBy:
      WriteSortKeys(node.sort_keys, writer);
      break;
    case IrOpKind::kModelPipeline:
      if (node.pipeline == nullptr) {
        return Status::InvalidArgument("pipeline node without a pipeline");
      }
      writer->WriteString(node.model_name);
      writer->WriteString(node.output_column);
      writer->WriteStringVector(node.model_input_columns);
      node.pipeline->Serialize(writer);
      break;
    case IrOpKind::kNnGraph:
      if (node.nn_graph == nullptr) {
        return Status::InvalidArgument("NN-graph node without a graph");
      }
      writer->WriteString(node.model_name);
      writer->WriteString(node.output_column);
      writer->WriteStringVector(node.model_input_columns);
      node.nn_graph->Serialize(writer);
      break;
    case IrOpKind::kClusteredPredict:
      return Status::InvalidArgument(
          "clustered-predict nodes cannot ship: clustering artifacts live in "
          "the optimizer process");
    case IrOpKind::kOpaquePipeline:
      return Status::InvalidArgument(
          "opaque pipelines cannot ship to pool workers: they score through "
          "their own external runtime");
  }
  writer->WriteU32(static_cast<std::uint32_t>(node.children.size()));
  for (const auto& child : node.children) {
    RAVEN_RETURN_IF_ERROR(SerializeNode(*child, writer));
  }
  return Status::OK();
}

Result<IrNodePtr> DeserializeNode(BinaryReader* reader, int depth) {
  if (depth > kMaxFragmentDepth) {
    return Status::ParseError("plan fragment too deep (corrupt payload?)");
  }
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t tag, reader->ReadU8());
  if (tag > static_cast<std::uint8_t>(IrOpKind::kOpaquePipeline)) {
    return Status::ParseError("unknown IR kind code " + std::to_string(tag));
  }
  const IrOpKind kind = static_cast<IrOpKind>(tag);
  auto node = std::make_unique<IrNode>(kind);
  switch (kind) {
    case IrOpKind::kTableScan: {
      RAVEN_ASSIGN_OR_RETURN(node->table_name, reader->ReadString());
      break;
    }
    case IrOpKind::kFilter: {
      RAVEN_ASSIGN_OR_RETURN(node->predicate,
                             relational::DeserializeExpr(reader));
      break;
    }
    case IrOpKind::kProject: {
      RAVEN_ASSIGN_OR_RETURN(node->proj_names, reader->ReadStringVector());
      node->proj_exprs.reserve(node->proj_names.size());
      for (std::size_t i = 0; i < node->proj_names.size(); ++i) {
        RAVEN_ASSIGN_OR_RETURN(auto expr, relational::DeserializeExpr(reader));
        node->proj_exprs.push_back(std::move(expr));
      }
      break;
    }
    case IrOpKind::kJoin: {
      RAVEN_ASSIGN_OR_RETURN(node->left_key, reader->ReadString());
      RAVEN_ASSIGN_OR_RETURN(node->right_key, reader->ReadString());
      break;
    }
    case IrOpKind::kUnionAll:
      break;
    case IrOpKind::kLimit: {
      RAVEN_ASSIGN_OR_RETURN(node->limit, reader->ReadI64());
      break;
    }
    case IrOpKind::kAggregate: {
      RAVEN_ASSIGN_OR_RETURN(node->aggregates, ReadAggregateItems(reader));
      break;
    }
    case IrOpKind::kGroupBy: {
      RAVEN_ASSIGN_OR_RETURN(node->group_keys, reader->ReadStringVector());
      RAVEN_ASSIGN_OR_RETURN(node->aggregates, ReadAggregateItems(reader));
      break;
    }
    case IrOpKind::kOrderBy: {
      RAVEN_ASSIGN_OR_RETURN(node->sort_keys, ReadSortKeys(reader));
      break;
    }
    case IrOpKind::kModelPipeline: {
      RAVEN_ASSIGN_OR_RETURN(node->model_name, reader->ReadString());
      RAVEN_ASSIGN_OR_RETURN(node->output_column, reader->ReadString());
      RAVEN_ASSIGN_OR_RETURN(node->model_input_columns,
                             reader->ReadStringVector());
      RAVEN_ASSIGN_OR_RETURN(auto pipeline,
                             ml::ModelPipeline::Deserialize(reader));
      node->pipeline = std::make_shared<ml::ModelPipeline>(std::move(pipeline));
      break;
    }
    case IrOpKind::kNnGraph: {
      RAVEN_ASSIGN_OR_RETURN(node->model_name, reader->ReadString());
      RAVEN_ASSIGN_OR_RETURN(node->output_column, reader->ReadString());
      RAVEN_ASSIGN_OR_RETURN(node->model_input_columns,
                             reader->ReadStringVector());
      RAVEN_ASSIGN_OR_RETURN(auto graph, nnrt::Graph::Deserialize(reader));
      node->nn_graph = std::make_shared<nnrt::Graph>(std::move(graph));
      node->nn_graph_fingerprint = FingerprintNnGraph(*node->nn_graph);
      break;
    }
    case IrOpKind::kClusteredPredict:
    case IrOpKind::kOpaquePipeline:
      return Status::ParseError(
          std::string(IrOpKindToString(kind)) +
          " nodes never ship; rejecting fragment payload");
  }
  RAVEN_ASSIGN_OR_RETURN(std::uint32_t num_children, reader->ReadU32());
  if (num_children > reader->remaining()) {
    return Status::ParseError("implausible fragment child count");
  }
  const int expected = ExpectedChildren(kind);
  if (expected >= 0 && static_cast<int>(num_children) != expected) {
    return Status::ParseError(
        std::string(IrOpKindToString(kind)) + " node with " +
        std::to_string(num_children) + " children (expected " +
        std::to_string(expected) + ")");
  }
  if (expected < 0 && num_children == 0) {
    return Status::ParseError("UnionAll node without children");
  }
  node->children.reserve(num_children);
  for (std::uint32_t i = 0; i < num_children; ++i) {
    RAVEN_ASSIGN_OR_RETURN(auto child, DeserializeNode(reader, depth + 1));
    node->children.push_back(std::move(child));
  }
  return node;
}

}  // namespace

Status SerializeFragment(const IrNode& node, BinaryWriter* writer) {
  writer->WriteU8(kFragmentFormatVersion);
  return SerializeNode(node, writer);
}

Result<IrNodePtr> DeserializeFragment(BinaryReader* reader) {
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t version, reader->ReadU8());
  if (version != kFragmentFormatVersion) {
    return Status::ParseError("unsupported fragment format version " +
                              std::to_string(version));
  }
  return DeserializeNode(reader, 0);
}

bool IsDistributableFragment(const IrNode& node) {
  switch (node.kind) {
    case IrOpKind::kTableScan:
      return true;
    case IrOpKind::kFilter:
    case IrOpKind::kProject:
    case IrOpKind::kModelPipeline:
    case IrOpKind::kNnGraph:
      return !node.children.empty() &&
             IsDistributableFragment(*node.children[0]);
    default:
      return false;
  }
}

void CollectDistributableFragments(const IrNode& root,
                                   std::vector<const IrNode*>* out) {
  if (IsDistributableFragment(root)) {
    out->push_back(&root);
    return;
  }
  for (const auto& child : root.children) {
    CollectDistributableFragments(*child, out);
  }
}

namespace {

/// Canonical preorder encoding for fingerprinting: enough payload to
/// distinguish semantically different plans, none of the in-memory detail
/// (pointer identity, specialization state) that varies across equivalent
/// optimizations of the same statement.
void EncodeForFingerprint(const IrNode& node, BinaryWriter* writer) {
  writer->WriteU8(static_cast<std::uint8_t>(node.kind));
  writer->WriteString(node.table_name);
  writer->WriteString(node.predicate != nullptr ? node.predicate->ToString()
                                                : "");
  // Variable-length fields carry their count: without it, adjacent fields
  // could re-segment into the same byte stream for two different plans.
  writer->WriteU64(node.proj_exprs.size());
  for (const auto& e : node.proj_exprs) writer->WriteString(e->ToString());
  writer->WriteStringVector(node.proj_names);
  writer->WriteString(node.left_key);
  writer->WriteString(node.right_key);
  writer->WriteI64(node.limit);
  WriteAggregateItems(node.aggregates, writer);
  writer->WriteStringVector(node.group_keys);
  WriteSortKeys(node.sort_keys, writer);
  writer->WriteString(node.model_name);
  writer->WriteString(node.output_column);
  writer->WriteStringVector(node.model_input_columns);
  writer->WriteString(node.opaque_reason);
  writer->WriteU64(node.children.size());
  for (const auto& child : node.children) {
    EncodeForFingerprint(*child, writer);
  }
}

}  // namespace

std::uint64_t PlanFingerprint(const IrNode& node) {
  BinaryWriter writer;
  EncodeForFingerprint(node, &writer);
  // FNV-1a (64-bit) over the canonical encoding.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : writer.buffer()) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::int64_t PlanParamCount(const IrNode& node) {
  std::int64_t max_index = -1;
  VisitIr(&node, [&max_index](const IrNode* n) {
    if (n->predicate != nullptr) {
      max_index =
          std::max(max_index, relational::MaxParamIndex(*n->predicate));
    }
    for (const auto& e : n->proj_exprs) {
      max_index = std::max(max_index, relational::MaxParamIndex(*e));
    }
  });
  return max_index + 1;
}

Result<IrNodePtr> BindPlanParameters(const IrNode& node,
                                     const std::vector<double>& values) {
  IrNodePtr bound = node.Clone();
  Status status = Status::OK();
  VisitIr(bound.get(), [&values, &status](IrNode* n) {
    if (!status.ok()) return;
    if (n->predicate != nullptr) {
      auto replaced = relational::BindParameters(*n->predicate, values);
      if (!replaced.ok()) {
        status = replaced.status();
        return;
      }
      n->predicate = std::move(replaced).value();
    }
    for (auto& e : n->proj_exprs) {
      auto replaced = relational::BindParameters(*e, values);
      if (!replaced.ok()) {
        status = replaced.status();
        return;
      }
      e = std::move(replaced).value();
    }
  });
  if (!status.ok()) return status;
  return bound;
}

}  // namespace raven::ir
